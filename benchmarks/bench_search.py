"""Experiment E7 — secure-social-search privacy/cost trade-offs.

Paper claims reproduced (Section V):

* content privacy: a blinded index serves the same queries while leaking no
  vocabulary; blind-signature subscription hides interests from publishers;
* privacy of searcher: proxies give population-sized anonymity sets but
  collapse entirely under collusion; matryoshka routing hides the requester
  from the core at a bounded hop cost; ZKP access leaves only unlinkable
  pseudonyms in the guard's log;
* trusted search result: trust-chain ranking puts socially-vouched
  candidates above equally-matching strangers.
"""

from __future__ import annotations

import random
import statistics

import networkx as nx
import pytest

from _reporting import report_table
from repro.search import (AccessGuard, AliasProxy, BlindPublisher,
                          BlindSubscriber, Matryoshka, PseudonymousSearcher,
                          ResourceOwner, SearchIndex, collude, rank_results)
from repro.search.proxy import anonymity_set_size
from repro.workloads import attach_trust, generate_text, social_graph

GRAPH = attach_trust(social_graph(500, kind="ba", seed=77), seed=78)
POPULATION = 500


def test_blinded_index_same_results_no_leak(benchmark):
    """E7a: content privacy of the search index."""

    def run():
        rng = random.Random(79)
        plain = SearchIndex()
        blinded = SearchIndex(blinding_secret=b"circle" * 6)
        documents = {f"c{i}": generate_text(rng) for i in range(300)}
        for cid, text in documents.items():
            plain.add_document(cid, text)
            blinded.add_document(cid, text)
        queries = ["party", "privacy", "research deadline", "beach"]
        agree = all(plain.search(q) == blinded.search(q) for q in queries)
        return (agree, plain.vocabulary_leaked(),
                blinded.vocabulary_leaked(), len(plain.host_view()))

    agree, plain_leak, blind_leak, vocabulary = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert agree and plain_leak and not blind_leak
    report_table(
        "E7a_index", "E7a — index blinding: functionality vs leakage",
        ["Index", "Same results", "Vocabulary leaked to host"],
        [("plaintext", "yes", "yes (%d terms)" % vocabulary),
         ("blinded", "yes", "no (opaque tags)")],
        note="Exact-match search survives blinding; the host's view doesn't.")


def test_searcher_privacy_mechanisms(benchmark):
    """E7b: anonymity set and per-query cost across the three mechanisms."""

    def run():
        rng = random.Random(80)
        rows = []
        # -- proxy ----------------------------------------------------------
        proxies = [AliasProxy(f"proxy{i}", rng) for i in range(2)]
        for i in range(POPULATION):
            proxies[i % 2].register(f"user{i}")
        for i in range(100):
            proxies[i % 2].forward_query(f"user{i}", "find old friend")
        proxy_anonymity = anonymity_set_size(proxies[0])
        rows.append(("alias proxy", proxy_anonymity, 1.0,
                     "collusion reveals all"))
        collusion = collude(proxies)
        # -- matryoshka -----------------------------------------------------
        core = "user10"
        shells = Matryoshka(GRAPH, core, depth=3)
        hops = [shells.route_request(f"user{100 + i}", rng).hops
                for i in range(50)]
        rows.append(("trusted-friend rings",
                     shells.requester_anonymity_set(POPULATION),
                     statistics.mean(hops), "metadata-free at core"))
        # -- zkp pseudonyms ---------------------------------------------------
        owner = ResourceOwner("user10", rng=rng)
        owner.publish("album", b"pics")
        guard = AccessGuard(owner)
        searcher = PseudonymousSearcher("user99", rng=rng)
        searcher.receive_credential(owner.issue_credential("album"))
        for _ in range(20):
            searcher.access(guard, "album")
        pseudonyms = {p for p, _ in guard.grant_log}
        rows.append(("ZKP + pseudonyms", POPULATION, 1.0,
                     f"{len(pseudonyms)} unlinkable pseudonyms/20 queries"))
        return rows, collusion.fraction_linked, len(pseudonyms)

    rows, collusion_linked, pseudonym_count = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert collusion_linked == 1.0       # the paper's collusion warning
    assert pseudonym_count == 20         # every session unlinkable
    assert rows[1][1] > POPULATION // 2  # big anonymity set at the core
    report_table(
        "E7b_searcher", "E7b — privacy of searcher: mechanism comparison",
        ["Mechanism", "Anonymity set", "Hops/query", "Caveat"],
        rows,
        note=("Proxies protect against outsiders but fall to proxy "
              "collusion; friend rings and ZKP pseudonyms survive it."))


def test_blind_subscription_interest_hiding(benchmark):
    """E7c: publishers deliver by interest without learning interests."""

    def run():
        rng = random.Random(81)
        publisher = BlindPublisher("pub", rng=rng)
        keywords = [f"#topic{i}" for i in range(10)]
        subscribers = []
        for i in range(20):
            subscriber = BlindSubscriber(f"s{i}", rng=rng)
            subscriber.subscribe(publisher, keywords[i % 10])
            subscribers.append(subscriber)
        for keyword in keywords:
            publisher.publish(keyword, f"news about {keyword}")
        delivered = sum(len(s.fetch_all(publisher)) for s in subscribers)
        # what the publisher observed: only blinded values, all distinct
        observations = publisher.subscription_log
        return delivered, len(observations), len(set(observations))

    delivered, observed, distinct = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    assert delivered == 20          # everyone got exactly their topic
    assert observed == distinct == 20  # transcripts carry no repetition
    report_table(
        "E7c_blind", "E7c — blind-signature subscriptions",
        ["Subscribers", "Correct deliveries",
         "Publisher-visible values", "Distinct (unlinkable)"],
        [(20, delivered, observed, distinct)],
        note=("Even two subscribers to the same hashtag look identical to "
              "the publisher: its transcript is uniformly random."))


def test_trust_ranking_quality(benchmark):
    """E7d: trust-chain ranking vs random ordering for friend search."""

    def run():
        rng = random.Random(82)
        searcher = "user5"
        # candidates: half socially close to the searcher, half far
        distances = nx.single_source_shortest_path_length(GRAPH, searcher)
        close = [n for n, d in distances.items() if 0 < d <= 2][:10]
        max_distance = max(distances.values())
        far = [n for n, d in distances.items()
               if d >= max(3, max_distance)][:10]
        if len(far) < 10:  # small-world graph: take the farthest nodes
            far = sorted(distances, key=distances.get, reverse=True)[:10]
            far = [n for n in far if n not in close]
        candidates = close + far
        ranked = rank_results(GRAPH, searcher, candidates, max_depth=3,
                              trust_weight=0.9)
        top10 = [r.user for r in ranked[:10]]
        precision = len(set(top10) & set(close)) / 10
        random_precision = len(close) / len(candidates)
        return precision, random_precision

    precision, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    assert precision > baseline + 0.2
    report_table(
        "E7d_trust", "E7d — trust-chain ranking quality",
        ["Ranking", "Precision@10 (socially close candidates)"],
        [("trust-chain (Huang et al.)", precision),
         ("random baseline", baseline)],
        note=("Ranking by derived trust surfaces socially-vouched matches "
              "first — the 'trusted search result' row of Table I."))
