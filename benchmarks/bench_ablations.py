"""Experiment E10 — ablations of the design choices DESIGN.md calls out.

Each ablation varies one knob of a subsystem and shows why the default is
where it is:

* Chord successor-list size vs. lookup success under failures;
* hybrid-overlay cache capacity vs. cache-hit rate;
* OPRF key dissemination vs. simply handing over the key (what obliviousness
  costs, and what it buys);
* PAD (treap) proof depth vs. dictionary size — the O(log n) claim;
* stream-cipher vs. pure-Python AES bulk throughput — the measurement that
  justifies DESIGN.md's substrate substitution.
"""

from __future__ import annotations

import random
import statistics
import time

import pytest

from _reporting import report_table
from repro.acl.pad import PAD
from repro.crypto import prf
from repro.crypto.symmetric import AuthenticatedCipher, StreamCipher
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.hybrid import HybridOverlay
from repro.workloads import social_graph, zipf_choice


def test_chord_successor_list_ablation(benchmark):
    """E10a: longer successor lists buy resilience, not speed."""

    def sweep():
        rows = []
        for list_size in (1, 2, 4, 8):
            fab = Fabric.create(seed=10)
            ring = ChordRing(fab, successor_list_size=list_size)
            n = 256
            for i in range(n):
                ring.add_node(f"p{i}")
            ring.build()
            rng = random.Random(11)
            for i in rng.sample(range(1, n), n // 4):  # 25% dead
                ring.nodes[f"p{i}"].online = False
            successes = 0
            for i in range(40):
                try:
                    ring.lookup("p0", f"k{i}")
                    successes += 1
                except Exception:
                    pass
            rows.append((list_size, successes / 40))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rates = [r for _, r in rows]
    assert rates[-1] >= rates[0]
    assert rates[-1] >= 0.95
    report_table(
        "E10a_successors",
        "E10a — Chord successor-list size vs success @25% failures",
        ["Successor list", "Lookup success rate"], rows,
        note="Lists of >=4 absorb mass failures; the default is 4.")


def test_hybrid_cache_capacity_ablation(benchmark):
    """E10b: diminishing returns in social-cache capacity."""

    def sweep():
        rows = []
        for capacity in (2, 8, 32, 128):
            graph = social_graph(120, kind="ws", seed=12)
            fab = Fabric.create(seed=13)
            overlay = HybridOverlay(fab, graph, cache_capacity=capacity)
            users = sorted(overlay.caches)
            rng = random.Random(14)
            for i in range(50):
                overlay.publish(users[i % len(users)], f"item{i}", b"v")
            for _ in range(400):
                item = zipf_choice(rng, 50, 1.1)
                overlay.fetch(rng.choice(users), f"item{item}")
            rows.append((capacity, overlay.cache_hit_rate()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    hit_rates = [h for _, h in rows]
    assert hit_rates == sorted(hit_rates)  # monotone in capacity
    gain_small = hit_rates[1] - hit_rates[0]
    gain_large = hit_rates[3] - hit_rates[2]
    assert gain_large <= gain_small + 0.05  # diminishing returns
    report_table(
        "E10b_cache", "E10b — hybrid cache capacity vs hit rate",
        ["Cache capacity", "Cache hit rate"], rows,
        note="Zipf workloads saturate small caches; returns diminish fast.")


def test_oprf_vs_direct_key_handout(benchmark):
    """E10c: what obliviousness costs (latency) and buys (privacy)."""

    def run():
        rng = random.Random(15)
        key = prf.generate_oprf_key("TOY", rng)
        # direct: the publisher evaluates and hands the key over,
        # learning the hashtag.
        start = time.perf_counter()
        for i in range(20):
            prf.evaluate_locally(key, f"#tag{i}".encode())
        direct_ms = (time.perf_counter() - start) / 20 * 1000
        # oblivious: blind -> evaluate -> finalize; publisher learns nothing
        start = time.perf_counter()
        for i in range(20):
            request = prf.blind_request(f"#tag{i}".encode(), "TOY", rng)
            request.finalize(prf.evaluate_blinded(key, request.blinded))
        oprf_ms = (time.perf_counter() - start) / 20 * 1000
        return direct_ms, oprf_ms

    direct_ms, oprf_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    assert oprf_ms > direct_ms  # obliviousness is not free
    assert oprf_ms < 60 * max(direct_ms, 0.01)  # ...but it's cheap
    report_table(
        "E10c_oprf", "E10c — OPRF vs direct key handout (per hashtag)",
        ["Dissemination", "ms/key", "Publisher learns hashtag"],
        [("direct evaluation", direct_ms, "YES"),
         ("2HashDH OPRF", oprf_ms, "no")],
        note=("A few extra exponentiations buy interest-hiding — the "
              "trade Hummingbird makes."))


def test_pad_depth_ablation(benchmark):
    """E10d: PAD proof depth grows logarithmically (treap balance)."""

    def sweep():
        rows = []
        for n in (64, 512, 4096):
            pad = PAD()
            for i in range(n):
                pad = pad.insert(f"user{i:05d}", b"role")
            depths = [len(pad.prove(f"user{i:05d}").path)
                      for i in range(0, n, max(1, n // 64))]
            rows.append((n, statistics.mean(depths), max(depths)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    import math
    for n, mean_depth, max_depth in rows:
        assert mean_depth < 3 * math.log2(n)
    report_table(
        "E10d_pad", "E10d — PAD proof depth vs ACL size",
        ["Members", "Mean proof depth", "Max proof depth"], rows,
        note=("Hash-derived treap priorities keep lookups O(log n) — the "
              "'access in logarithmic time' Frientegrity claims for its "
              "ACLs-as-PADs."))


def test_stream_vs_aes_substrate(benchmark):
    """E10e: the bulk-cipher substitution, justified by measurement."""

    def run():
        payload = b"x" * 65536
        rng = random.Random(16)
        stream = StreamCipher(b"k" * 32)
        start = time.perf_counter()
        blob = stream.encrypt(payload, rng)
        stream.decrypt(blob)
        stream_ms = (time.perf_counter() - start) * 1000
        aes = AuthenticatedCipher(b"k" * 32)
        start = time.perf_counter()
        blob = aes.encrypt(payload, rng=rng)
        aes.decrypt(blob)
        aes_ms = (time.perf_counter() - start) * 1000
        return stream_ms, aes_ms

    stream_ms, aes_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stream_ms < aes_ms / 10  # the simulation needs the fast path
    report_table(
        "E10e_cipher", "E10e — bulk cipher substitution (64 KiB roundtrip)",
        ["Cipher", "ms"],
        [("SHA-256 stream cipher (simulation default)", stream_ms),
         ("pure-Python AES-CTR + HMAC", aes_ms)],
        note=("Both are encrypt-then-MAC with the same interface; the "
              "stream cipher keeps thousand-peer simulations tractable.  "
              "AES remains the validated reference implementation."))
