"""Experiment E18 — overload: hotspot spike, metastable collapse, recovery.

The paper's availability story prices replication and quorum overlap
against crash faults, but real DOSN deployments die differently: a hot
object concentrates load on its few replica holders, clients time out
and retry, and the retry traffic keeps the holders saturated *after* the
original spike has passed — metastable collapse.  E18 reproduces that
failure and the fix on the same fabric:

* a Chord ring + verified quorum store (N=3, R=2, W=2) with one hot key;
* every peer gets a :class:`repro.faults.ServiceConfig` service model —
  10 requests/second of capacity per holder;
* a read workload in three phases: PRE (3 reads/s, healthy), SPIKE
  (20 reads/s — ~2x over the holders' aggregate capacity), POST (back
  to 3 reads/s).

Three stacks run the identical workload at the identical seed:

* **bare** — unbounded queues, fixed 1s attempt timeout, 4 retries, no
  budget: the spike builds a multi-second backlog, every answer arrives
  after the client stopped waiting (the service time is still paid —
  wasted work), and 4-attempt retries keep post-spike demand above
  capacity forever.  Post-spike goodput collapses below 50% of PRE.
* **shed** — the same queue bounded at 4 with ``"reject"`` shedding:
  overflow fails in one round trip instead of billing service time, the
  backlog is capped, and the system drains within a second of the spike
  ending.
* **full** — shedding plus per-operation deadlines (2s budget), the
  channel-wide retry budget, and adaptive EWMA attempt timeouts: the
  spike is survived *cheaply* (doomed work is abandoned before it is
  issued) and POST goodput returns to >= 90% of PRE.

Goodput counts a read only when it succeeds within the 2s SLO.  Per
phase the table reports the overload counters
(``shed`` / ``deadline_expired`` / ``budget_exhausted`` — surfaced via
:meth:`repro.overlay.network.NetworkStats.summary` and the
``overload.*`` metrics), the peak holder queue depth, and the message
bill.

Determinism: the protected cell is re-run and must be byte-identical
(shed decisions draw no RNG; deadlines and budgets are pure virtual-time
arithmetic).

``REPRO_E18_SCALE=smoke`` shrinks the phases for CI smoke runs.
"""

from __future__ import annotations

import os
import statistics

from _reporting import report_table
from repro.exceptions import DeadlineExceededError, StorageError
from repro.fabric import Fabric
from repro.faults import (AdaptiveTimeoutConfig, OverloadConfig, RetryBudget,
                          RetryBudgetConfig, RetryPolicy, ServiceConfig)
from repro.overlay.chord import ChordRing
from repro.storage2 import ReplicatedStore, ReplicationConfig

SMOKE = os.environ.get("REPRO_E18_SCALE", "").lower() == "smoke"
SEED = 2018

N = 16 if SMOKE else 24          # chord peers
SERVICE_TIME = 0.1               # 10 req/s of capacity per peer
QUEUE_LIMIT = 4                  # bounded backlog for the protected stacks
ATTEMPT_TIMEOUT = 1.0            # fixed client timeout (bare + shed)
OP_BUDGET = 2.0                  # full stack's per-read deadline
SLO = 2.0                        # a read this slow is not goodput
RATE_CALM = 3.0                  # reads/s in PRE and POST
RATE_SPIKE = 20.0                # reads/s during the spike
PRE_S = 10.0 if SMOKE else 20.0
SPIKE_S = 10.0 if SMOKE else 30.0
POST_S = 10.0 if SMOKE else 20.0
HOT_KEY = "hot"

#: the three stacks; every ablation keeps the same 4-attempt retry
#: policy so only the overload protections differ between rows
STACKS = {
    "bare": OverloadConfig(
        service=ServiceConfig(service_time=SERVICE_TIME, queue_limit=None,
                              timeout=ATTEMPT_TIMEOUT),
        op_budget=None, retry_budget=None, adaptive_timeout=None),
    "shed": OverloadConfig(
        service=ServiceConfig(service_time=SERVICE_TIME,
                              queue_limit=QUEUE_LIMIT, shed_policy="reject",
                              timeout=ATTEMPT_TIMEOUT),
        op_budget=None, retry_budget=None, adaptive_timeout=None),
    "full": OverloadConfig(
        service=ServiceConfig(service_time=SERVICE_TIME,
                              queue_limit=QUEUE_LIMIT, shed_policy="reject",
                              timeout=ATTEMPT_TIMEOUT),
        op_budget=OP_BUDGET,
        retry_budget=RetryBudgetConfig(capacity=20.0, refill_per_success=0.2),
        adaptive_timeout=AdaptiveTimeoutConfig()),
}

_COUNTERS = ("messages", "timeouts", "retries", "shed", "deadline_expired",
             "budget_exhausted")


def _drive(sim, store, readers, start, duration, rate):
    """Issue ``rate`` hot-key reads/s for ``duration``; returns the phase row.

    Goodput = succeeded within the SLO.  Failures (quorum misses,
    sheds surfacing as ``OverloadedError``, expired deadlines) and
    SLO-busting successes both count against it.
    """
    reads = int(round(duration * rate))
    step = 1.0 / rate
    good = 0
    latencies = []
    for j in range(reads):
        sim.run(until=start + j * step)
        try:
            result = store.get(readers[j % len(readers)], HOT_KEY)
        except (StorageError, DeadlineExceededError):
            continue
        latencies.append(result.elapsed)
        if result.elapsed <= SLO:
            good += 1
    sim.run(until=start + duration)
    return {
        "reads": reads,
        "goodput": good / reads,
        "p50": round(statistics.median(latencies), 4) if latencies
        else float("nan"),
    }


def _overload_cell(stack: str):
    """One full PRE/SPIKE/POST run of one stack; returns per-phase rows."""
    config = STACKS[stack]
    fab = Fabric.create(seed=SEED, retry=RetryPolicy(max_attempts=4))
    ring = ChordRing(fab, successor_list_size=8, replication=3)
    for i in range(N):
        ring.add_node(f"p{i}")
    ring.build()
    store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
    store.put("p0", HOT_KEY, b"the one post everybody loads")
    # Install the overload stack only after bootstrap: ring build and the
    # seeding put all happen at virtual time 0, which would read as an
    # instantaneous request storm against the service queues.  Production
    # wiring is Fabric.create(overload=...) / DosnConfig(overload=...);
    # the late install here prices the measured workload only.
    fab.overload = config
    fab.network.install_overload(config)
    if config.retry_budget is not None:
        fab.channel.retry_budget = RetryBudget(config.retry_budget)
    holders = store.placements[HOT_KEY]
    readers = [f"p{i}" for i in range(N) if f"p{i}" not in holders]
    fab.network.stats.reset()

    phases = {}
    start = 5.0
    before = fab.network.stats.summary()
    for phase, duration, rate in (("pre", PRE_S, RATE_CALM),
                                  ("spike", SPIKE_S, RATE_SPIKE),
                                  ("post", POST_S, RATE_CALM)):
        row = _drive(fab.sim, store, readers, start, duration, rate)
        after = fab.network.stats.summary()
        row.update({k: after[k] - before[k] for k in _COUNTERS})
        row["queue_peak"] = max(
            (fab.network.queue_peak.get(h, 0) for h in holders), default=0)
        phases[phase] = row
        before = after
        start += duration
    return phases


def test_hotspot_metastability(benchmark):
    """E18 headline: bare collapses metastably, the full stack recovers."""

    def sweep():
        return {stack: _overload_cell(stack) for stack in STACKS}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    bare, shed, full = cells["bare"], cells["shed"], cells["full"]
    # Fair weather: the protections must not cost availability.
    assert bare["pre"]["goodput"] == 1.0
    assert full["pre"]["goodput"] == 1.0
    # The headline gates.  Bare: retries keep post-spike demand (3 reads/s
    # x 4 attempts x 3 holders) above the holders' capacity, so the
    # backlog never drains — goodput stays collapsed after the spike ends.
    assert bare["post"]["goodput"] < 0.5 * bare["pre"]["goodput"], (
        f"bare stack did not collapse metastably "
        f"(post goodput {bare['post']['goodput']:.2f})")
    # Full: sheds + deadlines + the retry budget cap the backlog at
    # queue_limit x service_time, so POST drains within a second.
    assert full["post"]["goodput"] >= 0.9 * full["pre"]["goodput"], (
        f"protected stack did not recover "
        f"(post goodput {full['post']['goodput']:.2f})")
    # The bounded queue alone already prevents the metastable state.
    assert shed["post"]["goodput"] > bare["post"]["goodput"]
    # Mechanism check: only the protected stacks shed; only the full
    # stack spends deadlines and exhausts the retry budget.
    assert bare["spike"]["shed"] == 0
    assert shed["spike"]["shed"] > 0 and full["spike"]["shed"] > 0
    assert full["spike"]["deadline_expired"] > 0
    assert full["spike"]["budget_exhausted"] > 0
    assert bare["spike"]["deadline_expired"] == 0
    # The bare queue grows without bound; the protected one is capped
    # (the peak gauge records depth before the shed decision, and wire-
    # latency jitter on arrival times can read one slot past the limit).
    assert full["spike"]["queue_peak"] <= QUEUE_LIMIT + 1
    assert bare["spike"]["queue_peak"] > 10 * QUEUE_LIMIT

    rows = []
    for stack in ("bare", "shed", "full"):
        for phase in ("pre", "spike", "post"):
            row = cells[stack][phase]
            rows.append([stack, phase, f"{row['goodput']:.2f}",
                         row["p50"], row["shed"], row["timeouts"],
                         row["retries"], row["deadline_expired"],
                         row["budget_exhausted"], row["queue_peak"],
                         row["messages"]])
    report_table(
        "E18_overload",
        "E18 — hot-key spike: metastable collapse vs overload protection",
        ["Stack", "Phase", "Goodput", "p50 (s)", "Shed", "Timeouts",
         "Retries", "DeadlineExp", "BudgetExh", "QueuePeak", "Msgs"],
        rows,
        note=(f"Goodput = reads succeeding within the {SLO:.0f}s SLO, per "
              f"phase (PRE/POST {RATE_CALM:.0f} reads/s, SPIKE "
              f"{RATE_SPIKE:.0f}/s against 3 holders x "
              f"{1 / SERVICE_TIME:.0f} req/s).  Bare: the unbounded "
              "backlog turns every answer into a client timeout whose "
              "service time was still paid, and 4-attempt retries hold "
              "demand above capacity after the spike — goodput never "
              "comes back.  Shed: a queue bounded at "
              f"{QUEUE_LIMIT} rejects overflow in one round trip, so the "
              "backlog drains the moment the spike ends.  Full adds "
              "deadlines, the retry budget and adaptive timeouts: the "
              "same recovery, with doomed work abandoned before it is "
              "issued."))


def test_overload_cell_deterministic(benchmark):
    """E18b: two protected runs must be byte-identical (no shed RNG)."""

    def run_twice():
        return _overload_cell("full"), _overload_cell("full")

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert repr(first) == repr(second)
