"""Experiment E8 — "one big provider vs. several small ones", quantified.

The paper's central argument (Sections I-II): the centralized provider sees
everything; decentralization distributes that view across pods/replicas —
but replicas are themselves small providers, and only *encryption* (Section
III) actually removes content exposure.  This experiment runs the same
social workload on every architecture, with and without encryption, and
reports the worst single observer's view of content, metadata and the
social graph.
"""

from __future__ import annotations

import random
import statistics

import pytest

from _reporting import report_table
from repro.dosn import DosnConfig, DosnNetwork
from repro.workloads import generate_posts, social_graph

USERS = 64
POSTS = 120


def run_workload(architecture, encrypt):
    graph = social_graph(USERS, kind="ba", seed=88)
    net = DosnNetwork(config=DosnConfig(
        architecture=architecture, seed=89, encrypt_content=encrypt,
        federation_pods=6))
    for node in graph.nodes:
        net.add_user(str(node))
    net.apply_social_graph(graph)
    for post in generate_posts(graph, POSTS, seed=90):
        net.post(post.author, post.text)
    worst = net.worst_observer()
    return worst


def test_exposure_matrix(benchmark):
    """E8 main table: worst-observer exposure per architecture x encryption."""

    def sweep():
        rows = []
        for architecture in ("central", "federation", "dht", "local"):
            for encrypt in (False, True):
                worst = run_workload(architecture, encrypt)
                rows.append((architecture,
                             "yes" if encrypt else "no",
                             worst.content_view, worst.metadata_view,
                             worst.graph_view))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = {(arch, enc): (c, m, g) for arch, enc, c, m, g in rows}

    # The paper's claims, asserted as orderings:
    # 1. plaintext central provider sees literally everything
    assert table[("central", "no")] == (1.0, 1.0, 1.0)
    # 2. decentralization shrinks the worst observer's *content* view...
    assert table[("federation", "no")][0] <= 1.0
    assert table[("dht", "no")][0] < 1.0
    assert table[("local", "no")][0] < 0.25
    # 3. ...but replicas/pods still see plenty (the "small providers" point)
    assert table[("dht", "no")][0] > 0.0
    # 4. encryption, not decentralization, is what kills content exposure
    assert table[("central", "yes")][0] < 0.1
    assert table[("dht", "yes")][0] < table[("dht", "no")][0] + 1e-9
    # 5. metadata remains visible to whoever stores the ciphertexts
    assert table[("central", "yes")][1] == 1.0

    report_table(
        "E8_exposure",
        "E8 — worst single observer's view (content / metadata / graph)",
        ["Architecture", "Encrypted", "Content view", "Metadata view",
         "Graph view"],
        rows,
        note=("Decentralization shrinks but does not eliminate the "
              "provider's view — replicas and pods are 'small providers'. "
              "Encryption removes content exposure on every architecture; "
              "metadata exposure remains, as the paper warns."))


def test_replica_count_vs_exposure(benchmark):
    """E8b: more DHT replication -> more small providers see your data."""

    def sweep():
        rows = []
        graph = social_graph(48, kind="ws", seed=91)
        for replication in (1, 2, 4):
            net = DosnNetwork(config=DosnConfig(
                architecture="dht", seed=92, encrypt_content=False,
                replication=replication))
            for node in graph.nodes:
                net.add_user(str(node))
            net.apply_social_graph(graph)
            for post in generate_posts(graph, 60, seed=93):
                net.post(post.author, post.text)
            reports = net.exposure_report()
            mean_meta = statistics.mean(r.metadata_view for r in reports)
            worst_meta = max(r.metadata_view for r in reports)
            rows.append((replication, mean_meta, worst_meta))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    means = [m for _, m, _ in rows]
    assert means[0] < means[1] < means[2]
    report_table(
        "E8b_replication", "E8b — replication factor vs observer exposure",
        ["DHT replication", "Mean peer metadata view",
         "Worst peer metadata view"],
        rows,
        note=("Exactly the paper's trade-off: each replica added for "
              "availability is another small observer."))


def test_provider_abuse_scenarios(benchmark):
    """E8c: the three Section II-A abuses work against plaintext uploads."""

    def run():
        from repro.dosn.provider import CentralProvider
        provider = CentralProvider()
        provider.store("alice", "c1", b"private photo")
        provider.record_edge("alice", "bob")
        provider.fetch("alice", "c1")
        provider.delete("c1")
        retention = provider.employee_browse("c1") == b"private photo"
        dossier = provider.sell_profile("alice")
        return retention, bool(dossier["content"]), "bob" in \
            dossier["friends"]

    retention, sellable_content, sellable_graph = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert retention and sellable_content and sellable_graph
    report_table(
        "E8c_abuses", "E8c — Section II-A provider abuses (plaintext OSN)",
        ["Abuse", "Demonstrated"],
        [("data retention (delete is cosmetic)", "yes"),
         ("employee browsing private information", "yes"),
         ("selling of data (dossier incl. social edges)", "yes")],
        note="All three motivating abuses succeed against plaintext uploads.")
