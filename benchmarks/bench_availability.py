"""Experiment E6 — availability under churn vs replication policy.

Paper claims reproduced (Sections I-II):

* "Users, their friends, or other peers need to be online for better
  availability" — availability grows with replication factor;
* Supernova's "tracking of users up-time to find the best places for
  replication" beats random placement;
* friend replication suffers when friends share diurnal phase (same
  timezone) — correlated downtime, the structural weakness of
  friend-based storage;
* and the paper's security thesis: every extra plaintext replica is
  another "small provider" (exposure column).
"""

from __future__ import annotations

import random
import statistics

import networkx as nx
import pytest

from _reporting import report_table
from repro.overlay import replication as rep
from repro.overlay.churn import DiurnalChurn, ExponentialOnOff
from repro.workloads import social_graph

PEERS = [f"user{i}" for i in range(128)]
GRAPH = social_graph(128, kind="ba", seed=66)
PROBES = [float(t) for t in range(3600, 600000, 4800)]
OWNERS = [f"user{i}" for i in range(0, 128, 8)]


def availability_for(policy, replicas, churn, rng):
    values = []
    exposure = rep.ReplicaExposure()
    for owner in OWNERS:
        if replicas == 0:
            placement = rep.Placement(owner=owner, replicas=[])
        elif policy == "random":
            placement = rep.place_random(owner, PEERS, replicas, rng)
        elif policy == "friends":
            placement = rep.place_friends(owner, GRAPH, replicas, rng)
        else:
            placement = rep.place_by_uptime(owner, PEERS, replicas,
                                            churn.uptime_fraction)
        values.append(rep.measure_availability(placement, churn, PROBES))
        exposure.record(placement, encrypted=False)
    return (statistics.mean(values),
            exposure.mean_readable_view(len(PEERS)))


def test_availability_vs_replication(benchmark):
    """E6 main table: availability & exposure vs replication factor."""
    churn = ExponentialOnOff(seed=67, spread=6.0)

    def sweep():
        rows = []
        for replicas in (0, 1, 2, 4, 8):
            for policy in ("random", "uptime"):
                rng = random.Random(replicas * 100 + 1)
                availability, exposure = availability_for(
                    policy, replicas, churn, rng)
                rows.append((policy, replicas, availability, exposure))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    random_curve = [a for p, r, a, e in rows if p == "random"]
    uptime_curve = [a for p, r, a, e in rows if p == "uptime"]
    exposure_curve = [e for p, r, a, e in rows if p == "random"]
    # availability monotone in replication, for both policies
    assert all(x <= y + 0.02 for x, y in zip(random_curve,
                                             random_curve[1:]))
    # uptime-aware placement dominates random at every replication level
    assert all(u >= r - 0.02 for u, r in zip(uptime_curve, random_curve))
    # at r=4, uptime placement is already near-perfect
    assert uptime_curve[3] > 0.99
    # exposure (small-providers effect) also grows with replication
    assert exposure_curve[-1] > exposure_curve[1]
    report_table(
        "E6_availability",
        "E6 — availability and replica exposure vs replication factor",
        ["Policy", "Replicas", "Availability", "Mean replica view"],
        rows,
        note=("Availability needs replicas; uptime-aware placement "
              "(Supernova) dominates random.  The exposure column is the "
              "paper's thesis: each plaintext replica is a small provider."))


def test_friend_replication_correlation_penalty(benchmark):
    """E6b: correlated (same-timezone) churn hurts friend replication."""

    def run():
        rows = []
        for correlation, label in ((0.0, "independent phases"),
                                   (1.0, "fully correlated phases")):
            churn = DiurnalChurn(seed=68, base=0.40, amplitude=0.35,
                                 phase_correlation=correlation)
            rng = random.Random(69)
            values = []
            for owner in OWNERS:
                placement = rep.place_friends(owner, GRAPH, 3, rng)
                values.append(rep.measure_availability(placement, churn,
                                                       PROBES))
            analytic = statistics.mean(
                rep.analytic_availability(
                    rep.place_friends(owner, GRAPH, 3, rng), churn)
                for owner in OWNERS)
            rows.append((label, statistics.mean(values), analytic))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    independent, correlated = rows[0][1], rows[1][1]
    assert correlated < independent
    report_table(
        "E6b_correlation",
        "E6b — friend replication vs timezone correlation (3 replicas)",
        ["Churn model", "Measured availability",
         "Independence prediction"],
        rows,
        note=("When friends share a timezone the replicas sleep together: "
              "measured availability falls below the independence "
              "prediction — the structural cost of friend-based storage."))


def test_single_probe_cost(benchmark):
    """Micro: cost of one availability probe over a 4-replica placement."""
    churn = ExponentialOnOff(seed=70)
    placement = rep.place_random("user0", PEERS, 4, random.Random(71))
    # prime the schedule caches so we measure the query, not generation
    rep.measure_availability(placement, churn, PROBES[:5])
    benchmark(lambda: rep.measure_availability(placement, churn,
                                               PROBES[:50]))
