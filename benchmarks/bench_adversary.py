"""Experiment E19 — routing-layer adversary vs. secure-lookup defenses.

Paper claim (Section V): in a DHT-based DOSN "malicious nodes can drop,
misroute or forge routing messages", and the countermeasures the
literature offers are certified node identifiers, redundant/disjoint
routing, and excluding detected liars.  E19 quantifies both halves: a
seed-deterministic :class:`repro.adversary.AdversaryModel` compromises a
swept fraction of the peers (misroute-to-accomplice, forged closest-node
sets, drops, chosen node ids), and every fraction is measured twice —

* ``bare``     — the legacy lookup path, which believes whatever a
  responder claims (self-reported node ids included);
* ``defended`` — node-id certification + disjoint-path lookups with
  majority settling + quarantine of provably-lying peers.

Reported per cell: correct-lookup rate (the answer matches the true
owner / true closest node), wrong-answer (eclipse) rate, failure rate,
and message cost per lookup — the defense's overhead is part of the
result, not a footnote.

The whole experiment is deterministic from its seed: the acceptance test
runs the headline cell twice and requires byte-identical results.  The
adversary's own decisions are hash-derived (zero RNG draws), so bare and
defended cells face the *same* attack pattern.

``REPRO_E19_SCALE=smoke`` shrinks the sweep for CI smoke runs.
"""

from __future__ import annotations

import os

from _reporting import report_table
from repro.adversary import AdversaryConfig, DefenseConfig
from repro.exceptions import LookupError_
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.kademlia import KademliaOverlay, kad_id, xor_distance

SMOKE = os.environ.get("REPRO_E19_SCALE", "").lower() == "smoke"
N = 24 if SMOKE else 64          # peers
KEYS = 8 if SMOKE else 20        # distinct keys looked up
LOOKUPS = 16 if SMOKE else 50    # lookups per cell
SEED = 2016
FRACTIONS = (0.0, 0.1, 0.2, 0.3)
MODES = ("bare", "defended")


def _peers():
    return [f"p{i}" for i in range(N)]


def _config(fraction: float, mode: str) -> AdversaryConfig:
    """One cell's adversary config.

    The fraction-0 rows keep the adversary installed (it compromises
    nobody) so the defended column prices the defense machinery itself —
    disjoint paths cost messages even when every peer is honest.
    """
    return AdversaryConfig(
        fraction=fraction,
        defense=DefenseConfig() if mode == "defended" else None)


def _honest_start(adv, j: int) -> str:
    """A deterministic honest query origin (victims run the lookups)."""
    base = (3 * j + 1) % N
    for off in range(N):
        name = f"p{(base + off) % N}"
        if adv is None or not adv.compromised(name):
            return name
    raise AssertionError("no honest peer left")


def _chord_cell(fraction: float, mode: str):
    fab = Fabric.create(seed=SEED, adversary=_config(fraction, mode))
    net = fab.network
    ring = ChordRing(fab, successor_list_size=4, replication=3)
    for name in _peers():
        ring.add_node(name)
    ring.build()
    adv = fab.adversary
    truth = {f"key{i}": ring.owner_of(f"key{i}") for i in range(KEYS)}
    net.stats.reset()
    correct = wrong = failed = 0
    for j in range(LOOKUPS):
        key = f"key{j % KEYS}"
        start = _honest_start(adv, j)
        try:
            res = ring.lookup(start, key)
        except LookupError_:
            failed += 1
            continue
        if res.owner == truth[key]:
            correct += 1
        else:
            wrong += 1
    return {
        "correct": correct / LOOKUPS,
        "eclipsed": wrong / LOOKUPS,
        "failed": failed / LOOKUPS,
        "msgs_per_lookup": net.stats.messages / LOOKUPS,
        "quarantined": len(adv.quarantine.banned)
        if adv is not None and adv.quarantine is not None else 0,
    }


def _kad_cell(fraction: float, mode: str):
    fab = Fabric.create(seed=SEED, adversary=_config(fraction, mode))
    net = fab.network
    overlay = KademliaOverlay(fab)
    for name in _peers():
        overlay.add_node(name)
    overlay.bootstrap()
    adv = fab.adversary
    names = list(overlay.nodes)
    truth = {}
    for i in range(KEYS):
        key = f"key{i}"
        tid = kad_id(key)
        truth[key] = min(names,
                         key=lambda n: xor_distance(kad_id(n), tid))
    net.stats.reset()
    correct = wrong = failed = 0
    for j in range(LOOKUPS):
        key = f"key{j % KEYS}"
        start = _honest_start(adv, j)
        try:
            res = overlay.lookup(start, key)
        except LookupError_:
            failed += 1
            continue
        if res.closest and res.closest[0] == truth[key]:
            correct += 1
        else:
            wrong += 1
    return {
        "correct": correct / LOOKUPS,
        "eclipsed": wrong / LOOKUPS,
        "failed": failed / LOOKUPS,
        "msgs_per_lookup": net.stats.messages / LOOKUPS,
        "quarantined": len(adv.quarantine.banned)
        if adv is not None and adv.quarantine is not None else 0,
    }


def test_chord_adversary_sweep(benchmark):
    """E19 main table: Chord lookup integrity vs. compromised fraction."""

    def sweep():
        rows = []
        cells = {}
        for fraction in FRACTIONS:
            for mode in MODES:
                cell = _chord_cell(fraction, mode)
                cells[(fraction, mode)] = cell
                rows.append((f"{fraction:.0%}", mode, cell["correct"],
                             cell["eclipsed"], cell["failed"],
                             cell["msgs_per_lookup"], cell["quarantined"]))
        return rows, cells

    rows, cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Fair weather: with nobody compromised, both modes answer correctly.
    assert cells[(0.0, "bare")]["correct"] == 1.0
    assert cells[(0.0, "defended")]["correct"] == 1.0
    # The attack works against the bare client: at 20% compromised the
    # correct-rate degrades materially below the defended one.
    assert cells[(0.2, "bare")]["correct"] <= \
        cells[(0.2, "defended")]["correct"] - 0.15
    # The acceptance bar: certification + disjoint paths + quarantine
    # hold >= 95% correct lookups at 20% adversarial peers.
    assert cells[(0.2, "defended")]["correct"] >= 0.95
    report_table(
        "E19_adversary",
        "E19 — Chord lookups under an active routing adversary",
        ["Compromised", "Mode", "Correct rate", "Eclipsed rate",
         "Failed rate", "Msgs/lookup", "Quarantined"],
        rows,
        note=("Bare lookups believe forged owner claims and misroutes, so "
              "the eclipse rate tracks the compromised fraction; certified "
              "node ids (id = H(identity material)) make positions "
              "unforgeable, disjoint paths out-vote certified-but-lying "
              "resolvers, and quarantine removes caught liars from route "
              "selection.  The defense pays its message premium openly — "
              "Msgs/lookup roughly multiplies by the path redundancy."))


def test_kademlia_adversary_sweep(benchmark):
    """E19b: the same sweep against the XOR-metric overlay."""

    def sweep():
        rows = []
        cells = {}
        for fraction in FRACTIONS:
            for mode in MODES:
                cell = _kad_cell(fraction, mode)
                cells[(fraction, mode)] = cell
                rows.append((f"{fraction:.0%}", mode, cell["correct"],
                             cell["eclipsed"], cell["failed"],
                             cell["msgs_per_lookup"], cell["quarantined"]))
        return rows, cells

    rows, cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert cells[(0.0, "bare")]["correct"] == 1.0
    assert cells[(0.0, "defended")]["correct"] == 1.0
    assert cells[(0.2, "bare")]["correct"] <= \
        cells[(0.2, "defended")]["correct"] - 0.15
    assert cells[(0.2, "defended")]["correct"] >= 0.95
    report_table(
        "E19b_kad_adversary",
        "E19b — Kademlia lookups under the same adversary",
        ["Compromised", "Mode", "Correct rate", "Eclipsed rate",
         "Failed rate", "Msgs/lookup", "Quarantined"],
        rows,
        note=("Kademlia's bare client sorts its shortlist by self-reported "
              "node ids, so forged closest-sets pull the lookup toward "
              "accomplices; certification pins every id to its identity "
              "material and the defended lookup unions the certified "
              "closest-sets of disjoint paths, re-sorted by true XOR "
              "distance."))


def test_headline_cell_deterministic(benchmark):
    """Two runs of the acceptance cell must be byte-identical (seeded)."""

    def run_twice():
        first = _chord_cell(0.2, "defended")
        second = _chord_cell(0.2, "defended")
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert repr(first) == repr(second)
