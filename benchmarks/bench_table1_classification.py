"""Experiment E1 — regenerate the paper's Table I from the implementation.

The paper's only exhibit is Table I: the classification of security
aspects/solutions into three categories.  This bench rebuilds that table
*from the code*: every row is backed by a concrete implementation in this
repository, and the test fails if any surveyed row lacks one.  The timing
component measures the registry construction + verification pass.
"""

from __future__ import annotations

from _reporting import report_table

#: Table I as printed in the paper: category -> list of aspect/solution rows.
PAPER_TABLE1 = {
    "Data privacy": [
        "Information substitution",
        "Symmetric key encryption",
        "Public key encryption",
        "Attribute based encryption",
        "Identity based broadcast encryption",
        "Hybrid encryption",
    ],
    "Data integrity": [
        "Integrity of data owner and data content",
        "Historical integrity",
        "Integrity of data relations",
    ],
    "Secure Social Search": [
        "Content privacy",
        "Privacy of searcher",
        "Privacy of searched data owner",
        "Trusted search result",
    ],
}


def build_implementation_registry():
    """Map every Table I row to the implementing module(s)/class(es)."""
    from repro.acl import SCHEME_REGISTRY
    from repro.acl import substitution, hummingbird, pad
    from repro.integrity import (envelope, hashchain, entanglement,
                                 history_tree, relations)
    from repro.search import (blind_subscribe, friend_routing, handlers,
                              index, proxy, trust, zkp_access)

    registry = {
        ("Data privacy", "Information substitution"): [
            substitution.VirtualPrivateProfile, substitution.NoybUser],
        ("Data privacy", "Symmetric key encryption"): [
            SCHEME_REGISTRY["symmetric"]],
        ("Data privacy", "Public key encryption"): [
            SCHEME_REGISTRY["public-key"]],
        ("Data privacy", "Attribute based encryption"): [
            SCHEME_REGISTRY["cp-abe"]],
        ("Data privacy", "Identity based broadcast encryption"): [
            SCHEME_REGISTRY["ibbe"]],
        ("Data privacy", "Hybrid encryption"): [
            SCHEME_REGISTRY["hybrid"], hummingbird.HummingbirdPublisher,
            pad.FrientegrityACL],
        ("Data integrity", "Integrity of data owner and data content"): [
            envelope.MessageEnvelope],
        ("Data integrity", "Historical integrity"): [
            hashchain.Timeline, entanglement.EntanglementGraph,
            history_tree.FortClient],
        ("Data integrity", "Integrity of data relations"): [
            relations.CommentablePost, envelope.MessageEnvelope],
        ("Secure Social Search", "Content privacy"): [
            blind_subscribe.BlindPublisher, index.SearchIndex],
        ("Secure Social Search", "Privacy of searcher"): [
            proxy.AliasProxy, friend_routing.Matryoshka,
            zkp_access.PseudonymousSearcher],
        ("Secure Social Search", "Privacy of searched data owner"): [
            handlers.DataOwner],
        ("Secure Social Search", "Trusted search result"): [
            trust.rank_results],
    }
    return registry


def verify_registry(registry):
    """Check the registry covers Table I exactly; return coverage rows."""
    rows = []
    for category, aspects in PAPER_TABLE1.items():
        for aspect in aspects:
            implementations = registry.get((category, aspect))
            assert implementations, f"Table I row unimplemented: {aspect}"
            names = ", ".join(
                getattr(impl, "__name__", str(impl))
                for impl in implementations)
            rows.append((category, aspect, names))
    # No phantom rows either: the registry matches the paper exactly.
    paper_keys = {(cat, asp) for cat, asps in PAPER_TABLE1.items()
                  for asp in asps}
    assert set(registry) == paper_keys
    return rows


def test_table1_regeneration(benchmark):
    """E1: every Table I row maps to working code in this repository."""
    rows = benchmark(lambda: verify_registry(build_implementation_registry()))
    assert len(rows) == 13
    report_table(
        "E1_table1", "E1 / Table I — classification regenerated from code",
        ["Category", "Security aspect / solution", "Implementation"],
        rows,
        note=("Matches the paper's Table I row-for-row; each entry names "
              "the class(es) implementing it."))
