"""Experiment E1 — regenerate the paper's Table I from the implementation.

The paper's only exhibit is Table I: the classification of security
aspects/solutions into three categories.  This bench rebuilds that table
*from the live registries* (:mod:`repro.stack.table1`): mechanism rows
come from ``repro.acl.SCHEME_REGISTRY`` and the module-level
``repro.stack.registry`` registrations — no hand-maintained list here —
and the test fails if any surveyed row lacks an implementation.  A scheme
added to ``SCHEME_REGISTRY`` (even by a test) appears in the next
regeneration with no edits to this file.  The timing component measures
the registry construction + verification pass.
"""

from __future__ import annotations

from _reporting import report_table

from repro.stack.table1 import PAPER_TABLE1, build_registry, verify_coverage


def test_table1_regeneration(benchmark):
    """E1: every Table I row maps to working code in this repository."""
    rows = benchmark(lambda: verify_coverage(build_registry()))
    assert len(rows) == sum(len(asps) for asps in PAPER_TABLE1.values())
    report_table(
        "E1_table1", "E1 / Table I — classification regenerated from code",
        ["Category", "Security aspect / solution", "Implementation"],
        rows,
        note=("Matches the paper's Table I row-for-row; each entry names "
              "the class(es) implementing it, read from the live "
              "mechanism registries (repro.stack.table1)."))
