"""Experiment E14 — durability and stale reads under churn + lying replicas.

The paper's warning that replica nodes are "another kind of service
provider in a small scale" has an operational consequence E12 did not
measure: a *reachable* replica is not necessarily an *honest* or
*current* one.  E14 stresses the replicated store with churn, state-losing
crashes, and holder-level Byzantine faults (StaleServe / Equivocate /
CorruptBlob), and compares three read paths over the same write history:

* ``bare``           — trust the first holder that answers (the legacy
  ``fetch_from_holders`` semantics);
* ``quorum``         — verified R-of-N reads, newest verified version
  wins, read-repair of lagging holders;
* ``quorum+repair``  — the same plus the anti-entropy daemon (Merkle
  summary sync + re-placement) on the simulator clock.

Reported per cell: read success (fresh, verified), accepted-stale and
accepted-corrupt rates (reads that *returned the wrong bytes* — the
failure mode availability numbers usually hide), end-of-run durability
(keys whose newest version still exists on some peer), and the detection
counters (``storage.byzantine_rejects`` / ``read_repairs`` /
``re_replications``).

Everything is deterministic from the seed; the acceptance tests run the
headline cell twice and require byte-identical results, including the
JSONL trace of a traced run.

``REPRO_E14_SCALE=smoke`` shrinks the sweep for CI smoke runs.
"""

from __future__ import annotations

import os

from _reporting import report_table
from repro.exceptions import (CryptoError, IntegrityError, OverlayError,
                              QuorumWriteError, StorageError)
from repro.fabric import Fabric
from repro.faults import (CorruptBlob, Crash, Equivocate, FaultPlan,
                          StaleServe)
from repro.obs.export import trace_to_jsonl
from repro.overlay.chord import ChordRing
from repro.overlay.churn import ExponentialOnOff, apply_churn_to_network
from repro.storage2 import (AntiEntropyDaemon, ReplicatedStore,
                            ReplicationConfig)

SMOKE = os.environ.get("REPRO_E14_SCALE", "").lower() == "smoke"
N = 24 if SMOKE else 64          # peers
KEYS = 6 if SMOKE else 18        # stored objects (each overwritten twice)
READS = 30 if SMOKE else 108     # probes during the chaos window
CALM_END = 100.0                 # puts happen fault-free before this
WINDOW_END = 1000.0              # chaos window [CALM_END, WINDOW_END)
CHURN_TICK = 15.0                # churn snapshot cadence on the sim clock
CHURN_WARMUP = 3000.0            # query the session model past its initial
#                                  transient (schedules start offline)
REPAIR_INTERVAL = 15.0
SEED = 2015

MODES = ("bare", "quorum", "quorum+repair")
#: one Byzantine holder per affected key, kinds cycled per key index
BYZ_KINDS = (StaleServe, Equivocate, CorruptBlob)


def _peers():
    return [f"p{i}" for i in range(N)]


def _key(i):
    return f"key{i}"


class _Cell:
    """One (churn x byzantine x mode) run over the shared chaos script."""

    def __init__(self, churn: str, byz_fraction: float, mode: str,
                 tracing: bool = False):
        self.mode = mode
        self.fabric = Fabric.create(seed=SEED, tracing=tracing)
        self.sim, self.net = self.fabric.sim, self.fabric.network
        self.ring = ChordRing(self.fabric, successor_list_size=8,
                              replication=3)
        for name in _peers():
            self.ring.add_node(name)
        self.ring.build()
        self.store = ReplicatedStore(
            self.ring, ReplicationConfig(
                n=3, r=2, w=2,
                repair_interval=(REPAIR_INTERVAL if mode == "quorum+repair"
                                 else None)))
        self.expected = {}  # key -> newest successfully written version
        self.ok = 0
        self.failed = 0
        self.accepted_stale = 0
        self.accepted_corrupt = 0
        self._write_all(t=0.0)  # calm phase: every key placed fault-free
        self._install_chaos(churn, byz_fraction)
        if mode == "quorum+repair":
            AntiEntropyDaemon(self.store, REPAIR_INTERVAL).start()
        self.net.stats.reset()

    # -- the scripted chaos ------------------------------------------------------

    def _install_chaos(self, churn: str, byz_fraction: float) -> None:
        plan = FaultPlan(seed=SEED, horizon=WINDOW_END)
        byz_keys = int(round(byz_fraction * KEYS))
        for i in range(byz_keys):
            # the second replica of the key's original placement lies
            # about that key; owner and the other replica stay honest
            # (1-of-3 Byzantine per affected key)
            key = _key(i)
            liar = self.store.placements[key][1]
            kind = BYZ_KINDS[i % len(BYZ_KINDS)]
            plan.add(kind(holders=frozenset({liar}), start=CALM_END,
                          keys=frozenset({key})))
        if churn in ("churn", "churn+crash"):
            model = ExponentialOnOff(
                mean_online=900.0, mean_offline=450.0, seed=SEED,
                horizon=CHURN_WARMUP + WINDOW_END)
            t = CALM_END
            while t < WINDOW_END:
                self.sim.schedule_at(
                    t, lambda t=t: apply_churn_to_network(
                        self.net, model, CHURN_WARMUP + t))
                t += CHURN_TICK
        if churn == "churn+crash":
            # key0's holders are wiped one by one AFTER the last rewrite:
            # nothing re-stores the newest version, so without
            # re-placement the third crash destroys the last copy
            for k, holder in enumerate(self.store.placements[_key(0)]):
                plan.add(Crash(holder, at=725.0 + 65.0 * k,
                               restart_at=None, lose_state=True))
        self.net.install_faults(plan)

    # -- the shared workload ------------------------------------------------------

    def _online_peer(self, offset: int, exclude=()):
        for j in range(N):
            name = f"p{(offset + j) % N}"
            if name not in exclude and self.net.is_online(name):
                return name
        raise OverlayError("no peer online")

    def _write_all(self, t: float) -> None:
        for i in range(KEYS):
            key = _key(i)
            payload = f"{key}@{t:.0f}".encode()
            try:
                author = self._online_peer(3 * i + 1)
                record = self.store.put(author, key, payload)
                self.expected[key] = record.version
            except (QuorumWriteError, StorageError, OverlayError):
                pass  # a failed overwrite leaves the old version current

    def _read(self, j: int) -> None:
        key = _key(j % KEYS)
        reader = self._online_peer(2 * j + 1,
                                   exclude=self.store.placements[key])
        expected = self.expected[key]
        if self.mode == "bare":
            try:
                blob = self.store.read_any(reader, key)
            except (StorageError, OverlayError):
                self.failed += 1
                return
            try:
                record = self.store._verify(key, blob)
            except (IntegrityError, CryptoError):
                self.accepted_corrupt += 1  # garbage handed to the app
                return
            if record.version < expected:
                self.accepted_stale += 1
            else:
                self.ok += 1
            return
        try:
            result = self.store.get(reader, key)
        except (StorageError, IntegrityError, OverlayError):
            self.failed += 1
            return
        if result.version < expected:
            self.accepted_stale += 1  # the quorum let old state through
        else:
            self.ok += 1

    def run(self) -> dict:
        """Reads spread across the window, overwrites at 1/3 and 2/3."""
        rewrites = {CALM_END + (WINDOW_END - CALM_END) / 3.0,
                    CALM_END + 2.0 * (WINDOW_END - CALM_END) / 3.0}
        events = sorted(
            [(CALM_END + 5.0 + j * (WINDOW_END - CALM_END - 10.0) / READS,
              "read", j) for j in range(READS)]
            + [(t, "write", None) for t in rewrites])
        for t, op, j in events:
            self.sim.run(until=t)
            if op == "write":
                self._write_all(t)
            else:
                self._read(j)
        self.sim.run(until=WINDOW_END)
        return self._summary()

    def _durability(self) -> float:
        """Keys whose newest version survives on *some* peer's disk."""
        alive = 0
        for key, version in self.expected.items():
            for node in self.ring.nodes.values():
                blob = node.store.get(key)
                if blob is None:
                    continue
                try:
                    record = self.store._verify(key, blob)
                except (IntegrityError, CryptoError):
                    continue
                if record.version == version:
                    alive += 1
                    break
        return alive / len(self.expected)

    def _summary(self) -> dict:
        metrics = self.fabric.metrics
        return {
            "success": self.ok / READS,
            "stale": self.accepted_stale / READS,
            "corrupt": self.accepted_corrupt / READS,
            "failed": self.failed / READS,
            "durability": self._durability(),
            "byz_rejects": metrics.get_counter_value(
                "storage.byzantine_rejects"),
            "read_repairs": metrics.get_counter_value(
                "storage.read_repairs"),
            "re_replications": metrics.get_counter_value(
                "storage.re_replications"),
            "repair_pulls": metrics.get_counter_value(
                "storage.repair_pulls"),
            "msgs_per_read": self.net.stats.messages / READS,
        }


def _run_cell(churn: str, byz: float, mode: str, tracing: bool = False):
    cell = _Cell(churn, byz, mode, tracing=tracing)
    summary = cell.run()
    return (cell, summary) if tracing else summary


CELLS = (
    ("calm", 0.0),
    ("calm", 1.0),
    ("churn", 0.0),
    ("churn", 1.0),
    ("churn+crash", 1.0),   # the headline chaos cell
)


def test_durability_vs_mode(benchmark):
    """E14 main table: who returns wrong bytes, who loses data."""

    def sweep():
        cells = {}
        for churn, byz in CELLS:
            for mode in MODES:
                cells[(churn, byz, mode)] = _run_cell(churn, byz, mode)
        return cells

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    chaos = ("churn+crash", 1.0)
    # Verification is absolute: no quorum-mode read ever returns corrupt
    # bytes, in any cell.  Staleness is different — a StaleServe holder
    # replays *validly signed* old state, so quorum-only can still meet R
    # with stale copies when the fresh holders are churned out; only the
    # anti-entropy daemon closes that window.
    for (churn, byz, mode), cell in cells.items():
        if mode != "bare":
            assert cell["corrupt"] == 0.0, (churn, byz, mode)
        if mode == "quorum+repair":
            assert cell["stale"] == 0.0, (churn, byz, mode)
    # The acceptance bar: self-healing quorum reads stay >= 95% available
    # under the full chaos plan while never returning wrong bytes...
    assert cells[chaos + ("quorum+repair",)]["success"] >= 0.95
    # ...where the bare path returns stale/corrupt data (or just fails).
    bare = cells[chaos + ("bare",)]
    assert bare["stale"] + bare["corrupt"] > 0.0
    # Repair out-survives bare storage: key0's copies are crashed away
    # one by one, and only re-placement stays ahead of the loss.
    assert cells[chaos + ("quorum+repair",)]["durability"] > \
        bare["durability"]
    assert cells[chaos + ("quorum+repair",)]["durability"] == 1.0
    # Detection is visible, not silent: lying holders show up in the
    # repro.obs counters under chaos.
    assert cells[chaos + ("quorum+repair",)]["byz_rejects"] > 0
    assert cells[chaos + ("quorum+repair",)]["re_replications"] > 0

    report_table(
        "E14_durability",
        "E14 — read integrity + durability: bare vs quorum vs quorum+repair",
        ["Chaos", "Byz frac", "Mode", "Fresh reads", "Stale acc.",
         "Corrupt acc.", "Failed", "Durability"],
        [(churn, byz, mode, cell["success"], cell["stale"],
          cell["corrupt"], cell["failed"], cell["durability"])
         for (churn, byz, mode), cell in cells.items()],
        note=("'Stale/Corrupt acc.' are reads that RETURNED wrong bytes. "
              "The bare first-responder path converts Byzantine holders "
              "into silent wrong answers; verified quorum reads convert "
              "them into rejections, and the anti-entropy daemon converts "
              "the resulting availability gap back into fresh reads "
              "(and keeps the last copy alive under state-losing "
              "crashes)."))

    report_table(
        "E14b_detection_counters",
        "E14b — what the self-healing machinery did (quorum modes)",
        [" Chaos", "Byz frac", "Mode", "Byz rejects", "Read repairs",
         "Re-replications", "Repair pulls", "Msgs/read"],
        [(churn, byz, mode, cell["byz_rejects"], cell["read_repairs"],
          cell["re_replications"], cell["repair_pulls"],
          cell["msgs_per_read"])
         for (churn, byz, mode), cell in cells.items() if mode != "bare"],
        note=("storage.byzantine_rejects / read_repairs / re_replications "
              "are MetricsRegistry counters (repro.obs), so operators see "
              "replica misbehaviour as first-class telemetry rather than "
              "as unexplained staleness."))


def test_headline_cell_deterministic(benchmark):
    """Two runs of the chaos cell must be byte-identical (seeded)."""

    def run_twice():
        first = _run_cell("churn+crash", 1.0, "quorum+repair")
        second = _run_cell("churn+crash", 1.0, "quorum+repair")
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert repr(first) == repr(second)


def test_trace_determinism(benchmark):
    """The traced chaos cell exports a byte-identical JSONL both runs."""

    def run_twice():
        cell1, _ = _run_cell("churn", 1.0, "quorum+repair", tracing=True)
        cell2, _ = _run_cell("churn", 1.0, "quorum+repair", tracing=True)
        return (trace_to_jsonl(cell1.fabric.tracer),
                trace_to_jsonl(cell2.fabric.tracer))

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert first == second
    assert "storage2.get" in first and "storage2.repair" in first
