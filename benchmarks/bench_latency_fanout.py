"""Experiment E17 — fan-out latency: serial sum vs concurrent critical path.

Every fan-out in the reproduction (quorum probes, hedged replica
fetches, batched feed fetches) historically *summed* its round trips,
because the accounted-RPC shortcut has no notion of overlap.  A real
client overlaps independent requests and pays roughly the slowest one —
which is precisely the latency the paper's availability-vs-cost
trade-off (replication, quorum privacy) is priced against.  E17 runs the
same workloads twice, ``concurrent=False`` (the legacy accounting,
byte-identical to every committed table) and ``concurrent=True`` (the
:class:`SimFuture` kernel's critical-path accounting), and reports the
gap:

* **quorum reads** (R=2 of N=3 verified) — the headline gate: identical
  messages and bytes in both modes, concurrent latency strictly below
  sequential (expected roughly R×: the read settles at the 2nd verified
  response instead of paying all 3 probes);
* **hedged lookups** under loss — true staggered hedging vs sequential
  probing (message counts may differ: hedging launches while earlier
  attempts are in flight);
* **cold/warm batched feeds** — the feed inherits the backend's
  overlapped holder probes at identical message counts.

Determinism: the concurrent cells are re-run and must settle
byte-identically (settle order is fixed by completion-time then issue
sequence).

``REPRO_E17_SCALE=smoke`` shrinks the sweep for CI smoke runs.
"""

from __future__ import annotations

import os
import statistics

from _reporting import report_table
from repro.cache import CacheConfig
from repro.dosn import DosnConfig, DosnNetwork
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.network import SimNode
from repro.storage2 import ReplicatedStore, ReplicationConfig
from repro.workloads import generate_posts, social_graph

SMOKE = os.environ.get("REPRO_E17_SCALE", "").lower() == "smoke"
SEED = 2017

N = 24 if SMOKE else 64          # chord peers (quorum cells)
KEYS = 8 if SMOKE else 24        # stored objects
READS = 16 if SMOKE else 48      # quorum reads measured
TRIALS = 12 if SMOKE else 40     # hedged lookups measured
USERS = 120 if SMOKE else 300    # feed cells
POSTS = 120 if SMOKE else 300
READERS = 8 if SMOKE else 20


def _percentiles(values):
    ordered = sorted(values)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


# -- quorum reads (the headline cell) ------------------------------------------


def _quorum_cell(concurrent: bool):
    """One quorum-read workload; returns (stats summary, elapsed list)."""
    fab = Fabric.create(seed=SEED, concurrent=concurrent)
    ring = ChordRing(fab, successor_list_size=8, replication=3)
    for i in range(N):
        ring.add_node(f"p{i}")
    ring.build()
    store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
    for i in range(KEYS):
        store.put(f"p{(3 * i + 1) % N}", f"key{i}", b"blob-%d" % i)
    fab.network.stats.reset()
    elapsed = []
    for j in range(READS):
        result = store.get(f"p{(2 * j + 1) % N}", f"key{j % KEYS}")
        elapsed.append(result.elapsed)
    return fab.network.stats.summary(), elapsed


def test_quorum_read_critical_path(benchmark):
    """E17 headline: concurrent quorum reads pay the critical path."""

    def run():
        serial_stats, serial_elapsed = _quorum_cell(concurrent=False)
        conc_stats, conc_elapsed = _quorum_cell(concurrent=True)
        return serial_stats, serial_elapsed, conc_stats, conc_elapsed

    serial_stats, serial_elapsed, conc_stats, conc_elapsed = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # Identical wire cost: concurrency changes latency attribution only.
    assert serial_stats["messages"] == conc_stats["messages"], (
        "concurrent quorum reads changed the message count")
    assert serial_stats["bytes"] == conc_stats["bytes"], (
        "concurrent quorum reads changed the byte count")
    # The acceptance gate: strictly below, read by read and in aggregate.
    assert all(c <= s for c, s in zip(conc_elapsed, serial_elapsed))
    serial_mean = statistics.mean(serial_elapsed)
    conc_mean = statistics.mean(conc_elapsed)
    assert conc_mean < serial_mean, (
        f"concurrent mean {conc_mean:.4f}s not below serial "
        f"{serial_mean:.4f}s")
    speedup = serial_mean / conc_mean

    rows = []
    for label, stats_, elapsed in (("sequential", serial_stats,
                                    serial_elapsed),
                                   ("concurrent", conc_stats,
                                    conc_elapsed)):
        p50, p99 = _percentiles(elapsed)
        rows.append([label, f"{statistics.mean(elapsed):.4f}",
                     f"{p50:.4f}", f"{p99:.4f}",
                     f"{stats_['messages'] / READS:.1f}",
                     f"{stats_['bytes'] / READS:.0f}"])
    report_table(
        "E17_latency_fanout",
        "E17 — verified quorum reads (R=2 of N=3): sum vs critical path",
        ["Mode", "Mean lat (s)", "p50 (s)", "p99 (s)", "Msgs/read",
         "Bytes/read"],
        rows,
        note=(f"Same seed, same probes, same wire cost; the concurrent "
              f"kernel settles each read at the 2nd verified response "
              f"instead of summing all 3 probes ({speedup:.1f}x lower "
              "mean latency).  Read-repair pushes are background either "
              "way."))


def test_concurrent_settle_deterministic(benchmark):
    """E17b: two concurrent runs settle byte-identically (seeded)."""

    def run_twice():
        return _quorum_cell(concurrent=True), _quorum_cell(concurrent=True)

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert repr(first) == repr(second)


# -- hedged lookups under loss --------------------------------------------------


def _hedged_cell(concurrent: bool):
    fab = Fabric.create(seed=SEED + 1, loss_rate=0.2, resilient=True,
                        concurrent=concurrent)
    names = [f"h{i}" for i in range(12)]
    for name in names:
        fab.network.register(SimNode(name))
    for i in (2, 5):
        fab.network.nodes[f"h{i}"].online = False
    fab.network.stats.reset()
    elapsed = []
    successes = 0
    for j in range(TRIALS):
        dsts = [names[(j + k) % len(names)] for k in range(3)]
        ok, _winner, t = fab.channel.hedged(f"r{j}", dsts,
                                            kind="replica_fetch")
        successes += 1 if ok else 0
        elapsed.append(t)
    return fab.network.stats.summary(), elapsed, successes


def test_hedged_lookup_latency(benchmark):
    """E17c: true staggered hedging vs sequential replica probing."""

    def run():
        return _hedged_cell(concurrent=False), _hedged_cell(concurrent=True)

    (serial_stats, serial_elapsed, serial_ok), \
        (conc_stats, conc_elapsed, conc_ok) = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    serial_mean = statistics.mean(serial_elapsed)
    conc_mean = statistics.mean(conc_elapsed)
    # Hedging may issue a different number of probes (that is the point:
    # launches overlap in-flight attempts), so the gate here is latency
    # only — on success the winner's completion offset bounds the cost.
    assert conc_mean < serial_mean, (
        f"hedged concurrent mean {conc_mean:.4f}s not below serial "
        f"{serial_mean:.4f}s")
    rows = []
    for label, stats_, elapsed, ok_count in (
            ("sequential", serial_stats, serial_elapsed, serial_ok),
            ("concurrent", conc_stats, conc_elapsed, conc_ok)):
        p50, p99 = _percentiles(elapsed)
        rows.append([label, f"{statistics.mean(elapsed):.4f}",
                     f"{p50:.4f}", f"{p99:.4f}",
                     f"{ok_count}/{TRIALS}",
                     stats_["hedges"],
                     f"{stats_['messages'] / TRIALS:.1f}"])
    report_table(
        "E17c_hedged",
        "E17c — hedged replica lookups under 20% loss",
        ["Mode", "Mean lat (s)", "p50 (s)", "p99 (s)", "Success",
         "Hedges", "Msgs/lookup"],
        rows,
        note=("Sequential mode probes one candidate at a time and sums "
              "every attempt; concurrent mode staggers launches every "
              "hedge_delay=0.05s, stops launching once an earlier "
              "request has won, and pays the winner's completion "
              "offset."))


# -- batched feeds ---------------------------------------------------------------


def _feed_once(net, reader):
    before_msgs = net.network.stats.messages
    before_spans = len(net.tracer.spans)
    report = net.feed(reader, limit_per_friend=2)
    assert report.clean
    messages = net.network.stats.messages - before_msgs
    cost = sum(span.cost for span in net.tracer.spans[before_spans:]
               if span.parent_id is None)
    return messages, cost


def _feed_cell(concurrent: bool):
    graph = social_graph(USERS, kind="ws", seed=SEED)
    net = DosnNetwork(config=DosnConfig(
        architecture="dht", seed=SEED, tracing=True,
        cache=CacheConfig(capacity_per_reader=0),  # batched, uncached
        concurrent=concurrent))
    for node in graph.nodes:
        net.add_user(str(node))
    net.apply_social_graph(graph)
    for post in generate_posts(graph, POSTS, seed=SEED + 1):
        net.post(post.author, post.text)
    readers = sorted(net.users)[:READERS]
    cold = {"msgs": [], "cost": []}
    warm = {"msgs": [], "cost": []}
    for phase in (cold, warm):
        for reader in readers:
            messages, cost = _feed_once(net, reader)
            phase["msgs"].append(messages)
            phase["cost"].append(cost)
    return cold, warm


def test_feed_fanout_latency(benchmark):
    """E17d: batched feeds inherit the backend's overlapped fan-out."""

    def run():
        return _feed_cell(concurrent=False), _feed_cell(concurrent=True)

    (serial_cold, serial_warm), (conc_cold, conc_warm) = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # The batched probe plan is mode-independent: identical messages.
    assert serial_cold["msgs"] == conc_cold["msgs"]
    assert serial_warm["msgs"] == conc_warm["msgs"]
    serial_p50, _ = _percentiles(serial_warm["cost"])
    conc_p50, _ = _percentiles(conc_warm["cost"])
    assert conc_p50 < serial_p50, (
        f"warm concurrent feed p50 {conc_p50:.4f}s not below serial "
        f"{serial_p50:.4f}s")
    rows = []
    for label, cold, warm in (("sequential", serial_cold, serial_warm),
                              ("concurrent", conc_cold, conc_warm)):
        cold_p50, cold_p99 = _percentiles(cold["cost"])
        warm_p50, warm_p99 = _percentiles(warm["cost"])
        rows.append([label,
                     f"{statistics.mean(cold['msgs']):.1f}",
                     f"{statistics.mean(warm['msgs']):.1f}",
                     f"{cold_p50:.4f}", f"{cold_p99:.4f}",
                     f"{warm_p50:.4f}", f"{warm_p99:.4f}"])
    report_table(
        "E17d_feed_fanout",
        "E17d — batched feed assembly: virtual cost per feed",
        ["Mode", "Cold msg/feed", "Warm msg/feed", "Cold p50 s",
         "Cold p99 s", "Warm p50 s", "Warm p99 s"],
        rows,
        note=("Identical messages per feed in both modes; the batched "
              "fetch's per-holder probes overlap under the concurrent "
              "model, so a warm feed costs roughly its slowest holder "
              "group instead of the sum over groups."))
