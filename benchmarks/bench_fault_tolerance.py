"""Experiment E12 — fault tolerance: availability under injected faults.

Paper claim (Section I): decentralization trades the provider's
reliability for peer unreliability — "users, their friends, or other
peers need to be online for better availability".  The paper states the
trade-off qualitatively; E12 measures it.  A Chord ring is stressed with
a scripted :class:`repro.faults.FaultPlan` (a network partition,
correlated 20-40 % loss bursts, peer crashes with state loss, and a slow
link), and the same read workload is run under three resilience
policies:

* ``bare``      — raw ``SimNetwork.rpc`` (the fair-weather baseline);
* ``retry``     — :class:`ReliableChannel` with bounded retries +
  exponential backoff, hedged replica reads on routing failure;
* ``retry+cb``  — the same plus per-destination circuit breakers.

Reported per cell: lookup (end-to-end fetch) success rate, routing
latency p50/p99, and message overhead per query — plus the resilience
counters (retries, breaker trips, hedges, fault-attributed drops).

The whole experiment is deterministic from its seed: the acceptance test
runs the headline cell twice and requires byte-identical results.

``REPRO_E12_SCALE=smoke`` shrinks the sweep for CI smoke runs.
"""

from __future__ import annotations

import os
import statistics

from _reporting import report_table
from repro.exceptions import LookupError_, StorageError
from repro.fabric import Fabric
from repro.faults import (CircuitBreaker, Crash, FaultPlan, LossBurst,
                          Partition, RetryPolicy, SlowLink)
from repro.overlay.chord import ChordRing
from repro.overlay.kademlia import KademliaOverlay

SMOKE = os.environ.get("REPRO_E12_SCALE", "").lower() == "smoke"
N = 32 if SMOKE else 96          # peers
KEYS = 10 if SMOKE else 30       # stored objects
QUERIES = 16 if SMOKE else 60    # reads during the fault window
CALM_END = 100.0                 # before this: fault-free build + put phase
FAULT_END = 700.0                # faults active in [CALM_END, FAULT_END)

POLICIES = ("bare", "retry", "retry+cb")
SEED = 2015


def _peers():
    return [f"p{i}" for i in range(N)]


def _make_plan(burst_rate: float, partitioned: bool) -> FaultPlan:
    """The scripted chaos timeline for one cell."""
    plan = FaultPlan(seed=SEED, horizon=FAULT_END)
    if burst_rate > 0:
        plan.add(LossBurst(rate=burst_rate, mean_burst=40.0, mean_gap=50.0,
                           start=CALM_END, end=FAULT_END))
    if partitioned:
        # every even-indexed peer ends up on the far side of the cut
        far_side = frozenset(f"p{i}" for i in range(0, N, 2))
        plan.add(Partition(groups=[far_side], start=CALM_END, end=FAULT_END))
    plan.add(SlowLink(factor=4.0, peers=frozenset({"p3", "p5"}),
                      start=CALM_END, end=FAULT_END))
    # crashes with state loss; p7 never comes back
    plan.add(Crash("p9", at=CALM_END + 50.0, restart_at=CALM_END + 250.0))
    plan.add(Crash("p7", at=CALM_END + 120.0, restart_at=None))
    return plan


def _chord_cell(burst_rate: float, partitioned: bool, policy: str):
    """Run one (fault intensity x policy) cell; returns the metrics row."""
    breaker = CircuitBreaker(failure_threshold=4, cooldown=30.0) \
        if policy == "retry+cb" else None
    fab = Fabric.create(
        seed=SEED, faults=_make_plan(burst_rate, partitioned),
        retry=RetryPolicy(max_attempts=4) if policy != "bare" else None,
        breaker=breaker)
    sim, net = fab.sim, fab.network
    ring = ChordRing(fab, successor_list_size=8, replication=3)
    for name in _peers():
        ring.add_node(name)
    ring.build()
    for i in range(KEYS):
        ring.put(f"p{(3 * i + 1) % N}", f"key{i}", b"blob")
    net.stats.reset()

    successes = 0
    latencies = []
    step = (FAULT_END - CALM_END - 10.0) / QUERIES
    for j in range(QUERIES):
        sim.run(until=CALM_END + 5.0 + j * step)
        # query from the odd-indexed (near) side, skipping crashed peers
        start = f"p{(2 * j + 1) % N | 1}"
        if not net.is_online(start):
            start = f"p{(2 * j + 3) % N | 1}"
        try:
            _, result = ring.get(start, f"key{j % KEYS}")
            successes += 1
            latencies.append(result.rtt)
        except (LookupError_, StorageError):
            pass
    sim.run(until=FAULT_END)
    # summary() rolls every failure cause together — timeouts AND
    # corrupted responses — so the resilience table cannot silently
    # under-count a cause (this plan injects no corruption; the column
    # proving that is part of the accounting).
    summary = net.stats.summary()
    p50 = statistics.median(latencies) if latencies else float("nan")
    p99 = (sorted(latencies)[max(0, int(0.99 * len(latencies)) - 1)]
           if latencies else float("nan"))
    return {
        "success": successes / QUERIES,
        "p50": p50,
        "p99": p99,
        "msgs_per_query": summary["messages"] / QUERIES,
        "retries": summary["retries"],
        "breaker_trips": summary["breaker_trips"],
        "fastfails": summary["breaker_fastfails"],
        "hedges": summary["hedges"],
        "fault_drops": summary["fault_drops"],
        "timeouts": summary["timeouts"],
        "corrupted": summary["corrupted"],
        "failures": summary["failures"],
        "shed": summary["shed"],
        "deadline_expired": summary["deadline_expired"],
        "misrouted": summary["misrouted"],
        "forged_routes": summary["forged_routes"],
    }


def test_fault_intensity_vs_policy(benchmark):
    """E12 main table: success/latency/overhead per fault level x policy."""

    def sweep():
        rows = []
        cells = {}
        for burst_rate, partitioned, label in (
                (0.0, False, "calm"),
                (0.2, False, "burst 20%"),
                (0.4, False, "burst 40%"),
                (0.2, True, "partition + burst 20%"),
                (0.4, True, "partition + burst 40%")):
            for policy in POLICIES:
                cell = _chord_cell(burst_rate, partitioned, policy)
                cells[(label, policy)] = cell
                rows.append((label, policy, cell["success"], cell["p50"],
                             cell["p99"], cell["msgs_per_query"]))
        return rows, cells

    rows, cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Fair weather: resilience machinery must not cost availability.
    assert cells[("calm", "bare")]["success"] == 1.0
    assert cells[("calm", "retry")]["success"] == 1.0
    # The paper's availability claim, quantified: under partition + 20%
    # burst loss the resilient channel at least doubles success rate.
    headline = ("partition + burst 20%", )
    bare = cells[(headline[0], "bare")]["success"]
    resilient = cells[(headline[0], "retry+cb")]["success"]
    assert resilient >= 2 * max(bare, 1e-9) or (bare == 0 and resilient > 0.5)
    # Resilience is not free: retries cost messages under loss.
    assert cells[("burst 20%", "retry")]["msgs_per_query"] > \
        cells[("burst 20%", "bare")]["msgs_per_query"] * 0.9
    report_table(
        "E12_fault_tolerance",
        "E12 — Chord availability under injected faults",
        ["Faults", "Policy", "Success rate", "p50 lat (s)", "p99 lat (s)",
         "Msgs/query"],
        rows,
        note=("The fair-weather fabric hides the paper's core trade-off; "
              "with partitions and correlated loss injected, bare RPC "
              "availability collapses while retries + circuit breakers + "
              "hedged replica reads recover most of it, paying a bounded "
              "message premium."))

    counter_rows = [
        (label, policy, cell["retries"], cell["breaker_trips"],
         cell["fastfails"], cell["hedges"], cell["fault_drops"],
         cell["timeouts"], cell["corrupted"], cell["shed"],
         cell["deadline_expired"], cell["misrouted"],
         cell["forged_routes"])
        for (label, policy), cell in cells.items() if policy != "bare"]
    report_table(
        "E12b_resilience_counters",
        "E12b — what the resilience layer did (per cell)",
        ["Faults", "Policy", "Retries", "Breaker trips", "Fast-fails",
         "Hedged reads", "Fault drops", "Timeouts", "Corrupted", "Shed",
         "DeadlineExpired", "Misrouted", "ForgedRoutes"],
        counter_rows,
        note=("Breaker fast-fails replace repeated timeouts against dead "
              "destinations; hedged reads are what keeps partitioned "
              "content reachable via replicas.  Corrupted counts garbled "
              "responses (zero here: this plan injects no corruption), "
              "Shed / DeadlineExpired count overload rejections and "
              "expired op budgets (zero here: no OverloadConfig is "
              "installed), and Misrouted / ForgedRoutes count adversarial "
              "routing events (zero here: no AdversaryConfig is "
              "installed) so every failure cause in "
              "NetworkStats.summary() is accounted."))


def test_headline_cell_deterministic(benchmark):
    """Two runs of the acceptance cell must be byte-identical (seeded)."""

    def run_twice():
        first = _chord_cell(0.2, True, "retry+cb")
        second = _chord_cell(0.2, True, "retry+cb")
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert repr(first) == repr(second)


def test_kademlia_burst_loss(benchmark):
    """E12c: Kademlia's shortlist + retries under correlated loss."""

    def sweep():
        rows = []
        for burst_rate in (0.2, 0.4):
            for policy in ("bare", "retry"):
                fab = Fabric.create(
                    seed=SEED,
                    faults=_make_plan(burst_rate, partitioned=False),
                    retry=None if policy == "bare"
                    else RetryPolicy(max_attempts=4))
                sim, net = fab.sim, fab.network
                overlay = KademliaOverlay(fab)
                for name in _peers():
                    overlay.add_node(name)
                overlay.bootstrap()
                for i in range(KEYS):
                    overlay.put(f"p{(3 * i + 1) % N}", f"key{i}", b"blob")
                net.stats.reset()
                successes = 0
                step = (FAULT_END - CALM_END - 10.0) / QUERIES
                for j in range(QUERIES):
                    sim.run(until=CALM_END + 5.0 + j * step)
                    start = f"p{(2 * j + 1) % N | 1}"
                    if not net.is_online(start):
                        start = f"p{(2 * j + 3) % N | 1}"
                    try:
                        overlay.get(start, f"key{j % KEYS}")
                        successes += 1
                    except (LookupError_, StorageError):
                        pass
                rows.append((burst_rate, policy, successes / QUERIES,
                             net.stats.messages / QUERIES))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_cell = {(r[0], r[1]): r[2] for r in rows}
    assert by_cell[(0.2, "retry")] >= by_cell[(0.2, "bare")]
    report_table(
        "E12c_kademlia", "E12c — Kademlia under correlated loss bursts",
        ["Burst loss", "Policy", "Success rate", "Msgs/query"],
        rows,
        note=("Kademlia's alpha-parallel shortlist already routes around "
              "unresponsive peers, so bare degrades more gracefully than "
              "Chord; retries close the remaining gap at extra message "
              "cost."))
