"""Experiment E13 — where does a social operation's time actually go?

The earlier experiments report end-to-end costs (E5 lookup RTTs, E2
crypto op counts); E13 decomposes them.  A traced DOSN run attributes
every accounted virtual second of a post/feed workload to a phase —
overlay route hops, storage fetch/replication RPCs, and the crypto
stages (encrypt/sign on write, decrypt/verify on read) — using the real
span tree from :mod:`repro.obs`, not estimates.

Acceptance gates baked into the tests:

* the breakdown covers all four headline phases with non-zero cost;
* two runs at the same seed serialize **byte-identical** JSONL traces
  (the observability layer is a pure function of the seed);
* the no-op tracer run does the same workload without recording a span
  (the disabled path stays near-zero-cost).

``REPRO_E13_SCALE=smoke`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import os

from _reporting import report_observability, report_table
from repro.dosn import DosnConfig, DosnNetwork
from repro.obs.export import cost_breakdown, trace_to_jsonl
from repro.workloads import generate_posts, social_graph

SMOKE = os.environ.get("REPRO_E13_SCALE", "").lower() == "smoke"
USERS = 16 if SMOKE else 48
POSTS = 20 if SMOKE else 80
SEED = 131


def _traced_workload(tracing=True):
    """Run the standard social workload on a traced DHT network."""
    graph = social_graph(USERS, kind="ws", seed=SEED)
    net = DosnNetwork(config=DosnConfig(
        architecture="dht", seed=SEED, replication=2, tracing=tracing))
    for node in graph.nodes:
        net.add_user(str(node))
    net.apply_social_graph(graph)
    for post in generate_posts(graph, POSTS, seed=SEED + 1):
        net.post(post.author, post.text)
    for reader in sorted(net.users)[: USERS // 4]:
        net.feed(reader, limit_per_friend=2)
    return net


def test_cost_breakdown(benchmark):
    """E13: per-phase cost of the post/feed workload, from real spans."""

    def run():
        net = _traced_workload()
        _, rows = cost_breakdown(net.tracer)
        return net, rows

    net, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_phase = {row[0]: row for row in rows}
    for phase in ("route hops", "storage fetch", "decrypt", "verify",
                  "encrypt", "sign"):
        assert by_phase[phase][1] > 0, f"no spans attributed to {phase}"
        assert by_phase[phase][2] > 0, f"zero cost attributed to {phase}"
    # Routing dominates storage I/O in a log(n)-hop DHT.
    assert by_phase["route hops"][2] > by_phase["storage fetch"][2]
    report_observability(
        "E13_breakdown",
        "E13 — virtual-time breakdown of the DHT post/feed workload",
        net.tracer, metrics=None,
        note=("Route hops vs storage fetch come from net.rpc spans "
              "(classified by message kind); crypto phases carry the "
              "deterministic CPU-cost model of repro.dosn.user."))


def test_trace_determinism(benchmark):
    """E13b: the trace is a pure function of the seed — byte-identical."""

    def run_twice():
        first = trace_to_jsonl(_traced_workload().tracer)
        second = trace_to_jsonl(_traced_workload().tracer)
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert first == second
    assert first.count("\n") > (50 if SMOKE else 500)
    report_table(
        "E13b_determinism", "E13b — trace determinism at a fixed seed",
        ["Runs compared", "Spans", "JSONL bytes", "Identical"],
        [[2, first.count("\n"), len(first.encode()), first == second]],
        note="wall_ns fields are segregated and excluded from the diff.")


def test_noop_tracer_records_nothing(benchmark):
    """E13c: tracing off = the default no-op tracer, zero spans stored."""

    def run():
        return _traced_workload(tracing=False)

    net = benchmark.pedantic(run, rounds=1, iterations=1)
    assert net.tracer.enabled is False
    assert net.tracer.spans == []
