"""Experiment E9 — the paper's open problems, measured (Section VI).

The survey closes with problems it declares open.  For each we run the
attack (and the best cited mitigation) and record how bad the gap is —
turning the paper's qualitative warnings into numbers:

* implicit information leakage: attribute inference accuracy vs. how many
  users hide the attribute;
* data resharing: leak size vs. resharing probability; watermark tracing;
* privacy-preserving advertising: targeting parity at zero profile
  exposure (Adnostic/Privad architecture vs. tracking baseline);
* sybil attacks: trust capture vs. attack edges; random-walk detection;
* de-anonymization: re-identification rate vs. seeds, naive vs. k-degree.
"""

from __future__ import annotations

import random
import statistics

import pytest

from _reporting import report_table
from repro.extensions import (AdBroker, AdClient, Advertisement,
                              ResharingSimulation, SybilAttack,
                              TrackingAdServer, attribute_inference_accuracy,
                              deanonymize_by_seeds, degree_anonymize,
                              degree_cut_detection, inject_sybils,
                              naive_anonymize)
from repro.extensions.anonymization import reidentification_rate
from repro.extensions.inference import plant_homophilous_attribute
from repro.workloads import attach_trust, social_graph


def test_implicit_information_leakage(benchmark):
    """E9a: hiding your attribute does not hide your attribute."""
    graph = social_graph(400, kind="ba", seed=101)

    def sweep():
        rows = []
        for homophily, label in ((0.9, "homophilous"), (0.0, "independent")):
            labels = plant_homophilous_attribute(
                graph, ("red", "blue"), homophily=homophily, seed=102)
            for hide in (0.2, 0.5, 0.8):
                accuracy, coverage = attribute_inference_accuracy(
                    graph, labels, hide_fraction=hide, seed=103)
                rows.append((label, hide, accuracy, coverage))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    homophilous = [a for lbl, h, a, c in rows if lbl == "homophilous"]
    independent = [a for lbl, h, a, c in rows if lbl == "independent"]
    assert min(homophilous) > 0.65       # the leak persists at 80% hiding
    assert max(independent) < 0.68       # control: no structure, no leak
    report_table(
        "E9a_inference", "E9a — implicit leakage: attribute inference",
        ["Attribute", "Hide fraction", "Inference accuracy", "Coverage"],
        rows,
        note=("With homophilous attributes, friends' disclosures betray "
              "hiders at every hide rate — 'privacy is a collective "
              "phenomenon'.  Independent attributes (control) stay near "
              "the 0.5 coin-flip floor."))


def test_data_resharing(benchmark):
    """E9b: any resharing probability defeats access control; watermarks
    only trace, never prevent."""
    graph = social_graph(150, kind="ws", seed=104)

    def sweep():
        rows = []
        for probability in (0.0, 0.1, 0.3, 0.6):
            fractions = []
            traceable = True
            for seed in range(105, 110):  # average out spread randomness
                sim = ResharingSimulation(graph, probability, seed=seed)
                if probability:
                    result = sim.run_with_watermarks(
                        "user0", ["user1", "user2", "user3"], b"secret",
                        b"k" * 32)
                    traceable &= bool(result["traceable"])
                else:
                    result = sim.run("user0",
                                     ["user1", "user2", "user3"])
                fractions.append(result["unintended_fraction"])
            rows.append((probability, statistics.mean(fractions),
                         "yes" if traceable else "no"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fractions = [f for _, f, _ in rows]
    assert fractions[0] == 0.0
    assert fractions[1] > 0.0 and fractions == sorted(fractions)
    assert all(t == "yes" for _, _, t in rows)
    report_table(
        "E9b_resharing", "E9b — resharing leak vs reshare probability",
        ["Reshare prob.", "Unintended-reach fraction", "Leak traceable"],
        rows,
        note=("Zero resharing is the only safe point; watermarking makes "
              "every leak attributable but prevents none — the open "
              "problem, quantified."))


def test_privacy_preserving_advertising(benchmark):
    """E9c: Adnostic/Privad parity — same targeting, zero profile upload."""

    def run():
        rng = random.Random(106)
        topics = ["cars", "privacy", "cats", "sports", "travel", "music"]
        broker = AdBroker()
        tracker = TrackingAdServer()
        for index, topic in enumerate(topics):
            ad = Advertisement(f"ad-{topic}", (topic,), 1.0 + index / 10)
            broker.publish(ad)
            tracker.publish(ad)
        agreement = 0
        clicks_ok = 0
        users = 40
        for i in range(users):
            interests = rng.sample(topics, 2)
            client = AdClient(f"u{i}", interests, rng)
            tracker.upload_profile(f"u{i}", interests)
            local = {ad.ad_id for ad in
                     client.select_ads(broker.broadcast(), 2)}
            remote = {ad.ad_id for ad in tracker.select_ads(f"u{i}", 2)}
            agreement += local == remote
            chosen = client.select_ads(broker.broadcast(), 1)
            if chosen and client.report_click(broker, chosen[0]):
                clicks_ok += 1
            if chosen:
                tracker.report_click(f"u{i}", chosen[0])
        return (agreement / users, clicks_ok,
                broker.broker_knowledge(), tracker.server_knowledge())

    parity, clicks, broker_view, tracker_view = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert parity == 1.0                       # identical targeting
    assert clicks == 40                        # billing works
    assert broker_view["profiles_seen"] == 0
    assert not broker_view["linkable_to_users"]
    assert tracker_view["profiles_seen"] == 40
    report_table(
        "E9c_ads", "E9c — privacy-preserving vs tracking advertising",
        ["System", "Targeting parity", "Billable clicks",
         "Profiles seen", "Clicks linkable"],
        [("Adnostic/Privad-style broker", parity, clicks, 0, "no"),
         ("tracking baseline", 1.0, 40, 40, "yes")],
        note=("Local ad selection + blind click tokens achieve the same "
              "targeting with zero profile exposure — the architecture "
              "exists; the paper's open problem is the business model."))


def test_sybil_attack_and_defense(benchmark):
    """E9d: trust capture scales with attack edges; random walks detect."""
    honest = attach_trust(social_graph(300, kind="ba", seed=107), seed=108)

    def sweep():
        rows = []
        for attack_edges in (1, 5, 20, 60):
            graph, sybils = inject_sybils(honest, count=30,
                                          attack_edges=attack_edges,
                                          seed=109)
            attack = SybilAttack(graph, sybils)
            trust = attack.best_sybil_trust("user0")
            detection = degree_cut_detection(graph, sybils, seed=110)
            rows.append((attack_edges, trust,
                         detection["sybil_region_mass"],
                         detection["sybil_count_fraction"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    trusts = [t for _, t, _, _ in rows]
    assert trusts == sorted(trusts)  # more attack edges, more capture
    for edges, trust, walk_mass, population in rows[:2]:
        assert walk_mass < population  # walks under-visit the sybil region
    report_table(
        "E9d_sybil", "E9d — sybil trust capture vs attack edges (30 sybils)",
        ["Attack edges", "Best sybil trust", "Random-walk mass in region",
         "Region population share"],
        rows,
        note=("Trust-chain ranking bounds sybil influence by the attack-"
              "edge cut; random-walk mass below population share is the "
              "SybilGuard detection signal."))


def test_api_protection(benchmark):
    """E9f: protection of data from applications (Persona vs legacy).

    The concerns list: "after the user employs an application, he
    implicitly gives the application all the accesses to the personal
    content it wants" — Persona's attribute-scoped app keys are the cited
    fix; this measures the exposure difference for identical app installs.
    """
    from repro.acl.persona import Application, LegacyPlatform, PersonaUser

    def run():
        rng = random.Random(113)
        rows = []
        for requested_scope, label in ((["apps-calendar"], "calendar app"),
                                       (["apps-game"], "game app")):
            user = PersonaUser("alice", rng=rng)
            user.store("wall", b"posts", "friends")
            user.store("photos", b"album", "friends or family")
            user.store("diary", b"secrets", "family")
            user.store("calendar", b"meetings", "apps-calendar")
            legacy = LegacyPlatform()
            for name in user.data_names():
                legacy.store("alice", name, b"plaintext")
            legacy.install_app("alice", label)
            legacy_seen = len(legacy.app_view(label, "alice"))
            app = Application(label)
            app.install(user, requested_scope)
            persona_seen = len(app.visible_data(user))
            rows.append((label, legacy_seen, persona_seen))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, legacy_seen, persona_seen in rows:
        assert legacy_seen == 4            # everything, always
        assert persona_seen <= 1           # only the granted scope
    report_table(
        "E9f_api", "E9f — application data exposure: legacy vs Persona",
        ["App", "Legacy platform items visible", "Persona items visible"],
        rows,
        note=("Install-means-everything vs attribute-scoped app keys: the "
              "'Protection of data from API' concern, measured."))


def test_deanonymization(benchmark):
    """E9e: seed attack vs naive and k-degree anonymization."""
    graph = social_graph(200, kind="ba", seed=111)

    def sweep():
        rows = []
        for seeds_count in (4, 8, 16):
            anon, truth = naive_anonymize(graph, seed=112)
            seeds = {r: truth[r] for r in list(truth)[:seeds_count]}
            predicted = deanonymize_by_seeds(graph, anon, seeds)
            naive_rate = reidentification_rate(truth, predicted, seeds)
            anon_k, truth_k, added = degree_anonymize(graph, k=6, seed=112)
            seeds_k = {r: truth_k[r] for r in list(truth_k)[:seeds_count]}
            k_rate = reidentification_rate(
                truth_k, deanonymize_by_seeds(graph, anon_k, seeds_k),
                seeds_k)
            rows.append((seeds_count, naive_rate, k_rate, added))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rows[-1][1] > 0.5   # 16 seeds unmask most of the graph
    report_table(
        "E9e_deanon",
        "E9e — seed-based re-identification rate",
        ["Known seeds", "Naive anonymization", "k=6 degree anonymity",
         "Edges added by defence"],
        rows,
        note=("A handful of known nodes re-identifies most of a 'naively "
              "anonymized' graph; k-degree anonymity pays utility (added "
              "edges) yet barely slows the structural attack — why the "
              "paper lists de-anonymization as unresolved."))
