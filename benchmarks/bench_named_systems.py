"""Experiment E11 — the surveyed systems, side by side.

The survey's implicit comparison table, made real: the same
post-and-read workload runs on runnable models of the five named DOSNs
(PeerSoN, Safebook, Cachet, Supernova, Diaspora), and the table reports
each system's defining numbers — read cost, availability source, and what
an outsider/storage host gets to see.
"""

from __future__ import annotations

import random
import statistics

import pytest

from _reporting import report_table
from repro.exceptions import AccessDeniedError, ReproError
from repro.systems import (CachetNetwork, CuckooNetwork, DiasporaNetwork,
                           PeersonNetwork, PrplNetwork, SafebookNetwork,
                           SupernovaNetwork)
from repro.workloads import social_graph


def run_peerson():
    net = PeersonNetwork(seed=21)
    for i in range(48):
        net.register(f"p{i}")
    for i in range(1, 6):
        net.befriend("p0", f"p{i}")
    before = net.network.stats.messages
    key = net.post("p0", "status", b"post")
    for i in range(1, 6):
        assert net.read(f"p{i}", key) == b"post"
    cost = (net.network.stats.messages - before) / 6
    denied = 0
    try:
        net.read("p40", key)
    except AccessDeniedError:
        denied = 1
    return ("PeerSoN", "DHT (Chord)", round(cost, 1),
            "DHT replicas", "outsider blocked" if denied else "LEAK")


def run_safebook():
    graph = social_graph(120, kind="ba", seed=22)
    net = SafebookNetwork(graph, seed=23)
    mirrors = net.publish_profile("user10", b"profile")
    friend = str(next(iter(graph.neighbors("user10"))))
    hops = []
    for _ in range(5):
        _, request, _ = net.retrieve_profile(friend, "user10")
        hops.append(request.hops)
    net.online["user10"] = False
    _, _, _ = net.retrieve_profile(friend, "user10")  # mirrors serve
    import networkx as nx
    distances = nx.single_source_shortest_path_length(graph, "user10")
    stranger = next(str(n) for n, d in distances.items() if d >= 2)
    denied = 0
    try:
        net.retrieve_profile(stranger, "user10")
    except AccessDeniedError:
        denied = 1
    return ("Safebook", "friend rings", round(statistics.mean(hops), 1),
            f"{mirrors} friend mirrors",
            "outsider blocked" if denied else "LEAK")


def run_cachet():
    graph = social_graph(60, kind="ws", seed=24)
    net = CachetNetwork(graph, seed=25)
    net.grant("user0", "user1", ["friends"])
    net.post("user0", "post1", "content", "friends",
             commenters=["user1"])
    costs = []
    for _ in range(4):
        _, result = net.read("user1", "user0", "post1")
        costs.append(result.rpcs)
    denied = 0
    try:
        net.read("user30", "user0", "post1")
    except AccessDeniedError:
        denied = 1
    return ("Cachet", "hybrid DHT+cache", round(statistics.mean(costs), 1),
            "DHT + social caches",
            "outsider blocked" if denied else "LEAK")


def run_supernova():
    net = SupernovaNetwork(seed=26, storekeepers_per_user=3)
    for i in range(40):
        net.register(f"n{i}")
    net.report_uptimes({f"n{i}": (0.3 if i < 30 else 0.95)
                        for i in range(40)})
    net.arrange_storekeepers("n0")
    net.store("n0", "album", b"data")
    before = net.network.stats.messages
    key = net.friend_key("n0")
    for reader in ("n5", "n6", "n7"):
        assert net.retrieve(reader, "n0", "album", owner_key=key) == b"data"
    cost = (net.network.stats.messages - before) / 3
    net.overlay.peers["n0"].online = False
    assert net.retrieve("n5", "n0", "album", owner_key=key) == b"data"
    denied = 0
    try:
        net.retrieve("n8", "n0", "album")
    except ReproError:
        denied = 1
    return ("Supernova", "super-peer index", round(cost, 1),
            "uptime-picked storekeepers",
            "outsider blocked" if denied else "LEAK")


def run_diaspora():
    net = DiasporaNetwork(seed=27, pods=4)
    for i in range(40):
        net.register(f"d{i}")
    net.create_aspect("d0", "family", [f"d{i}" for i in range(1, 6)])
    before = net.network.stats.messages
    cid = net.post("d0", "family", "aspect post")
    for i in range(1, 6):
        assert net.read(f"d{i}", cid) == "aspect post"
    cost = (net.network.stats.messages - before) / 6
    denied = 0
    try:
        net.read("d20", cid)
    except ReproError:
        denied = 1
    return ("Diaspora", "pod federation", round(cost, 1),
            "always-on pods",
            "outsider blocked" if denied else "LEAK")


def run_cuckoo():
    net = CuckooNetwork(seed=28)
    for i in range(32):
        net.register(f"c{i}")
    for i in range(1, 6):
        net.follow(f"c{i}", "c0")
    before = net.network.stats.messages
    post_id = net.post("c0", b"post")
    for i in range(1, 6):
        content, _ = net.read(f"c{i}", post_id)
        assert content == b"post"
    cost = (net.network.stats.messages - before) / 6
    # access note: Cuckoo is a *microblogging* (public-post) design; the
    # comparison column reports its model honestly.
    return ("Cuckoo", "push + DHT pull", round(cost, 1),
            "followers' inboxes + DHT", "public microblog")


def run_prpl():
    net = PrplNetwork(seed=29)
    for i in range(32):
        net.register(f"u{i}")
    net.store("u0", "item", b"data")
    before = net.network.stats.messages
    hops_seen = []
    for reader in ("u5", "u6", "u7"):
        content, hops = net.fetch(reader, "u0", "item")
        assert content == b"data"
        hops_seen.append(hops)
    cost = (net.network.stats.messages - before) / 3
    return ("Prpl", "butler ring", round(cost, 1),
            "personal devices via butler", "butler-mediated")


def test_named_systems_comparison(benchmark):
    """E11: one workload, all seven surveyed systems, one table."""

    def run_all():
        return [run_peerson(), run_safebook(), run_cachet(),
                run_supernova(), run_diaspora(), run_cuckoo(), run_prpl()]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    guarded = [row for row in rows
               if row[0] not in ("Cuckoo", "Prpl")]
    assert all(row[4] == "outsider blocked" for row in guarded)
    report_table(
        "E11_systems", "E11 — the surveyed DOSNs on one workload",
        ["System", "Lookup substrate", "Msgs per read",
         "Availability source", "Access control"],
        rows,
        note=("Every surveyed system, runnable: the survey's qualitative "
              "comparison becomes a reproducible table.  The five "
              "private-content systems block non-audience readers; Cuckoo "
              "models public microblogging and Prpl butler-mediated "
              "personal clouds, per their papers."))
