"""Experiment E3 — access-control lifecycle costs (create/join/revoke).

Paper claims reproduced (Section III):

* symmetric: "Adding a user ... means sharing the group key" (1 op) but
  "for the revocation, we need to create a new key and re-encrypt the whole
  data" (O(items) + O(members));
* public key: join requires wrapping history for the newcomer; revocation
  is a list edit (lazy mode);
* ABE: "it is enough to do a single encryption operation to construct a new
  group", but "re-encryptions cause an extra overhead to the access control
  management" on revocation;
* IBBE: "removing a recipient from the list would then have no extra cost".
"""

from __future__ import annotations

import random

import pytest

from _reporting import report_table
from repro.acl import SCHEME_REGISTRY

MEMBERS = 16
ITEMS = 20


def lifecycle_costs(name):
    """Run the canonical lifecycle; return per-phase cost counters."""
    kwargs = {"max_group_size": 64} if name == "ibbe" else {}
    scheme = SCHEME_REGISTRY[name](rng=random.Random(0xE3), **kwargs)
    members = [f"u{i}" for i in range(MEMBERS)]

    scheme.meter.reset()
    scheme.create_group("g", members)
    create_cost = scheme.meter.total("key_distribution", "pub_encrypt",
                                     "sym_encrypt")

    for i in range(ITEMS):
        scheme.publish("g", f"item{i}", b"data")

    # One-time identity provisioning happens before the join phase so the
    # join counter reflects group-membership cost only (the paper's claim
    # is about the group operation, not account creation).
    scheme.register_user("newcomer")
    scheme.meter.reset()
    scheme.add_member("g", "newcomer")
    join_cost = scheme.meter.total("key_distribution", "pub_encrypt",
                                   "sym_encrypt")

    scheme.meter.reset()
    scheme.revoke_member("g", "u3")
    revoke_ops = scheme.meter.total("key_distribution", "pub_encrypt",
                                    "sym_encrypt")
    reencryptions = scheme.meter.counts["reencryption"]
    return create_cost, join_cost, revoke_ops, reencryptions


@pytest.mark.parametrize("name", sorted(SCHEME_REGISTRY))
def test_lifecycle_per_scheme(benchmark, name):
    """Timed lifecycle per scheme (one full create/publish/join/revoke)."""
    benchmark.pedantic(lambda: lifecycle_costs(name), rounds=3,
                       iterations=1)


def test_lifecycle_cost_table(benchmark):
    """E3 table + the paper's qualitative ordering, asserted."""

    def sweep():
        return {name: lifecycle_costs(name)
                for name in sorted(SCHEME_REGISTRY)}

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [(name, *costs[name]) for name in sorted(costs)]
    report_table(
        "E3_lifecycle",
        f"E3 — lifecycle crypto-op counts ({MEMBERS} members, {ITEMS} items)",
        ["Scheme", "Create group", "Join", "Revoke ops", "Re-encryptions"],
        rows,
        note=("Paper's ordering holds: IBBE revocation free; symmetric and "
              "ABE pay a full re-encryption of stored items; symmetric join "
              "is a single key distribution."))

    sym = costs["symmetric"]
    pk = costs["public-key"]
    abe = costs["cp-abe"]
    ibbe = costs["ibbe"]
    # symmetric: join = 1 distribution; revoke re-encrypts all items
    assert sym[1] == 1
    assert sym[3] == ITEMS
    # public-key (lazy): join wraps history, revoke free
    assert pk[1] == ITEMS
    assert pk[3] == 0
    # ABE: revocation triggers re-keying + full re-encryption
    assert abe[3] == ITEMS
    assert abe[1] == 1  # join = issue one key
    # IBBE: both join and revoke are free
    assert ibbe[1] == 0 and ibbe[2] == 0 and ibbe[3] == 0


def test_revocation_scales_with_history(benchmark):
    """Symmetric/ABE revocation cost grows with stored items; IBBE's does
    not — the crossover argument for IBBE in archival workloads."""

    def sweep():
        rows = []
        for items in (5, 20, 80):
            for name in ("symmetric", "ibbe"):
                kwargs = {"max_group_size": 64} if name == "ibbe" else {}
                scheme = SCHEME_REGISTRY[name](rng=random.Random(items),
                                               **kwargs)
                scheme.create_group("g", [f"u{i}" for i in range(8)])
                for i in range(items):
                    scheme.publish("g", f"i{i}", b"d")
                scheme.meter.reset()
                scheme.revoke_member("g", "u1")
                rows.append((name, items,
                             scheme.meter.counts["reencryption"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sym_curve = [r for n, i, r in rows if n == "symmetric"]
    ibbe_curve = [r for n, i, r in rows if n == "ibbe"]
    assert sym_curve == [5, 20, 80]
    assert ibbe_curve == [0, 0, 0]
    report_table(
        "E3b_revocation", "E3b — revocation re-encryptions vs stored items",
        ["Scheme", "Stored items", "Re-encryptions"], rows,
        note="Symmetric revocation is O(history); IBBE revocation is free.")
