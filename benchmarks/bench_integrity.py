"""Experiment E4 — integrity mechanism costs and guarantees.

Paper claims reproduced (Section IV):

* digital signatures are the universal primitive ("commonly used methods to
  protect data integrity are based on digital signatures") — we measure
  sign/verify latency as the base cost every other mechanism inherits;
* hash-chained timelines give provable partial order with O(j - i) proofs;
* the object history tree authenticates any single operation in O(log n)
  — against the naive alternative of shipping the whole log, O(n);
* fork consistency detects a forking provider as soon as views cross.
"""

from __future__ import annotations

import random

import pytest

from _reporting import report_table
from repro.crypto.signatures import generate_schnorr_keypair
from repro.integrity import (FortClient, ForkingServer, HistoryServer,
                             ObjectHistory, Operation, Timeline,
                             TimelineView, order_proof, seal, open_envelope,
                             verify_order_proof)

RNG = random.Random(0xE4)
KEY = generate_schnorr_keypair("TOY", RNG)
SERVER_KEY = generate_schnorr_keypair("TOY", RNG)


def test_envelope_seal(benchmark):
    """Base cost: signing one message envelope."""
    benchmark.pedantic(
        lambda: seal(KEY, "bob", b"party on friday", issued_at=1.0,
                     recipient="alice", rng=RNG),
        rounds=20, iterations=1)


def test_envelope_open(benchmark):
    """Base cost: verifying owner/content/relation/expiry in one check."""
    envelope = seal(KEY, "bob", b"party on friday", issued_at=1.0,
                    recipient="alice", expires_at=10.0, rng=RNG)
    benchmark.pedantic(
        lambda: open_envelope(envelope, KEY.public_key, "alice", now=5.0),
        rounds=20, iterations=1)


def test_timeline_publish(benchmark):
    """Appending a signed, chained entry."""
    timeline = Timeline("bob", KEY)
    benchmark.pedantic(lambda: timeline.publish(b"post", rng=RNG),
                       rounds=20, iterations=1)


def test_timeline_verify_100(benchmark):
    """Verifying a 100-entry chain (what a follower pays on first sync)."""
    timeline = Timeline("bob", KEY)
    for i in range(100):
        timeline.publish(f"post{i}".encode(), rng=RNG)

    def verify():
        view = TimelineView("bob", KEY.public_key)
        view.accept_all(timeline.entries)

    benchmark.pedantic(verify, rounds=3, iterations=1)


def test_order_proof_sizes(benchmark):
    """E4 table: proof sizes — chain segments vs history-tree membership."""

    def measure():
        rows = []
        for n in (16, 128, 1024):
            timeline = Timeline("bob", KEY)
            for i in range(n):
                timeline.publish(b"p", rng=RNG)
            chain_proof = order_proof(timeline.entries, 0, n - 1)
            assert verify_order_proof(chain_proof, KEY.public_key)

            history = ObjectHistory("wall")
            for i in range(n):
                history.append(Operation(client="c", payload=b"p",
                                         seen_version=i, seen_root=b""))
            tree_proof = history.prove_operation(n // 2)
            rows.append((n, len(chain_proof.segment),
                         len(tree_proof.siblings), n))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # history-tree proofs are logarithmic, chain/naive proofs linear
    assert rows[-1][2] == 10          # log2(1024)
    assert rows[-1][1] == 1024        # full segment
    report_table(
        "E4_proofs",
        "E4 — integrity proof sizes vs log length",
        ["Entries", "Chain order-proof (entries)",
         "History-tree proof (hashes)", "Naive full log (entries)"],
        rows,
        note=("History trees authenticate any operation in O(log n); hash "
              "chains pay O(j-i) for order proofs; the naive design ships "
              "the whole log."))


def test_fork_detection_rate(benchmark):
    """E4b: the fork is detected the moment views cross, every time."""

    def run_attacks():
        detected = 0
        trials = 20
        for trial in range(trials):
            rng = random.Random(trial)
            server = ForkingServer(SERVER_KEY, fork_members=["victim"],
                                   rng=rng)
            main = FortClient("main", "wall", SERVER_KEY.public_key)
            victim = FortClient("victim", "wall", SERVER_KEY.public_key)
            for i in range(3):
                server.submit("wall", main.make_operation(b"m"))
                ops, signed = server.fetch_as("wall", "main", main.version)
                assert main.sync(ops, signed) is None
                server.submit("wall", victim.make_operation(b"v"))
                ops, signed = server.fetch_as("wall", "victim",
                                              victim.version)
                assert victim.sync(ops, signed) is None
            if main.compare_views(victim) is not None:
                detected += 1
        return detected, trials

    detected, trials = benchmark.pedantic(run_attacks, rounds=1,
                                          iterations=1)
    assert detected == trials
    report_table(
        "E4b_fork", "E4b — fork-consistency detection",
        ["Equivocation attacks", "Detected on first view exchange"],
        [(trials, detected)],
        note=("Every forking-provider attack is caught as soon as two "
              "clients on different sides of the fork compare views, "
              "matching Frientegrity's guarantee."))


def test_honest_server_false_positive_rate(benchmark):
    """No false accusations against an honest provider."""

    def run():
        accusations = 0
        server = HistoryServer(SERVER_KEY, RNG)
        clients = [FortClient(f"c{i}", "wall", SERVER_KEY.public_key)
                   for i in range(4)]
        for round_number in range(10):
            for client in clients:
                ops, signed = server.fetch("wall", client.version)
                if client.sync(ops, signed) is not None:
                    accusations += 1
                server.submit("wall",
                              client.make_operation(b"payload"))
        for a in clients:
            for b in clients:
                if a.compare_views(b) is not None:
                    accusations += 1
        return accusations

    accusations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert accusations == 0
