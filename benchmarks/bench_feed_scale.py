"""Experiment E16 — hot-path caching & batched feed fan-out at scale.

E13 showed a cold DHT feed spends most of its virtual time routing one
lookup per post; E16 measures what the :mod:`repro.cache` tier buys
back.  The same social workload runs at two population scales under
three configurations:

* **baseline** — ``DosnConfig.cache`` unset: the legacy per-cid fetch
  path, byte-identical to every committed table;
* **batched** — ``CacheConfig(capacity_per_reader=0)``: no cache, but
  the feed rides one :meth:`StorageBackend.get_many` per reader (one
  route + one RPC per *holder* instead of one per post);
* **cached** — ``CacheConfig()``: batching plus the per-reader
  verified-content LRU and social prefetch.

Each reader's feed is assembled twice — cold (first contact) and warm
(steady state) — and the benchmark reports network messages per feed
plus the p50/p99 accounted virtual cost across readers.

Acceptance gates baked into the tests:

* warm cached feeds cut messages-per-feed by **>= 3x** vs the cold
  baseline at the 1k-user scale (the ISSUE's headline number);
* every byte served from cache carried chain-verified freshness
  evidence — zero unverified or degraded cache hits;
* warm cached feeds return exactly the same (author, sequence, text)
  stream as the cold baseline.

``REPRO_E16_SCALE=smoke`` shrinks the sweep for CI smoke runs.
"""

from __future__ import annotations

import os
import statistics

from _reporting import report_table
from repro.cache import CacheConfig
from repro.dosn import DosnConfig, DosnNetwork
from repro.workloads import generate_posts, social_graph

SMOKE = os.environ.get("REPRO_E16_SCALE", "").lower() == "smoke"
SEED = 2016

#: (label, users, posts, sampled readers)
SCALES = ([("200", 200, 200, 20)] if SMOKE
          else [("1k", 1000, 1000, 50), ("5k", 5000, 2500, 50)])

CONFIGS = [
    ("baseline", None),
    ("batched", CacheConfig(capacity_per_reader=0)),
    ("cached", CacheConfig()),
]


def _build(users: int, posts: int, cache):
    graph = social_graph(users, kind="ws", seed=SEED)
    net = DosnNetwork(config=DosnConfig(
        architecture="dht", seed=SEED, cache=cache, tracing=True))
    for node in graph.nodes:
        net.add_user(str(node))
    net.apply_social_graph(graph)
    for post in generate_posts(graph, posts, seed=SEED + 1):
        net.post(post.author, post.text)
    return graph, net


def _feed_once(net, reader):
    """One feed assembly: (messages, accounted virtual cost, report)."""
    before_msgs = net.network.stats.messages
    before_spans = len(net.tracer.spans)
    report = net.feed(reader, limit_per_friend=2)
    messages = net.network.stats.messages - before_msgs
    cost = sum(span.cost for span in net.tracer.spans[before_spans:])
    return messages, cost, report


def _percentiles(values):
    ordered = sorted(values)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def _run_config(users, posts, readers, cache):
    _, net = _build(users, posts, cache)
    sample = sorted(net.users)[:readers]
    cold = {"msgs": [], "cost": []}
    warm = {"msgs": [], "cost": []}
    items = None
    for reader in sample:
        messages, cost, report = _feed_once(net, reader)
        assert report.clean
        cold["msgs"].append(messages)
        cold["cost"].append(cost)
    for reader in sample:
        messages, cost, report = _feed_once(net, reader)
        assert report.clean
        warm["msgs"].append(messages)
        warm["cost"].append(cost)
        if items is None:
            items = [(i.author, i.post.sequence, i.post.text)
                     for i in report.items]
        for item in report.items:
            if item.result.source == "cache":
                assert item.result.verified and not item.result.degraded, (
                    "a cache hit served unverified or degraded bytes")
    return net, cold, warm, items


def test_feed_scale(benchmark):
    """E16: messages-per-feed and virtual cost, cold vs warm, 3 configs."""

    def run():
        rows = []
        gates = {}
        for label, users, posts, readers in SCALES:
            reference = None
            for name, cache in CONFIGS:
                net, cold, warm, items = _run_config(
                    users, posts, readers, cache)
                cold_msgs = statistics.mean(cold["msgs"])
                warm_msgs = statistics.mean(warm["msgs"])
                cold_p50, cold_p99 = _percentiles(cold["cost"])
                warm_p50, warm_p99 = _percentiles(warm["cost"])
                hits = net.cache.hits if net.cache is not None else 0
                rows.append([label, name, f"{cold_msgs:.1f}",
                             f"{warm_msgs:.1f}", cold_p50, cold_p99,
                             warm_p50, warm_p99, hits])
                if name == "baseline":
                    reference = (cold_msgs, items)
                else:
                    # every config returns the same verified feed stream
                    assert items == reference[1], (
                        f"{name} feed diverged from baseline at {label}")
                if name == "cached":
                    gates[label] = (reference[0] / warm_msgs
                                    if warm_msgs > 0 else float("inf"))
        return rows, gates

    rows, gates = benchmark.pedantic(run, rounds=1, iterations=1)
    first_scale = SCALES[0][0]
    assert gates[first_scale] >= 3.0, (
        f"warm cached feeds at {first_scale} users only cut messages "
        f"{gates[first_scale]:.1f}x vs the cold baseline (need >= 3x)")
    measured = ("all warm feeds fully cache-served"
                if gates[first_scale] == float("inf")
                else f"measured {gates[first_scale]:.1f}x")
    report_table(
        "E16_feed_scale",
        "E16 — feed fan-out: messages and virtual cost per feed",
        ["Users", "Config", "Cold msg/feed", "Warm msg/feed",
         "Cold p50 s", "Cold p99 s", "Warm p50 s", "Warm p99 s",
         "Cache hits"],
        rows,
        note=("Cold = each reader's first feed, warm = the second.  "
              "Gate: warm cached feeds >= 3x fewer messages than the "
              f"cold baseline ({measured} at {first_scale} users); "
              "every cache hit re-validated against the author's "
              "signed chain head before serving."))


def test_cache_off_leaves_message_trace_untouched(benchmark):
    """E16b: cache=None is byte-for-byte the legacy feed path."""

    def run():
        def workload(cache):
            _, net = _build(*(SCALES[0][1:3]), cache)
            for reader in sorted(net.users)[: SCALES[0][3]]:
                net.feed(reader, limit_per_friend=2)
            return net
        legacy = workload(None)
        explicit_off = workload(None)
        return legacy, explicit_off

    legacy, explicit_off = benchmark.pedantic(run, rounds=1, iterations=1)
    assert legacy.network.stats.messages == explicit_off.network.stats.messages
    assert ([s.name for s in legacy.tracer.spans]
            == [s.name for s in explicit_off.tracer.spans])
    assert legacy.cache is None
