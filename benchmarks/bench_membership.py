"""Experiment E15 — SWIM membership: detection, false positives, routing.

PR 1 (E12) bought availability back with *fixed* resilience thresholds:
retry counts and circuit breakers tuned once, globally.  This experiment
measures the adaptive alternative — SWIM-style gossip membership with
phi-accrual suspicion (:mod:`repro.membership`) — on three axes:

* **E15a** — detection: a cluster runs the protocol under uniform packet
  loss (0/10/20/30 %); three peers crash, staggered, after a warmup.
  Reported per loss level: confirm latency (first/median/max over the
  crashed peers), false-positive rate over all confirmations, and the
  protocol's message cost per node per period.  Acceptance: FP rate
  <= 2 % at 20 % loss.
* **E15b** — health-aware routing: the E12-style fault window (partition
  + rolling churn + permanent crashes) over a replicated Chord ring,
  read under PR 1's ``retry+cb`` policy vs. the same channel driven by
  membership (adaptive fastfail/deprioritisation, avoid-set pre-seeding,
  health-ordered replica probes).  Acceptance: membership meets or beats
  the fixed-threshold baseline's success rate while the detector's
  confirmations stay sound (zero false positives).
* **E15c** — degraded reads: with the quorum partly unreachable and one
  Byzantine holder serving garbage, ``degraded_reads`` serves the newest
  *verified* copy flagged ``degraded=True``.  Acceptance: tampered bytes
  are never returned, flagged or not.

Every confirmation observed during E15a is also appended to
``benchmarks/results/E15_confirms.jsonl`` — the CI determinism gate runs
the smoke sweep twice and requires byte-identical files.

The experiment is deterministic from its seed; ``REPRO_E15_SCALE=smoke``
shrinks it for CI.
"""

from __future__ import annotations

import json
import os
import statistics

from _reporting import report_table
from repro.exceptions import (LookupError_, ReplicaIntegrityError,
                              StorageError)
from repro.fabric import Fabric
from repro.faults import (CircuitBreaker, CorruptBlob, Crash, FaultPlan,
                          Partition, RetryPolicy)
from repro.membership import MembershipConfig, SwimMembership
from repro.overlay.chord import ChordRing, chord_id
from repro.overlay.network import SimNode
from repro.overlay.simulator import FixedLatency
from repro.storage2 import ReplicatedStore, ReplicationConfig

SMOKE = os.environ.get("REPRO_E15_SCALE", "").lower() == "smoke"
SEED = 2015

# E15a (detection) scale
DET_N = 12 if SMOKE else 24
DET_WARMUP = 120.0
DET_HORIZON = 400.0 if SMOKE else 700.0
LOSS_LEVELS = (0.0, 0.2) if SMOKE else (0.0, 0.1, 0.2, 0.3)

# E15b (routing) scale.  The partition cuts a *contiguous arc* of the
# Chord ring (half the nodes by ring position), so entire replica
# groups sit behind the cut — the case where per-destination state,
# fixed or adaptive, actually decides a query instead of a healthy
# replica quietly covering for it.
RT_N = 24 if SMOKE else 48
RT_KEYS = 4 if SMOKE else 6
RT_STEP = 4.0
RT_CALM = 130.0
RT_END = 450.0 if SMOKE else 700.0
RT_QUERIES = int((RT_END - RT_CALM - 15.0) / RT_STEP)
RT_NAMES = [f"q{i}" for i in range(RT_N)]
_RING_ORDER = sorted(RT_NAMES, key=chord_id)
RT_FAR = frozenset(_RING_ORDER[:RT_N // 2])
RT_NEAR = [name for name in _RING_ORDER if name not in RT_FAR]

_CONFIRMS_PATH = os.path.join(os.path.dirname(__file__), "results",
                              "E15_confirms.jsonl")


# -- E15a: detection latency and false positives vs. packet loss ---------------

def _detection_cell(loss: float):
    fab = Fabric.create(seed=SEED, latency=FixedLatency(0.02),
                        loss_rate=loss)
    membership = SwimMembership(fab, MembershipConfig())
    names = [f"m{i}" for i in range(DET_N)]
    for name in names:
        fab.network.register(SimNode(name))
        membership.register(name)
    membership.start()
    fab.sim.run(until=DET_WARMUP)
    crash_times = {}
    for j, victim in enumerate((names[5], names[DET_N // 2],
                                names[DET_N - 3])):
        at = DET_WARMUP + 30.0 * j
        fab.sim.run(until=at)
        fab.network.node(victim).go_offline()
        crash_times[victim] = at
    fab.sim.run(until=DET_HORIZON)

    latencies = []
    for victim, at in crash_times.items():
        confirms = [e.at for e in membership.confirm_log
                    if e.peer == victim]
        if confirms:
            latencies.append(min(confirms) - at)
    false, total = membership.false_positive_stats()
    period = membership.config.protocol_period
    per_node_period = fab.network.stats.messages \
        / (DET_HORIZON / period) / DET_N
    return {
        "detected": len(latencies),
        "victims": len(crash_times),
        "lat_first": min(latencies) if latencies else float("nan"),
        "lat_median": (statistics.median(latencies)
                       if latencies else float("nan")),
        "lat_max": max(latencies) if latencies else float("nan"),
        "false": false,
        "total": total,
        "fp_rate": false / total if total else 0.0,
        "msgs_node_period": per_node_period,
        "confirm_log": membership.confirm_log,
    }


def test_detection_vs_packet_loss(benchmark):
    """E15 main table: detection latency and FP rate per loss level."""

    def sweep():
        return {loss: _detection_cell(loss) for loss in LOSS_LEVELS}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = []
    for loss in LOSS_LEVELS:
        for event in cells[loss]["confirm_log"]:
            lines.append(json.dumps(
                {"loss": loss, "observer": event.observer,
                 "peer": event.peer, "at": round(event.at, 6),
                 "silence": round(event.silence, 6),
                 "bound": round(event.bound, 6),
                 "phi": round(event.phi, 4),
                 "false_positive": event.actually_online},
                sort_keys=True))
    os.makedirs(os.path.dirname(_CONFIRMS_PATH), exist_ok=True)
    with open(_CONFIRMS_PATH, "w") as handle:
        handle.write("\n".join(lines) + "\n")

    for loss, cell in cells.items():
        # every staggered crash is eventually confirmed dead
        assert cell["detected"] == cell["victims"], loss
    # Acceptance (a): FP rate <= 2 % at 20 % packet loss.
    assert cells[0.2]["fp_rate"] <= 0.02
    assert cells[0.0]["fp_rate"] == 0.0
    rows = [(f"{loss:.0%}", cell["detected"], cell["lat_first"],
             cell["lat_median"], cell["lat_max"],
             f"{cell['false']}/{cell['total']}",
             f"{cell['fp_rate']:.1%}", cell["msgs_node_period"])
            for loss, cell in cells.items()]
    report_table(
        "E15_membership_detection",
        "E15 — SWIM + phi-accrual: detection vs. packet loss "
        f"(n={DET_N}, 3 staggered crashes)",
        ["Loss", "Detected", "First (s)", "Median (s)", "Max (s)",
         "False/total confirms", "FP rate", "Msgs/node/period"],
        rows,
        note=("Loss buys more failed probes and ping-req chains (the "
              "rising message cost), but the phi bound adapts to each "
              "pair's observed evidence stream: zero false confirms at "
              "every loss level, detection latency roughly flat.  "
              "Confirm log written to results/E15_confirms.jsonl for "
              "the CI determinism gate."))


# -- E15b: health-aware routing vs. the PR 1 resilient baseline ----------------

def _routing_plan() -> FaultPlan:
    plan = FaultPlan(seed=SEED, horizon=RT_END)
    plan.add(Partition(groups=[RT_FAR], start=RT_CALM + 70.0,
                       end=RT_CALM + 270.0))
    # rolling churn on the near side: one peer at a time leaves and
    # returns with its state intact
    churners = 6 if SMOKE else 10
    for j in range(churners):
        victim = RT_NEAR[(2 * j + 1) % len(RT_NEAR)]
        at = RT_CALM + 10.0 + j * ((RT_END - RT_CALM - 120.0) / churners)
        plan.add(Crash(victim, at=at, restart_at=at + 90.0,
                       lose_state=False))
    # two peers die for good (state kept dark, not wiped: the routing
    # layer, not durability, is what this cell measures)
    plan.add(Crash(RT_NEAR[0], at=RT_CALM + 40.0, restart_at=None,
                   lose_state=False))
    plan.add(Crash(RT_NEAR[2], at=RT_CALM + 90.0, restart_at=None,
                   lose_state=False))
    return plan


def _routing_cell(policy: str):
    """One policy under the partition + churn window ("resilient"/"health")."""
    fab = Fabric.create(seed=SEED, latency=FixedLatency(0.02),
                        faults=_routing_plan(),
                        retry=RetryPolicy(max_attempts=3),
                        breaker=CircuitBreaker(failure_threshold=4,
                                               cooldown=30.0))
    membership = None
    if policy == "health":
        membership = SwimMembership(fab, MembershipConfig())
    ring = ChordRing(fab, successor_list_size=8, replication=3)
    for name in RT_NAMES:
        ring.add_node(name)
        if membership is not None:
            membership.register(name)
    ring.build()
    if membership is not None:
        membership.start()
    for i in range(RT_KEYS):
        ring.put(RT_NAMES[(3 * i + 1) % RT_N], f"key{i}", b"blob")
    fab.sim.run(until=RT_CALM)  # detector warmup before the chaos starts
    fab.network.stats.reset()

    successes = 0
    latencies = []
    for j in range(RT_QUERIES):
        fab.sim.run(until=RT_CALM + 5.0 + j * RT_STEP)
        for offset in range(len(RT_NEAR)):  # next online near-side peer
            start = RT_NEAR[(j + offset) % len(RT_NEAR)]
            if fab.network.is_online(start):
                break
        try:
            _, result = ring.get(start, f"key{j % RT_KEYS}")
            successes += 1
            latencies.append(result.rtt)
        except (LookupError_, StorageError):
            pass
    fab.sim.run(until=RT_END)
    stats = fab.network.stats
    false = total = 0
    if membership is not None:
        false, total = membership.false_positive_stats()
    return {
        "success": successes / RT_QUERIES,
        "p50": statistics.median(latencies) if latencies else float("nan"),
        "msgs_per_query": stats.messages / RT_QUERIES,
        "fastfails": stats.breaker_fastfails,
        "hedges": stats.hedges,
        "timeouts": stats.timeouts,
        "fp": f"{false}/{total}",
        "false": false,
    }


def test_health_aware_routing_vs_resilient_baseline(benchmark):
    """E15b: adaptive liveness vs. fixed thresholds, same chaos."""

    def sweep():
        return {policy: _routing_cell(policy)
                for policy in ("resilient", "health")}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Acceptance (b): health-aware routing beats the PR 1 baseline's
    # success rate under partition + churn.  (A partition is honestly
    # indistinguishable from death, so cross-cut confirms during the cut
    # count as "false" in the FP column — what matters is that reclaim
    # probes revive the far side after the heal.)
    assert cells["health"]["success"] > cells["resilient"]["success"]
    rows = [(policy, cell["success"], cell["p50"], cell["msgs_per_query"],
             cell["fastfails"], cell["hedges"], cell["timeouts"],
             cell["fp"])
            for policy, cell in cells.items()]
    report_table(
        "E15b_health_routing",
        "E15b — partition + churn reads: fixed thresholds vs. membership "
        f"(n={RT_N})",
        ["Policy", "Success rate", "p50 lat (s)", "Msgs/query",
         "Fast-fails", "Hedges", "Timeouts", "FP (false/total)"],
        rows,
        note=("Both policies share the retry channel; 'health' replaces "
              "the fixed breaker with the detector's per-peer beliefs — "
              "lookups pre-skip confirmed-dead peers, replica probes are "
              "health-ordered, and suspects get one attempt instead of "
              "full retries.  Msgs/query for 'health' includes the "
              "protocol's own ping/gossip traffic."))


# -- E15c: degraded reads never serve unverified bytes -------------------------

def _degraded_cell(enabled: bool):
    peers = [f"s{i}" for i in range(10)]
    fab = Fabric.create(seed=SEED, latency=FixedLatency(0.02))
    membership = SwimMembership(fab, MembershipConfig())
    ring = ChordRing(fab, replication=3)
    for name in peers:
        ring.add_node(name)
        membership.register(name)
    ring.build()
    holders = ring.replica_set("k")[:3]
    liar = holders[0]
    plan = FaultPlan(seed=SEED).add(CorruptBlob(holders={liar}))
    fab.network.install_faults(plan)
    store = ReplicatedStore(
        ring, ReplicationConfig(n=3, r=2, w=2, degraded_reads=enabled))
    membership.start()
    store.put("s0", "k", b"genuine-payload")
    reader = next(p for p in peers if p not in store.placements["k"])

    outcome = {"full": 0, "degraded": 0, "failed": 0, "tampered": 0}

    def read():
        try:
            result = store.get(reader, "k")
        except (StorageError, ReplicaIntegrityError):
            outcome["failed"] += 1
            return
        if result.payload != b"genuine-payload":
            outcome["tampered"] += 1
        outcome[("degraded" if result.degraded else "full")] += 1

    read()      # all holders up: 2 verified of 3 served -> full quorum
    honest = [h for h in store.placements["k"] if h != liar]
    ring.nodes[honest[1]].go_offline()
    read()      # one honest copy + the liar: 1 verified -> degraded/failed
    ring.nodes[honest[0]].go_offline()
    read()      # only the liar reachable: must fail, never serve
    return outcome


def test_degraded_reads_stay_verified(benchmark):
    """E15c: graceful degradation without ever serving tampered bytes."""

    def sweep():
        return {enabled: _degraded_cell(enabled)
                for enabled in (False, True)}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Acceptance (c): no degraded-mode read returns unverified bytes.
    for cell in cells.values():
        assert cell["tampered"] == 0
    # The flag converts exactly the below-quorum failure into a flagged,
    # verified response; the liar-only phase still fails either way.
    assert cells[False] == {"full": 1, "degraded": 0, "failed": 2,
                            "tampered": 0}
    assert cells[True] == {"full": 1, "degraded": 1, "failed": 1,
                           "tampered": 0}
    rows = [("off" if not enabled else "on", cell["full"],
             cell["degraded"], cell["failed"], cell["tampered"])
            for enabled, cell in cells.items()]
    report_table(
        "E15c_degraded_reads",
        "E15c — below-quorum reads with one Byzantine holder",
        ["degraded_reads", "Full-quorum", "Degraded (flagged)", "Failed",
         "Tampered served"],
        rows,
        note=("Degraded mode trades the freshness guarantee (flagged) "
              "for availability, never integrity: only signature-"
              "verified copies compete, so the corrupting holder's "
              "bytes lose whether the flag is on or off."))


# -- determinism ---------------------------------------------------------------

def test_e15_deterministic(benchmark):
    """Two runs of the headline cells must be byte-identical (seeded)."""

    def run_twice():
        first = (_detection_cell(0.2), _routing_cell("health"))
        second = (_detection_cell(0.2), _routing_cell("health"))
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert repr(first) == repr(second)
