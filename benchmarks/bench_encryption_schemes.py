"""Experiment E2 — relative cost of the six data-privacy solutions.

Paper claims reproduced (Section III):

* "Since symmetric encryption methods use simpler operations, they have the
  advantage of running faster in comparison to other schemes."
* ABE/IBBE pay pairing-level costs per operation regardless of audience.
* Public-key wrapping scales linearly with group size; IBBE headers do not.
* Hybrid encryption "combines the convenience of a public-key encryption
  with the high speed of a symmetric-key encryption": for large payloads
  every hybrid converges to symmetric throughput.

Timed micro-benchmarks (publish/read per scheme) carry the pytest-benchmark
numbers; the sweep table records header growth and operation counters over
group sizes.
"""

from __future__ import annotations

import random

import pytest

from _reporting import report_table
from repro.acl import SCHEME_REGISTRY

MESSAGE = b"x" * 1024
GROUP_SIZES = (2, 8, 32)


def build_scheme(name, members):
    kwargs = {}
    if name == "ibbe":
        kwargs["max_group_size"] = 64
    scheme = SCHEME_REGISTRY[name](rng=random.Random(0xE2), **kwargs)
    scheme.create_group("g", [f"u{i}" for i in range(members)])
    return scheme


@pytest.mark.parametrize("name", sorted(SCHEME_REGISTRY))
def test_publish_latency(benchmark, name):
    """Per-scheme publish (encrypt) latency at group size 16, 1 KiB."""
    scheme = build_scheme(name, 16)
    counter = iter(range(10**9))

    def publish():
        scheme.publish("g", f"item{next(counter)}", MESSAGE)

    benchmark.pedantic(publish, rounds=10, iterations=1)


@pytest.mark.parametrize("name", sorted(SCHEME_REGISTRY))
def test_read_latency(benchmark, name):
    """Per-scheme read (decrypt) latency at group size 16, 1 KiB."""
    scheme = build_scheme(name, 16)
    scheme.publish("g", "item", MESSAGE)
    benchmark.pedantic(lambda: scheme.read("g", "item", "u3"),
                       rounds=10, iterations=1)


def test_header_growth_sweep(benchmark):
    """E2 table: header bytes and asymmetric ops vs. group size."""

    def sweep():
        rows = []
        for name in sorted(SCHEME_REGISTRY):
            for size in GROUP_SIZES:
                scheme = build_scheme(name, size)
                scheme.meter.reset()
                scheme.publish("g", "probe", MESSAGE)
                counts = scheme.meter.snapshot()
                rows.append((name, size,
                             counts.get("header_bytes", 0),
                             counts.get("pub_encrypt", 0),
                             counts.get("sym_encrypt", 0)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_scheme = {}
    for name, size, header, pub, sym in rows:
        by_scheme.setdefault(name, []).append((size, header, pub))
    # Paper-claim assertions (the "shape"):
    # symmetric: no header, no asymmetric ops
    assert all(h == 0 and p == 0 for _, h, p in by_scheme["symmetric"])
    # public-key: header and op count grow linearly with the group
    pk = by_scheme["public-key"]
    assert pk[0][2] == 2 and pk[-1][2] == 32
    assert pk[-1][1] > 10 * pk[0][1] / 2
    # ibbe: constant header, one asymmetric op, independent of size
    ibbe = by_scheme["ibbe"]
    assert ibbe[0][1] == ibbe[-1][1] and all(p == 1 for _, _, p in ibbe)
    # abe: single encryption per item regardless of member count
    assert all(p == 1 for _, _, p in by_scheme["cp-abe"])

    report_table(
        "E2_encryption",
        "E2 — data-privacy schemes: header bytes / asym ops vs group size",
        ["Scheme", "Group size", "Header bytes", "Asym ops", "Sym ops"],
        rows,
        note=("Paper claims confirmed: symmetric fastest with zero header; "
              "public-key header grows O(n); ABE & IBBE need one asymmetric "
              "operation regardless of group size; IBBE header is constant."))


def test_hybrid_payload_scaling(benchmark):
    """Hybrid schemes converge to symmetric throughput for large payloads.

    The asymmetric KEM cost is fixed, so doubling the payload should not
    double hybrid latency the way it would if the whole payload were
    asymmetric-encrypted.
    """
    import time

    def measure():
        rows = []
        for size in (1024, 65536):
            for name in ("symmetric", "hybrid"):
                scheme = build_scheme(name, 8)
                payload = b"y" * size
                start = time.perf_counter()
                for i in range(3):
                    scheme.publish("g", f"i{i}", payload)
                elapsed = (time.perf_counter() - start) / 3
                rows.append((name, size, elapsed * 1000))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    timings = {(name, size): ms for name, size, ms in rows}
    small_gap = timings[("hybrid", 1024)] - timings[("symmetric", 1024)]
    big_gap = timings[("hybrid", 65536)] - timings[("symmetric", 65536)]
    # The absolute KEM overhead stays flat as payloads grow 64x.
    assert big_gap < 4 * max(small_gap, 0.5)
    report_table(
        "E2b_hybrid", "E2b — hybrid overhead is payload-independent",
        ["Scheme", "Payload bytes", "Publish ms"], rows,
        note="The fixed KEM cost amortizes: hybrid ~ symmetric + constant.")
