"""Benchmark-session configuration: print experiment tables at the end."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

from _reporting import TABLES  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Emit every experiment table after the benchmark summary."""
    if not TABLES:
        return
    terminalreporter.write_sep("=", "experiment result tables")
    for experiment in sorted(TABLES):
        terminalreporter.write_line("")
        terminalreporter.write_line(TABLES[experiment])
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "tables also written to benchmarks/results/*.txt")
