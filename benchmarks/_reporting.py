"""Result-table collection for the experiment harness.

pytest captures stdout, so experiment tables reported with ``print`` would
be lost in ``--benchmark-only`` runs.  Experiments instead call
:func:`report_table`; the conftest's ``pytest_terminal_summary`` hook prints
everything after the run (that channel is never captured), and every table
is also written to ``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: experiment id -> rendered table text, in report order
TABLES: "Dict[str, str]" = {}


def _render(title: str, headers: Sequence[str],
            rows: Sequence[Sequence[object]], note: str = "") -> str:
    columns = [headers] + [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(str(row[i])) for row in columns)
              for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def report_table(experiment: str, title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]], note: str = "") -> str:
    """Record one experiment table; returns the rendered text."""
    text = _render(title, headers, rows, note)
    TABLES[experiment] = text
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return text


def report_observability(experiment: str, title: str, tracer,
                         metrics=None, note: str = "") -> str:
    """Record a traced run: cost-breakdown table + flamegraph appendix.

    The table body comes from :func:`repro.obs.export.cost_breakdown`
    (deterministic at a fixed seed when wall profiling is off); the
    flame summary rides along under the table so the results file shows
    where the virtual time went, span path by span path.
    """
    from repro.obs.export import cost_breakdown, flame_summary, metrics_rows

    headers, rows = cost_breakdown(tracer)
    appendix = flame_summary(tracer, min_cost=0.0)
    if metrics is not None:
        m_headers, m_rows = metrics_rows(metrics)
        appendix += "\n\n" + _render(f"{experiment} metrics",
                                     m_headers, m_rows)
    text = _render(title, headers, rows, note)
    text += "\n\n" + appendix
    TABLES[experiment] = text
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return text
