"""Experiment E5 — lookup performance across DOSN architectures.

Paper claims reproduced (Section II-B):

* structured: "queries will be resolved in a limited number of steps" —
  Chord and Kademlia hop counts grow ~log(n);
* unstructured flooding has "almost zero overhead" in maintained state but
  pays per-query message cost ~O(edges);
* semi-structured super-peers resolve in <= 3 hops flat;
* hybrid (Cachet/Cuckoo): "unstructured lookup helps with fast discovery of
  popular items" while "structured lookup [finds] rare items" — cache hit
  rates split exactly along Zipf popularity.
"""

from __future__ import annotations

import random
import statistics

import networkx as nx
import pytest

from _reporting import report_table
from repro.overlay.chord import ChordRing
from repro.overlay.gossip import GossipOverlay
from repro.overlay.hybrid import HybridOverlay
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import FixedLatency, Simulator
from repro.fabric import Fabric
from repro.overlay.superpeer import SuperPeerOverlay
from repro.workloads import social_graph, zipf_choice

SIZES = (64, 256, 1024)
QUERIES = 40


def chord_stats(n):
    fab = Fabric.create(seed=n)
    net = fab.network
    ring = ChordRing(fab)
    for i in range(n):
        ring.add_node(f"p{i}")
    ring.build()
    net.stats.reset()
    hops = [ring.lookup(f"p{i % n}", f"key{i}").hops
            for i in range(QUERIES)]
    return statistics.mean(hops), net.stats.messages / QUERIES


def kademlia_stats(n):
    fab = Fabric.create(seed=n + 1)
    net = fab.network
    overlay = KademliaOverlay(fab)
    for i in range(n):
        overlay.add_node(f"p{i}")
    overlay.bootstrap()
    net.stats.reset()
    rpcs = [overlay.lookup(f"p{i % n}", f"key{i}").rpcs
            for i in range(QUERIES)]
    return statistics.mean(rpcs), net.stats.messages / QUERIES


def superpeer_stats(n):
    net = SimNetwork(Simulator(n + 2))
    overlay = SuperPeerOverlay(net)
    supers = max(2, n // 32)
    for i in range(supers):
        overlay.add_super_peer(f"sp{i}")
    for i in range(n):
        overlay.add_peer(f"p{i}")
    for i in range(QUERIES):
        overlay.publish(f"p{i % n}", f"key{i}", b"v")
    net.stats.reset()
    hops = [overlay.lookup(f"p{(i * 7) % n}", f"key{i}").hops
            for i in range(QUERIES)]
    return statistics.mean(hops), net.stats.messages / QUERIES


def flooding_stats(n):
    graph = social_graph(n, kind="ba", seed=n)
    net = SimNetwork(Simulator(n + 3), latency=FixedLatency(0.01))
    overlay = GossipOverlay(net, graph)
    rng = random.Random(n)
    users = sorted(overlay.nodes)
    messages = []
    hits = 0
    trials = 10  # flooding is expensive; fewer trials
    for i in range(trials):
        holder = rng.choice(users)
        overlay.place_key(f"key{i}", holder)
        result = overlay.flood_search(rng.choice(users), f"key{i}", ttl=6)
        hits += result.found
        messages.append(result.messages)
    return hits / trials, statistics.mean(messages)


def test_structured_lookup_scaling(benchmark):
    """E5 main table: hops/messages vs network size per architecture."""

    def sweep():
        rows = []
        for n in SIZES:
            chord_hops, chord_msgs = chord_stats(n)
            kad_rounds, kad_msgs = kademlia_stats(n)
            sp_hops, sp_msgs = superpeer_stats(n)
            rows.append((n, chord_hops, chord_msgs, kad_rounds, kad_msgs,
                         sp_hops, sp_msgs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    chord_curve = [row[1] for row in rows]
    sp_curve = [row[5] for row in rows]
    # Chord grows with log n; 16x more nodes ~ +2 hops, never explodes.
    assert chord_curve[0] < chord_curve[2] < chord_curve[0] + 5
    # Super-peers stay flat at <= 3 hops regardless of size.
    assert max(sp_curve) <= 3.0
    report_table(
        "E5_lookup", "E5 — lookup cost vs network size",
        ["Peers", "Chord hops", "Chord msgs", "Kademlia rounds",
         "Kademlia msgs", "Super-peer hops", "Super-peer msgs"],
        rows,
        note=("Structured overlays resolve in O(log n) steps; super-peer "
              "lookups are constant (<=3 hops) at the price of index "
              "centralization."))


def test_flooding_cost(benchmark):
    """E5b: flooding trades maintained state for per-query message storms."""

    def sweep():
        rows = []
        for n in (64, 256):
            hit_rate, messages = flooding_stats(n)
            _, chord_msgs = chord_stats(n)
            rows.append((n, hit_rate, messages, chord_msgs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, hit_rate, flood_msgs, chord_msgs in rows:
        assert hit_rate >= 0.9
        assert flood_msgs > 10 * chord_msgs  # the flooding premium
    report_table(
        "E5b_flooding", "E5b — unstructured flooding vs structured lookup",
        ["Peers", "Flood hit rate", "Flood msgs/query",
         "Chord msgs/query"],
        rows,
        note=("Flooding keeps zero routing state ('almost zero overhead') "
              "but pays orders of magnitude more messages per query."))


def test_hybrid_popular_vs_rare(benchmark):
    """E5c: the Cuckoo split — popular items from caches, rare from DHT."""

    def run():
        graph = social_graph(200, kind="ws", seed=55)
        fab = Fabric.create(seed=56)
        overlay = HybridOverlay(fab, graph, cache_capacity=64)
        users = sorted(overlay.caches)
        rng = random.Random(57)
        item_count = 40
        for i in range(item_count):
            overlay.publish(users[i % len(users)], f"item{i}", b"v")
        # Zipf-read workload: item0 hottest.
        sources = {"cache": 0, "dht": 0}
        per_item_sources = {}
        for _ in range(600):
            item = zipf_choice(rng, item_count, 1.2)
            reader = rng.choice(users)
            result = overlay.fetch(reader, f"item{item}")
            sources[result.source] += 1
            bucket = "popular" if item < 5 else "rare"
            per_item_sources.setdefault(bucket, {"cache": 0, "dht": 0})
            per_item_sources[bucket][result.source] += 1
        return sources, per_item_sources

    sources, per_item = benchmark.pedantic(run, rounds=1, iterations=1)
    popular = per_item["popular"]
    rare = per_item["rare"]
    popular_rate = popular["cache"] / (popular["cache"] + popular["dht"])
    rare_rate = rare["cache"] / max(1, rare["cache"] + rare["dht"])
    assert popular_rate > rare_rate
    report_table(
        "E5c_hybrid", "E5c — hybrid overlay: cache hits by popularity",
        ["Item class", "Cache hits", "DHT fetches", "Cache rate"],
        [("popular (top 5)", popular["cache"], popular["dht"],
          popular_rate),
         ("rare (tail)", rare["cache"], rare["dht"], rare_rate)],
        note=("Cuckoo's claim: the unstructured phase discovers popular "
              "items fast; rare items fall through to the structured DHT."))


def test_location_tree_scaling(benchmark):
    """E5e: Vis-à-Vis location trees — query cost tracks the subtree, not
    the group ("efficient and scalable sharing")."""
    from repro.overlay.locationtree import LocationTree

    def run():
        rows = []
        for members in (64, 512):
            net = SimNetwork(Simulator(members))
            tree = LocationTree("group", net)
            rng = random.Random(members)
            continents = ["europe", "asia", "america", "africa"]
            for i in range(members):
                region = (rng.choice(continents), f"country{i % 10}",
                          f"city{i % 40}")
                tree.add_member(f"u{i}", region)
            city = tree.query("u0", ("europe", "country1", "city1"))
            country = tree.query("u0", ("europe", "country1"))
            everyone = tree.query("u0", ())
            rows.append((members, city.hops, country.hops, everyone.hops,
                         len(everyone.members)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for members, city_hops, country_hops, all_hops, found in rows:
        assert city_hops <= country_hops <= all_hops
        assert found == members
    small, large = rows
    # narrow queries grow much slower than the group
    assert large[1] <= small[1] * 3
    report_table(
        "E5e_loctree", "E5e — location-tree query cost (hops) vs scope",
        ["Members", "City query", "Country query", "Whole group",
         "Members found (whole group)"],
        rows,
        note=("Vis-a-vis's claim: location-restricted queries touch only "
              "the matching subtree; cost scales with scope, not group "
              "size."))


def test_lookup_under_churn(benchmark):
    """E5d: success rate vs fraction of failed peers (successor lists)."""

    def run():
        rows = []
        for dead_fraction in (0.0, 0.1, 0.3):
            fab = Fabric.create(seed=58)
            ring = ChordRing(fab, successor_list_size=8, replication=1)
            n = 256
            for i in range(n):
                ring.add_node(f"p{i}")
            ring.build()
            rng = random.Random(59)
            dead = rng.sample(range(1, n), int(dead_fraction * n))
            for i in dead:
                ring.nodes[f"p{i}"].online = False
            successes = 0
            hops = []
            for i in range(QUERIES):
                try:
                    result = ring.lookup("p0", f"key{i}")
                    successes += 1
                    hops.append(result.hops)
                except Exception:
                    pass
            rows.append((dead_fraction, successes / QUERIES,
                         statistics.mean(hops) if hops else 0.0))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[0][1] == 1.0
    assert rows[1][1] >= 0.9
    report_table(
        "E5d_churn", "E5d — Chord lookup resilience under failures",
        ["Dead fraction", "Lookup success rate", "Mean hops"],
        rows,
        note=("Successor lists route around failures; hop counts rise "
              "slightly as dead fingers force detours."))
