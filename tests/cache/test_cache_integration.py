"""End-to-end cache behavior through DosnNetwork (the E16 hot path).

These tests pin the headline E16 claims at unit scale: a warm feed is
served entirely from the verified cache with zero network messages, the
prefetcher warms on befriend, batching works without caching (capacity
0), and `batch_reads=False` degrades gracefully to sequential fetches.
"""

import pytest

from repro.cache import CacheConfig
from repro.dosn import DosnConfig, DosnNetwork


def cached_net(architecture="dht", seed=5, cache=None, **overrides):
    config = DosnConfig(architecture=architecture, seed=seed,
                        cache=cache or CacheConfig(), **overrides)
    net = DosnNetwork(config=config)
    for name in ("alice", "bob", "carol", "dave"):
        net.add_user(name)
    net.befriend("alice", "bob")
    net.befriend("alice", "carol")
    return net


class TestWarmFeed:
    @pytest.mark.parametrize("arch", ["central", "dht", "federation",
                                      "local"])
    def test_second_feed_is_all_cache_and_message_free(self, arch):
        net = cached_net(architecture=arch)
        net.post("bob", "b1")
        net.post("bob", "b2")
        net.post("carol", "c1")
        cold = net.feed("alice")
        assert cold.clean and len(cold.items) == 3
        before = net.network.stats.messages
        warm = net.feed("alice")
        assert warm.clean and len(warm.items) == 3
        assert net.network.stats.messages == before, (
            "a warm feed must not touch the network")
        assert all(item.result.source == "cache" for item in warm.items)

    def test_warm_feed_matches_cold_feed_content(self):
        net = cached_net()
        for i in range(3):
            net.post("bob", f"post-{i}")
        cold = net.feed("alice")
        warm = net.feed("alice")
        assert ([(i.author, i.post.sequence, i.post.text)
                 for i in cold.items]
                == [(i.author, i.post.sequence, i.post.text)
                    for i in warm.items])

    def test_read_hits_cache_after_first_fetch(self):
        net = cached_net()
        cid = net.post("bob", "hello")
        first = net.read("alice", "bob", cid)
        assert first.source in ("quorum", "bare")
        second = net.read("alice", "bob", cid)
        assert second.source == "cache"
        assert second.post.text == "hello"
        assert net.cache.hits >= 1


class TestPrefetch:
    def test_befriend_warms_the_new_friend(self):
        net = cached_net()
        cid = net.post("bob", "old post")
        net.befriend("bob", "dave")  # dave's cache warmed with bob's head
        assert net.cache.contains("dave", cid)
        assert net.read("dave", "bob", cid).source == "cache"

    def test_prefetch_returns_warm_count_and_feed_uses_it(self):
        net = cached_net()
        net.post("bob", "b1")
        net.post("carol", "c1")
        warmed = net.prefetch("alice")
        assert warmed == 2
        before = net.network.stats.messages
        feed = net.feed("alice")
        assert feed.clean
        assert net.network.stats.messages == before
        assert all(item.result.source == "cache" for item in feed.items)

    def test_prefetch_noop_without_prefetcher(self):
        net = cached_net(cache=CacheConfig(prefetch=False))
        net.post("bob", "b1")
        assert net.prefetcher is None
        assert net.prefetch("alice") == 0


class TestConfigSurface:
    def test_capacity_zero_batches_without_caching(self):
        net = cached_net(cache=CacheConfig(capacity_per_reader=0))
        assert net.cache is None and net.prefetcher is None
        net.post("bob", "b1")
        net.post("carol", "c1")
        feed = net.feed("alice")
        assert feed.clean and len(feed.items) == 2
        # no cache: every item still comes off the network, typed
        assert all(item.result.source in ("quorum", "bare")
                   for item in feed.items)

    def test_batch_reads_false_stays_sequential_but_cached(self):
        net = cached_net(cache=CacheConfig(batch_reads=False))
        net.post("bob", "b1")
        net.post("carol", "c1")
        cold = net.feed("alice")
        assert cold.clean and len(cold.items) == 2
        warm = net.feed("alice")
        assert all(item.result.source == "cache" for item in warm.items)

    def test_no_cache_config_means_no_cache_attributes(self):
        net = DosnNetwork(config=DosnConfig(architecture="dht", seed=5))
        assert net.cache is None and net.prefetcher is None

    def test_cache_metrics_exported_through_fabric(self):
        net = cached_net()
        cid = net.post("bob", "hello")
        net.read("alice", "bob", cid)
        net.read("alice", "bob", cid)
        assert net.metrics.get_counter_value("cache.hits") >= 1
