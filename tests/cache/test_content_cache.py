"""VerifiedContentCache: chain-head validated hits, evidence-based eviction.

The fake chain views here expose exactly the surface the cache consumes
— ``head_hash`` and ``entries`` whose items carry ``.payload`` (the cid
bytes an author's :class:`TimelineView` records per chain entry).
"""

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.cache import CacheConfig, VerifiedContentCache
from repro.obs import MetricsRegistry


@dataclass
class FakeEntry:
    payload: bytes


@dataclass
class FakeView:
    """A stand-in for a reader's chain-verified TimelineView."""

    entries: List[FakeEntry] = field(default_factory=list)

    @property
    def head_hash(self) -> bytes:
        return b"head:" + b"|".join(e.payload for e in self.entries)

    def publish(self, cid: str) -> None:
        self.entries.append(FakeEntry(cid.encode()))


@pytest.fixture
def cache():
    return VerifiedContentCache(capacity_per_reader=4)


def seeded(cache, reader="bob", author="alice", cid="c1", post="POST"):
    view = FakeView()
    view.publish(cid)
    cache.insert(reader, author, cid, post, view)
    return view


class TestLookupValidation:
    def test_hit_when_chain_unmoved(self, cache):
        view = seeded(cache)
        entry = cache.lookup("bob", "alice", "c1", view)
        assert entry is not None and entry.post == "POST"
        assert (cache.hits, cache.misses) == (1, 0)

    def test_miss_on_unknown_cid(self, cache):
        view = seeded(cache)
        assert cache.lookup("bob", "alice", "ghost", view) is None
        assert cache.misses == 1

    def test_miss_when_entry_belongs_to_other_author(self, cache):
        view = seeded(cache, author="alice")
        assert cache.lookup("bob", "mallory", "c1", view) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_miss_when_no_verified_view(self, cache):
        seeded(cache)
        # freshness cannot be re-checked without a chain view: refuse
        assert cache.lookup("bob", "alice", "c1", None) is None
        assert cache.misses == 1
        assert cache.contains("bob", "c1")  # kept, just not served

    def test_chain_advance_without_republish_repins_and_hits(self, cache):
        view = seeded(cache)
        view.publish("c2")  # head moved, c1 untouched
        entry = cache.lookup("bob", "alice", "c1", view)
        assert entry is not None
        assert entry.head == view.head_hash  # re-pinned
        assert entry.chain_len == 2
        # the next lookup is an O(1) head comparison again
        assert cache.lookup("bob", "alice", "c1", view) is not None
        assert cache.hits == 2 and cache.invalidations == 0

    def test_republished_cid_is_evicted(self, cache):
        view = seeded(cache)
        view.publish("c1")  # the author overwrote c1: stale evidence
        assert cache.lookup("bob", "alice", "c1", view) is None
        assert cache.invalidations == 1 and cache.misses == 1
        assert not cache.contains("bob", "c1")

    def test_republish_scan_starts_at_pinned_chain_len(self, cache):
        # entry pinned at chain_len=2 must not be evicted by the cid's
        # own (older) chain entry
        view = FakeView()
        view.publish("c1")
        view.publish("c2")
        cache.insert("bob", "alice", "c1", "POST", view)
        view.publish("c3")
        assert cache.lookup("bob", "alice", "c1", view) is not None


class TestReaderIsolationAndCapacity:
    def test_readers_do_not_share_entries(self, cache):
        view = seeded(cache, reader="bob")
        assert cache.lookup("carol", "alice", "c1", view) is None
        assert cache.size("bob") == 1 and cache.size("carol") == 0

    def test_per_reader_capacity_evicts_oldest(self):
        cache = VerifiedContentCache(capacity_per_reader=2)
        view = FakeView()
        for cid in ("c1", "c2", "c3"):
            view.publish(cid)
            cache.insert("bob", "alice", cid, cid.upper(), view)
        assert cache.size("bob") == 2
        assert not cache.contains("bob", "c1")
        assert cache.evictions == 1

    def test_invalidate_drops_one_readers_entry(self, cache):
        seeded(cache, reader="bob")
        seeded(cache, reader="carol")
        assert cache.invalidate("bob", "c1") is True
        assert cache.invalidate("bob", "c1") is False
        assert cache.contains("carol", "c1")
        assert cache.invalidations == 1


class TestMetricsMirror:
    def test_counters_mirrored_into_registry(self):
        metrics = MetricsRegistry()
        cache = VerifiedContentCache(capacity_per_reader=4, metrics=metrics)
        view = seeded(cache)
        cache.lookup("bob", "alice", "c1", view)    # hit
        cache.lookup("bob", "alice", "ghost", view)  # miss
        view.publish("c1")
        cache.lookup("bob", "alice", "c1", view)    # invalidation + miss
        assert metrics.get_counter_value("cache.hits") == 1
        assert metrics.get_counter_value("cache.misses") == 2
        assert metrics.get_counter_value("cache.invalidations") == 1
        assert metrics.get_counter_value("cache.insertions") == 1


class TestCacheConfig:
    def test_defaults(self):
        config = CacheConfig()
        assert config.capacity_per_reader == 256
        assert config.prefetch and config.batch_reads
        assert config.caching

    def test_capacity_zero_disables_caching_not_batching(self):
        config = CacheConfig(capacity_per_reader=0)
        assert not config.caching
        assert config.batch_reads
