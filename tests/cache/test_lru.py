"""LRUMap: the cache tier's deterministic eviction mechanism."""

import pytest

from repro.cache import LRUMap
from repro.exceptions import SimulationError


class TestLRUMap:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            LRUMap(0)
        with pytest.raises(SimulationError):
            LRUMap(-3)

    def test_roundtrip_and_contains(self):
        lru = LRUMap(2)
        assert lru.put("a", 1) is None
        assert lru.get("a") == 1
        assert "a" in lru and "b" not in lru
        assert lru.get("b") is None
        assert len(lru) == 1

    def test_eviction_is_least_recently_used(self):
        lru = LRUMap(2)
        lru.put("a", 1)
        lru.put("b", 2)
        evicted = lru.put("c", 3)
        assert evicted == ("a", 1)
        assert list(lru) == ["b", "c"]
        assert lru.evictions == 1

    def test_get_refreshes_recency(self):
        lru = LRUMap(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # a becomes most-recent; b is now the victim
        assert lru.put("c", 3) == ("b", 2)
        assert "a" in lru

    def test_peek_does_not_refresh_recency(self):
        lru = LRUMap(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.peek("a") == 1
        assert lru.put("c", 3) == ("a", 1)

    def test_put_existing_key_refreshes_without_evicting(self):
        lru = LRUMap(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.put("a", 10) is None  # update, not growth
        assert lru.get("a") == 10
        assert lru.put("c", 3) == ("b", 2)

    def test_remove_is_not_counted_as_eviction(self):
        lru = LRUMap(2)
        lru.put("a", 1)
        assert lru.remove("a") == 1
        assert lru.remove("ghost") is None
        assert lru.evictions == 0
        assert len(lru) == 0

    def test_iteration_orders_lru_first(self):
        lru = LRUMap(3)
        for key in ("a", "b", "c"):
            lru.put(key, key)
        lru.get("a")
        assert list(lru) == ["b", "c", "a"]
