"""Contract tests for node-id certification across the overlays.

The certificate defense promises exactly two rejections and one
acceptance:

* a **chosen id** (picked adjacent to a victim key) is rejected — no
  identity material the adversary holds hashes to it;
* an **unverifiable certificate** (tampered id, material, or signature)
  is rejected wholesale;
* a **certified-but-lying** peer (true id, malicious answer) passes the
  certificate check and must instead be out-voted by disjoint paths.

The first two are checked against every overlay family that enrolls
peers (Chord, Kademlia, and the Hybrid overlay's embedded ring); the
third drives real defended lookups and asserts the vote wins.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.adversary import AdversaryConfig, DefenseConfig
from repro.crypto.node_cert import (IdCertifier, NodeIdCertificate,
                                    derive_node_id)
from repro.exceptions import SignatureError
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing, chord_id
from repro.overlay.hybrid import HybridOverlay
from repro.overlay.kademlia import KademliaOverlay, kad_id, xor_distance

N = 24
SEED = 11

DEFENDED = AdversaryConfig(fraction=0.2, defense=DefenseConfig())


def _names():
    return [f"p{i}" for i in range(N)]


def _chord_world():
    fab = Fabric.create(seed=SEED, adversary=DEFENDED)
    ring = ChordRing(fab, replication=2)
    for name in _names():
        ring.add_node(name)
    ring.build()
    return fab, "chord", {name: chord_id(name) for name in _names()}


def _kad_world():
    fab = Fabric.create(seed=SEED, adversary=DEFENDED)
    overlay = KademliaOverlay(fab)
    for name in _names():
        overlay.add_node(name)
    overlay.bootstrap()
    return fab, "kad", {name: kad_id(name) for name in _names()}


def _hybrid_world():
    fab = Fabric.create(seed=SEED, adversary=DEFENDED)
    graph = nx.cycle_graph(N)
    graph = nx.relabel_nodes(graph, {i: f"p{i}" for i in range(N)})
    HybridOverlay(fab, graph)  # enrolls its embedded ring's peers
    return fab, "chord", {name: chord_id(name) for name in _names()}


WORLDS = {"chord": _chord_world, "kademlia": _kad_world,
          "hybrid": _hybrid_world}


@pytest.mark.parametrize("family", sorted(WORLDS))
class TestCertifiedClaims:
    def test_true_positions_pass(self, family):
        fab, space, positions = WORLDS[family]()
        adv = fab.adversary
        for name, position in positions.items():
            assert adv.certified_id(space, name) == position
            assert adv.check_claim(space, name, position)

    def test_chosen_ids_rejected(self, family):
        """An id picked next to a victim key fails the claim check."""
        fab, space, positions = WORLDS[family]()
        adv = fab.adversary
        for name, position in positions.items():
            forged = adv._forged_id(space, "victim-key")
            if forged == position:  # astronomically unlikely collision
                forged = (forged + 1) % (1 << 64)
            assert not adv.check_claim(space, name, forged)
        with pytest.raises(SignatureError):
            adv.certifier(space).check_or_raise(
                "p0", adv._forged_id(space, "victim-key"))


class TestUnverifiableCertificates:
    def test_tampered_id_fails(self):
        certifier = IdCertifier(bits=64)
        cert = certifier.certificate("alice")
        forged = NodeIdCertificate(
            name=cert.name, public_key=cert.public_key,
            material=cert.material,
            node_id=(cert.node_id + 1) % (1 << 64),
            bits=cert.bits, signature=cert.signature)
        assert cert.verify()
        assert not forged.verify()

    def test_tampered_material_fails(self):
        """Material for a chosen id breaks the hash binding."""
        certifier = IdCertifier(bits=64)
        cert = certifier.certificate("alice")
        forged = NodeIdCertificate(
            name=cert.name, public_key=cert.public_key,
            material=cert.material + b"x",
            node_id=cert.node_id, bits=cert.bits,
            signature=cert.signature)
        assert not forged.verify()

    def test_foreign_signature_fails(self):
        """A signature minted by a different keypair never verifies."""
        certifier = IdCertifier(bits=64)
        cert = certifier.certificate("alice")
        other = certifier.certificate("mallory")
        material = b"chosen material"
        forged = NodeIdCertificate(
            name=cert.name, public_key=other.public_key,
            material=material,
            node_id=derive_node_id(material, 64),
            bits=64, signature=other.signature)
        assert not forged.verify()


class TestLiarsAreOutvoted:
    """Certified-but-lying forged answers lose the disjoint-path vote."""

    def test_chord_defended_lookups_all_correct(self):
        config = AdversaryConfig(fraction=0.25,
                                 behaviors=("eclipse",),
                                 defense=DefenseConfig())
        fab = Fabric.create(seed=SEED, adversary=config)
        ring = ChordRing(fab, successor_list_size=4, replication=2)
        for name in _names():
            ring.add_node(name)
        ring.build()
        adv = fab.adversary
        honest = [n for n in _names() if not adv.compromised(n)]
        assert any(adv.compromised(n) for n in _names())
        wrong = 0
        for j in range(30):
            key = f"key{j}"
            res = ring.lookup(honest[j % len(honest)], key)
            if res.owner != ring.owner_of(key):
                wrong += 1
        assert wrong == 0
        # The defense actually met the adversary: every defended lookup
        # either settled unanimously or out-voted a liar.
        agreed = fab.metrics.counter("lookup.disjoint_agreement",
                                     overlay="chord").value
        poisoned = fab.metrics.counter("lookup.poisoned", overlay="chord",
                                       cause="outvoted").value
        assert agreed + poisoned >= 30
        assert poisoned > 0

    def test_kad_defended_lookups_all_correct(self):
        config = AdversaryConfig(fraction=0.25,
                                 behaviors=("eclipse",),
                                 defense=DefenseConfig())
        fab = Fabric.create(seed=SEED, adversary=config)
        overlay = KademliaOverlay(fab)
        for name in _names():
            overlay.add_node(name)
        overlay.bootstrap()
        adv = fab.adversary
        honest = [n for n in _names() if not adv.compromised(n)]
        wrong = 0
        for j in range(30):
            key = f"key{j}"
            truth = min(_names(), key=lambda n: xor_distance(
                kad_id(n), kad_id(key)))
            res = overlay.lookup(honest[j % len(honest)], key)
            if not res.closest or res.closest[0] != truth:
                wrong += 1
        assert wrong == 0
