"""Behavioral tests for the adversary model, quarantine feeds, and walks.

* compromise selection is a pure hash of ``(seed_salt, name)`` — stable
  across fabrics, roster orders, and runs, movable only via the salt;
* attacks leave an audit trail (NetworkStats misrouted/forged_routes
  plus ``adversary.*`` metrics);
* a quarantine ban propagates to SWIM membership (sorts last, stays
  alive) and to the circuit breaker (force-open, half-open recoverable);
* the extracted walk engine replays the exact draw order of the old
  inline loop in ``extensions/sybil.py``.
"""

from __future__ import annotations

import random as _random

import networkx as nx

from repro.adversary import AdversaryConfig, DefenseConfig
from repro.adversary.walks import random_walk_landings, region_mass
from repro.exceptions import LookupError_, StorageError
from repro.fabric import Fabric
from repro.faults import CircuitBreaker
from repro.membership import MembershipConfig, SwimMembership
from repro.overlay.chord import ChordRing

N = 24
SEED = 5


def _names():
    return [f"p{i}" for i in range(N)]


def _compromised_set(config):
    fab = Fabric.create(seed=SEED, adversary=config)
    return {n for n in _names() if fab.adversary.compromised(n)}


class TestSelection:
    def test_deterministic_across_fabrics_and_seeds(self):
        config = AdversaryConfig(fraction=0.3, defense=None)
        first = _compromised_set(config)
        # A different simulator seed must not move the compromise set —
        # selection depends only on (seed_salt, name).
        other = Fabric.create(seed=SEED + 99, adversary=config)
        assert first == {n for n in _names()
                         if other.adversary.compromised(n)}
        assert 0 < len(first) < N

    def test_salt_moves_the_set(self):
        base = _compromised_set(AdversaryConfig(fraction=0.3, defense=None))
        salted = _compromised_set(
            AdversaryConfig(fraction=0.3, seed_salt=7, defense=None))
        assert base != salted

    def test_explicit_set_overrides_threshold(self):
        config = AdversaryConfig(fraction=0.9,
                                 compromised=frozenset({"p1", "p2"}),
                                 defense=None)
        assert _compromised_set(config) == {"p1", "p2"}

    def test_fraction_monotone(self):
        small = _compromised_set(AdversaryConfig(fraction=0.1, defense=None))
        large = _compromised_set(AdversaryConfig(fraction=0.4, defense=None))
        # The hash threshold nests: raising the fraction only adds peers.
        assert small <= large


class TestAuditTrail:
    def test_attacks_are_counted(self):
        config = AdversaryConfig(fraction=0.3, defense=None)
        fab = Fabric.create(seed=SEED, adversary=config)
        ring = ChordRing(fab, replication=2)
        for name in _names():
            ring.add_node(name)
        ring.build()
        for j in range(20):
            try:
                ring.lookup(f"p{j % N}", f"key{j}")
            except (LookupError_, StorageError):
                pass
        summary = fab.network.stats.summary()
        assert summary["misrouted"] + summary["forged_routes"] > 0
        assert summary["misrouted"] == fab.network.stats.misrouted
        assert summary["forged_routes"] == fab.network.stats.forged_routes


class TestQuarantineFeeds:
    def _world(self):
        fab = Fabric.create(
            seed=SEED, resilient=True,
            breaker=CircuitBreaker(failure_threshold=4, cooldown=30.0),
            adversary=AdversaryConfig(fraction=0.2,
                                      defense=DefenseConfig()))
        swim = SwimMembership(fab, MembershipConfig())
        for name in _names():
            swim.register(name)
        return fab, swim

    def test_ban_reaches_membership(self):
        fab, swim = self._world()
        fab.adversary.quarantine.flag_provable("p3", "cert")
        assert "p3" in swim.quarantined
        ordered = swim.order_by_health("p0", ["p3", "p1", "p2"])
        assert ordered[-1] == "p3"
        # Quarantine is not a death sentence: the peer is still alive.
        assert not swim.confirmed_dead("p3")
        assert fab.metrics.counter("membership.quarantines").value == 1

    def test_ban_reaches_breaker_and_recovers(self):
        fab, swim = self._world()
        breaker = fab.channel.breaker
        now = fab.sim.now
        fab.adversary.quarantine.flag_provable("p3", "cert")
        assert breaker.state("p3", now) == "open"
        # After the cooldown the breaker half-opens: one probe, and a
        # success closes it again — quarantine is recoverable.
        later = now + breaker.cooldown + 1.0
        assert breaker.state("p3", later) == "half_open"
        assert breaker.allow("p3", later)
        breaker.record_success("p3")
        assert breaker.state("p3", later) == "closed"

    def test_suspects_ban_after_threshold(self):
        fab, _ = self._world()
        quarantine = fab.adversary.quarantine
        quarantine.flag_suspect("p5")
        assert "p5" not in quarantine.banned
        quarantine.flag_suspect("p5")
        assert "p5" in quarantine.banned
        assert quarantine.reasons["p5"] == "outvoted"

    def test_order_last_keeps_banned_reachable(self):
        fab, _ = self._world()
        quarantine = fab.adversary.quarantine
        quarantine.flag_provable("p2", "cert")
        assert quarantine.order_last(["p2", "p9"]) == ["p9", "p2"]
        # Banned peers are reordered, never dropped: they may still be
        # a key's true owner or the only live holder.
        assert set(quarantine.order_last(["p2"])) == {"p2"}


class TestWalkEngine:
    def test_draw_order_matches_inline_loop(self):
        graph = nx.barbell_graph(8, 2)
        graph = nx.relabel_nodes(
            graph, {n: f"u{n}" for n in graph.nodes})
        total_walks, walk_length = 40, 6

        engine = random_walk_landings(graph, "u0", total_walks,
                                      walk_length, _random.Random(3))
        rng = _random.Random(3)
        inline = {node: 0 for node in graph.nodes}
        for _ in range(total_walks):
            node = "u0"
            for _ in range(walk_length):
                neighbors = list(graph.neighbors(node))
                if not neighbors:
                    break
                node = rng.choice(neighbors)
            inline[node] += 1
        assert engine == inline

    def test_region_mass_partitions(self):
        graph = nx.path_graph(6)
        graph = nx.relabel_nodes(
            graph, {n: f"u{n}" for n in graph.nodes})
        landings = random_walk_landings(graph, "u0", 25, 4,
                                        _random.Random(1))
        left = region_mass(landings, {"u0", "u1", "u2"}, 25)
        right = region_mass(landings, {"u3", "u4", "u5"}, 25)
        assert left + right == 1.0
