"""The adversary-off gate: an absent (or idle) adversary must be free.

Acceptance for the adversary subsystem: ``adversary=None`` — and even an
*installed* adversary, whose decisions are hash-derived — leaves every
legacy RNG stream untouched, so the committed E12/E13/E17 tables
regenerate byte-identically.  These tests prove the property at the
stream level with a recording-RNG wrapper (the same instrument
``tests/overlay/test_overload_properties.py`` uses) rather than trusting
the table diff alone.
"""

from __future__ import annotations

from repro.adversary import AdversaryConfig
from repro.exceptions import LookupError_, StorageError
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.kademlia import KademliaOverlay

N = 16
KEYS = 6
LOOKUPS = 12
SEED = 71


class _RecordingRng:
    """Wraps an RNG, logging every draw so two streams can be compared."""

    def __init__(self, inner):
        self._inner = inner
        self.draws = []

    def random(self):
        value = self._inner.random()
        self.draws.append(round(value, 12))
        return value

    def uniform(self, low, high):
        value = self._inner.uniform(low, high)
        self.draws.append(round(value, 12))
        return value

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _record(fab):
    recorders = []
    net_rng = _RecordingRng(fab.network._rng)
    fab.network._rng = net_rng
    recorders.append(net_rng)
    if fab.channel is not None:
        chan_rng = _RecordingRng(fab.channel._rng)
        fab.channel._rng = chan_rng
        recorders.append(chan_rng)
    return recorders


def _chord_workload(adversary):
    fab = Fabric.create(seed=SEED, adversary=adversary)
    recorders = _record(fab)
    ring = ChordRing(fab, replication=2)
    for i in range(N):
        ring.add_node(f"p{i}")
    ring.build()
    for i in range(KEYS):
        try:
            ring.put(f"p{(3 * i + 1) % N}", f"key{i}", b"blob")
        except (LookupError_, StorageError):
            pass  # a compromised router can kill a bare put, too
    for j in range(LOOKUPS):
        try:
            ring.get(f"p{(2 * j + 1) % N}", f"key{j % KEYS}")
        except (LookupError_, StorageError):
            pass  # adversarial drops/misroutes may fail a bare lookup
    return ([list(r.draws) for r in recorders],
            repr(fab.network.stats.summary()))


def _kad_workload(adversary):
    fab = Fabric.create(seed=SEED, adversary=adversary)
    recorders = _record(fab)
    overlay = KademliaOverlay(fab)
    for i in range(N):
        overlay.add_node(f"p{i}")
    overlay.bootstrap()
    for i in range(KEYS):
        try:
            overlay.put(f"p{(3 * i + 1) % N}", f"key{i}", b"blob")
        except (LookupError_, StorageError):
            pass  # a compromised router can kill a bare put, too
    for j in range(LOOKUPS):
        try:
            overlay.get(f"p{(2 * j + 1) % N}", f"key{j % KEYS}")
        except (LookupError_, StorageError):
            pass  # adversarial drops/misroutes may fail a bare lookup
    return ([list(r.draws) for r in recorders],
            repr(fab.network.stats.summary()))


class TestIdleAdversaryIsFree:
    """An installed adversary that compromises nobody draws nothing."""

    def test_chord_streams_identical(self):
        base_draws, base_summary = _chord_workload(None)
        idle_draws, idle_summary = _chord_workload(
            AdversaryConfig(fraction=0.0, defense=None))
        assert idle_draws == base_draws
        assert idle_summary == base_summary

    def test_kademlia_streams_identical(self):
        base_draws, base_summary = _kad_workload(None)
        idle_draws, idle_summary = _kad_workload(
            AdversaryConfig(fraction=0.0, defense=None))
        assert idle_draws == base_draws
        assert idle_summary == base_summary


class TestTwoRunByteIdentity:
    """E12/E17-style summaries are repr-identical run to run."""

    def test_adversary_none_twice(self):
        first = _chord_workload(None)
        second = _chord_workload(None)
        assert first == second

    def test_active_adversary_twice(self):
        config = AdversaryConfig(fraction=0.25, defense=None)
        first = _chord_workload(config)
        second = _chord_workload(config)
        assert first == second

    def test_active_kad_adversary_twice(self):
        config = AdversaryConfig(fraction=0.25, defense=None)
        first = _kad_workload(config)
        second = _kad_workload(config)
        assert first == second
