"""Tests for the secure social search layer (Section V)."""

import random

import networkx as nx
import pytest

from repro.exceptions import AccessDeniedError, SearchError
from repro.search import (AccessGuard, AliasProxy, BlindPublisher,
                          BlindSubscriber, DataOwner, HandlerDirectory,
                          Matryoshka, PseudonymousSearcher, ResourceOwner,
                          SearchIndex, best_trust_chain, blind_term, collude,
                          friends_only_policy, rank_results, tokenize)
from repro.search.proxy import anonymity_set_size


class TestSearchIndex:
    def _indexes(self):
        plain = SearchIndex()
        blinded = SearchIndex(blinding_secret=b"s" * 32)
        docs = {
            "c1": "weekend party at the beach #party",
            "c2": "research deadline friday",
            "c3": "party research crossover",
        }
        for idx in (plain, blinded):
            for cid, text in docs.items():
                idx.add_document(cid, text)
        return plain, blinded

    def test_tokenize(self):
        assert tokenize("Hello, World! #Party") == ["hello", "world",
                                                    "#party"]

    def test_same_results_both_modes(self):
        plain, blinded = self._indexes()
        for query in ("party", "research", "party research"):
            assert plain.search(query) == blinded.search(query)

    def test_conjunctive_semantics(self):
        plain, _ = self._indexes()
        assert plain.search("party research") == ["c3"]
        assert plain.search("party") == ["c1", "c3"]
        assert plain.search("ghost-term") == []

    def test_empty_query_rejected(self):
        plain, _ = self._indexes()
        with pytest.raises(SearchError):
            plain.search("   ")

    def test_host_view_leak_difference(self):
        plain, blinded = self._indexes()
        assert "party" in plain.host_view()
        assert "party" not in blinded.host_view()
        assert plain.vocabulary_leaked()
        assert not blinded.vocabulary_leaked()

    def test_blind_term_deterministic_keyed(self):
        assert blind_term(b"k" * 32, "x") == blind_term(b"k" * 32, "x")
        assert blind_term(b"k" * 32, "x") != blind_term(b"j" * 32, "x")


class TestBlindSubscribe:
    def test_subscription_decrypts_matching_only(self, rng):
        publisher = BlindPublisher("alice", rng=rng)
        subscriber = BlindSubscriber("bob", rng=rng)
        subscriber.subscribe(publisher, "#privacy")
        publisher.publish("#privacy", "one")
        publisher.publish("#cats", "two")
        publisher.publish("#privacy", "three")
        assert subscriber.fetch_all(publisher) == [("#privacy", "one"),
                                                   ("#privacy", "three")]

    def test_publisher_sees_only_blinded_values(self, rng):
        publisher = BlindPublisher("alice", rng=rng)
        s1 = BlindSubscriber("b1", rng=rng)
        s2 = BlindSubscriber("b2", rng=rng)
        s1.subscribe(publisher, "#same")
        s2.subscribe(publisher, "#same")
        log = publisher.subscription_log
        assert len(log) == 2 and log[0] != log[1]

    def test_unsubscribed_items_opaque(self, rng):
        publisher = BlindPublisher("alice", rng=rng)
        subscriber = BlindSubscriber("bob", rng=rng)
        subscriber.subscribe(publisher, "#a")
        item = publisher.publish("#b", "hidden")
        assert subscriber.try_decrypt(item) is None

    def test_tags_stable_per_keyword(self, rng):
        publisher = BlindPublisher("alice", rng=rng)
        i1 = publisher.publish("#k", "m1")
        i2 = publisher.publish("#k", "m2")
        assert i1.tag == i2.tag  # same keyword -> same matching tag


class TestProxy:
    def test_aliases_hide_identities(self, rng):
        proxy = AliasProxy("p", rng)
        proxy.register("alice")
        query = proxy.forward_query("alice", "find carol")
        assert "alice" not in query.alias
        assert query.alias.startswith("anon-")

    def test_alias_stable_per_user(self, rng):
        proxy = AliasProxy("p", rng)
        assert proxy.register("alice") == proxy.register("alice")

    def test_reply_routing(self, rng):
        proxy = AliasProxy("p", rng)
        alias = proxy.register("alice")
        user, payload = proxy.deliver_reply(alias, "results")
        assert user == "alice"
        with pytest.raises(SearchError):
            proxy.deliver_reply("anon-ffffffff", "x")

    def test_unregistered_user_rejected(self, rng):
        proxy = AliasProxy("p", rng)
        with pytest.raises(SearchError):
            proxy.forward_query("ghost", "q")

    def test_collusion_deanonymizes_everything(self, rng):
        p1, p2 = AliasProxy("p1", rng), AliasProxy("p2", rng)
        p1.register("alice")
        p2.register("bob")
        p1.forward_query("alice", "q1")
        p2.forward_query("bob", "q2")
        result = collude([p1, p2])
        assert result.fraction_linked == 1.0
        assert set(result.deanonymized.values()) == {"alice", "bob"}

    def test_anonymity_set_is_population(self, rng):
        proxy = AliasProxy("p", rng)
        for i in range(25):
            proxy.register(f"u{i}")
        assert anonymity_set_size(proxy) == 25


class TestMatryoshka:
    GRAPH = nx.relabel_nodes(nx.barabasi_albert_graph(150, 3, seed=5),
                             {i: f"u{i}" for i in range(150)})

    def test_shells_are_bfs_rings(self):
        shells = Matryoshka(self.GRAPH, "u7", depth=2)
        ring1 = set(shells.shells[0])
        assert ring1 == {str(n) for n in self.GRAPH.neighbors("u7")}
        for node in shells.shells[1]:
            assert node not in ring1 and node != "u7"

    def test_request_reaches_core_through_shells(self, rng):
        shells = Matryoshka(self.GRAPH, "u7", depth=3)
        request = shells.route_request("u100", rng)
        assert request.path[0] in shells.entry_points
        assert shells.parent[request.path[-1]] == "u7"
        assert request.hops <= 4

    def test_core_never_sees_requester(self, rng):
        shells = Matryoshka(self.GRAPH, "u7", depth=3)
        for _ in range(10):
            request = shells.route_request("u100", rng)
            knowledge = shells.observer_knowledge(request)
            assert knowledge["u7"]["knows_requester"] is None
            assert knowledge["u7"]["previous_hop"] in shells.shells[0]

    def test_only_entry_sees_requester(self, rng):
        shells = Matryoshka(self.GRAPH, "u7", depth=3)
        request = shells.route_request("u100", rng)
        knowledge = shells.observer_knowledge(request)
        entry = request.path[0]
        assert knowledge[entry]["knows_requester"] == "u100"
        for relay in request.path[1:]:
            assert knowledge[relay]["knows_requester"] is None

    def test_anonymity_set(self):
        shells = Matryoshka(self.GRAPH, "u7", depth=3)
        population = 150
        expected = population - 1 - len(shells.shells[0])
        assert shells.requester_anonymity_set(population) == expected

    def test_missing_core_rejected(self):
        with pytest.raises(SearchError):
            Matryoshka(self.GRAPH, "ghost")

    def test_depth_too_deep_for_small_graph(self):
        tiny = nx.path_graph(3)
        tiny = nx.relabel_nodes(tiny, {i: f"t{i}" for i in tiny.nodes})
        with pytest.raises(SearchError):
            Matryoshka(tiny, "t0", depth=10)


class TestZKPAccess:
    def _world(self, rng):
        owner = ResourceOwner("alice", rng=rng)
        owner.publish("alice/album", b"photos")
        guard = AccessGuard(owner)
        friend = PseudonymousSearcher("bob", rng=rng)
        friend.receive_credential(owner.issue_credential("alice/album"))
        return owner, guard, friend

    def test_credentialed_access(self, rng):
        _, guard, friend = self._world(rng)
        assert friend.access(guard, "alice/album") == b"photos"

    def test_uncredentialed_denied(self, rng):
        _, guard, _ = self._world(rng)
        stranger = PseudonymousSearcher("eve", rng=rng)
        with pytest.raises(AccessDeniedError):
            stranger.access(guard, "alice/album")

    def test_guard_log_contains_only_pseudonyms(self, rng):
        _, guard, friend = self._world(rng)
        friend.access(guard, "alice/album")
        friend.access(guard, "alice/album")
        pseudonyms = [p for p, _ in guard.grant_log]
        assert all(p.startswith("pseud-") for p in pseudonyms)
        assert "bob" not in str(guard.grant_log)
        assert len(set(pseudonyms)) == 2  # unlinkable sessions

    def test_replay_rejected(self, rng):
        owner, guard, friend = self._world(rng)
        from repro.search.zkp_access import AccessRequest
        from repro.crypto.zkp import prove_dlog_nizk
        credential = friend.credentials["alice/album"]
        pseudonym, nonce = "pseud-fixed", 42
        context = guard.request_context("alice/album", pseudonym, nonce)
        proof = prove_dlog_nizk(friend.group, credential.x, context, rng)
        request = AccessRequest(pseudonym=pseudonym,
                                resource_id="alice/album", nonce=nonce,
                                proof=proof)
        assert guard.handle(request) == b"photos"
        with pytest.raises(AccessDeniedError, match="replay"):
            guard.handle(request)

    def test_proof_bound_to_resource(self, rng):
        """A proof for one resource cannot unlock another."""
        owner = ResourceOwner("alice", rng=rng)
        owner.publish("r1", b"one")
        owner.publish("r2", b"two")
        guard = AccessGuard(owner)
        user = PseudonymousSearcher("bob", rng=rng)
        user.receive_credential(owner.issue_credential("r1"))
        from repro.search.zkp_access import AccessRequest
        from repro.crypto.zkp import prove_dlog_nizk
        context = guard.request_context("r1", "pseud-x", 1)
        proof = prove_dlog_nizk(user.group, user.credentials["r1"].x,
                                context, rng)
        bad = AccessRequest(pseudonym="pseud-x", resource_id="r2", nonce=1,
                            proof=proof)
        with pytest.raises(AccessDeniedError):
            guard.handle(bad)

    def test_unknown_resource(self, rng):
        _, guard, friend = self._world(rng)
        with pytest.raises(SearchError):
            guard.handle.__self__.owner.issue_credential("ghost")


class TestHandlers:
    def test_directory_shows_labels_not_content(self):
        alice = DataOwner("alice", friends_only_policy({"bob"}))
        alice.register("birthday", b"26 October 1990")
        alice.register("phone", b"555-1234", searchable=False)
        directory = HandlerDirectory()
        assert directory.publish(alice) == 1  # phone not searchable
        view = directory.directory_view()
        assert view == ["alice/birthday"]

    def test_search_then_owner_approval(self):
        alice = DataOwner("alice", friends_only_policy({"bob"}))
        alice.register("birthday", b"26 October 1990")
        directory = HandlerDirectory()
        directory.publish(alice)
        hits = directory.search("birth")
        assert len(hits) == 1
        assert alice.dereference("bob", hits[0].label) == b"26 October 1990"
        with pytest.raises(AccessDeniedError):
            alice.dereference("eve", hits[0].label)

    def test_request_log(self):
        alice = DataOwner("alice", friends_only_policy({"bob"}))
        alice.register("x", b"v")
        alice.dereference("bob", "x")
        try:
            alice.dereference("eve", "x")
        except AccessDeniedError:
            pass
        assert alice.request_log == [("bob", "x", True),
                                     ("eve", "x", False)]

    def test_unknown_handler(self):
        alice = DataOwner("alice")
        with pytest.raises(SearchError):
            alice.dereference("bob", "ghost")

    def test_default_policy_denies(self):
        alice = DataOwner("alice")
        alice.register("x", b"v")
        with pytest.raises(AccessDeniedError):
            alice.dereference("anyone", "x")


class TestTrustRanking:
    def _graph(self):
        graph = nx.Graph()
        graph.add_edge("alice", "bob", trust=0.9)
        graph.add_edge("bob", "sara", trust=0.8)
        graph.add_edge("alice", "carol", trust=0.4)
        graph.add_edge("carol", "sara", trust=0.9)
        graph.add_edge("carol", "dan", trust=0.5)
        return graph

    def test_best_chain_is_max_product(self):
        trust, chain = best_trust_chain(self._graph(), "alice", "sara")
        assert trust == pytest.approx(0.72)
        assert chain == ["alice", "bob", "sara"]

    def test_self_trust(self):
        assert best_trust_chain(self._graph(), "alice", "alice") == \
            (1.0, ["alice"])

    def test_depth_limit(self):
        graph = nx.path_graph(6)
        graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in graph.nodes})
        for a, b in graph.edges:
            graph[a][b]["trust"] = 0.9
        trust, chain = best_trust_chain(graph, "n0", "n5", max_depth=3)
        assert trust == 0.0 and chain == []
        trust, chain = best_trust_chain(graph, "n0", "n5", max_depth=5)
        assert trust == pytest.approx(0.9 ** 5)

    def test_invalid_trust_weight_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", trust=1.5)
        with pytest.raises(SearchError):
            best_trust_chain(graph, "a", "b")

    def test_missing_nodes_rejected(self):
        with pytest.raises(SearchError):
            best_trust_chain(self._graph(), "alice", "ghost")

    def test_ranking_blends_trust_and_popularity(self):
        graph = self._graph()
        ranked = rank_results(graph, "alice", ["sara", "dan"],
                              trust_weight=1.0)
        assert ranked[0].user == "sara"  # higher trust
        popularity = {"sara": 0.1, "dan": 1.0}
        ranked = rank_results(graph, "alice", ["sara", "dan"],
                              popularity=popularity, trust_weight=0.0)
        assert ranked[0].user == "dan"  # popularity only

    def test_unreachable_candidate_scored_by_popularity(self):
        graph = self._graph()
        graph.add_node("hermit")
        ranked = rank_results(graph, "alice", ["hermit"],
                              popularity={"hermit": 0.9})
        assert ranked[0].trust == 0.0
        assert ranked[0].score == pytest.approx(0.3 * 0.9)

    def test_invalid_weight(self):
        with pytest.raises(SearchError):
            rank_results(self._graph(), "alice", ["sara"], trust_weight=2.0)
