"""DosnConfig(membership=...) wiring: detector attached everywhere."""

import pytest

from repro.dosn.api import DosnConfig, DosnNetwork
from repro.exceptions import OverlayError
from repro.membership import MembershipConfig
from repro.storage2 import ReplicationConfig


def build(n=8, **overrides):
    config = DosnConfig(
        architecture="dht", seed=7, resilient=True,
        replication=ReplicationConfig(n=3, r=2, w=2,
                                      repair_interval=300.0),
        membership=MembershipConfig(), **overrides)
    net = DosnNetwork(config=config)
    net.add_users([f"u{i}" for i in range(n)])
    for i in range(n - 1):
        net.befriend(f"u{i}", f"u{i+1}")
    return net


class TestConfigSurface:
    def test_membership_requires_dht(self):
        for arch in ("central", "federation", "local"):
            with pytest.raises(OverlayError):
                DosnConfig(architecture=arch,
                           membership=MembershipConfig())

    def test_default_config_has_no_membership(self):
        net = DosnNetwork(config=DosnConfig(architecture="dht", seed=1))
        assert net.membership is None
        assert net.fabric.membership is None


class TestWiring:
    def test_everyone_discovers_the_same_service(self):
        net = build()
        assert net.membership is not None
        assert net.fabric.membership is net.membership
        assert net.fabric.channel.membership is net.membership
        assert net.repair_daemon.membership is net.membership

    def test_users_are_registered_as_members(self):
        net = build(n=5)
        assert sorted(net.membership.views) == [f"u{i}" for i in range(5)]

    def test_first_operation_starts_the_detector(self):
        net = build()
        assert not net.membership._started
        net.post("u0", "hello")
        assert net.membership._started

    def test_detector_runs_alongside_the_social_workload(self):
        net = build()
        cid = net.post("u0", "hello")
        net.sim.run(until=60.0)
        net.network.nodes["u5"].go_offline()
        net.sim.run(until=net.sim.now + 400.0)
        assert net.membership.confirmed_dead("u5")
        false, _ = net.membership.false_positive_stats()
        assert false == 0
        assert net.read("u1", "u0", cid) is not None

    def test_membership_works_with_plain_int_replication(self):
        config = DosnConfig(architecture="dht", seed=7, resilient=True,
                            replication=2,
                            membership=MembershipConfig())
        net = DosnNetwork(config=config)
        net.add_users([f"u{i}" for i in range(6)])
        net.befriend("u0", "u1")
        cid = net.post("u0", "hi")
        assert net.read("u1", "u0", cid) is not None
        assert net.membership._started
