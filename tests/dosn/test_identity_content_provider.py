"""Tests for identities/key registry, content objects, and the provider."""

import pytest

from repro.dosn.content import (Post, Profile, content_id,
                                verify_content_address)
from repro.dosn.identity import Identity, KeyRegistry, create_identity
from repro.dosn.provider import CentralProvider, ExposureReport
from repro.exceptions import (CryptoError, IntegrityError, InvalidKeyError,
                              StorageError)


class TestIdentity:
    def test_create_identity_deterministic_per_name(self):
        a1 = create_identity("alice")
        a2 = create_identity("alice")
        assert a1.fingerprint() == a2.fingerprint()

    def test_distinct_users_distinct_keys(self):
        assert create_identity("alice").fingerprint() != \
            create_identity("bob").fingerprint()

    def test_registry_roundtrip(self):
        registry = KeyRegistry()
        alice = create_identity("alice")
        registry.register(alice)
        public = registry.get("alice")
        assert public.verify_key.y == alice.verify_key.y
        assert "alice" in registry and len(registry) == 1

    def test_registry_blocks_key_substitution(self):
        """An impersonator cannot rebind a registered name to new keys."""
        registry = KeyRegistry()
        registry.register(create_identity("alice"))
        import random
        impostor = create_identity("alice", rng=random.Random(999))
        with pytest.raises(InvalidKeyError):
            registry.register(impostor)

    def test_registry_register_idempotent(self):
        registry = KeyRegistry()
        alice = create_identity("alice")
        registry.register(alice)
        registry.register(alice)  # same keys: fine
        assert len(registry) == 1

    def test_unknown_user_raises(self):
        with pytest.raises(CryptoError):
            KeyRegistry().get("ghost")

    def test_signing_works_end_to_end(self):
        alice = create_identity("alice")
        sig = alice.signer.sign(b"message")
        assert alice.verify_key.verify(b"message", sig)


class TestContent:
    def test_content_id_stable_and_distinct(self):
        a = content_id("alice", "post", b"hello", 0)
        assert a == content_id("alice", "post", b"hello", 0)
        assert a != content_id("alice", "post", b"hello", 1)
        assert a != content_id("bob", "post", b"hello", 0)
        assert a != content_id("alice", "comment", b"hello", 0)

    def test_verify_content_address(self):
        cid = content_id("alice", "post", b"x", 0)
        verify_content_address(cid, "alice", "post", b"x", 0)
        with pytest.raises(IntegrityError):
            verify_content_address(cid, "alice", "post", b"tampered", 0)

    def test_post_encoding_distinct(self):
        p1 = Post(author="a", sequence=0, text="hi", tags=("#x",))
        p2 = Post(author="a", sequence=0, text="hi", tags=("#y",))
        assert p1.encode() != p2.encode()
        assert p1.content_id != Post(author="a", sequence=1,
                                     text="hi").content_id

    def test_profile_visibility(self):
        profile = Profile(owner="alice")
        profile.set("name", "Alice", visibility="public")
        profile.set("phone", "555", visibility="friends")
        profile.set("diary", "...", visibility="close-friends")
        assert profile.public_view() == {"name": "Alice"}
        assert profile.visible_to(("public", "friends")) == {
            "name": "Alice", "phone": "555"}

    def test_profile_field_replacement(self):
        profile = Profile(owner="alice")
        profile.set("city", "Rome")
        profile.set("city", "Istanbul")
        assert profile.fields["city"].value == "Istanbul"


class TestCentralProvider:
    def _provider(self):
        provider = CentralProvider()
        provider.store("alice", "c1", b"post one")
        provider.store("bob", "c2", b"post two")
        provider.record_edge("alice", "bob")
        return provider

    def test_store_fetch_and_read_log(self):
        provider = self._provider()
        assert provider.fetch("carol", "c1") == b"post one"
        assert ("carol", "c1") in provider.read_log

    def test_data_retention(self):
        """Section II-A: deletion is cosmetic; employees still read it."""
        provider = self._provider()
        provider.delete("c1")
        with pytest.raises(StorageError):
            provider.fetch("carol", "c1")
        assert provider.employee_browse("c1") == b"post one"

    def test_employee_browse_everything(self):
        provider = self._provider()
        assert provider.employee_browse("c2") == b"post two"
        with pytest.raises(StorageError):
            provider.employee_browse("never-uploaded")

    def test_sell_profile_dossier(self):
        provider = self._provider()
        provider.fetch("alice", "c2")
        dossier = provider.sell_profile("alice")
        assert dossier["content"] == {"c1": b"post one"}
        assert dossier["friends"] == {"bob"}
        assert dossier["read_history"] == ["c2"]

    def test_exposure_full_view(self):
        provider = self._provider()
        report = provider.exposure(total_content=2, total_edges=1)
        assert report.content_view == 1.0
        assert report.metadata_view == 1.0
        assert report.graph_view == 1.0

    def test_exposure_with_encryption(self):
        provider = self._provider()
        report = provider.exposure(total_content=2, total_edges=1,
                                   readable_ids=set())
        assert report.content_view == 0.0
        assert report.metadata_view == 1.0  # ciphertexts still metadata

    def test_exposure_dominates(self):
        big = ExposureReport("p", 1.0, 1.0, 1.0)
        small = ExposureReport("q", 0.1, 0.5, 0.2)
        assert big.dominates(small)
        assert not small.dominates(big)
        assert not big.dominates(big)  # not strictly more
