"""Tests for DosnUser, feed assembly, storage backends, and DosnNetwork."""

import pytest

from repro.dosn import DosnConfig, DosnNetwork
from repro.dosn.identity import KeyRegistry
from repro.dosn.storage import LocalBackend
from repro.dosn.user import DosnUser
from repro.exceptions import (AccessDeniedError, IntegrityError,
                              OverlayError, StorageError)


def small_net(architecture="dht", **overrides):
    config = DosnConfig(architecture=architecture, seed=5, **overrides)
    net = DosnNetwork(config=config)
    for name in ("alice", "bob", "carol", "dave", "eve"):
        net.add_user(name)
    net.befriend("alice", "bob")
    net.befriend("alice", "carol")
    net.befriend("bob", "dave")
    return net


class TestDosnUser:
    def _pair(self):
        registry = KeyRegistry()
        alice = DosnUser("alice", registry)
        bob = DosnUser("bob", registry)
        alice.befriend(bob)
        return alice, bob

    def test_friend_opens_post(self):
        alice, bob = self._pair()
        cid, blob = alice.compose_post("hello", tags=["#hi"])
        post = bob.open_post("alice", blob, expected_cid=cid)
        assert post.text == "hello" and post.tags == ("#hi",)

    def test_stranger_denied(self):
        registry = KeyRegistry()
        alice = DosnUser("alice", registry)
        eve = DosnUser("eve", registry)
        cid, blob = alice.compose_post("private")
        with pytest.raises(AccessDeniedError):
            eve.open_post("alice", blob, expected_cid=cid)

    def test_author_opens_own_post(self):
        alice, _ = self._pair()
        cid, blob = alice.compose_post("mine")
        assert alice.open_post("alice", blob).text == "mine"

    def test_wrong_cid_detected(self):
        alice, bob = self._pair()
        cid1, blob1 = alice.compose_post("one")
        cid2, blob2 = alice.compose_post("two")
        with pytest.raises(IntegrityError, match="content id"):
            bob.open_post("alice", blob2, expected_cid=cid1)

    def test_impersonated_blob_detected(self):
        """Bob re-serves his own post claiming it is alice's."""
        alice, bob = self._pair()
        _, blob = bob.compose_post("from bob")
        # claim authorship: open as 'alice' fails on author mismatch or key
        with pytest.raises((IntegrityError, AccessDeniedError)):
            alice.open_post("alice", blob)

    def test_timeline_sync_and_verified_cids(self):
        alice, bob = self._pair()
        cids = [alice.compose_post(f"p{i}")[0] for i in range(3)]
        assert bob.sync_timeline(alice) == 3
        assert bob.verified_cids("alice") == cids
        assert bob.sync_timeline(alice) == 0  # idempotent

    def test_key_rotation_revokes_future(self):
        alice, bob = self._pair()
        alice.rotate_group_key(except_friends=["bob"])
        cid, blob = alice.compose_post("after revocation")
        with pytest.raises(AccessDeniedError):
            bob.open_post("alice", blob)

    def test_key_rotation_keeps_survivors(self):
        registry = KeyRegistry()
        alice = DosnUser("alice", registry)
        bob = DosnUser("bob", registry)
        carol = DosnUser("carol", registry)
        alice.befriend(bob)
        alice.befriend(carol)
        alice.rotate_group_key(except_friends=["bob"])
        alice.redistribute_key({"carol": carol})
        cid, blob = alice.compose_post("survivors only")
        assert carol.open_post("alice", blob).text == "survivors only"

    def test_unencrypted_mode(self):
        registry = KeyRegistry()
        alice = DosnUser("alice", registry, encrypt_content=False)
        eve = DosnUser("eve", registry, encrypt_content=False)
        cid, blob = alice.compose_post("public by design")
        # anyone can open, but integrity still enforced
        assert eve.open_post("alice", blob).text == "public by design"


class TestFeed:
    def test_feed_collects_all_friends(self):
        net = small_net()
        net.post("bob", "bob post")
        net.post("carol", "carol post")
        feed = net.feed("alice")
        assert feed.clean
        assert sorted(i.post.text for i in feed.items) == [
            "bob post", "carol post"]

    def test_feed_ordering(self):
        net = small_net()
        for i in range(3):
            net.post("bob", f"b{i}")
        feed = net.feed("alice")
        sequences = [i.post.sequence for i in feed.items]
        assert sequences == sorted(sequences)

    def test_feed_limit(self):
        net = small_net()
        for i in range(5):
            net.post("bob", f"b{i}")
        feed = net.feed("alice", limit_per_friend=2)
        assert len(feed.items) == 2
        assert [i.post.text for i in feed.items] == ["b3", "b4"]

    def test_feed_reports_unavailable_content(self):
        net = small_net(architecture="local")
        net.post("bob", "will vanish")
        net.storage.online["bob"] = False
        feed = net.feed("alice")
        assert not feed.clean
        assert len(feed.unavailable) == 1

    def test_feed_flags_tampered_storage(self):
        net = small_net(architecture="central")
        cid = net.post("bob", "original")
        # provider swaps the blob for another user's
        other_cid = net.post("carol", "other")
        provider = net.provider
        provider._content[cid] = provider._content[other_cid]
        feed = net.feed("alice")
        assert any("carol" == author or "bob" == author
                   for author, _ in feed.violations) or not feed.clean

    def test_non_friends_not_in_feed(self):
        net = small_net()
        net.post("dave", "dave post")  # dave is bob's friend, not alice's
        feed = net.feed("alice")
        assert all(i.author != "dave" for i in feed.items)


class TestDosnNetwork:
    @pytest.mark.parametrize("arch", ["central", "dht", "federation",
                                      "local"])
    def test_post_read_roundtrip(self, arch):
        net = small_net(architecture=arch)
        cid = net.post("alice", "hello world")
        result = net.read("bob", "alice", cid)
        assert result.post.text == "hello world"
        assert result.verified and not result.degraded
        assert result.source in ("quorum", "bare")

    def test_unknown_architecture(self):
        with pytest.raises(OverlayError):
            DosnNetwork(architecture="blockchain")

    def test_encrypted_central_provider_sees_nothing_readable(self):
        net = small_net(architecture="central")
        net.post("alice", "secret")
        worst = net.worst_observer()
        assert worst.observer == "provider"
        assert worst.content_view == 0.0
        assert worst.metadata_view == 1.0
        assert worst.graph_view == 1.0

    def test_unencrypted_central_full_exposure(self):
        net = small_net(architecture="central", encrypt_content=False)
        net.post("alice", "readable")
        worst = net.worst_observer()
        assert worst.content_view == 1.0

    def test_dht_distributes_exposure(self):
        net = DosnNetwork(config=DosnConfig(
            architecture="dht", seed=9, encrypt_content=False))
        names = [f"user{i}" for i in range(24)]
        for name in names:
            net.add_user(name)
        for i in range(0, 24, 2):
            net.befriend(names[i], names[i + 1])
        for name in names[:12]:
            net.post(name, f"post by {name}")
        worst = net.worst_observer()
        # no single peer stores everything
        assert worst.metadata_view < 1.0

    def test_apply_social_graph(self):
        import networkx as nx
        net = DosnNetwork(architecture="local", seed=1)
        graph = nx.path_graph(4)
        graph = nx.relabel_nodes(graph, {i: f"u{i}" for i in graph.nodes})
        for node in graph.nodes:
            net.add_user(str(node))
        net.apply_social_graph(graph)
        assert "u1" in net.users["u0"].friends

    def test_worst_observer_empty_network(self):
        net = DosnNetwork(architecture="local", seed=1)
        report = net.worst_observer()
        assert report.content_view == 0.0


class TestLocalBackend:
    def test_offline_owner_unavailable(self):
        backend = LocalBackend()
        backend.put("alice", "c1", b"x")
        assert backend.get("bob", "c1") == b"x"
        backend.online["alice"] = False
        with pytest.raises(StorageError):
            backend.get("bob", "c1")

    def test_missing_content(self):
        with pytest.raises(StorageError):
            LocalBackend().get("bob", "ghost")
