"""The StorageBackend contract, enforced across all four architectures.

Every backend behind :class:`~repro.dosn.api.DosnNetwork` must satisfy the
same interface semantics — roundtripping blobs, failing on unknown ids
with the repo's storage exception family, and reporting observer views
consistent with what was actually stored — or the E8 exposure comparison
stops being apples-to-apples.
"""

import pytest

from repro.dosn.provider import CentralProvider
from repro.dosn.storage import (CentralBackend, DHTBackend,
                                FederationBackend, LocalBackend)
from repro.exceptions import ReproError, StorageError
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.federation import FederatedNetwork
from repro.storage2 import ReplicatedStore, ReplicationConfig

USERS = ["alice", "bob", "carol"]


def _central():
    return CentralBackend(CentralProvider())


def _dht():
    fabric = Fabric.create(seed=7)
    ring = ChordRing(fabric, replication=2)
    for name in USERS:
        ring.add_node(name)
    ring.build()
    return DHTBackend(ring)


def _dht_quorum():
    fabric = Fabric.create(seed=7)
    ring = ChordRing(fabric, replication=3)
    for name in USERS:
        ring.add_node(name)
    ring.build()
    quorum = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
    return DHTBackend(ring, quorum=quorum)


def _federation():
    fabric = Fabric.create(seed=7)
    federation = FederatedNetwork(fabric.network, ["pod0", "pod1"])
    for name in USERS:
        federation.register_user(name)
    return FederationBackend(federation)


def _local():
    return LocalBackend()


BACKENDS = {
    "central": _central,
    "dht": _dht,
    "dht_quorum": _dht_quorum,
    "federation": _federation,
    "local": _local,
}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    return BACKENDS[request.param]()


class TestStorageBackendContract:
    def test_put_get_roundtrip(self, backend):
        backend.put("alice", "cid-1", b"hello", recipients=["bob"])
        assert backend.get("bob", "cid-1") == b"hello"

    def test_reader_can_be_the_author(self, backend):
        backend.put("alice", "cid-2", b"mine", recipients=[])
        assert backend.get("alice", "cid-2") == b"mine"

    def test_unknown_cid_raises_storage_family(self, backend):
        with pytest.raises(ReproError):
            backend.get("alice", "no-such-cid")

    def test_observer_views_cover_stored_content(self, backend):
        backend.put("alice", "cid-4", b"blob", recipients=["bob", "carol"])
        views = backend.observer_views()
        assert views, "at least one observer must report a view"
        stored_anywhere = set().union(*views.values())
        assert "cid-4" in stored_anywhere

    def test_observer_views_no_phantom_ids(self, backend):
        backend.put("alice", "cid-5", b"blob", recipients=["bob"])
        for stored in backend.observer_views().values():
            assert stored <= {"cid-5"}

    def test_overwrite_returns_newest_version(self, backend):
        """Two puts under one cid: every reader sees the second payload."""
        backend.put("alice", "cid-v", b"version-1", recipients=["bob"])
        backend.put("alice", "cid-v", b"version-2", recipients=["bob"])
        for reader in USERS:
            assert backend.get(reader, "cid-v") == b"version-2"

    def test_overwrite_is_repeatable(self, backend):
        """Overwriting N times always lands on the last payload."""
        for i in range(4):
            backend.put("alice", "cid-w", f"rev-{i}".encode(),
                        recipients=["bob"])
        assert backend.get("bob", "cid-w") == b"rev-3"


class TestDHTReplicaObserverViews:
    """Satellite guard: E8 exposure must charge *all* replica holders.

    A cid put on a replicated ring is physically stored at every member
    of its replica set, so each of those peers is an observer of the
    ciphertext — attributing it only to the primary successor would
    undercount the "many small providers" exposure the paper warns about.
    """

    @pytest.mark.parametrize("factory", [_dht, _dht_quorum],
                             ids=["legacy", "quorum"])
    def test_all_replica_holders_observe_the_cid(self, factory):
        backend = factory()
        backend.put("alice", "cid-r", b"blob", recipients=["bob"])
        views = backend.observer_views()
        holders = backend.placements["cid-r"]
        assert len(holders) >= 2, "replicated put must pick several holders"
        for holder in holders:
            assert "cid-r" in views[holder], (
                f"replica holder {holder!r} stores cid-r but the observer "
                "view does not attribute it")

    def test_quorum_overwrite_updates_every_holder_copy(self):
        backend = _dht_quorum()
        backend.put("alice", "cid-s", b"old", recipients=[])
        backend.put("alice", "cid-s", b"new", recipients=[])
        quorum = backend.quorum
        stored = {holder: quorum.ring.nodes[holder].store["cid-s"]
                  for holder in backend.placements["cid-s"]}
        versions = {holder: quorum._verify("cid-s", blob).version
                    for holder, blob in stored.items()}
        assert set(versions.values()) == {2}


class TestLocalBackendOfflineOwner:
    def test_offline_owner_makes_content_unavailable(self):
        backend = _local()
        backend.put("alice", "cid-6", b"only-copy")
        assert backend.get("bob", "cid-6") == b"only-copy"
        backend.online["alice"] = False
        with pytest.raises(StorageError):
            backend.get("bob", "cid-6")

    def test_owner_back_online_restores_availability(self):
        backend = _local()
        backend.put("alice", "cid-7", b"only-copy")
        backend.online["alice"] = False
        backend.online["alice"] = True
        assert backend.get("bob", "cid-7") == b"only-copy"


class TestCentralProviderPublicSurface:
    def test_stored_ids_matches_observer_view(self):
        provider = CentralProvider()
        backend = CentralBackend(provider)
        backend.put("alice", "cid-8", b"x")
        backend.put("bob", "cid-9", b"y")
        assert provider.stored_ids() == {"cid-8", "cid-9"}
        assert backend.observer_views() == {
            provider.name: {"cid-8", "cid-9"}}

    def test_stored_ids_survives_pretend_delete(self):
        provider = CentralProvider()
        provider.store("alice", "cid-10", b"x")
        provider.delete("cid-10")
        # data retention: the bytes are still physically there
        assert provider.stored_ids() == {"cid-10"}
