"""The StorageBackend contract, enforced across all four architectures.

Every backend behind :class:`~repro.dosn.api.DosnNetwork` must satisfy the
same interface semantics — roundtripping blobs, failing on unknown ids
with the repo's storage exception family, and reporting observer views
consistent with what was actually stored — or the E8 exposure comparison
stops being apples-to-apples.

The contract suite runs every read assertion through **both** read
paths — the original single :meth:`StorageBackend.get` and the batched
:meth:`StorageBackend.get_many` — so the per-holder coalescing overrides
cannot drift from the sequential semantics.
"""

import pytest

from repro.dosn.provider import CentralProvider
from repro.dosn.storage import (CentralBackend, DHTBackend, FederationBackend,
                                FetchedBlob, LocalBackend)
from repro.exceptions import ReproError, StorageError
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.federation import FederatedNetwork
from repro.storage2 import ReplicatedStore, ReplicationConfig

USERS = ["alice", "bob", "carol"]


def _central():
    return CentralBackend(CentralProvider())


def _dht():
    fabric = Fabric.create(seed=7)
    ring = ChordRing(fabric, replication=2)
    for name in USERS:
        ring.add_node(name)
    ring.build()
    return DHTBackend(ring)


def _dht_quorum():
    fabric = Fabric.create(seed=7)
    ring = ChordRing(fabric, replication=3)
    for name in USERS:
        ring.add_node(name)
    ring.build()
    quorum = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
    return DHTBackend(ring, quorum=quorum)


def _federation():
    fabric = Fabric.create(seed=7)
    federation = FederatedNetwork(fabric.network, ["pod0", "pod1"])
    for name in USERS:
        federation.register_user(name)
    return FederationBackend(federation)


def _local():
    return LocalBackend()


BACKENDS = {
    "central": _central,
    "dht": _dht,
    "dht_quorum": _dht_quorum,
    "federation": _federation,
    "local": _local,
}


def _read_single(backend, reader, cid):
    return backend.get(reader, cid)


def _read_batched(backend, reader, cid):
    got = backend.get_many(reader, [cid])[cid]
    if isinstance(got, Exception):
        raise got
    assert isinstance(got, FetchedBlob)
    return got.blob


#: Both read entry points must satisfy the same contract.
READ_PATHS = {"single": _read_single, "batched": _read_batched}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    return BACKENDS[request.param]()


@pytest.fixture(params=sorted(READ_PATHS))
def read(request):
    return READ_PATHS[request.param]


class TestStorageBackendContract:
    def test_put_get_roundtrip(self, backend, read):
        backend.put("alice", "cid-1", b"hello", recipients=["bob"])
        assert read(backend, "bob", "cid-1") == b"hello"

    def test_reader_can_be_the_author(self, backend, read):
        backend.put("alice", "cid-2", b"mine", recipients=[])
        assert read(backend, "alice", "cid-2") == b"mine"

    def test_unknown_cid_raises_storage_family(self, backend, read):
        with pytest.raises(ReproError):
            read(backend, "alice", "no-such-cid")

    def test_observer_views_cover_stored_content(self, backend):
        backend.put("alice", "cid-4", b"blob", recipients=["bob", "carol"])
        views = backend.observer_views()
        assert views, "at least one observer must report a view"
        stored_anywhere = set().union(*views.values())
        assert "cid-4" in stored_anywhere

    def test_observer_views_no_phantom_ids(self, backend):
        backend.put("alice", "cid-5", b"blob", recipients=["bob"])
        for stored in backend.observer_views().values():
            assert stored <= {"cid-5"}

    def test_overwrite_returns_newest_version(self, backend, read):
        """Two puts under one cid: every reader sees the second payload."""
        backend.put("alice", "cid-v", b"version-1", recipients=["bob"])
        backend.put("alice", "cid-v", b"version-2", recipients=["bob"])
        for reader in USERS:
            assert read(backend, reader, "cid-v") == b"version-2"

    def test_overwrite_is_repeatable(self, backend, read):
        """Overwriting N times always lands on the last payload."""
        for i in range(4):
            backend.put("alice", "cid-w", f"rev-{i}".encode(),
                        recipients=["bob"])
        assert read(backend, "bob", "cid-w") == b"rev-3"


class TestBatchedReads:
    """get_many-specific semantics beyond single-read parity."""

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_batch_matches_sequential(self, name):
        backend = BACKENDS[name]()
        cids = [f"cid-{i}" for i in range(6)]
        for i, cid in enumerate(cids):
            backend.put("alice", cid, f"payload-{i}".encode(),
                        recipients=["bob"])
        got = backend.get_many("bob", cids)
        assert set(got) == set(cids)
        for cid in cids:
            assert got[cid].blob == backend.get("bob", cid)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_failures_are_values_not_raises(self, name):
        """One missing cid must not fail the rest of the batch."""
        backend = BACKENDS[name]()
        backend.put("alice", "cid-ok", b"fine", recipients=["bob"])
        got = backend.get_many("bob", ["cid-ok", "cid-ghost"])
        assert got["cid-ok"].blob == b"fine"
        assert isinstance(got["cid-ghost"], ReproError)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_duplicate_cids_collapse(self, name):
        backend = BACKENDS[name]()
        backend.put("alice", "cid-d", b"once", recipients=["bob"])
        got = backend.get_many("bob", ["cid-d", "cid-d", "cid-d"])
        assert list(got) == ["cid-d"]

    def test_quorum_batch_carries_provenance(self):
        backend = _dht_quorum()
        backend.put("alice", "cid-p", b"v1", recipients=[])
        backend.put("alice", "cid-p", b"v2", recipients=[])
        got = backend.get_many("bob", ["cid-p"])["cid-p"]
        assert (got.source, got.version, got.degraded) == ("quorum", 2, False)
        single = backend.fetch_blob("bob", "cid-p")
        assert (single.source, single.version) == ("quorum", 2)

    @pytest.mark.parametrize("factory", [_dht, _dht_quorum, _federation],
                             ids=["dht", "dht_quorum", "federation"])
    def test_batch_sends_fewer_messages(self, factory):
        """The point of the batch: coalesced routing / per-holder RPCs."""
        backend = factory()
        network = (backend.ring.network if hasattr(backend, "ring")
                   else backend.federation.network)
        cids = [f"cid-{i}" for i in range(8)]
        for cid in cids:
            backend.put("alice", cid, b"x", recipients=["bob", "carol"])
        before = network.stats.messages
        for cid in cids:
            backend.get("bob", cid)
        sequential = network.stats.messages - before
        before = network.stats.messages
        got = backend.get_many("bob", cids)
        batched = network.stats.messages - before
        assert not any(isinstance(v, Exception) for v in got.values())
        assert batched < sequential, (
            f"batched read cost {batched} messages vs {sequential} "
            "sequential — coalescing bought nothing")


class TestDHTReplicaObserverViews:
    """Satellite guard: E8 exposure must charge *all* replica holders.

    A cid put on a replicated ring is physically stored at every member
    of its replica set, so each of those peers is an observer of the
    ciphertext — attributing it only to the primary successor would
    undercount the "many small providers" exposure the paper warns about.
    """

    @pytest.mark.parametrize("factory", [_dht, _dht_quorum],
                             ids=["legacy", "quorum"])
    def test_all_replica_holders_observe_the_cid(self, factory):
        backend = factory()
        backend.put("alice", "cid-r", b"blob", recipients=["bob"])
        views = backend.observer_views()
        holders = backend.placements["cid-r"]
        assert len(holders) >= 2, "replicated put must pick several holders"
        for holder in holders:
            assert "cid-r" in views[holder], (
                f"replica holder {holder!r} stores cid-r but the observer "
                "view does not attribute it")

    def test_quorum_overwrite_updates_every_holder_copy(self):
        backend = _dht_quorum()
        backend.put("alice", "cid-s", b"old", recipients=[])
        backend.put("alice", "cid-s", b"new", recipients=[])
        quorum = backend.quorum
        stored = {holder: quorum.ring.nodes[holder].store["cid-s"]
                  for holder in backend.placements["cid-s"]}
        versions = {holder: quorum._verify("cid-s", blob).version
                    for holder, blob in stored.items()}
        assert set(versions.values()) == {2}


class TestLocalBackendOfflineOwner:
    def test_offline_owner_makes_content_unavailable(self):
        backend = _local()
        backend.put("alice", "cid-6", b"only-copy")
        assert backend.get("bob", "cid-6") == b"only-copy"
        backend.online["alice"] = False
        with pytest.raises(StorageError):
            backend.get("bob", "cid-6")

    def test_owner_back_online_restores_availability(self):
        backend = _local()
        backend.put("alice", "cid-7", b"only-copy")
        backend.online["alice"] = False
        backend.online["alice"] = True
        assert backend.get("bob", "cid-7") == b"only-copy"


class TestCentralProviderPublicSurface:
    def test_stored_ids_matches_observer_view(self):
        provider = CentralProvider()
        backend = CentralBackend(provider)
        backend.put("alice", "cid-8", b"x")
        backend.put("bob", "cid-9", b"y")
        assert provider.stored_ids() == {"cid-8", "cid-9"}
        assert backend.observer_views() == {
            provider.name: {"cid-8", "cid-9"}}

    def test_stored_ids_survives_pretend_delete(self):
        provider = CentralProvider()
        provider.store("alice", "cid-10", b"x")
        provider.delete("cid-10")
        # data retention: the bytes are still physically there
        assert provider.stored_ids() == {"cid-10"}
