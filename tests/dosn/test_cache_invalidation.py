"""Cache invalidation end-to-end: reposts, chain heads, Byzantine holders.

The cache's safety claim is that a hit is never served on stale
evidence: an author re-publishing a cid moves their signed chain head
and re-lists the cid, which every reader's next lookup detects.  These
tests drive that rule through the full network — including against a
StaleServe replica that keeps serving the pre-repost bytes.
"""

import pytest

from repro.cache import CacheConfig
from repro.dosn import DosnConfig, DosnNetwork
from repro.exceptions import OverlayError
from repro.fabric import Fabric
from repro.faults import FaultPlan, StaleServe
from repro.storage2 import ReplicationConfig


def quorum_config(**cache_overrides):
    return DosnConfig(architecture="dht", seed=11,
                      replication=ReplicationConfig(n=3, r=2, w=2),
                      cache=CacheConfig(**cache_overrides))


def small_net(config=None, fabric=None):
    net = DosnNetwork(config=config or DosnConfig(
        architecture="dht", seed=11, cache=CacheConfig()), fabric=fabric)
    for name in ("alice", "bob", "carol"):
        net.add_user(name)
    net.befriend("alice", "bob")
    return net


class TestRepostInvalidation:
    def test_repost_keeps_the_content_id(self):
        net = small_net()
        cid = net.post("alice", "stable address")
        assert net.repost("alice", cid) == cid

    def test_repost_of_unknown_cid_rejected(self):
        net = small_net()
        with pytest.raises(OverlayError):
            net.repost("alice", "no-such-cid")

    def test_repost_by_non_author_rejected(self):
        net = small_net()
        cid = net.post("alice", "mine")
        with pytest.raises(OverlayError):
            net.repost("bob", cid)

    def test_repost_evicts_stale_cached_copy(self):
        net = small_net()
        cid = net.post("alice", "v1 bytes")
        assert net.read("bob", "alice", cid).source in ("quorum", "bare")
        assert net.read("bob", "alice", cid).source == "cache"
        net.repost("alice", cid)  # same cid, re-sealed bytes, head moved
        result = net.read("bob", "alice", cid)
        assert result.source in ("quorum", "bare"), (
            "the cached copy predates the repost and must not be served")
        assert result.post.text == "v1 bytes"
        assert net.cache.invalidations >= 1
        # the re-fetched copy is cached and fresh again
        assert net.read("bob", "alice", cid).source == "cache"

    def test_unrelated_posts_survive_a_repost(self):
        net = small_net()
        keep = net.post("alice", "keep me")
        churn = net.post("alice", "churn me")
        net.read("bob", "alice", keep)
        net.read("bob", "alice", churn)
        net.repost("alice", churn)
        # 'keep' was not re-listed: its entry re-pins and still hits
        assert net.read("bob", "alice", keep).source == "cache"
        assert net.read("bob", "alice", churn).source in ("quorum", "bare")

    def test_warm_feed_refetches_only_the_reposted_cid(self):
        net = small_net()
        net.post("alice", "a1")
        reposted = net.post("alice", "a2")
        net.feed("bob")
        net.repost("alice", reposted)
        warm = net.feed("bob")
        assert warm.clean
        sources = {item.post.content_id: item.result.source
                   for item in warm.items}
        assert sources.pop(reposted) in ("quorum", "bare")
        assert set(sources.values()) == {"cache"}


class TestStaleServeByzantineHolder:
    """A Byzantine replica serves the oldest version it ever stored.

    With quorum replication the winner is still the newest verified
    version; the cache must end up pinned to it, never to the stale
    bytes the faulty holder keeps pushing.
    """

    def _net_with_stale_holder(self):
        config = quorum_config()
        net = small_net(config=config)
        cid = net.post("alice", "reseal target")
        holders = set(net.storage.placements[cid])
        plan = FaultPlan(seed=13).add(StaleServe(holders={sorted(holders)[0]}))
        fabric = Fabric.create(seed=11, faults=plan)
        net2 = DosnNetwork(config=config, fabric=fabric)
        for name in ("alice", "bob", "carol"):
            net2.add_user(name)
        net2.befriend("alice", "bob")
        cid2 = net2.post("alice", "reseal target")
        assert cid2 == cid  # same seed, same content, same address
        return net2, cid2

    def test_post_repost_read_serves_newest_version(self):
        net, cid = self._net_with_stale_holder()
        first = net.read("bob", "alice", cid)
        assert first.source == "quorum" and first.post.text == "reseal target"
        net.repost("alice", cid)
        result = net.read("bob", "alice", cid)
        assert result.source == "quorum", "stale cache entry must be evicted"
        assert result.post.text == "reseal target"
        assert net.cache.invalidations >= 1
        # the quorum winner after the repost is version 2 — the cache
        # must be pinned to it, not to the StaleServe holder's copy
        entry = net.cache.lookup(
            "bob", "alice", cid,
            net._view_of("bob", "alice"))
        assert entry is not None and entry.version == 2

    def test_zero_stale_bytes_served_from_cache(self):
        net, cid = self._net_with_stale_holder()
        net.read("bob", "alice", cid)
        net.repost("alice", cid)
        for _ in range(3):
            result = net.read("bob", "alice", cid)
            assert result.verified and not result.degraded
            assert result.post.content_id == cid
        # every post-repost cache hit carries version-2 evidence
        entry = net.cache.lookup("bob", "alice", cid,
                                 net._view_of("bob", "alice"))
        assert entry is not None and entry.version == 2
