"""Tests for end-to-end secure direct messaging."""

import random

import pytest

from repro.dosn.identity import KeyRegistry, create_identity
from repro.dosn.messaging import MailboxService, Messenger, SealedMessage
from repro.exceptions import AccessDeniedError, IntegrityError


@pytest.fixture
def world():
    registry = KeyRegistry()
    users = {}
    for name in ("alice", "bob", "carol"):
        identity = create_identity(name)
        registry.register(identity)
        users[name] = Messenger(identity, registry,
                                rng=random.Random(name))
    users["alice"].establish_channel(users["bob"])
    users["alice"].establish_channel(users["carol"])
    return users


class TestChannel:
    def test_roundtrip(self, world):
        message = world["alice"].compose("bob", b"hi bob", now=100.0)
        assert world["bob"].open(message, now=101.0) == b"hi bob"

    def test_both_directions_independent(self, world):
        a2b = world["alice"].compose("bob", b"to bob", now=1.0)
        b2a = world["bob"].compose("alice", b"to alice", now=2.0)
        assert world["bob"].open(a2b) == b"to bob"
        assert world["alice"].open(b2a) == b"to alice"

    def test_no_channel_no_send(self, world):
        with pytest.raises(AccessDeniedError):
            world["bob"].compose("carol", b"x", now=1.0)

    def test_wrong_recipient_rejected(self, world):
        message = world["alice"].compose("bob", b"for bob", now=1.0)
        with pytest.raises(AccessDeniedError):
            world["carol"].open(message)

    def test_redirected_ciphertext_rejected(self, world):
        """Relabeling the routing metadata cannot redirect a message."""
        message = world["alice"].compose("bob", b"for bob", now=1.0)
        forged = SealedMessage(sender="alice", recipient="carol",
                               ciphertext=message.ciphertext)
        with pytest.raises(IntegrityError):
            world["carol"].open(forged)

    def test_tampered_ciphertext_rejected(self, world):
        message = world["alice"].compose("bob", b"intact", now=1.0)
        tampered = SealedMessage(
            sender="alice", recipient="bob",
            ciphertext=message.ciphertext[:-1] + b"\x00")
        with pytest.raises(IntegrityError, match="tampered"):
            world["bob"].open(tampered)

    def test_replay_rejected(self, world):
        message = world["alice"].compose("bob", b"once", now=1.0)
        assert world["bob"].open(message) == b"once"
        with pytest.raises(IntegrityError, match="replayed"):
            world["bob"].open(message)

    def test_reorder_detected(self, world):
        first = world["alice"].compose("bob", b"one", now=1.0)
        second = world["alice"].compose("bob", b"two", now=2.0)
        with pytest.raises(IntegrityError, match="sequence gap"):
            world["bob"].open(second)  # second before first
        assert world["bob"].open(first) == b"one"
        assert world["bob"].open(second) == b"two"

    def test_expiry_enforced(self, world):
        message = world["alice"].compose("bob", b"rsvp by friday",
                                         now=1.0, expires_at=10.0)
        with pytest.raises(IntegrityError, match="historical"):
            world["bob"].open(message, now=99.0)

    def test_sequences_per_peer(self, world):
        world["alice"].compose("bob", b"b0", now=1.0)
        to_carol = world["alice"].compose("carol", b"c0", now=1.0)
        assert world["carol"].open(to_carol) == b"c0"


class TestMailbox:
    def test_store_and_forward(self, world):
        mailbox = MailboxService()
        mailbox.deliver(world["alice"].compose("bob", b"m1", now=1.0))
        mailbox.deliver(world["alice"].compose("bob", b"m2", now=2.0))
        queued = mailbox.drain("bob")
        assert [world["bob"].open(m) for m in queued] == [b"m1", b"m2"]
        assert mailbox.drain("bob") == []

    def test_host_sees_metadata_not_content(self, world):
        mailbox = MailboxService()
        mailbox.deliver(world["alice"].compose("bob", b"super secret",
                                               now=1.0))
        view = mailbox.host_view()
        assert len(view) == 1
        sender, recipient, size = view[0]
        assert (sender, recipient) == ("alice", "bob")
        assert size > 0
        # content is not derivable from anything in the view
        assert b"super secret" not in str(view).encode()
