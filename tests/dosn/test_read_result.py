"""ReadResult: the typed read API and its one-release deprecation shim."""

import warnings

import pytest

from repro.dosn import READ_SOURCES, DosnConfig, DosnNetwork, ReadResult
from repro.dosn.user import VerifiedPost
from repro.exceptions import ReproDeprecationWarning


def _post(**overrides):
    fields = dict(author="alice", sequence=0, text="hello",
                  tags=("#hi",), content_id="cid-1")
    fields.update(overrides)
    return VerifiedPost(**fields)


class TestTypedFields:
    def test_defaults(self):
        result = ReadResult(_post())
        assert result.post.text == "hello"
        assert result.verified is True
        assert result.degraded is False
        assert result.source == "bare"

    @pytest.mark.parametrize("source", sorted(READ_SOURCES))
    def test_all_declared_sources_accepted(self, source):
        assert ReadResult(_post(), source=source).source == source

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            ReadResult(_post(), source="carrier-pigeon")


class TestDeprecationShim:
    """Old call sites wrote `net.read(...).text`; that works one more
    release, loudly."""

    @pytest.mark.parametrize("name", ["author", "sequence", "text", "tags",
                                      "content_id"])
    def test_proxied_attributes_warn_and_forward(self, name):
        result = ReadResult(_post())
        with pytest.warns(ReproDeprecationWarning, match=name):
            assert getattr(result, name) == getattr(result.post, name)

    def test_typed_access_does_not_warn(self):
        result = ReadResult(_post())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.post.text == "hello"
            assert result.source == "bare"
            assert result.verified and not result.degraded

    def test_unproxied_attribute_is_a_plain_error(self):
        with pytest.raises(AttributeError):
            ReadResult(_post()).no_such_field


class TestNetworkReturnsReadResult:
    def test_read_returns_typed_result_with_legacy_shim(self):
        net = DosnNetwork(config=DosnConfig(architecture="local", seed=3))
        net.add_users(["alice", "bob"])
        net.befriend("alice", "bob")
        cid = net.post("alice", "typed now")
        result = net.read("bob", "alice", cid)
        assert isinstance(result, ReadResult)
        assert result.post.text == "typed now"
        with pytest.warns(ReproDeprecationWarning):
            assert result.text == "typed now"

    def test_feed_items_carry_results(self):
        net = DosnNetwork(config=DosnConfig(architecture="local", seed=3))
        net.add_users(["alice", "bob"])
        net.befriend("alice", "bob")
        net.post("alice", "in the feed")
        report = net.feed("bob")
        assert report.items
        for item in report.items:
            assert isinstance(item.result, ReadResult)
            assert item.result.source in READ_SOURCES
            assert item.result.post is item.post
