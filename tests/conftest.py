"""Shared fixtures for the test suite.

Everything derives from explicit seeds so a failure is reproducible by
seed; fixtures that are expensive to build (pairing setups, ABE contexts)
are session-scoped and treated as read-only by tests.
"""

import random

import pytest

from repro.crypto.abe import CPABE
from repro.crypto.ibbe import IBBE
from repro.crypto.pairing import pairing_group


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return random.Random(0xDECAF)


@pytest.fixture(scope="session")
def toy_group():
    """The TOY pairing group (shared, stateless)."""
    return pairing_group("TOY")


@pytest.fixture(scope="session")
def abe_setup():
    """A CP-ABE context with one setup: (scheme, pk, msk)."""
    scheme = CPABE("TOY")
    pk, msk = scheme.setup(random.Random(100))
    return scheme, pk, msk


@pytest.fixture(scope="session")
def ibbe_setup():
    """An IBBE context for up to 16 recipients: (scheme, pk, msk)."""
    scheme = IBBE("TOY")
    pk, msk = scheme.setup(16, random.Random(101))
    return scheme, pk, msk
