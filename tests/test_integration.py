"""Cross-module integration tests: paper scenarios end-to-end.

Each test composes several subsystems the way a deployed DOSN would,
exercising the interactions the unit tests cannot see.
"""

import random

import networkx as nx
import pytest

from repro.acl.abe_acl import ABEACL
from repro.crypto.symmetric import random_key
from repro.dosn import DosnConfig, DosnNetwork
from repro.dosn.user import DosnUser
from repro.dosn.identity import KeyRegistry
from repro.exceptions import AccessDeniedError, IntegrityError
from repro.integrity import (create_post, verify_comment, write_comment)
from repro.search import (Matryoshka, SearchIndex, rank_results)
from repro.workloads import (attach_trust, generate_posts, generate_reads,
                             social_graph)


class TestSocialWorkloadOnEveryArchitecture:
    """Run the same generated social workload on all four architectures and
    check functional equivalence + the exposure ordering the paper claims."""

    @pytest.fixture(scope="class")
    def workload(self):
        graph = social_graph(24, kind="ws", seed=21)
        posts = generate_posts(graph, 30, seed=22)
        return graph, posts

    def _run(self, architecture, workload, encrypt=True):
        graph, posts = workload
        net = DosnNetwork(config=DosnConfig(
            architecture=architecture, seed=23, encrypt_content=encrypt))
        for node in graph.nodes:
            net.add_user(str(node))
        net.apply_social_graph(graph)
        cids = {}
        for post in posts:
            cids[net.post(post.author, post.text)] = post.author
        return net, cids

    @pytest.mark.parametrize("arch", ["central", "dht", "federation"])
    def test_friends_read_everything(self, arch, workload):
        net, cids = self._run(arch, workload)
        graph, _ = workload
        checked = 0
        for cid, author in list(cids.items())[:10]:
            for friend in list(net.users[author].friends)[:2]:
                post = net.read(friend, author, cid).post
                assert post.author == author
                checked += 1
        assert checked > 0

    def test_exposure_ordering(self, workload):
        """central unencrypted >= federation >= dht for content view."""
        worst = {}
        for arch in ("central", "federation", "dht"):
            net, _ = self._run(arch, workload, encrypt=False)
            worst[arch] = net.worst_observer().content_view
        assert worst["central"] == 1.0
        assert worst["federation"] <= worst["central"]
        assert worst["dht"] <= worst["central"]

    def test_encryption_collapses_content_view(self, workload):
        net, _ = self._run("central", workload, encrypt=True)
        assert net.worst_observer().content_view == 0.0


class TestPartyScenarioEndToEnd:
    """The paper's Section IV scenario across the full stack: Bob posts a
    party invitation in the DOSN, friends comment, integrity is enforced."""

    def test_invitation_with_comments(self, rng):
        registry = KeyRegistry()
        bob = DosnUser("bob", registry)
        alice = DosnUser("alice", registry)
        carol = DosnUser("carol", registry)
        bob.befriend(alice)
        bob.befriend(carol)

        cid, blob = bob.compose_post("Party at my place on Friday!",
                                     tags=["#party"])
        opened = alice.open_post("bob", blob, expected_cid=cid)
        assert opened.text.startswith("Party")

        # Cachet-style comment keys: bob authorizes alice but not eve.
        pairwise = {"alice": random_key(32, rng)}
        post = create_post(cid, "bob", opened.text.encode(), pairwise,
                           rng=rng)
        comment = write_comment(post, "alice", pairwise["alice"],
                                b"I'll be there!", rng=rng)
        verify_comment(post, comment)
        with pytest.raises(AccessDeniedError):
            write_comment(post, "eve", random_key(32, rng), b"crash it",
                          rng=rng)

    def test_revoked_friend_cannot_read_new_invitations(self):
        registry = KeyRegistry()
        bob = DosnUser("bob", registry)
        alice = DosnUser("alice", registry)
        mallory = DosnUser("mallory", registry)
        bob.befriend(alice)
        bob.befriend(mallory)
        bob.rotate_group_key(except_friends=["mallory"])
        bob.redistribute_key({"alice": alice})
        _, blob = bob.compose_post("secret party, mallory not invited")
        assert alice.open_post("bob", blob).text.startswith("secret")
        with pytest.raises(AccessDeniedError):
            mallory.open_post("bob", blob)


class TestABEOverDosnContent:
    """Persona-style: fine-grained policies over a user's posts."""

    def test_policy_partitioned_audience(self):
        scheme = ABEACL(rng=random.Random(31))
        scheme.create_group("wall", ["family1", "family2", "colleague1"])
        scheme.grant_attribute("family1", "family")
        scheme.grant_attribute("family2", "family")
        scheme.grant_attribute("colleague1", "work")
        scheme.publish_with_policy("wall", "vacation", b"beach pics",
                                   "family")
        scheme.publish_with_policy("wall", "project", b"deadline moved",
                                   "work or family")
        assert scheme.read("wall", "vacation", "family2") == b"beach pics"
        with pytest.raises(AccessDeniedError):
            scheme.read("wall", "vacation", "colleague1")
        assert scheme.read("wall", "project", "colleague1") == \
            b"deadline moved"


class TestSearchPipeline:
    """Index + trust ranking + anonymity over one social graph."""

    def test_friend_search_with_trust_ranking(self):
        graph = attach_trust(social_graph(100, kind="ba", seed=41), seed=42)
        index = SearchIndex(blinding_secret=b"circle-secret-16" * 2)
        # users publish profile keywords into the circle index
        profiles = {f"user{i}": f"football fan user{i}" if i % 3 == 0
                    else f"chess player user{i}" for i in range(100)}
        for user, text in profiles.items():
            index.add_document(user, text)
        hits = index.search("football")
        assert hits and all(int(h[4:]) % 3 == 0 for h in hits)
        ranked = rank_results(graph, "user5", hits[:10])
        assert len(ranked) == len(hits[:10])
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_anonymous_search_via_matryoshka(self, rng):
        graph = social_graph(150, kind="ba", seed=43)
        core = "user10"
        shells = Matryoshka(graph, core, depth=3)
        request = shells.route_request("user99", rng)
        knowledge = shells.observer_knowledge(request)
        assert knowledge[core]["knows_requester"] is None


class TestAvailabilityPrivacyTradeoff:
    """Section I: availability requires replicas; replicas are observers."""

    def test_replication_trades_privacy_for_availability(self, rng):
        from repro.overlay.churn import ExponentialOnOff
        from repro.overlay import replication as rep

        peers = [f"peer{i}" for i in range(50)]
        churn = ExponentialOnOff(seed=51)
        times = [float(t) for t in range(3600, 400000, 7000)]
        rows = []
        for count in (0, 2, 6):
            placement = rep.place_random("peer0", peers, count,
                                         random.Random(52))
            availability = rep.measure_availability(placement, churn, times)
            exposure = rep.ReplicaExposure()
            exposure.record(placement, encrypted=False)
            rows.append((count, availability,
                         exposure.max_readable_view(50)))
        # availability grows with replication...
        assert rows[0][1] <= rows[1][1] <= rows[2][1]
        # ...and so does the number of peers who can read the data
        assert rows[0][2] <= rows[1][2] <= rows[2][2]
        # encryption removes the privacy cost entirely
        encrypted = rep.ReplicaExposure()
        encrypted.record(rep.place_random("peer0", peers, 6,
                                          random.Random(53)),
                         encrypted=True)
        assert encrypted.max_readable_view(50) == 0.0


class TestTimelineTamperingAcrossStorage:
    """A malicious DHT replica serves a stale/forged blob; the feed's
    verification layers catch it."""

    def test_replica_substitution_detected(self):
        net = DosnNetwork(architecture="dht", seed=61)
        for name in ("alice", "bob", "carol"):
            net.add_user(name)
        net.befriend("alice", "bob")
        cid1 = net.post("alice", "version one")
        cid2 = net.post("alice", "version two")
        # a malicious replica overwrites cid1's blob with cid2's
        for node in net.ring.nodes.values():
            if cid1 in node.store and cid2 in node.store:
                node.store[cid1] = node.store[cid2]
        substituted = all(
            node.store.get(cid1) == node.store.get(cid2)
            for node in net.ring.nodes.values() if cid1 in node.store)
        if substituted:
            with pytest.raises(IntegrityError):
                net.read("bob", "alice", cid1)
