"""Tests for message envelopes and hash-chained timelines.

The envelope tests reproduce the paper's Section IV party-invitation
scenario attack by attack.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.signatures import generate_schnorr_keypair
from repro.integrity import envelope as env
from repro.integrity import hashchain as hc
from repro.exceptions import IntegrityError

BOB = generate_schnorr_keypair("TOY", random.Random(1))
MALLORY = generate_schnorr_keypair("TOY", random.Random(2))


def party_invitation(rng, **overrides):
    kwargs = dict(sender="bob", body=b"Come to my party on Friday",
                  issued_at=100.0, recipient="alice", expires_at=500.0,
                  sequence=3)
    kwargs.update(overrides)
    return env.seal(BOB, rng=rng, **kwargs)


class TestPartyScenario:
    """Each paper aspect: the attack, and the check that catches it."""

    def test_valid_invitation_opens(self, rng):
        letter = party_invitation(rng)
        body = env.open_envelope(letter, BOB.public_key, "alice", now=200.0)
        assert body == b"Come to my party on Friday"

    def test_owner_integrity_forged_sender(self, rng):
        """Mallory signs a letter claiming to be from Bob."""
        forged = env.seal(MALLORY, "bob", b"Party cancelled!",
                          issued_at=100.0, recipient="alice", rng=rng)
        with pytest.raises(IntegrityError, match="owner/content"):
            env.open_envelope(forged, BOB.public_key, "alice")

    def test_content_integrity_tampered_body(self, rng):
        letter = party_invitation(rng)
        tampered = dataclasses.replace(letter,
                                       body=b"Come to my party on Monday")
        with pytest.raises(IntegrityError, match="owner/content"):
            env.open_envelope(tampered, BOB.public_key, "alice")
        assert env.tampered_with(tampered, BOB.public_key)

    def test_historical_integrity_expired_invitation(self, rng):
        letter = party_invitation(rng)
        with pytest.raises(IntegrityError, match="historical"):
            env.open_envelope(letter, BOB.public_key, "alice", now=9999.0)

    def test_relation_integrity_wrong_recipient(self, rng):
        """Bob's invitation to Carol replayed at Alice."""
        to_carol = party_invitation(rng, recipient="carol")
        with pytest.raises(IntegrityError, match="relation"):
            env.open_envelope(to_carol, BOB.public_key, "alice")

    def test_every_field_is_signature_covered(self, rng):
        letter = party_invitation(rng)
        mutations = [
            {"sender": "mallory"}, {"recipient": "carol"},
            {"body": b"x"}, {"issued_at": 101.0}, {"expires_at": 501.0},
            {"sequence": 4},
        ]
        for mutation in mutations:
            bad = dataclasses.replace(letter, **mutation)
            assert env.tampered_with(bad, BOB.public_key), mutation

    def test_broadcast_envelope(self, rng):
        wall_post = party_invitation(rng, recipient=None, expires_at=None)
        assert env.open_envelope(wall_post, BOB.public_key,
                                 now=1e9) == wall_post.body

    def test_no_expiry_never_expires(self, rng):
        letter = party_invitation(rng, expires_at=None)
        env.open_envelope(letter, BOB.public_key, "alice", now=1e12)


class TestTimeline:
    def _timeline(self, rng, n=6):
        timeline = hc.Timeline("bob", BOB)
        for i in range(n):
            timeline.publish(f"post {i}".encode(), rng=rng)
        return timeline

    def test_view_accepts_honest_chain(self, rng):
        timeline = self._timeline(rng)
        view = hc.TimelineView("bob", BOB.public_key)
        view.accept_all(timeline.entries)
        assert view.head_hash == timeline.head_hash

    def test_genesis_linking(self, rng):
        timeline = self._timeline(rng, 1)
        assert timeline.entries[0].previous == hc.GENESIS

    def test_tampered_payload_detected(self, rng):
        timeline = self._timeline(rng)
        entries = list(timeline.entries)
        entries[2] = dataclasses.replace(entries[2], payload=b"evil edit")
        view = hc.TimelineView("bob", BOB.public_key)
        with pytest.raises(IntegrityError):
            view.accept_all(entries)

    def test_suppressed_entry_detected(self, rng):
        """Dropping entry 2 breaks the chain at entry 3."""
        timeline = self._timeline(rng)
        entries = timeline.entries[:2] + timeline.entries[3:]
        view = hc.TimelineView("bob", BOB.public_key)
        with pytest.raises(IntegrityError, match="sequence gap"):
            view.accept_all(entries)

    def test_reordered_entries_detected(self, rng):
        timeline = self._timeline(rng)
        entries = list(timeline.entries)
        entries[1], entries[2] = entries[2], entries[1]
        view = hc.TimelineView("bob", BOB.public_key)
        with pytest.raises(IntegrityError):
            view.accept_all(entries)

    def test_wrong_author_rejected(self, rng):
        timeline = self._timeline(rng)
        view = hc.TimelineView("alice", BOB.public_key)
        with pytest.raises(IntegrityError, match="authored by"):
            view.accept(timeline.entries[0])

    def test_forged_signature_rejected(self, rng):
        timeline = hc.Timeline("bob", MALLORY)  # mallory signs as bob
        timeline.publish(b"fake", rng=rng)
        view = hc.TimelineView("bob", BOB.public_key)
        with pytest.raises(IntegrityError, match="signature"):
            view.accept(timeline.entries[0])

    def test_incremental_acceptance(self, rng):
        timeline = hc.Timeline("bob", BOB)
        view = hc.TimelineView("bob", BOB.public_key)
        for i in range(4):
            entry = timeline.publish(str(i).encode(), rng=rng)
            view.accept(entry)
        assert len(view.entries) == 4

    def test_replayed_entry_rejected(self, rng):
        timeline = self._timeline(rng, 2)
        view = hc.TimelineView("bob", BOB.public_key)
        view.accept_all(timeline.entries)
        with pytest.raises(IntegrityError, match="sequence gap"):
            view.accept(timeline.entries[1])


class TestOrderProofs:
    def test_valid_proof_verifies(self, rng):
        timeline = hc.Timeline("bob", BOB)
        for i in range(10):
            timeline.publish(str(i).encode(), rng=rng)
        proof = hc.order_proof(timeline.entries, 2, 7)
        assert hc.verify_order_proof(proof, BOB.public_key)
        assert proof.earlier.sequence == 2 and proof.later.sequence == 7

    def test_bad_ranges_rejected(self, rng):
        timeline = hc.Timeline("bob", BOB)
        for i in range(3):
            timeline.publish(str(i).encode(), rng=rng)
        for earlier, later in ((2, 2), (2, 1), (-1, 2), (0, 3)):
            with pytest.raises(IntegrityError):
                hc.order_proof(timeline.entries, earlier, later)

    def test_spliced_proof_rejected(self, rng):
        """Segments from two different timelines don't chain."""
        t1 = hc.Timeline("bob", BOB)
        t2 = hc.Timeline("bob", BOB)
        for i in range(4):
            t1.publish(f"a{i}".encode(), rng=rng)
            t2.publish(f"b{i}".encode(), rng=rng)
        spliced = hc.OrderProof(segment=(t1.entries[1], t2.entries[2]))
        assert not hc.verify_order_proof(spliced, BOB.public_key)

    def test_single_entry_is_not_an_order_proof(self, rng):
        timeline = hc.Timeline("bob", BOB)
        timeline.publish(b"x", rng=rng)
        proof = hc.OrderProof(segment=(timeline.entries[0],))
        assert not hc.verify_order_proof(proof, BOB.public_key)

    def test_wrong_key_rejected(self, rng):
        timeline = hc.Timeline("bob", BOB)
        for i in range(3):
            timeline.publish(str(i).encode(), rng=rng)
        proof = hc.order_proof(timeline.entries, 0, 2)
        assert not hc.verify_order_proof(proof, MALLORY.public_key)
