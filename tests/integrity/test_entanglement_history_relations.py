"""Tests for cross-timeline entanglement, fork consistency, and relations."""

import dataclasses
import random

import pytest

from repro.crypto.signatures import generate_schnorr_keypair
from repro.crypto.symmetric import random_key
from repro.integrity import (EntanglementGraph, FortClient, ForkingServer,
                             HistoryServer, Timeline, cite, create_post,
                             verify_comment, write_comment)
from repro.integrity.relations import unwrap_signing_key
from repro.exceptions import AccessDeniedError, IntegrityError

ALICE_KEY = generate_schnorr_keypair("TOY", random.Random(10))
BOB_KEY = generate_schnorr_keypair("TOY", random.Random(11))
SERVER_KEY = generate_schnorr_keypair("TOY", random.Random(12))


class TestEntanglement:
    def _two_timelines(self, rng):
        bob = Timeline("bob", BOB_KEY)
        alice = Timeline("alice", ALICE_KEY)
        for i in range(3):
            bob.publish(f"bob{i}".encode(), rng=rng)
        # alice cites bob's entry 1 in her entry 0
        alice.publish(b"re: bob1", citations=[cite(bob.entries[1])], rng=rng)
        alice.publish(b"alice1", rng=rng)
        return bob, alice

    def test_citation_creates_cross_order(self, rng):
        bob, alice = self._two_timelines(rng)
        graph = EntanglementGraph()
        graph.add_timeline(bob.entries)
        graph.add_timeline(alice.entries)
        assert graph.verify_citations() == []
        assert graph.happened_before(("bob", 1), ("alice", 0))
        assert graph.happened_before(("bob", 0), ("alice", 1))  # transitive
        assert not graph.happened_before(("alice", 0), ("bob", 1))

    def test_uncited_entries_are_concurrent(self, rng):
        bob, alice = self._two_timelines(rng)
        graph = EntanglementGraph()
        graph.add_timeline(bob.entries)
        graph.add_timeline(alice.entries)
        graph.verify_citations()
        assert graph.concurrent(("bob", 2), ("alice", 0))

    def test_same_author_chain_order(self, rng):
        bob, _ = self._two_timelines(rng)
        graph = EntanglementGraph()
        graph.add_timeline(bob.entries)
        assert graph.happened_before(("bob", 0), ("bob", 2))
        assert not graph.happened_before(("bob", 2), ("bob", 0))

    def test_forged_citation_reported_not_edged(self, rng):
        bob = Timeline("bob", BOB_KEY)
        bob.publish(b"b0", rng=rng)
        alice = Timeline("alice", ALICE_KEY)
        alice.publish(b"a0", citations=[("bob", 0, b"\x00" * 32)], rng=rng)
        graph = EntanglementGraph()
        graph.add_timeline(bob.entries)
        graph.add_timeline(alice.entries)
        violations = graph.verify_citations()
        assert len(violations) == 1 and "forged" in violations[0]
        assert not graph.happened_before(("bob", 0), ("alice", 0))

    def test_citation_of_unknown_entry_reported(self, rng):
        alice = Timeline("alice", ALICE_KEY)
        alice.publish(b"a0", citations=[("ghost", 5, b"\x01" * 32)], rng=rng)
        graph = EntanglementGraph()
        graph.add_timeline(alice.entries)
        violations = graph.verify_citations()
        assert len(violations) == 1 and "unknown" in violations[0]

    def test_ancestors(self, rng):
        bob, alice = self._two_timelines(rng)
        graph = EntanglementGraph()
        graph.add_timeline(bob.entries)
        graph.add_timeline(alice.entries)
        graph.verify_citations()
        ancestors = graph.ancestors(("alice", 1))
        assert ("bob", 0) in ancestors and ("bob", 1) in ancestors
        assert ("bob", 2) not in ancestors

    def test_unknown_query_raises(self, rng):
        graph = EntanglementGraph()
        with pytest.raises(IntegrityError):
            graph.happened_before(("x", 0), ("y", 0))


class TestForkConsistency:
    def test_honest_server_never_accused(self, rng):
        server = HistoryServer(SERVER_KEY, rng)
        clients = [FortClient(f"c{i}", "wall", SERVER_KEY.public_key)
                   for i in range(3)]
        for round_number in range(5):
            for client in clients:
                ops, signed = server.fetch("wall", client.version)
                assert client.sync(ops, signed) is None
                server.submit("wall",
                              client.make_operation(
                                  f"{client.name}/{round_number}".encode()))
        for client in clients:
            ops, signed = server.fetch("wall", client.version)
            assert client.sync(ops, signed) is None
        for a in clients:
            for b in clients:
                assert a.compare_views(b) is None

    def _forked_world(self, rng):
        server = ForkingServer(SERVER_KEY, fork_members=["victim"], rng=rng)
        main = FortClient("main", "wall", SERVER_KEY.public_key)
        victim = FortClient("victim", "wall", SERVER_KEY.public_key)
        server.submit("wall", main.make_operation(b"public post"))
        ops, signed = server.fetch_as("wall", "main", main.version)
        assert main.sync(ops, signed) is None
        server.submit("wall", victim.make_operation(b"victim post"))
        ops, signed = server.fetch_as("wall", "victim", victim.version)
        assert victim.sync(ops, signed) is None
        return server, main, victim

    def test_fork_detected_by_view_exchange(self, rng):
        _, main, victim = self._forked_world(rng)
        evidence = main.compare_views(victim)
        assert evidence is not None
        assert "divergent" in evidence.description

    def test_fork_detected_by_embedded_views(self, rng):
        """When a forked client's op leaks into the other view, the
        embedded (version, root) stamp betrays the equivocation."""
        server, main, victim = self._forked_world(rng)
        server._history("wall").append(victim.make_operation(b"leak"))
        ops, signed = server.fetch_as("wall", "main", main.version)
        evidence = main.sync(ops, signed)
        assert evidence is not None
        assert "equivocated" in evidence.description \
            or "fork" in evidence.description

    def test_bad_root_signature_raises(self, rng):
        server = HistoryServer(SERVER_KEY, rng)
        client = FortClient("c", "wall", ALICE_KEY.public_key)  # wrong pin
        server.submit("wall", client.make_operation(b"x"))
        ops, signed = server.fetch("wall", 0)
        with pytest.raises(IntegrityError, match="signature"):
            client.sync(ops, signed)

    def test_suppressed_operation_detected(self, rng):
        """Server ships a signed root that does not match the ops it sent."""
        server = HistoryServer(SERVER_KEY, rng)
        client = FortClient("c", "wall", SERVER_KEY.public_key)
        server.submit("wall", client.make_operation(b"op1"))
        server.submit("wall", client.make_operation(b"op2"))
        ops, signed = server.fetch("wall", 0)
        evidence = client.sync(ops[:1], signed)  # one op withheld
        assert evidence is not None

    def test_membership_proofs_logarithmic(self, rng):
        from repro.integrity import ObjectHistory, Operation
        history = ObjectHistory("obj")
        for i in range(256):
            history.append(Operation(client="c", payload=str(i).encode(),
                                     seen_version=i, seen_root=b""))
        proof = history.prove_operation(100)
        assert len(proof.siblings) == 8  # log2(256)

    def test_root_at_versions(self, rng):
        from repro.integrity import ObjectHistory, Operation
        history = ObjectHistory("obj")
        roots = [history.root]
        for i in range(5):
            history.append(Operation(client="c", payload=str(i).encode(),
                                     seen_version=i, seen_root=b""))
            roots.append(history.root)
        for version, root in enumerate(roots):
            assert history.root_at(version) == root
        with pytest.raises(IntegrityError):
            history.root_at(99)


class TestRelations:
    def _post_with_commenters(self, rng):
        keys = {"alice": random_key(32, rng), "carol": random_key(32, rng)}
        post = create_post("p1", "bob", b"party photos", keys, rng=rng)
        return post, keys

    def test_authorized_comment_verifies(self, rng):
        post, keys = self._post_with_commenters(rng)
        comment = write_comment(post, "alice", keys["alice"], b"nice!",
                                rng=rng)
        verify_comment(post, comment)  # no raise

    def test_unauthorized_commenter_denied(self, rng):
        post, _ = self._post_with_commenters(rng)
        with pytest.raises(AccessDeniedError):
            write_comment(post, "eve", b"x" * 32, b"spam", rng=rng)

    def test_wrong_pairwise_key_denied(self, rng):
        post, keys = self._post_with_commenters(rng)
        with pytest.raises(Exception):
            write_comment(post, "alice", keys["carol"], b"hm", rng=rng)

    def test_comment_transplant_detected(self, rng):
        post, keys = self._post_with_commenters(rng)
        other = create_post("p2", "bob", b"other post", keys, rng=rng)
        comment = write_comment(post, "alice", keys["alice"], b"!", rng=rng)
        with pytest.raises(IntegrityError, match="targets post"):
            verify_comment(other, comment)

    def test_comment_on_edited_post_detected(self, rng):
        post, keys = self._post_with_commenters(rng)
        comment = write_comment(post, "alice", keys["alice"], b"!", rng=rng)
        edited = dataclasses.replace(
            post, body=b"edited body") if False else None
        # CommentablePost is not frozen; simulate an edit directly:
        post.body = b"edited body"
        with pytest.raises(IntegrityError, match="different post content"):
            verify_comment(post, comment)

    def test_altered_comment_detected(self, rng):
        post, keys = self._post_with_commenters(rng)
        comment = write_comment(post, "alice", keys["alice"], b"ok", rng=rng)
        altered = dataclasses.replace(comment, body=b"not ok")
        with pytest.raises(IntegrityError, match="signature"):
            verify_comment(post, altered)

    def test_per_post_keys_differ(self, rng):
        keys = {"alice": random_key(32, rng)}
        p1 = create_post("p1", "bob", b"one", keys, rng=rng)
        p2 = create_post("p2", "bob", b"two", keys, rng=rng)
        assert p1.comment_verify_key.y != p2.comment_verify_key.y
        # a comment key unwrapped from p1 cannot sign for p2
        comment = write_comment(p1, "alice", keys["alice"], b"c", rng=rng)
        forged = dataclasses.replace(comment, post_id="p2",
                                     post_hash=p2.post_hash)
        with pytest.raises(IntegrityError):
            verify_comment(p2, forged)

    def test_unwrap_returns_working_signer(self, rng):
        post, keys = self._post_with_commenters(rng)
        signer = unwrap_signing_key(post, "carol", keys["carol"])
        assert signer.public_key.y == post.comment_verify_key.y
