"""Tests for CP-ABE: policy language, encryption semantics, revocation."""

import random

import pytest

from repro.crypto.abe import (PolicyGate, PolicyLeaf, parse_policy,
                              policy_attributes, policy_satisfied)
from repro.exceptions import DecryptionError, PolicyError


class TestPolicyParser:
    def test_single_attribute(self):
        node = parse_policy("friend")
        assert node == PolicyLeaf("friend")

    def test_and(self):
        node = parse_policy("a and b")
        assert isinstance(node, PolicyGate)
        assert node.threshold == 2 and len(node.children) == 2

    def test_or(self):
        node = parse_policy("a or b or c")
        assert node.threshold == 1 and len(node.children) == 3

    def test_precedence_and_binds_tighter(self):
        node = parse_policy("a or b and c")
        assert node.threshold == 1
        right = node.children[1]
        assert isinstance(right, PolicyGate) and right.threshold == 2

    def test_parentheses(self):
        node = parse_policy("(a or b) and c")
        assert node.threshold == 2
        left = node.children[0]
        assert isinstance(left, PolicyGate) and left.threshold == 1

    def test_threshold_gate(self):
        node = parse_policy("2 of (a, b, c)")
        assert node.threshold == 2 and len(node.children) == 3

    def test_nested_threshold(self):
        node = parse_policy("2 of (a and b, c, d or e)")
        assert node.threshold == 2
        assert isinstance(node.children[0], PolicyGate)

    def test_case_insensitive_keywords(self):
        assert parse_policy("a AND b") == parse_policy("a and b")
        assert parse_policy("a OR b") == parse_policy("a or b")

    def test_attribute_charset(self):
        node = parse_policy("group:friends#3 and user@example.org")
        assert "group:friends#3" in policy_attributes(node)

    def test_idempotent_on_trees(self):
        tree = parse_policy("a and b")
        assert parse_policy(tree) is tree

    @pytest.mark.parametrize("bad", [
        "", "and", "a and", "(a or b", "a b", "2 of (a)", "0 of (a, b)",
        "a )", "5 of (a, b)",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(PolicyError):
            parse_policy(bad)

    def test_policy_attributes(self):
        attrs = policy_attributes(parse_policy("(a or b) and 2 of (c, d, a)"))
        assert attrs == frozenset({"a", "b", "c", "d"})


class TestPolicySatisfaction:
    CASES = [
        ("a", ["a"], True),
        ("a", ["b"], False),
        ("a and b", ["a", "b"], True),
        ("a and b", ["a"], False),
        ("a or b", ["b"], True),
        ("a or b", [], False),
        ("2 of (a, b, c)", ["a", "c"], True),
        ("2 of (a, b, c)", ["c"], False),
        ("2 of (a and b, c, d)", ["a", "d"], False),
        ("2 of (a and b, c, d)", ["a", "b", "d"], True),
        ("(a or b) and (c or d)", ["b", "c"], True),
        ("(a or b) and (c or d)", ["a", "b"], False),
    ]

    @pytest.mark.parametrize("policy,attrs,expected", CASES)
    def test_cases(self, policy, attrs, expected):
        assert policy_satisfied(parse_policy(policy), attrs) is expected


class TestCPABEEncryption:
    def test_satisfying_key_decrypts(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        sk = abe.keygen(pk, msk, ["relative", "doctor"], rng)
        header, blob = abe.encrypt_bytes(
            pk, b"medical record", "relative and doctor", rng)
        assert abe.decrypt_bytes(header, blob, sk) == b"medical record"

    def test_non_satisfying_key_fails(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        sk = abe.keygen(pk, msk, ["painter"], rng)
        header, blob = abe.encrypt_bytes(pk, b"m", "relative and doctor",
                                         rng)
        with pytest.raises(DecryptionError):
            abe.decrypt_bytes(header, blob, sk)

    def test_partial_satisfaction_fails(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        sk = abe.keygen(pk, msk, ["relative"], rng)  # half of an AND
        header, blob = abe.encrypt_bytes(pk, b"m", "relative and doctor",
                                         rng)
        with pytest.raises(DecryptionError):
            abe.decrypt_bytes(header, blob, sk)

    def test_or_policy_either_branch(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        header, blob = abe.encrypt_bytes(pk, b"m", "relative or painter",
                                         rng)
        for attrs in (["relative"], ["painter"], ["relative", "painter"]):
            sk = abe.keygen(pk, msk, attrs, rng)
            assert abe.decrypt_bytes(header, blob, sk) == b"m"

    def test_threshold_policy(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        header, blob = abe.encrypt_bytes(pk, b"m", "2 of (a, b, c)", rng)
        ok = abe.keygen(pk, msk, ["a", "c"], rng)
        assert abe.decrypt_bytes(header, blob, ok) == b"m"
        bad = abe.keygen(pk, msk, ["b"], rng)
        with pytest.raises(DecryptionError):
            abe.decrypt_bytes(header, blob, bad)

    def test_collusion_resistance(self, abe_setup, rng):
        """Two users each holding half of an AND cannot combine keys.

        This is THE property separating ABE from trivial schemes: keys are
        randomized with a per-user exponent, so mixing components from two
        keys yields garbage.
        """
        abe, pk, msk = abe_setup
        alice = abe.keygen(pk, msk, ["relative"], rng)
        bob = abe.keygen(pk, msk, ["doctor"], rng)
        header, blob = abe.encrypt_bytes(pk, b"m", "relative and doctor",
                                         rng)
        # Frankenstein key: alice's D with both users' attribute components.
        from repro.crypto.abe import ABESecretKey
        mixed = ABESecretKey(
            attributes=frozenset({"relative", "doctor"}),
            d=alice.d,
            components={**alice.components, **bob.components})
        with pytest.raises(DecryptionError):
            abe.decrypt_bytes(header, blob, mixed)

    def test_gt_element_roundtrip(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        message = abe.group.random_gt(rng)
        ct = abe.encrypt_element(pk, message, "x or y", rng)
        sk = abe.keygen(pk, msk, ["y"], rng)
        assert abe.decrypt_element(ct, sk) == message

    def test_tampered_payload_detected(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        sk = abe.keygen(pk, msk, ["a"], rng)
        header, blob = abe.encrypt_bytes(pk, b"m", "a", rng)
        tampered = bytearray(blob)
        tampered[-1] ^= 1
        with pytest.raises(DecryptionError):
            abe.decrypt_bytes(header, bytes(tampered), sk)

    def test_extra_attributes_do_not_hurt(self, abe_setup, rng):
        abe, pk, msk = abe_setup
        sk = abe.keygen(pk, msk, ["a", "b", "c", "d", "e"], rng)
        header, blob = abe.encrypt_bytes(pk, b"m", "c", rng)
        assert abe.decrypt_bytes(header, blob, sk) == b"m"
