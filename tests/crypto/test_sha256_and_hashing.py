"""Tests for the from-scratch SHA-256 and the hashing utilities."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import hashing
from repro.crypto.sha256 import SHA256, sha256
from repro.exceptions import CryptoError


class TestSHA256KnownAnswers:
    """FIPS 180-4 known-answer vectors."""

    VECTORS = [
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
        (b"a" * 1_000_000,
         "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
    ]

    @pytest.mark.parametrize("message,expected", VECTORS)
    def test_fips_vectors(self, message, expected):
        assert sha256(message).hex() == expected

    @given(st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    def test_streaming_equivalent_to_oneshot(self):
        h = SHA256()
        for chunk in (b"hello ", b"", b"world", b"!" * 100):
            h.update(chunk)
        assert h.digest() == sha256(b"hello world" + b"!" * 100)

    def test_digest_does_not_finalize(self):
        h = SHA256(b"part1")
        first = h.digest()
        assert first == h.digest()  # idempotent
        h.update(b"part2")
        assert h.digest() == sha256(b"part1part2")

    def test_copy_is_independent(self):
        h = SHA256(b"base")
        clone = h.copy()
        clone.update(b"more")
        assert h.digest() == sha256(b"base")
        assert clone.digest() == sha256(b"basemore")

    def test_boundary_lengths(self):
        # Padding edge cases around the 55/56/64-byte boundaries.
        for n in (54, 55, 56, 57, 63, 64, 65, 119, 120):
            data = bytes(range(256))[:n] * 1
            assert sha256(data) == hashlib.sha256(data).digest()


class TestHMACAndHKDF:
    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=128))
    @settings(max_examples=50, deadline=None)
    def test_hmac_matches_stdlib(self, key, msg):
        assert hashing.hmac_sha256(key, msg) == stdlib_hmac.new(
            key, msg, hashlib.sha256).digest()

    def test_hmac_verify(self):
        tag = hashing.hmac_sha256(b"k" * 16, b"msg")
        assert hashing.hmac_verify(b"k" * 16, b"msg", tag)
        assert not hashing.hmac_verify(b"k" * 16, b"msg2", tag)
        assert not hashing.hmac_verify(b"x" * 16, b"msg", tag)

    def test_hkdf_lengths(self):
        for length in (1, 16, 32, 33, 64, 100):
            out = hashing.hkdf(b"ikm", length, salt=b"salt", info=b"info")
            assert len(out) == length

    def test_hkdf_expand_prefix_property(self):
        short = hashing.hkdf(b"ikm", 16, info=b"ctx")
        long = hashing.hkdf(b"ikm", 64, info=b"ctx")
        assert long[:16] == short

    def test_hkdf_domain_separation(self):
        assert hashing.hkdf(b"ikm", 32, info=b"a") != \
            hashing.hkdf(b"ikm", 32, info=b"b")

    def test_hkdf_too_long(self):
        with pytest.raises(CryptoError):
            hashing.hkdf(b"ikm", 255 * 32 + 1)


class TestHashToField:
    def test_in_range(self):
        for modulus in (2, 17, 2**64, 2**255 - 19):
            value = hashing.hash_to_int(b"data", modulus)
            assert 0 <= value < modulus

    def test_nonzero_variant(self):
        for i in range(200):
            v = hashing.hash_to_nonzero(str(i).encode(), 7)
            assert 1 <= v < 7

    def test_domain_separation(self):
        assert hashing.hash_to_int(b"x", 2**128, b"d1") != \
            hashing.hash_to_int(b"x", 2**128, b"d2")

    def test_rejects_degenerate_modulus(self):
        with pytest.raises(CryptoError):
            hashing.hash_to_int(b"x", 1)

    def test_roughly_uniform(self):
        # Chi-square-lite: buckets of hash_to_int over a small modulus.
        counts = [0] * 8
        for i in range(800):
            counts[hashing.hash_to_int(str(i).encode(), 8)] += 1
        assert all(60 < c < 140 for c in counts), counts


class TestFraming:
    def test_digest_many_is_injective_on_structure(self):
        assert hashing.digest_many([b"ab", b"c"]) != \
            hashing.digest_many([b"a", b"bc"])
        assert hashing.digest_many([b"abc"]) != \
            hashing.digest_many([b"abc", b""])

    def test_chain_hash_depends_on_both(self):
        base = hashing.chain_hash(b"prev", b"entry")
        assert base != hashing.chain_hash(b"prev2", b"entry")
        assert base != hashing.chain_hash(b"prev", b"entry2")
