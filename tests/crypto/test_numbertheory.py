"""Tests for repro.crypto.numbertheory."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import numbertheory as nt
from repro.exceptions import CryptoError

KNOWN_PRIMES = [2, 3, 5, 17, 97, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 15, 91, 561, 1105, 6601, 8911,  # incl. Carmichaels
                    7919 * 104729]


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert nt.is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not nt.is_probable_prime(c)

    def test_negative_and_zero(self):
        assert not nt.is_probable_prime(0)
        assert not nt.is_probable_prime(-7)

    @given(st.integers(min_value=6, max_value=10))
    @settings(max_examples=5, deadline=None)
    def test_generated_primes_have_exact_bit_length(self, bits):
        p = nt.generate_prime(bits, rng=random.Random(bits))
        assert p.bit_length() == bits
        assert nt.is_probable_prime(p)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(CryptoError):
            nt.generate_prime(1)

    def test_safe_prime_structure(self):
        p = nt.generate_safe_prime(24, rng=random.Random(1))
        assert nt.is_probable_prime(p)
        assert nt.is_probable_prime((p - 1) // 2)


class TestEgcdModinv:
    @given(st.integers(min_value=1, max_value=10**12),
           st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=50, deadline=None)
    def test_egcd_bezout_identity(self, a, b):
        g, x, y = nt.egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    @given(st.integers(min_value=2, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_modinv_roundtrip(self, a):
        m = 2147483647  # prime
        inv = nt.modinv(a, m)
        assert a * inv % m == 1

    def test_modinv_nonexistent(self):
        with pytest.raises(CryptoError):
            nt.modinv(6, 9)


class TestCRT:
    def test_basic(self):
        x = nt.crt([2, 3, 2], [3, 5, 7])
        assert x == 23

    @given(st.integers(min_value=0, max_value=3 * 5 * 7 * 11 - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, x):
        moduli = [3, 5, 7, 11]
        assert nt.crt([x % m for m in moduli], moduli) == x

    def test_rejects_non_coprime(self):
        with pytest.raises(CryptoError):
            nt.crt([1, 2], [4, 6])

    def test_rejects_empty(self):
        with pytest.raises(CryptoError):
            nt.crt([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(CryptoError):
            nt.crt([1], [3, 5])


class TestQuadraticResidues:
    P = 10007  # prime, 3 mod 4

    def test_jacobi_matches_euler(self):
        for a in range(1, 50):
            euler = pow(a, (self.P - 1) // 2, self.P)
            expected = 1 if euler == 1 else -1
            assert nt.jacobi(a, self.P) == expected

    def test_jacobi_zero(self):
        assert nt.jacobi(self.P, self.P) == 0

    def test_jacobi_rejects_even_modulus(self):
        with pytest.raises(CryptoError):
            nt.jacobi(3, 10)

    @given(st.integers(min_value=1, max_value=10006))
    @settings(max_examples=50, deadline=None)
    def test_sqrt_mod_3mod4(self, a):
        square = a * a % self.P
        root = nt.sqrt_mod(square, self.P)
        assert root * root % self.P == square

    def test_sqrt_mod_1mod4_tonelli(self):
        p = 10009  # 1 mod 4
        for a in range(2, 40):
            square = a * a % p
            root = nt.sqrt_mod(square, p)
            assert root * root % p == square

    def test_sqrt_of_nonresidue_raises(self):
        # Find a non-residue and check.
        for a in range(2, 100):
            if nt.jacobi(a, self.P) == -1:
                with pytest.raises(CryptoError):
                    nt.sqrt_mod(a, self.P)
                return
        pytest.fail("no non-residue found")

    def test_sqrt_of_zero(self):
        assert nt.sqrt_mod(0, self.P) == 0


class TestPolynomials:
    Q = 2147483647

    @given(st.integers(min_value=0, max_value=2**31 - 2),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_shamir_reconstruction(self, secret, degree):
        rng = random.Random(secret)
        poly = nt.random_polynomial(degree, secret, self.Q, rng)
        indices = list(range(1, degree + 2))
        shares = {i: nt.poly_eval(poly, i, self.Q) for i in indices}
        recovered = sum(
            shares[i] * nt.lagrange_coefficient(i, indices, 0, self.Q)
            for i in indices) % self.Q
        assert recovered == secret % self.Q

    def test_too_few_shares_fail(self):
        rng = random.Random(7)
        poly = nt.random_polynomial(2, 12345, self.Q, rng)
        indices = [1, 2]  # degree 2 needs 3 shares
        recovered = sum(
            nt.poly_eval(poly, i, self.Q)
            * nt.lagrange_coefficient(i, indices, 0, self.Q)
            for i in indices) % self.Q
        assert recovered != 12345

    def test_poly_eval_constant(self):
        assert nt.poly_eval([42], 999, self.Q) == 42


class TestByteCodecs:
    @given(st.integers(min_value=0, max_value=2**256))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, n):
        assert nt.bytes_to_int(nt.int_to_bytes(n)) == n

    def test_fixed_width(self):
        assert nt.int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_rejects_negative(self):
        with pytest.raises(CryptoError):
            nt.int_to_bytes(-1)
