"""Tests for BBS98 proxy re-encryption and the flyByNight composition."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.flybynight import FlyByNightServer, FlyByNightUser
from repro.crypto import proxy_reencryption as pre
from repro.exceptions import AccessDeniedError, CryptoError, DecryptionError

RNG = random.Random(0x93E)
ALICE = pre.generate_keypair("TOY", RNG)
BOB = pre.generate_keypair("TOY", RNG)
CAROL = pre.generate_keypair("TOY", RNG)


class TestPRE:
    def test_direct_roundtrip(self, rng):
        m = ALICE.group.element_from_int(424242)
        ct = pre.encrypt_element(ALICE.public, ALICE.group, m, rng)
        assert pre.decrypt_element(ALICE, ct) == m

    def test_reencrypted_roundtrip(self, rng):
        m = ALICE.group.element_from_int(7)
        ct = pre.encrypt_element(ALICE.public, ALICE.group, m, rng)
        token = pre.rekey(ALICE, BOB)
        ct_bob = pre.reencrypt(token, ct)
        assert pre.decrypt_element(BOB, ct_bob) == m

    def test_wrong_key_fails(self, rng):
        ct = pre.encrypt_element(ALICE.public, ALICE.group,
                                 ALICE.group.element_from_int(3), rng)
        assert pre.decrypt_element(BOB, ct) != \
            ALICE.group.element_from_int(3)

    def test_chained_reencryption(self, rng):
        """a -> b -> c multi-hop re-encryption works (BBS is multi-hop)."""
        m = ALICE.group.element_from_int(99)
        ct = pre.encrypt_element(ALICE.public, ALICE.group, m, rng)
        ct = pre.reencrypt(pre.rekey(ALICE, BOB), ct)
        ct = pre.reencrypt(pre.rekey(BOB, CAROL), ct)
        assert pre.decrypt_element(CAROL, ct) == m

    def test_bidirectionality(self, rng):
        """rk(b->a) is the inverse of rk(a->b) — a documented weakness."""
        forward = pre.rekey(ALICE, BOB)
        backward = pre.rekey(BOB, ALICE)
        assert forward.rk * backward.rk % ALICE.group.q == 1

    def test_collusion_recovers_delegator_key(self):
        """Proxy + delegatee jointly reconstruct the delegator's secret."""
        token = pre.rekey(ALICE, BOB)
        assert pre.collude(token, BOB) == ALICE.secret

    def test_rejects_non_subgroup_message(self, rng):
        with pytest.raises(CryptoError):
            pre.encrypt_element(ALICE.public, ALICE.group,
                                ALICE.group.p - 1, rng)

    @given(st.binary(max_size=200))
    @settings(max_examples=15, deadline=None)
    def test_bytes_roundtrip_with_reencryption(self, message):
        rng = random.Random(len(message))
        header, payload = pre.encrypt_bytes(ALICE.public, ALICE.group,
                                            message, rng)
        token = pre.rekey(ALICE, BOB)
        assert pre.decrypt_bytes(BOB, pre.reencrypt(token, header),
                                 payload) == message
        assert pre.decrypt_bytes(ALICE, header, payload) == message

    def test_tampered_payload_detected(self, rng):
        header, payload = pre.encrypt_bytes(ALICE.public, ALICE.group,
                                            b"m", rng)
        with pytest.raises(DecryptionError):
            pre.decrypt_bytes(ALICE, header, payload[:-1] + b"\x00")


class TestFlyByNight:
    def _world(self):
        rng = random.Random(0xF1B)
        server = FlyByNightServer()
        alice = FlyByNightUser("alice", rng=rng)
        bob = FlyByNightUser("bob", rng=rng)
        return server, alice, bob

    def test_single_upload_serves_all_friends(self):
        server, alice, bob = self._world()
        rng = random.Random(1)
        carol = FlyByNightUser("carol", rng=rng)
        alice.friend(bob, server)
        alice.friend(carol, server)
        mid = alice.post(server, "one ciphertext, many readers")
        assert bob.read(server, mid) == "one ciphertext, many readers"
        assert carol.read(server, mid) == "one ciphertext, many readers"
        # exactly one stored message on the server
        assert len(server._messages) == 1

    def test_author_reads_own_post(self):
        server, alice, bob = self._world()
        mid = alice.post(server, "note to self")
        assert alice.read(server, mid) == "note to self"

    def test_non_friend_denied(self):
        server, alice, bob = self._world()
        mid = alice.post(server, "friends only")
        with pytest.raises(AccessDeniedError):
            bob.read(server, mid)  # never friended

    def test_friendship_is_directed_pairwise(self):
        server, alice, bob = self._world()
        rng = random.Random(2)
        carol = FlyByNightUser("carol", rng=rng)
        alice.friend(bob, server)
        # bob-carol friendship doesn't leak alice's content to carol
        bob.friend(carol, server)
        mid = alice.post(server, "for bob only")
        assert bob.read(server, mid) == "for bob only"
        with pytest.raises(AccessDeniedError):
            carol.read(server, mid)

    def test_unknown_message(self):
        server, alice, bob = self._world()
        with pytest.raises(AccessDeniedError):
            alice.read(server, "ghost/0")

    def test_provider_sees_no_plaintext(self):
        server, alice, bob = self._world()
        alice.friend(bob, server)
        alice.post(server, "super secret plaintext")
        view = server.provider_view()
        assert view["message_authors"] == {"alice/0": "alice"}
        assert ("alice", "bob") in view["edges"]
        # nothing the server stores contains the plaintext
        stored = server._messages["alice/0"]
        assert b"super secret" not in stored.payload
