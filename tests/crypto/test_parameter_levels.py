"""Sanity across parameter levels: the schemes work at TEST size too.

Unit tests run at TOY for speed; these spot-checks prove nothing about the
implementations is TOY-specific (field sizes, serialization widths,
exponent ranges all scale).
"""

import random

import pytest

from repro.crypto import elgamal
from repro.crypto.abe import CPABE
from repro.crypto.groups import group_for_level
from repro.crypto.ibbe import IBBE
from repro.crypto.signatures import generate_schnorr_keypair
from repro.crypto import params


class TestParamsTable:
    def test_level_bits_cover_all_levels(self):
        assert set(params.LEVEL_BITS) == {"TOY", "TEST", "STD"}
        for bits in params.LEVEL_BITS.values():
            assert bits in params.SAFE_PRIMES

    def test_safe_prime_lookup_errors(self):
        with pytest.raises(KeyError):
            params.safe_prime(123)

    def test_group_sizes_match_levels(self):
        for level, bits in params.LEVEL_BITS.items():
            assert group_for_level(level).p.bit_length() == bits


class TestSchemesAtTestLevel:
    RNG = random.Random(0x7E57)

    def test_elgamal(self):
        key = elgamal.generate_keypair("TEST", self.RNG)
        blob = elgamal.encrypt_bytes(key.public_key, b"bigger field",
                                     self.RNG)
        assert elgamal.decrypt_bytes(key, blob) == b"bigger field"

    def test_schnorr_signature(self):
        key = generate_schnorr_keypair("TEST", self.RNG)
        signature = key.sign(b"message", self.RNG)
        assert key.public_key.verify(b"message", signature)
        assert not key.public_key.verify(b"other", signature)

    def test_abe(self):
        abe = CPABE("TEST")
        pk, msk = abe.setup(self.RNG)
        sk = abe.keygen(pk, msk, ["x"], self.RNG)
        header, blob = abe.encrypt_bytes(pk, b"m", "x", self.RNG)
        assert abe.decrypt_bytes(header, blob, sk) == b"m"

    def test_ibbe(self):
        ibbe = IBBE("TEST")
        pk, msk = ibbe.setup(4, self.RNG)
        header, blob = ibbe.encrypt_bytes(pk, ["a", "b"], b"m", self.RNG)
        assert ibbe.decrypt_bytes(pk, header, blob,
                                  msk.extract("a")) == b"m"
