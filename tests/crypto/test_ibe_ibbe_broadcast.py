"""Tests for IBE (Boneh–Franklin), IBBE (Delerablée) and broadcast schemes."""

import random

import pytest

from repro.crypto import ibe
from repro.crypto.broadcast import (CompleteSubtreeBE, NaiveBroadcast,
                                    SubtreeUserKeys)
from repro.exceptions import CryptoError, DecryptionError

PKG = ibe.PrivateKeyGenerator("TOY", random.Random(0x1BE))


class TestIBE:
    def test_roundtrip(self, rng):
        ct = ibe.encrypt(PKG.params, "alice@osn", b"hello", rng)
        key = PKG.extract("alice@osn")
        assert ibe.decrypt(PKG.params, key, ct) == b"hello"

    def test_arbitrary_string_identities(self, rng):
        for identity in ("", "a", "bob@example.org", "üñíçødé",
                         "x" * 500):
            ct = ibe.encrypt(PKG.params, identity, b"m", rng)
            assert ibe.decrypt(PKG.params, PKG.extract(identity),
                               ct) == b"m"

    def test_wrong_identity_fails(self, rng):
        ct = ibe.encrypt(PKG.params, "alice", b"m", rng)
        with pytest.raises(DecryptionError):
            ibe.decrypt(PKG.params, PKG.extract("alicia"), ct)

    def test_wrong_pkg_fails(self, rng):
        other = ibe.PrivateKeyGenerator("TOY", random.Random(99))
        ct = ibe.encrypt(PKG.params, "alice", b"m", rng)
        with pytest.raises(DecryptionError):
            ibe.decrypt(PKG.params, other.extract("alice"), ct)

    def test_probabilistic(self, rng):
        a = ibe.encrypt(PKG.params, "alice", b"m", rng)
        b = ibe.encrypt(PKG.params, "alice", b"m", rng)
        assert a.u != b.u


class TestIBBE:
    def test_every_recipient_decrypts(self, ibbe_setup, rng):
        scheme, pk, msk = ibbe_setup
        names = [f"user{i}" for i in range(8)]
        header, blob = scheme.encrypt_bytes(pk, names, b"broadcast", rng)
        for name in names:
            key = msk.extract(name)
            assert scheme.decrypt_bytes(pk, header, blob, key) == \
                b"broadcast"

    def test_outsider_fails(self, ibbe_setup, rng):
        scheme, pk, msk = ibbe_setup
        header, blob = scheme.encrypt_bytes(pk, ["a", "b"], b"m", rng)
        with pytest.raises(DecryptionError):
            scheme.decrypt_bytes(pk, header, blob, msk.extract("outsider"))

    def test_constant_size_header(self, ibbe_setup, rng):
        """THE IBBE selling point: header size independent of audience."""
        scheme, pk, msk = ibbe_setup
        sizes = []
        for n in (1, 4, 16):
            header, _ = scheme.encrypt_key(pk, [f"u{i}" for i in range(n)],
                                           rng)
            sizes.append(len(header.c1.to_bytes())
                         + len(header.c2.to_bytes()))
        assert sizes[0] == sizes[1] == sizes[2]

    def test_removal_needs_no_crypto(self, ibbe_setup, rng):
        """Removing a recipient = encrypt to the shorter list; the removed
        user's key no longer works, with zero re-keying of others."""
        scheme, pk, msk = ibbe_setup
        full = ["a", "b", "c"]
        header1, blob1 = scheme.encrypt_bytes(pk, full, b"v1", rng)
        header2, blob2 = scheme.encrypt_bytes(pk, ["a", "c"], b"v2", rng)
        key_b = msk.extract("b")
        assert scheme.decrypt_bytes(pk, header1, blob1, key_b) == b"v1"
        with pytest.raises(DecryptionError):
            scheme.decrypt_bytes(pk, header2, blob2, key_b)
        # survivors unaffected, same keys as before
        assert scheme.decrypt_bytes(pk, header2, blob2,
                                    msk.extract("a")) == b"v2"

    def test_capacity_enforced(self, ibbe_setup, rng):
        scheme, pk, msk = ibbe_setup
        too_many = [f"u{i}" for i in range(pk.max_recipients + 1)]
        with pytest.raises(CryptoError):
            scheme.encrypt_key(pk, too_many, rng)

    def test_rejects_empty_and_duplicates(self, ibbe_setup, rng):
        scheme, pk, msk = ibbe_setup
        with pytest.raises(CryptoError):
            scheme.encrypt_key(pk, [], rng)
        with pytest.raises(CryptoError):
            scheme.encrypt_key(pk, ["a", "a"], rng)

    def test_session_keys_match(self, ibbe_setup, rng):
        scheme, pk, msk = ibbe_setup
        header, session = scheme.encrypt_key(pk, ["x", "y"], rng)
        assert scheme.decrypt_key(pk, header, msk.extract("x")) == session
        assert scheme.decrypt_key(pk, header, msk.extract("y")) == session


class TestNaiveBroadcast:
    def test_recipients_decrypt_others_cannot(self, rng):
        nb = NaiveBroadcast()
        keys = {u: nb.register(u, rng) for u in ("a", "b", "c")}
        wraps, payload = nb.encrypt(["a", "b"], b"msg", rng)
        assert NaiveBroadcast.decrypt(keys["a"], wraps["a"], payload) == \
            b"msg"
        assert "c" not in wraps  # not addressed -> no wrap at all

    def test_header_linear_in_audience(self, rng):
        nb = NaiveBroadcast()
        users = [f"u{i}" for i in range(10)]
        for u in users:
            nb.register(u, rng)
        wraps, _ = nb.encrypt(users, b"m", rng)
        assert len(wraps) == 10

    def test_unknown_recipient_rejected(self, rng):
        nb = NaiveBroadcast()
        with pytest.raises(CryptoError):
            nb.encrypt(["ghost"], b"m", rng)


class TestCompleteSubtree:
    def test_capacity_must_be_power_of_two(self, rng):
        with pytest.raises(CryptoError):
            CompleteSubtreeBE(12, rng)
        CompleteSubtreeBE(16, rng)  # fine

    def test_no_revocations_single_wrap(self, rng):
        cs = CompleteSubtreeBE(16, rng)
        wraps, payload = cs.encrypt([], b"m", rng)
        assert len(wraps) == 1  # just the root key
        for i in range(16):
            assert CompleteSubtreeBE.decrypt(cs.user_keys(i), wraps,
                                             payload) == b"m"

    def test_revoked_users_locked_out(self, rng):
        cs = CompleteSubtreeBE(16, rng)
        revoked = [2, 9, 10]
        wraps, payload = cs.encrypt(revoked, b"m", rng)
        for i in range(16):
            keys = cs.user_keys(i)
            if i in revoked:
                with pytest.raises(DecryptionError):
                    CompleteSubtreeBE.decrypt(keys, wraps, payload)
            else:
                assert CompleteSubtreeBE.decrypt(keys, wraps,
                                                 payload) == b"m"

    def test_cover_size_sublinear(self, rng):
        """|cover| <= r * log2(n/r) — the NNL bound."""
        import math
        cs = CompleteSubtreeBE(64, rng)
        for r in (1, 2, 4, 8):
            revoked = list(range(0, 64, 64 // r))[:r]
            cover = cs.cover(revoked)
            bound = max(1, int(r * math.log2(64 / r))) + r
            assert len(cover) <= bound, (r, len(cover), bound)

    def test_all_revoked_empty_cover(self, rng):
        cs = CompleteSubtreeBE(4, rng)
        assert cs.cover([0, 1, 2, 3]) == []

    def test_user_holds_log_keys(self, rng):
        cs = CompleteSubtreeBE(64, rng)
        keys = cs.user_keys(17)
        assert len(keys.path_keys) == 7  # log2(64) + 1

    def test_out_of_range_user(self, rng):
        cs = CompleteSubtreeBE(8, rng)
        with pytest.raises(CryptoError):
            cs.user_keys(8)
        with pytest.raises(CryptoError):
            cs.cover([99])
