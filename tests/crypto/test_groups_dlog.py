"""Tests for Schnorr groups, ElGamal, DH, signatures, PRF/OPRF, ZKP."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import dh, elgamal, prf, zkp
from repro.crypto import signatures as sigs
from repro.crypto.groups import group_for_level, schnorr_group
from repro.crypto.numbertheory import is_probable_prime
from repro.exceptions import CryptoError, DecryptionError, InvalidKeyError

GROUP = schnorr_group(256)


class TestSchnorrGroup:
    def test_parameters_are_sound(self):
        assert is_probable_prime(GROUP.p)
        assert is_probable_prime(GROUP.q)
        assert GROUP.p == 2 * GROUP.q + 1
        assert GROUP.contains(GROUP.g)

    def test_generator_has_order_q(self):
        assert pow(GROUP.g, GROUP.q, GROUP.p) == 1
        assert GROUP.g != 1

    def test_element_from_int_lands_in_subgroup(self):
        for value in (0, 1, 2, 12345, GROUP.p - 1):
            assert GROUP.contains(GROUP.element_from_int(value))

    def test_hash_to_element_in_subgroup(self):
        for i in range(20):
            assert GROUP.contains(GROUP.hash_to_element(str(i).encode()))

    def test_hash_to_scalar_nonzero(self):
        for i in range(50):
            s = GROUP.hash_to_scalar(str(i).encode())
            assert 1 <= s < GROUP.q

    def test_inverse(self):
        x = GROUP.hash_to_element(b"e")
        assert GROUP.mul(x, GROUP.inverse(x)) == 1

    def test_contains_rejects_outside(self):
        assert not GROUP.contains(0)
        assert not GROUP.contains(GROUP.p)
        # An element of order 2q (a non-residue) is rejected.
        non_residue = GROUP.p - 1  # (-1) is a non-residue when p = 3 mod 4
        if pow(non_residue, GROUP.q, GROUP.p) != 1:
            assert not GROUP.contains(non_residue)

    def test_levels(self):
        assert group_for_level("TOY").p.bit_length() == 256
        assert group_for_level("TEST").p.bit_length() == 512
        with pytest.raises(CryptoError):
            group_for_level("NOPE")

    def test_group_cache(self):
        assert schnorr_group(256) is schnorr_group(256)


class TestElGamal:
    KEY = elgamal.generate_keypair("TOY", random.Random(1))

    def test_element_roundtrip(self, rng):
        m = GROUP.element_from_int(987654321)
        ct = elgamal.encrypt_element(self.KEY.public_key, m, rng)
        assert elgamal.decrypt_element(self.KEY, ct) == m

    def test_rejects_non_subgroup_message(self, rng):
        with pytest.raises(InvalidKeyError):
            elgamal.encrypt_element(self.KEY.public_key, GROUP.p - 1, rng)

    def test_homomorphism(self, rng):
        m1 = GROUP.element_from_int(3)
        m2 = GROUP.element_from_int(5)
        c1 = elgamal.encrypt_element(self.KEY.public_key, m1, rng)
        c2 = elgamal.encrypt_element(self.KEY.public_key, m2, rng)
        product = elgamal.multiply_ciphertexts(GROUP, c1, c2)
        assert elgamal.decrypt_element(self.KEY, product) == \
            GROUP.mul(m1, m2)

    def test_rerandomize_preserves_plaintext(self, rng):
        m = GROUP.element_from_int(7)
        ct = elgamal.encrypt_element(self.KEY.public_key, m, rng)
        rr = elgamal.rerandomize(self.KEY.public_key, ct, rng)
        assert rr != ct
        assert elgamal.decrypt_element(self.KEY, rr) == m

    @given(st.binary(max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_bytes_roundtrip(self, message):
        rng = random.Random(len(message))
        ct = elgamal.encrypt_bytes(self.KEY.public_key, message, rng)
        assert elgamal.decrypt_bytes(self.KEY, ct) == message

    def test_bytes_tamper_detected(self, rng):
        ct = bytearray(elgamal.encrypt_bytes(self.KEY.public_key, b"m", rng))
        ct[-1] ^= 1
        with pytest.raises(DecryptionError):
            elgamal.decrypt_bytes(self.KEY, bytes(ct))

    def test_bytes_truncation_detected(self):
        with pytest.raises(DecryptionError):
            elgamal.decrypt_bytes(self.KEY, b"\x00")

    def test_decrypt_validates_subgroup(self):
        with pytest.raises(DecryptionError):
            elgamal.decrypt_element(self.KEY, (GROUP.p - 1, 4))


class TestDH:
    def test_agreement(self, rng):
        a = dh.generate_keypair("TOY", rng)
        b = dh.generate_keypair("TOY", rng)
        assert dh.shared_secret(a, b.public) == dh.shared_secret(b, a.public)
        assert dh.derive_key(a, b.public, context=b"c") == \
            dh.derive_key(b, a.public, context=b"c")

    def test_context_separation(self, rng):
        a = dh.generate_keypair("TOY", rng)
        b = dh.generate_keypair("TOY", rng)
        assert dh.derive_key(a, b.public, context=b"c1") != \
            dh.derive_key(a, b.public, context=b"c2")

    def test_small_subgroup_rejected(self, rng):
        a = dh.generate_keypair("TOY", rng)
        with pytest.raises(CryptoError):
            dh.shared_secret(a, a.group.p - 1)  # order-2 element

    def test_third_party_differs(self, rng):
        a = dh.generate_keypair("TOY", rng)
        b = dh.generate_keypair("TOY", rng)
        c = dh.generate_keypair("TOY", rng)
        assert dh.derive_key(a, b.public) != dh.derive_key(c, b.public)


class TestSchnorrAndDSASignatures:
    @given(st.binary(max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_schnorr_roundtrip(self, message):
        rng = random.Random(len(message))
        key = sigs.generate_schnorr_keypair("TOY", rng)
        assert key.public_key.verify(message, key.sign(message, rng))

    def test_schnorr_rejects_modified(self, rng):
        key = sigs.generate_schnorr_keypair("TOY", rng)
        sig = key.sign(b"original", rng)
        assert not key.public_key.verify(b"altered", sig)

    def test_schnorr_rejects_wrong_key(self, rng):
        k1 = sigs.generate_schnorr_keypair("TOY", rng)
        k2 = sigs.generate_schnorr_keypair("TOY", rng)
        assert not k2.public_key.verify(b"m", k1.sign(b"m", rng))

    def test_schnorr_rejects_out_of_range(self, rng):
        key = sigs.generate_schnorr_keypair("TOY", rng)
        assert not key.public_key.verify(b"m", (key.group.q, 0))

    def test_schnorr_verify_or_raise(self, rng):
        key = sigs.generate_schnorr_keypair("TOY", rng)
        from repro.exceptions import SignatureError
        with pytest.raises(SignatureError):
            key.public_key.verify_or_raise(b"m", (1, 2))

    @given(st.binary(max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_dsa_roundtrip(self, message):
        rng = random.Random(len(message) + 1)
        key = sigs.generate_dsa_keypair("TOY", rng)
        assert key.public_key.verify(message, key.sign(message, rng))

    def test_dsa_rejects_modified(self, rng):
        key = sigs.generate_dsa_keypair("TOY", rng)
        sig = key.sign(b"original", rng)
        assert not key.public_key.verify(b"altered", sig)

    def test_dsa_rejects_zero_components(self, rng):
        key = sigs.generate_dsa_keypair("TOY", rng)
        assert not key.public_key.verify(b"m", (0, 1))
        assert not key.public_key.verify(b"m", (1, 0))


class TestPRFAndOPRF:
    def test_prf_deterministic_and_keyed(self):
        f1 = prf.PRF(b"secret-one-16byt")
        f2 = prf.PRF(b"secret-two-16byt")
        assert f1.evaluate(b"x") == f1.evaluate(b"x")
        assert f1.evaluate(b"x") != f1.evaluate(b"y")
        assert f1.evaluate(b"x") != f2.evaluate(b"x")

    def test_prf_output_length(self):
        f = prf.PRF(b"k" * 16)
        assert len(f.evaluate(b"x", 48)) == 48

    def test_prf_rejects_short_secret(self):
        with pytest.raises(CryptoError):
            prf.PRF(b"short")

    def test_oprf_matches_local_evaluation(self, rng):
        key = prf.generate_oprf_key("TOY", rng)
        for value in (b"", b"tag", b"another value", bytes(100)):
            request = prf.blind_request(value, "TOY", rng)
            evaluated = prf.evaluate_blinded(key, request.blinded)
            assert request.finalize(evaluated) == \
                prf.evaluate_locally(key, value)

    def test_oprf_blinding_hides_input(self, rng):
        """The sender sees unrelated group elements for equal inputs."""
        key = prf.generate_oprf_key("TOY", rng)
        r1 = prf.blind_request(b"same", "TOY", rng)
        r2 = prf.blind_request(b"same", "TOY", rng)
        assert r1.blinded != r2.blinded

    def test_oprf_validates_subgroup(self, rng):
        key = prf.generate_oprf_key("TOY", rng)
        with pytest.raises(CryptoError):
            prf.evaluate_blinded(key, key.group.p - 1)
        request = prf.blind_request(b"v", "TOY", rng)
        with pytest.raises(CryptoError):
            request.finalize(key.group.p - 1)


class TestZKP:
    def test_interactive_accepts_honest_prover(self, rng):
        x = GROUP.random_scalar(rng)
        prover = zkp.ProverSession(GROUP, x)
        verifier = zkp.VerifierSession(GROUP, GROUP.exp(x))
        for _ in range(5):
            c = verifier.challenge(prover.commit(rng), rng)
            assert verifier.check(prover.respond(c))

    def test_interactive_rejects_wrong_secret(self, rng):
        x = GROUP.random_scalar(rng)
        liar = zkp.ProverSession(GROUP, x + 1)
        verifier = zkp.VerifierSession(GROUP, GROUP.exp(x))
        c = verifier.challenge(liar.commit(rng), rng)
        assert not verifier.check(liar.respond(c))

    def test_protocol_order_enforced(self, rng):
        prover = zkp.ProverSession(GROUP, 5)
        with pytest.raises(CryptoError):
            prover.respond(1)
        verifier = zkp.VerifierSession(GROUP, GROUP.exp(5))
        with pytest.raises(CryptoError):
            verifier.check(1)

    def test_nizk_roundtrip_and_context_binding(self, rng):
        x = GROUP.random_scalar(rng)
        proof = zkp.prove_dlog_nizk(GROUP, x, b"session-42", rng)
        assert zkp.verify_dlog_nizk(GROUP, GROUP.exp(x), proof,
                                    b"session-42")
        assert not zkp.verify_dlog_nizk(GROUP, GROUP.exp(x), proof,
                                        b"session-43")
        assert not zkp.verify_dlog_nizk(GROUP, GROUP.exp(x + 1), proof,
                                        b"session-42")

    def test_nizk_rejects_bad_commitment(self, rng):
        x = GROUP.random_scalar(rng)
        proof = zkp.DlogProof(commitment=GROUP.p - 1, response=1)
        assert not zkp.verify_dlog_nizk(GROUP, GROUP.exp(x), proof)

    def test_chaum_pedersen(self, rng):
        x = GROUP.random_scalar(rng)
        h = GROUP.hash_to_element(b"other-base")
        proof = zkp.prove_dlog_equality(GROUP, x, h, b"ctx", rng)
        assert zkp.verify_dlog_equality(GROUP, GROUP.exp(x), h,
                                        GROUP.power(h, x), proof, b"ctx")
        # different exponents on the two bases must fail
        y2_bad = GROUP.power(h, x + 1)
        assert not zkp.verify_dlog_equality(GROUP, GROUP.exp(x), h, y2_bad,
                                            proof, b"ctx")
