"""Tests for RSA (OAEP + FDH signatures) and Chaum blind signatures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import blind, rsa
from repro.exceptions import CryptoError, DecryptionError, SignatureError

KEY = rsa.generate_keypair(512, rng=random.Random(0x5EED))
KEY2 = rsa.generate_keypair(512, rng=random.Random(0xFEED))


class TestKeygen:
    def test_key_structure(self):
        assert KEY.n == KEY.p * KEY.q
        assert KEY.e * KEY.d % ((KEY.p - 1) * (KEY.q - 1)) == 1
        assert KEY.n.bit_length() >= 512

    def test_rejects_tiny_modulus(self):
        with pytest.raises(Exception):
            rsa.generate_keypair(64)

    def test_crt_power_matches_plain_power(self):
        c = 0x1234567890ABCDEF
        assert KEY._crt_power(c) == pow(c, KEY.d, KEY.n)


class TestEncryption:
    @given(st.binary(max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, message):
        rng = random.Random(len(message))
        ct = rsa.encrypt(KEY.public_key, message, rng)
        assert rsa.decrypt(KEY, ct) == message

    def test_max_length_boundary(self):
        limit = rsa.max_plaintext_length(KEY.public_key)
        rng = random.Random(3)
        ct = rsa.encrypt(KEY.public_key, b"x" * limit, rng)
        assert rsa.decrypt(KEY, ct) == b"x" * limit
        with pytest.raises(CryptoError):
            rsa.encrypt(KEY.public_key, b"x" * (limit + 1), rng)

    def test_probabilistic(self):
        rng = random.Random(4)
        assert rsa.encrypt(KEY.public_key, b"m", rng) != \
            rsa.encrypt(KEY.public_key, b"m", rng)

    def test_wrong_key_fails(self):
        ct = rsa.encrypt(KEY.public_key, b"secret", random.Random(5))
        with pytest.raises(DecryptionError):
            rsa.decrypt(KEY2, ct)

    def test_tampered_ciphertext_fails(self):
        ct = bytearray(rsa.encrypt(KEY.public_key, b"secret",
                                   random.Random(6)))
        ct[10] ^= 0x01
        with pytest.raises(DecryptionError):
            rsa.decrypt(KEY, bytes(ct))

    def test_wrong_length_rejected(self):
        with pytest.raises(DecryptionError):
            rsa.decrypt(KEY, b"\x00" * 10)


class TestSignatures:
    @given(st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_sign_verify(self, message):
        sig = rsa.sign(KEY, message)
        assert rsa.verify(KEY.public_key, message, sig)

    def test_modified_message_fails(self):
        sig = rsa.sign(KEY, b"original")
        assert not rsa.verify(KEY.public_key, b"altered", sig)

    def test_wrong_key_fails(self):
        sig = rsa.sign(KEY, b"m")
        assert not rsa.verify(KEY2.public_key, b"m", sig)

    def test_garbage_signature_fails(self):
        assert not rsa.verify(KEY.public_key, b"m", b"\xFF" * 64)
        assert not rsa.verify(KEY.public_key, b"m", b"short")

    def test_verify_or_raise(self):
        sig = rsa.sign(KEY, b"m")
        rsa.verify_or_raise(KEY.public_key, b"m", sig)
        with pytest.raises(SignatureError):
            rsa.verify_or_raise(KEY.public_key, b"n", sig)


class TestBlindSignatures:
    def test_blind_equals_direct(self, rng):
        ctx = blind.blind(KEY.public_key, b"#keyword", rng)
        sig = ctx.unblind(blind.sign_blinded(KEY, ctx.blinded))
        assert sig == blind.sign_directly(KEY, b"#keyword")
        assert blind.verify(KEY.public_key, b"#keyword", sig)

    def test_blindness(self, rng):
        """Different blindings of the same message are unlinkable values."""
        c1 = blind.blind(KEY.public_key, b"#same", rng)
        c2 = blind.blind(KEY.public_key, b"#same", rng)
        assert c1.blinded != c2.blinded
        # but both unblind to the same signature
        s1 = c1.unblind(blind.sign_blinded(KEY, c1.blinded))
        s2 = c2.unblind(blind.sign_blinded(KEY, c2.blinded))
        assert s1 == s2

    def test_unblind_checks_signature(self, rng):
        ctx = blind.blind(KEY.public_key, b"#kw", rng)
        with pytest.raises(SignatureError):
            ctx.unblind(12345)  # not a signature on the blinded value

    def test_signer_range_check(self):
        with pytest.raises(SignatureError):
            blind.sign_blinded(KEY, KEY.n + 1)

    def test_cross_message_verify_fails(self, rng):
        ctx = blind.blind(KEY.public_key, b"#a", rng)
        sig = ctx.unblind(blind.sign_blinded(KEY, ctx.blinded))
        assert not blind.verify(KEY.public_key, b"#b", sig)
