"""Tests for the AES block cipher and the symmetric modes/AEAD."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import symmetric as sym
from repro.crypto.aes import AES
from repro.exceptions import CryptoError, DecryptionError, InvalidKeyError


class TestAESKnownAnswers:
    """FIPS 197 Appendix C vectors for all three key sizes."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    VECTORS = [
        ("000102030405060708090a0b0c0d0e0f",
         "69c4e0d86a7b0430d8cdb78070b4c55a"),
        ("000102030405060708090a0b0c0d0e0f1011121314151617",
         "dda97ca4864cdfe06eaf70a0ec0d7191"),
        ("000102030405060708090a0b0c0d0e0f"
         "101112131415161718191a1b1c1d1e1f",
         "8ea2b7ca516745bfeafc49904b496089"),
    ]

    @pytest.mark.parametrize("key_hex,expected", VECTORS)
    def test_encrypt_vectors(self, key_hex, expected):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(self.PLAINTEXT).hex() == expected

    @pytest.mark.parametrize("key_hex,expected", VECTORS)
    def test_decrypt_vectors(self, key_hex, expected):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.decrypt_block(bytes.fromhex(expected)) == self.PLAINTEXT

    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_block_roundtrip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_rejects_bad_key_sizes(self):
        for size in (0, 8, 15, 17, 31, 33):
            with pytest.raises(InvalidKeyError):
                AES(b"\x00" * size)

    def test_rejects_bad_block_sizes(self):
        cipher = AES(b"\x00" * 16)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"\x00" * 15)
        with pytest.raises(CryptoError):
            cipher.decrypt_block(b"\x00" * 17)


class TestPadding:
    @given(st.binary(max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, data):
        padded = sym.pkcs7_pad(data)
        assert len(padded) % 16 == 0
        assert sym.pkcs7_unpad(padded) == data

    def test_full_block_added_when_aligned(self):
        padded = sym.pkcs7_pad(b"\x00" * 16)
        assert len(padded) == 32 and padded[-1] == 16

    def test_rejects_bad_padding(self):
        with pytest.raises(DecryptionError):
            sym.pkcs7_unpad(b"\x01" * 15 + b"\x05")
        with pytest.raises(DecryptionError):
            sym.pkcs7_unpad(b"\x00" * 16)  # pad byte 0 invalid
        with pytest.raises(DecryptionError):
            sym.pkcs7_unpad(b"")


class TestModes:
    KEY = bytes(range(16))
    IV = bytes(range(16, 32))

    @given(st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_cbc_roundtrip(self, data):
        ct = sym.aes_cbc_encrypt(self.KEY, self.IV, data)
        assert sym.aes_cbc_decrypt(self.KEY, self.IV, ct) == data

    def test_cbc_iv_matters(self):
        ct1 = sym.aes_cbc_encrypt(self.KEY, self.IV, b"data")
        ct2 = sym.aes_cbc_encrypt(self.KEY, bytes(16), b"data")
        assert ct1 != ct2

    def test_cbc_rejects_bad_iv(self):
        with pytest.raises(CryptoError):
            sym.aes_cbc_encrypt(self.KEY, b"short", b"data")

    def test_cbc_decrypt_rejects_unaligned(self):
        with pytest.raises(DecryptionError):
            sym.aes_cbc_decrypt(self.KEY, self.IV, b"\x00" * 17)

    @given(st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_ctr_is_involution(self, data):
        nonce = b"\x01" * 8
        assert sym.aes_ctr(self.KEY, nonce,
                           sym.aes_ctr(self.KEY, nonce, data)) == data

    def test_ctr_keystream_differs_per_nonce(self):
        a = sym.aes_ctr(self.KEY, b"\x00" * 8, b"\x00" * 32)
        b = sym.aes_ctr(self.KEY, b"\x01" * 8, b"\x00" * 32)
        assert a != b


class TestAEAD:
    def test_roundtrip_with_ad(self, rng):
        cipher = sym.AuthenticatedCipher(b"k" * 32)
        blob = cipher.encrypt(b"payload", b"context", rng)
        assert cipher.decrypt(blob, b"context") == b"payload"

    def test_wrong_ad_rejected(self, rng):
        cipher = sym.AuthenticatedCipher(b"k" * 32)
        blob = cipher.encrypt(b"payload", b"context", rng)
        with pytest.raises(DecryptionError):
            cipher.decrypt(blob, b"other")

    def test_tamper_detected_everywhere(self, rng):
        cipher = sym.AuthenticatedCipher(b"k" * 32)
        blob = bytearray(cipher.encrypt(b"secret payload", rng=rng))
        for position in (0, 8, len(blob) // 2, len(blob) - 1):
            tampered = bytearray(blob)
            tampered[position] ^= 0x01
            with pytest.raises(DecryptionError):
                cipher.decrypt(bytes(tampered))

    def test_wrong_key_rejected(self, rng):
        blob = sym.AuthenticatedCipher(b"k" * 32).encrypt(b"x", rng=rng)
        with pytest.raises(DecryptionError):
            sym.AuthenticatedCipher(b"j" * 32).decrypt(blob)

    def test_truncated_rejected(self):
        with pytest.raises(DecryptionError):
            sym.AuthenticatedCipher(b"k" * 32).decrypt(b"short")

    def test_key_too_short(self):
        with pytest.raises(InvalidKeyError):
            sym.AuthenticatedCipher(b"short")

    @given(st.binary(max_size=500))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data):
        cipher = sym.AuthenticatedCipher(b"q" * 32)
        rng = random.Random(1)
        assert cipher.decrypt(cipher.encrypt(data, rng=rng)) == data


class TestStreamCipher:
    @given(st.binary(max_size=2000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, data):
        cipher = sym.StreamCipher(b"s" * 32)
        rng = random.Random(2)
        assert cipher.decrypt(cipher.encrypt(data, rng=rng)) == data

    def test_tamper_detected(self, rng):
        cipher = sym.StreamCipher(b"s" * 32)
        blob = bytearray(cipher.encrypt(b"bulk content" * 10, rng=rng))
        blob[20] ^= 0xFF
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(blob))

    def test_distinct_nonces_distinct_ciphertexts(self, rng):
        cipher = sym.StreamCipher(b"s" * 32)
        assert cipher.encrypt(b"same", rng) != cipher.encrypt(b"same", rng)

    def test_key_too_short(self):
        with pytest.raises(InvalidKeyError):
            sym.StreamCipher(b"tiny")


def test_random_key_length_and_determinism():
    a = sym.random_key(32, random.Random(5))
    b = sym.random_key(32, random.Random(5))
    assert a == b and len(a) == 32
    assert sym.random_key(16, random.Random(5)) == a[:16] or True  # length only
    assert len(sym.random_key(48, random.Random(6))) == 48
