"""Deep correctness properties for the pairing-based schemes.

The strongest statement one can test about CP-ABE: for *random* access
trees and *random* attribute subsets, decryption succeeds **iff** the
boolean policy evaluates true.  Any gap between the secret-sharing
implementation and the policy semantics shows up here.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.abe import (PolicyGate, PolicyLeaf, policy_satisfied)
from repro.exceptions import DecryptionError

ATTRIBUTES = ["a0", "a1", "a2", "a3", "a4", "a5"]


def policy_trees(max_depth=3):
    """Hypothesis strategy generating random access trees."""
    leaves = st.builds(PolicyLeaf, st.sampled_from(ATTRIBUTES))

    def extend(children_strategy):
        @st.composite
        def gate(draw):
            children = draw(st.lists(children_strategy, min_size=2,
                                     max_size=4))
            threshold = draw(st.integers(min_value=1,
                                         max_value=len(children)))
            return PolicyGate(threshold=threshold,
                              children=tuple(children))
        return gate()

    return st.recursive(leaves, extend, max_leaves=8)


class TestABEDecryptionMatchesPolicy:
    @given(policy_trees(), st.sets(st.sampled_from(ATTRIBUTES)))
    @settings(max_examples=30, deadline=None)
    def test_decrypt_iff_satisfied(self, abe_setup, tree, attributes):
        """decrypt succeeds <=> policy_satisfied, for random trees/sets."""
        abe, pk, msk = abe_setup
        rng = random.Random(hash((str(tree), tuple(sorted(attributes))))
                            & 0xFFFFFFFF)
        message = abe.group.random_gt(rng)
        ciphertext = abe.encrypt_element(pk, message, tree, rng)
        key = abe.keygen(pk, msk, sorted(attributes), rng)
        expected = policy_satisfied(tree, sorted(attributes))
        if expected:
            assert abe.decrypt_element(ciphertext, key) == message
        else:
            with pytest.raises(DecryptionError):
                abe.decrypt_element(ciphertext, key)

    @given(st.sets(st.sampled_from(ATTRIBUTES), min_size=2, max_size=4),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_threshold_boundary(self, abe_setup, attribute_set, threshold):
        """k-of-n gates: exactly k-1 attributes fail, exactly k succeed."""
        abe, pk, msk = abe_setup
        attributes = sorted(attribute_set)
        n = len(attributes)
        k = min(threshold, n)
        tree = PolicyGate(threshold=k,
                          children=tuple(PolicyLeaf(a) for a in attributes))
        rng = random.Random(k * 1000 + n)
        message = abe.group.random_gt(rng)
        ciphertext = abe.encrypt_element(pk, message, tree, rng)
        enough = abe.keygen(pk, msk, attributes[:k], rng)
        assert abe.decrypt_element(ciphertext, enough) == message
        if k > 1:
            short = abe.keygen(pk, msk, attributes[:k - 1], rng)
            with pytest.raises(DecryptionError):
                abe.decrypt_element(ciphertext, short)


class TestIBBEProperties:
    @given(st.sets(st.text(alphabet="abcdef", min_size=1, max_size=5),
                   min_size=1, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_exactly_the_recipient_set_decrypts(self, ibbe_setup,
                                                identities):
        """Every listed identity recovers the session key; a fixed
        outsider never does."""
        scheme, pk, msk = ibbe_setup
        recipients = sorted(identities)
        rng = random.Random(len(recipients))
        header, session = scheme.encrypt_key(pk, recipients, rng)
        for identity in recipients:
            key = msk.extract(identity)
            assert scheme.decrypt_key(pk, header, key) == session
        outsider = msk.extract("outsider-zzz")
        with pytest.raises(Exception):
            scheme.decrypt_key(pk, header, outsider)

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=8, deadline=None)
    def test_header_size_constant_in_audience(self, ibbe_setup, size):
        scheme, pk, msk = ibbe_setup
        rng = random.Random(size)
        header, _ = scheme.encrypt_key(
            pk, [f"user{i}" for i in range(size)], rng)
        reference, _ = scheme.encrypt_key(pk, ["solo"], rng)
        assert len(header.c1.to_bytes()) == len(reference.c1.to_bytes())
        assert len(header.c2.to_bytes()) == len(reference.c2.to_bytes())
