"""Tests for the Type-1 Tate pairing: parameters, group laws, bilinearity."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import params
from repro.crypto.numbertheory import is_probable_prime
from repro.crypto.pairing import Fp2, PairingParams, pairing_group
from repro.exceptions import CryptoError

G = pairing_group("TOY")
RNG = random.Random(0xFACE)


class TestParameters:
    @pytest.mark.parametrize("name", ["TOY", "TEST", "STD"])
    def test_parameter_soundness(self, name):
        raw = params.PAIRING_PARAMS[name]
        p, q, h = raw["p"], raw["q"], raw["cofactor"]
        assert is_probable_prime(p)
        assert is_probable_prime(q)
        assert p % 4 == 3              # supersingular curve condition
        assert (p + 1) % q == 0        # subgroup order divides #E(F_p)
        assert q * h == p + 1

    def test_params_validation(self):
        with pytest.raises(CryptoError):
            PairingParams(name="bad", p=13, q=7, cofactor=2)  # 13 % 4 == 1
        with pytest.raises(CryptoError):
            PairingParams(name="bad", p=11, q=7, cofactor=1)  # 7 ∤ 12

    def test_unknown_set_rejected(self):
        with pytest.raises(CryptoError):
            pairing_group("HUGE")

    def test_group_cache(self):
        assert pairing_group("TOY") is pairing_group("TOY")


class TestFp2:
    P = G.p

    def test_i_squared_is_minus_one(self):
        i = Fp2(0, 1, self.P)
        assert i * i == Fp2(-1, 0, self.P)

    @given(st.integers(min_value=0, max_value=10**30),
           st.integers(min_value=0, max_value=10**30))
    @settings(max_examples=30, deadline=None)
    def test_inverse(self, a, b):
        x = Fp2(a, b, self.P)
        if x.a == 0 and x.b == 0:
            return
        assert (x * x.inverse()).is_one()

    def test_zero_has_no_inverse(self):
        with pytest.raises(CryptoError):
            Fp2(0, 0, self.P).inverse()

    @given(st.integers(min_value=1, max_value=10**20),
           st.integers(min_value=0, max_value=10**20))
    @settings(max_examples=20, deadline=None)
    def test_square_matches_mul(self, a, b):
        x = Fp2(a, b, self.P)
        assert x.square() == x * x

    def test_pow_laws(self):
        x = Fp2(3, 4, self.P)
        assert x.pow(0).is_one()
        assert x.pow(5) == x * x * x * x * x
        assert x.pow(-2) == x.inverse().square()

    def test_frobenius_via_conjugate(self):
        # For p = 3 mod 4, x^p == conjugate(x).
        x = Fp2(123456789, 987654321, self.P)
        # compute x^p the slow way on a small exponent decomposition:
        assert x.pow(self.P) == x.conjugate()

    def test_serialization_width(self):
        x = Fp2(1, 2, self.P)
        assert len(x.to_bytes()) == 2 * ((self.P.bit_length() + 7) // 8)


class TestG1:
    def test_generator_on_curve_and_order(self):
        g = G.generator
        x, y = g.point
        assert (y * y - (x ** 3 + x)) % G.p == 0
        assert (g ** G.q).is_identity()
        assert not g.is_identity()

    def test_group_laws(self):
        g = G.generator
        a = G.random_scalar(RNG)
        b = G.random_scalar(RNG)
        assert (g ** a) * (g ** b) == g ** ((a + b) % G.q)
        assert (g ** a) * (g ** a).inverse() == G.identity_g1()
        assert g ** 0 == G.identity_g1()

    def test_identity_is_neutral(self):
        g = G.generator
        assert g * G.identity_g1() == g
        assert G.identity_g1() * g == g

    def test_hash_to_g1_deterministic_and_on_curve(self):
        p1 = G.hash_to_g1(b"seed")
        p2 = G.hash_to_g1(b"seed")
        p3 = G.hash_to_g1(b"other")
        assert p1 == p2 and p1 != p3
        assert (p1 ** G.q).is_identity()

    def test_serialization_distinct(self):
        assert G.generator.to_bytes() != (G.generator ** 2).to_bytes()
        assert G.identity_g1().to_bytes() == b"\x00"


class TestPairing:
    def test_bilinearity(self):
        g = G.generator
        e = G.pair(g, g)
        for _ in range(5):
            a = G.random_scalar(RNG)
            b = G.random_scalar(RNG)
            assert G.pair(g ** a, g ** b) == e ** (a * b % G.q)

    def test_non_degenerate(self):
        assert not G.pair(G.generator, G.generator).is_one()

    def test_symmetry(self):
        g = G.generator
        a, b = 1234567, 7654321
        assert G.pair(g ** a, g ** b) == G.pair(g ** b, g ** a)

    def test_identity_pairs_to_one(self):
        assert G.pair(G.identity_g1(), G.generator).is_one()
        assert G.pair(G.generator, G.identity_g1()).is_one()

    def test_output_has_order_q(self):
        e = G.pair(G.generator, G.generator ** 3)
        assert (e ** G.q).is_one()

    def test_pairing_with_hashed_points(self):
        p = G.hash_to_g1(b"p")
        q = G.hash_to_g1(b"q")
        a = 31337
        assert G.pair(p ** a, q) == G.pair(p, q ** a)

    def test_gt_arithmetic(self):
        e = G.pair(G.generator, G.generator)
        assert (e / e).is_one()
        assert e * e.inverse() == G.one_gt()
        assert e ** 2 == e * e

    def test_cross_group_rejected(self):
        other = pairing_group("TEST")
        with pytest.raises(CryptoError):
            G.pair(G.generator, other.generator)

    def test_test_level_bilinearity(self):
        big = pairing_group("TEST")
        g = big.generator
        assert big.pair(g ** 3, g ** 5) == big.pair(g, g) ** 15

    def test_random_gt_has_order_q(self):
        x = G.random_gt(RNG)
        assert (x ** G.q).is_one()
