"""Tests for Merkle trees and inclusion proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import (MerkleTree, leaf_hash, node_hash,
                                 verify_inclusion)
from repro.exceptions import IntegrityError


class TestBasics:
    def test_empty_tree_root_is_stable(self):
        assert MerkleTree().root() == MerkleTree().root()

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.root() == leaf_hash(b"only")
        proof = tree.prove(0)
        assert verify_inclusion(b"only", proof, tree.root())

    def test_two_leaves(self):
        tree = MerkleTree([b"a", b"b"])
        assert tree.root() == node_hash(leaf_hash(b"a"), leaf_hash(b"b"))

    def test_leaf_and_node_domains_differ(self):
        # H(leaf x) must never equal H(node x) — second-preimage defence.
        assert leaf_hash(b"xy") != node_hash(b"x", b"y")

    def test_append_changes_root(self):
        tree = MerkleTree([b"a"])
        r1 = tree.root()
        tree.append(b"b")
        assert tree.root() != r1

    def test_len(self):
        tree = MerkleTree()
        tree.extend([b"1", b"2", b"3"])
        assert len(tree) == 3


class TestProofs:
    @given(st.lists(st.binary(min_size=1, max_size=20), min_size=1,
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_all_proofs_verify(self, leaves):
        tree = MerkleTree(leaves)
        root = tree.root()
        for index, leaf in enumerate(leaves):
            proof = tree.prove(index)
            assert verify_inclusion(leaf, proof, root)

    @given(st.lists(st.binary(min_size=1, max_size=20), min_size=2,
                    max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_wrong_leaf_fails(self, leaves):
        tree = MerkleTree(leaves)
        root = tree.root()
        proof = tree.prove(0)
        assert not verify_inclusion(leaves[0] + b"x", proof, root)

    def test_proof_against_other_root_fails(self):
        t1 = MerkleTree([b"a", b"b", b"c"])
        t2 = MerkleTree([b"a", b"b", b"d"])
        proof = t1.prove(0)
        # leaf "a" is in both trees but the proof carries t1's siblings
        assert verify_inclusion(b"a", proof, t1.root())
        assert not verify_inclusion(b"a", proof, t2.root())

    def test_odd_leaf_counts(self):
        for n in (1, 3, 5, 7, 9, 15, 17):
            leaves = [bytes([i]) for i in range(n)]
            tree = MerkleTree(leaves)
            for i in (0, n // 2, n - 1):
                assert verify_inclusion(leaves[i], tree.prove(i),
                                        tree.root())

    def test_out_of_range_raises(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IntegrityError):
            tree.prove(1)
        with pytest.raises(IntegrityError):
            tree.prove(-1)

    def test_proof_size_logarithmic(self):
        tree = MerkleTree([bytes([i % 256, i // 256]) for i in range(1024)])
        proof = tree.prove(512)
        assert len(proof.siblings) == 10  # log2(1024)


class TestDeterminism:
    def test_same_leaves_same_root(self):
        leaves = [b"x", b"y", b"z"]
        assert MerkleTree(leaves).root() == MerkleTree(list(leaves)).root()

    def test_order_matters(self):
        assert MerkleTree([b"x", b"y"]).root() != \
            MerkleTree([b"y", b"x"]).root()

    def test_incremental_equals_batch(self):
        batch = MerkleTree([b"1", b"2", b"3", b"4"])
        inc = MerkleTree()
        for leaf in (b"1", b"2", b"3", b"4"):
            inc.append(leaf)
        assert inc.root() == batch.root()
