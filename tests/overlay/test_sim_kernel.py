"""Tests for the concurrent virtual-time kernel (SimFuture + combinators).

Three contracts are pinned here:

* **settle determinism** — two runs at one seed settle every fan-out in
  the identical ``(completion, seq)`` order;
* **latency models** — concurrent ``elapsed`` is the critical path
  (n-th satisfying completion), serial ``elapsed`` is the legacy sum;
* **draw compatibility** — the synchronous ``rpc`` wrapper over
  ``rpc_issue`` consumes the RNG identically to the pre-kernel code: a
  golden trace recorded against the blocking implementation must
  reproduce byte-for-byte, in both modes.
"""

import pytest

from repro.exceptions import SimulationError
from repro.overlay.network import SimNetwork, SimNode
from repro.overlay.simulator import (FanoutResult, SimFuture, Simulator,
                                     first_of, gather, quorum_of)


class TestScheduleValidation:
    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="finite"):
            sim.schedule(float("nan"), lambda: None)

    def test_inf_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="finite"):
            sim.schedule(float("inf"), lambda: None)

    def test_negative_delay_still_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="past"):
            sim.schedule(-1.0, lambda: None)

    def test_heap_stays_ordered_after_rejection(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: fired.append("poison"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]


class TestSimFuture:
    def test_settles_at_issue_with_completion_time(self):
        sim = Simulator(concurrent=True)
        sim.schedule(5.0, lambda: None)
        sim.run()
        future = sim.future(0.25, value=("ok", 0.25))
        assert future.issued_at == 5.0
        assert future.completion == 5.25
        assert future.value == ("ok", 0.25)
        assert future.ok

    def test_sequence_is_monotone(self):
        sim = Simulator()
        seqs = [sim.future(0.1).seq for _ in range(5)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_invalid_latency_rejected(self):
        sim = Simulator()
        for bad in (float("nan"), float("inf"), -0.1):
            with pytest.raises(SimulationError):
                sim.future(bad)


def _futures(sim, latencies, ok=None):
    ok = ok or [True] * len(latencies)
    return [sim.future(lat, value=i, ok=flag)
            for i, (lat, flag) in enumerate(zip(latencies, ok))]


class TestCombinators:
    def test_quorum_concurrent_elapsed_is_nth_completion(self):
        sim = Simulator(concurrent=True)
        futures = _futures(sim, [0.3, 0.1, 0.2])
        result = quorum_of(2, futures)
        assert result.met
        # settle order: 0.1, 0.2, 0.3 — the quorum is in at 0.2
        assert [f.value for f in result.settled] == [1, 2, 0]
        assert [f.value for f in result.winners] == [1, 2]
        assert result.elapsed == pytest.approx(0.2)
        assert result.sum_latency == pytest.approx(0.6)
        assert result.max_latency == pytest.approx(0.3)
        # the branch past the settle point is cancelled, not un-issued
        assert futures[0].cancelled
        assert not futures[1].cancelled

    def test_quorum_serial_elapsed_is_sum(self):
        sim = Simulator(concurrent=False)
        result = quorum_of(2, _futures(sim, [0.3, 0.1, 0.2]))
        assert result.met
        assert result.elapsed == pytest.approx(0.6)

    def test_unmet_quorum_pays_max(self):
        sim = Simulator(concurrent=True)
        result = quorum_of(2, _futures(sim, [0.3, 0.1, 0.2],
                                       ok=[False, True, False]))
        assert not result.met
        assert result.elapsed == pytest.approx(0.3)

    def test_zero_quorum_is_free(self):
        sim = Simulator(concurrent=True)
        result = quorum_of(0, _futures(sim, [0.3, 0.1]))
        assert result.met
        assert result.elapsed == 0.0

    def test_empty_fanout(self):
        assert quorum_of(0, []).met
        assert not quorum_of(1, []).met
        assert quorum_of(1, []).elapsed == 0.0

    def test_predicate_filters_winners(self):
        sim = Simulator(concurrent=True)
        futures = _futures(sim, [0.1, 0.2, 0.3])
        result = quorum_of(1, futures,
                           predicate=lambda f: f.value == 2)
        assert [f.value for f in result.winners] == [2]
        assert result.elapsed == pytest.approx(0.3)

    def test_gather_waits_for_everything(self):
        sim = Simulator(concurrent=True)
        # gather counts even failed branches: it models "wait for all"
        result = gather(_futures(sim, [0.3, 0.1], ok=[False, True]))
        assert result.met
        assert result.elapsed == pytest.approx(0.3)

    def test_first_of_is_a_one_quorum(self):
        sim = Simulator(concurrent=True)
        result = first_of(_futures(sim, [0.3, 0.1, 0.2],
                                   ok=[True, False, True]))
        assert [f.value for f in result.winners] == [2]
        assert result.elapsed == pytest.approx(0.2)

    def test_equal_completions_break_on_issue_sequence(self):
        sim = Simulator(concurrent=True)
        futures = _futures(sim, [0.2, 0.2, 0.2])
        result = quorum_of(1, futures)
        assert result.winners[0] is futures[0]
        # later same-instant branches are cancelled (seq tie-break)
        assert not futures[0].cancelled
        assert futures[1].cancelled and futures[2].cancelled

    def test_settle_order_deterministic_across_runs(self):
        def run():
            sim = Simulator(seed=7, concurrent=True)
            net = SimNetwork(sim, loss_rate=0.05)
            for i in range(8):
                net.register(SimNode(f"n{i}"))
            orders = []
            for j in range(12):
                futures = [net.rpc_issue(f"n{j % 8}", f"n{(j + k) % 8}",
                                         kind="fanout")
                           for k in range(1, 5)]
                result = quorum_of(2, futures)
                orders.append(([f.seq for f in result.settled],
                               [f.seq for f in result.winners],
                               round(result.elapsed, 12), result.met))
            return orders

        assert run() == run()


# Recorded against the pre-kernel blocking ``rpc`` implementation:
# seed=42, loss_rate=0.1, nodes n0..n5 with n3 offline, 24 RPCs of
# kind="golden" with payload_size=64+i, src=n{i%6}, dst=n{(2i+1)%6}
# (bumped to n{(2i+2)%6} when src==dst).  The sync wrapper over
# rpc_issue must keep this stream byte-identical.
GOLDEN_TRACE = [
    (True, 0.126052276459), (False, 0.294598362899), (True, 0.181229094815),
    (True, 0.1381605329), (False, 0.094397221357), (True, 0.139360926347),
    (False, 0.129383204184), (False, 0.071512980003), (True, 0.117151011188),
    (True, 0.132424192293), (False, 0.054015361145), (True, 0.170570345718),
    (False, 0.087609434157), (False, 0.230893456703), (True, 0.097915127794),
    (True, 0.124336818397), (False, 0.282627647696), (True, 0.150827028252),
    (True, 0.101743827235), (False, 0.262448650924), (True, 0.16587680474),
    (True, 0.139998633935), (False, 0.339388939687), (True, 0.096548390713),
]


def _golden_network():
    sim = Simulator(seed=42)
    net = SimNetwork(sim, loss_rate=0.1)
    for i in range(6):
        net.register(SimNode(f"n{i}"))
    net.nodes["n3"].online = False
    return net


def _golden_pairs():
    for i in range(24):
        src = f"n{i % 6}"
        dst = f"n{(i * 2 + 1) % 6}"
        if dst == src:
            dst = f"n{(i * 2 + 2) % 6}"
        yield i, src, dst


class TestGoldenDrawTrace:
    def test_sync_rpc_reproduces_the_blocking_trace(self):
        net = _golden_network()
        trace = []
        for i, src, dst in _golden_pairs():
            ok, rtt = net.rpc(src, dst, kind="golden", payload_size=64 + i)
            trace.append((ok, round(rtt, 12)))
        assert trace == GOLDEN_TRACE
        assert net.stats.messages == 39
        assert net.stats.bytes == 2944
        assert net.stats.timeouts == 10
        assert net.stats.summary()["failures"] == 10

    def test_rpc_issue_draws_identically(self):
        """Issuing futures (even under concurrent=True) keeps the stream."""
        sim = Simulator(seed=42, concurrent=True)
        net = SimNetwork(sim, loss_rate=0.1)
        for i in range(6):
            net.register(SimNode(f"n{i}"))
        net.nodes["n3"].online = False
        trace = []
        for i, src, dst in _golden_pairs():
            future = net.rpc_issue(src, dst, kind="golden",
                                   payload_size=64 + i)
            ok, rtt = future.value
            assert future.ok == ok
            assert future.latency == rtt
            trace.append((ok, round(rtt, 12)))
        assert trace == GOLDEN_TRACE
        assert net.stats.summary()["failures"] == 10
