"""Tests for the Vis-à-Vis distributed location tree."""

import pytest

from repro.exceptions import LookupError_, OverlayError
from repro.overlay.locationtree import LocationTree
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator


def build_tree():
    network = SimNetwork(Simulator(1))
    tree = LocationTree("hiking-club", network)
    tree.add_member("alice", ("europe", "turkey", "istanbul"))
    tree.add_member("bob", ("europe", "turkey", "ankara"))
    tree.add_member("carol", ("europe", "germany", "berlin"))
    tree.add_member("dave", ("asia", "japan", "tokyo"))
    tree.add_member("erin", ("europe", "turkey", "istanbul"))
    return network, tree


class TestMembershipAndQueries:
    def test_leaf_region_query(self):
        _, tree = build_tree()
        result = tree.query("alice", ("europe", "turkey", "istanbul"))
        assert result.members == ["alice", "erin"]

    def test_subtree_query(self):
        _, tree = build_tree()
        result = tree.query("dave", ("europe", "turkey"))
        assert result.members == ["alice", "bob", "erin"]

    def test_continental_query(self):
        _, tree = build_tree()
        result = tree.query("dave", ("europe",))
        assert result.members == ["alice", "bob", "carol", "erin"]

    def test_root_query_returns_everyone(self):
        _, tree = build_tree()
        result = tree.query("alice", ())
        assert result.members == ["alice", "bob", "carol", "dave", "erin"]

    def test_unknown_region_is_empty(self):
        _, tree = build_tree()
        result = tree.query("alice", ("europe", "france"))
        assert result.members == []

    def test_query_cost_scales_with_subtree_not_group(self):
        """The 'efficient and scalable sharing' claim: a narrow query
        touches only the matching branch."""
        _, tree = build_tree()
        narrow = tree.query("dave", ("europe", "turkey", "istanbul"))
        wide = tree.query("dave", ())
        assert narrow.hops < wide.hops
        assert set(narrow.servers_contacted) <= \
            set(wide.servers_contacted) | {"alice", "erin"}

    def test_max_results_caps_traversal(self):
        _, tree = build_tree()
        result = tree.query("alice", ("europe",), max_results=1)
        assert len(result.members) == 1

    def test_remove_member(self):
        _, tree = build_tree()
        tree.remove_member("erin", ("europe", "turkey", "istanbul"))
        result = tree.query("alice", ("europe", "turkey", "istanbul"))
        assert result.members == ["alice"]

    def test_remove_unregistered_rejected(self):
        _, tree = build_tree()
        with pytest.raises(OverlayError):
            tree.remove_member("ghost", ("europe",))

    def test_empty_region_path_rejected(self):
        network = SimNetwork(Simulator(2))
        tree = LocationTree("g", network)
        with pytest.raises(OverlayError):
            tree.add_member("x", ())

    def test_empty_group_query_rejected(self):
        network = SimNetwork(Simulator(3))
        tree = LocationTree("g", network)
        with pytest.raises(LookupError_):
            tree.query("anyone", ("europe",))


class TestDistributionAndFailure:
    def test_nodes_hosted_by_member_vises(self):
        _, tree = build_tree()
        # alice joined first: she hosts the root and the europe/turkey path
        assert ("hiking-club", ()) in tree.servers["alice"].hosted
        assert ("hiking-club", ("asia",)) in tree.servers["dave"].hosted

    def test_offline_host_darkens_subtree(self):
        _, tree = build_tree()
        tree.servers["alice"].online = False  # hosts the root
        with pytest.raises(LookupError_):
            tree.query("dave", ("europe",))

    def test_offline_branch_host_hides_only_that_branch(self):
        _, tree = build_tree()
        tree.servers["dave"].online = False  # hosts only the asia branch
        result = tree.query("bob", ())
        assert "dave" not in result.members
        assert "alice" in result.members

    def test_rehost_restores_subtree(self):
        _, tree = build_tree()
        tree.servers["alice"].online = False
        tree.rehost((), "bob")
        tree.rehost(("europe",), "bob")
        tree.rehost(("europe", "turkey"), "bob")
        tree.rehost(("europe", "turkey", "istanbul"), "bob")
        result = tree.query("dave", ("europe", "turkey"))
        assert "erin" in result.members

    def test_rehost_unknown_region_rejected(self):
        _, tree = build_tree()
        with pytest.raises(OverlayError):
            tree.rehost(("mars",), "bob")


class TestLocationPrivacy:
    def test_visibility_is_exactly_the_registered_prefixes(self):
        _, tree = build_tree()
        visible = tree.location_visibility(
            "alice", ("europe", "turkey", "istanbul"))
        assert visible == [(), ("europe",), ("europe", "turkey"),
                           ("europe", "turkey", "istanbul")]

    def test_coarse_registration_hides_precision(self):
        """Registering at country level keeps the city out of the tree —
        the Vis-à-Vis privacy dial."""
        network = SimNetwork(Simulator(4))
        tree = LocationTree("g", network)
        tree.add_member("cautious", ("europe", "turkey"))
        result = tree.query("cautious", ("europe", "turkey", "istanbul"))
        assert result.members == []  # not discoverable at city granularity
        result = tree.query("cautious", ("europe", "turkey"))
        assert result.members == ["cautious"]

    def test_visibility_rejects_unregistered(self):
        _, tree = build_tree()
        with pytest.raises(OverlayError):
            tree.location_visibility("alice", ("asia",))
