"""Tests for the Chord and Kademlia structured overlays."""

import statistics

import pytest

from repro.exceptions import LookupError_, OverlayError, StorageError
from repro.fabric import Fabric
from repro.overlay.chord import (ChordRing, chord_id, in_interval)
from repro.overlay.kademlia import (KademliaOverlay, kad_id, xor_distance)
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator


def build_ring(n=64, replication=2, seed=0):
    fab = Fabric.create(seed=seed)
    net = fab.network
    ring = ChordRing(fab, replication=replication)
    for i in range(n):
        ring.add_node(f"peer{i}")
    ring.build()
    return net, ring


class TestIntervals:
    def test_simple_interval(self):
        assert in_interval(5, 3, 8)
        assert not in_interval(3, 3, 8)
        assert not in_interval(8, 3, 8)
        assert in_interval(8, 3, 8, inclusive_right=True)

    def test_wrapping_interval(self):
        assert in_interval(1, 250, 5)
        assert in_interval(255, 250, 5)
        assert not in_interval(100, 250, 5)

    def test_full_ring(self):
        assert in_interval(5, 7, 7)
        assert not in_interval(7, 7, 7)


class TestChordCorrectness:
    def test_lookup_finds_responsible_node(self):
        net, ring = build_ring(64)
        for i in range(40):
            key = f"key{i}"
            result = ring.lookup(f"peer{i % 64}", key)
            assert result.owner == ring.owner_of(key)

    def test_hops_logarithmic(self):
        samples = {}
        for n in (16, 256):
            net, ring = build_ring(n)
            hops = [ring.lookup("peer0", f"k{i}").hops for i in range(60)]
            samples[n] = statistics.mean(hops)
        assert samples[16] < samples[256] <= 2 + 0.75 * 8  # ~ O(log n)

    def test_put_get_roundtrip(self):
        net, ring = build_ring(32)
        ring.put("peer1", "photo", b"bytes")
        value, result = ring.get("peer30", "photo")
        assert value == b"bytes"

    def test_replication_survives_owner_failure(self):
        net, ring = build_ring(32, replication=3)
        ring.put("peer0", "doc", b"v")
        owner = ring.owner_of("doc")
        ring.nodes[owner].online = False
        value, _ = ring.get("peer1", "doc")
        assert value == b"v"

    def test_unreplicated_key_lost_with_owner(self):
        net, ring = build_ring(32, replication=1)
        ring.put("peer0", "doc", b"v")
        owner = ring.owner_of("doc")
        ring.nodes[owner].online = False
        with pytest.raises(StorageError):
            ring.get("peer1", "doc")

    def test_missing_key(self):
        net, ring = build_ring(16)
        with pytest.raises(StorageError):
            ring.get("peer0", "never-stored")

    def test_offline_start_rejected(self):
        net, ring = build_ring(8)
        ring.nodes["peer0"].online = False
        with pytest.raises(LookupError_):
            ring.lookup("peer0", "k")

    def test_lookup_routes_around_failures(self):
        net, ring = build_ring(64, replication=4)
        # Kill 20% of peers (not the start node).
        for i in range(1, 64, 5):
            ring.nodes[f"peer{i}"].online = False
        successes = 0
        for i in range(30):
            try:
                ring.lookup("peer0", f"key{i}")
                successes += 1
            except LookupError_:
                pass
        assert successes >= 25  # successor lists absorb most failures

    def test_replica_set_size(self):
        net, ring = build_ring(32, replication=3)
        assert len(ring.replica_set("k")) == 3

    def test_join_and_stabilize_converges(self):
        net, ring = build_ring(16)
        ring.join("latecomer", via="peer0")
        ring.stabilize_all(rounds=3)
        result = ring.lookup("latecomer", "anything")
        assert result.owner == ring.owner_of("anything")
        # the new node is actually routable as an owner too
        for i in range(50):
            key = f"probe{i}"
            if ring.owner_of(key) == "latecomer":
                assert ring.lookup("peer3", key).owner == "latecomer"
                break

    def test_id_collision_rejected(self):
        net, ring = build_ring(4)
        with pytest.raises(OverlayError):
            ring.add_node("peer0")  # same name -> same id

    def test_chord_id_stable(self):
        assert chord_id("alice") == chord_id("alice")
        assert chord_id("alice") != chord_id("bob")


class TestKademlia:
    def build(self, n=64, seed=1):
        fab = Fabric.create(seed=seed)
        net = fab.network
        overlay = KademliaOverlay(fab)
        for i in range(n):
            overlay.add_node(f"p{i}")
        overlay.bootstrap()
        return net, overlay

    def test_xor_metric_axioms(self):
        a, b, c = kad_id("a"), kad_id("b"), kad_id("c")
        assert xor_distance(a, a) == 0
        assert xor_distance(a, b) == xor_distance(b, a)
        assert xor_distance(a, c) <= xor_distance(a, b) ^ \
            xor_distance(b, c) or True  # XOR satisfies triangle as identity
        assert xor_distance(a, c) == xor_distance(a, b) ^ xor_distance(b, c)

    def test_buckets_bounded_by_k(self):
        net, overlay = self.build(128)
        for node in overlay.nodes.values():
            for bucket in node.buckets:
                assert len(bucket) <= overlay.k

    def test_lookup_converges_to_closest(self):
        net, overlay = self.build(64)
        result = overlay.lookup("p0", "target-key")
        target = kad_id("target-key")
        found_best = xor_distance(kad_id(result.closest[0]), target)
        true_best = min(xor_distance(kad_id(n), target)
                        for n in overlay.nodes)
        assert found_best == true_best

    def test_put_get(self):
        net, overlay = self.build(64)
        overlay.put("p0", "item", b"value")
        value, result = overlay.get("p9", "item")
        assert value == b"value"

    def test_value_replicated_k_times(self):
        net, overlay = self.build(64)
        overlay.put("p0", "item", b"v")
        holders = [n for n, node in overlay.nodes.items()
                   if "item" in node.store]
        assert len(holders) == overlay.k

    def test_get_missing_raises(self):
        net, overlay = self.build(16)
        with pytest.raises(StorageError):
            overlay.get("p0", "ghost")

    def test_survives_node_failures(self):
        net, overlay = self.build(64)
        overlay.put("p0", "item", b"v")
        holders = [n for n, node in overlay.nodes.items()
                   if "item" in node.store]
        for holder in holders[:4]:  # kill half the k=8 replicas
            overlay.nodes[holder].online = False
        value, _ = overlay.get("p33", "item")
        assert value == b"v"

    def test_offline_start_rejected(self):
        net, overlay = self.build(8)
        overlay.nodes["p0"].online = False
        with pytest.raises(LookupError_):
            overlay.lookup("p0", "k")

    def test_observe_moves_to_tail(self):
        net, overlay = self.build(8)
        node = overlay.nodes["p0"]
        peers = [n for bucket in node.buckets for n in bucket]
        first = peers[0]
        bucket = node.buckets[node.bucket_index(kad_id(first))]
        node.observe(first)
        assert bucket[-1] == first

    def test_rpc_cost_grows_slowly(self):
        small = self.build(16, seed=2)[1]
        large = self.build(256, seed=3)[1]
        small_rpcs = statistics.mean(
            small.lookup("p0", f"k{i}").rpcs for i in range(20))
        large_rpcs = statistics.mean(
            large.lookup("p0", f"k{i}").rpcs for i in range(20))
        assert large_rpcs < small_rpcs * 6  # sub-linear growth
