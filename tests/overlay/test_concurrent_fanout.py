"""End-to-end latency-model tests for the migrated fan-out consumers.

Each consumer must (a) keep its wire cost and failure/verification
semantics identical in both modes, (b) report a strictly lower elapsed
under ``concurrent=True``, and (c) stay byte-identical to the legacy
accounting when the mode is off — the committed-table contract.
"""

import pytest

from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.network import SimNode
from repro.storage2 import ReplicatedStore, ReplicationConfig

PEERS = [f"p{i}" for i in range(12)]


def make_store(concurrent, seed=7, tracing=False):
    fabric = Fabric.create(seed=seed, concurrent=concurrent,
                           tracing=tracing)
    ring = ChordRing(fabric, replication=3)
    for name in PEERS:
        ring.add_node(name)
    ring.build()
    store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
    return fabric, ring, store


def quorum_read_cell(concurrent):
    fabric, ring, store = make_store(concurrent)
    store.put("p0", "k", b"payload")
    holders = store.placements["k"]
    reader = next(n for n in PEERS if n not in holders)
    fabric.network.stats.reset()
    result = store.get(reader, "k")
    return fabric.network.stats.summary(), result


class TestQuorumReadLatency:
    def test_concurrent_strictly_below_serial_at_equal_messages(self):
        serial_stats, serial = quorum_read_cell(concurrent=False)
        conc_stats, conc = quorum_read_cell(concurrent=True)
        assert serial_stats == conc_stats  # identical wire cost
        assert serial.payload == conc.payload == b"payload"
        assert serial.verified == conc.verified
        assert 0.0 < conc.elapsed < serial.elapsed

    def test_serial_elapsed_is_the_probe_sum(self):
        fabric, ring, store = make_store(concurrent=False)
        store.put("p0", "k", b"payload")
        reader = next(n for n in PEERS if n not in store.placements["k"])
        result = store.get(reader, "k")
        # 3 probes, every RTT drawn from [0.01, 0.1]*2 (round trip is
        # sampled as one uniform draw per direction pair in _rpc_inner);
        # the serial bill is bounded below by 3 one-way minimums.
        assert result.elapsed >= 3 * 0.010

    def test_concurrent_settles_at_rth_verified(self):
        fabric, ring, store = make_store(concurrent=True)
        store.put("p0", "k", b"payload")
        reader = next(n for n in PEERS if n not in store.placements["k"])
        result = store.get(reader, "k")
        # R=2 of 3: the slowest probe is never on the critical path, so
        # the read is cheaper than waiting for all holders.
        assert result.verified >= 2

    def test_batched_get_many_settles_per_key(self):
        for concurrent in (False, True):
            fabric, ring, store = make_store(concurrent)
            for i in range(4):
                store.put("p0", f"k{i}", b"v%d" % i)
            reader = "p7"
            results = store.get_many(reader,
                                     [f"k{i}" for i in range(4)])
            assert all(results[f"k{i}"].payload == b"v%d" % i
                       for i in range(4))
            if concurrent:
                conc_elapsed = [results[k].elapsed for k in results]
            else:
                serial_elapsed = [results[k].elapsed for k in results]
        assert sum(conc_elapsed) < sum(serial_elapsed)


def hedged_cell(concurrent, offline=()):
    fabric = Fabric.create(seed=11, loss_rate=0.15, resilient=True,
                           concurrent=concurrent)
    for name in PEERS:
        fabric.network.register(SimNode(name))
    for name in offline:
        fabric.network.nodes[name].online = False
    return fabric


class TestHedgedFanout:
    def test_winner_and_cancellation_semantics(self):
        fabric = hedged_cell(concurrent=True, offline=("p1",))
        ok, winner, elapsed = fabric.channel.hedged(
            "p0", ["p1", "p2", "p3"], kind="fetch")
        assert ok
        assert winner in ("p2", "p3")  # p1 is offline: it cannot win
        assert elapsed > 0.0

    def test_concurrent_cheaper_than_serial_on_failover(self):
        # p1 and p2 offline: the serial path pays both timeouts in full,
        # the hedged path overlaps them with the p3 probe.
        serial = hedged_cell(concurrent=False, offline=("p1", "p2"))
        s_ok, s_winner, s_elapsed = serial.channel.hedged(
            "p0", ["p1", "p2", "p3"], kind="fetch")
        conc = hedged_cell(concurrent=True, offline=("p1", "p2"))
        c_ok, c_winner, c_elapsed = conc.channel.hedged(
            "p0", ["p1", "p2", "p3"], kind="fetch")
        assert s_ok and c_ok
        assert s_winner == c_winner == "p3"
        assert c_elapsed < s_elapsed

    def test_all_dead_fails_in_both_modes(self):
        for concurrent in (False, True):
            fabric = hedged_cell(concurrent=concurrent,
                                 offline=("p1", "p2", "p3"))
            ok, winner, elapsed = fabric.channel.hedged(
                "p0", ["p1", "p2", "p3"], kind="fetch")
            assert not ok
            assert winner is None
            assert elapsed > 0.0


class TestOffModeByteIdentity:
    """concurrent=False must reproduce the legacy run exactly."""

    def _legacy_trace(self, concurrent):
        fabric, ring, store = make_store(concurrent=concurrent, seed=2015,
                                         tracing=True)
        for i in range(5):
            store.put(f"p{i}", f"k{i}", b"blob-%d" % i)
        reads = [store.get(f"p{(i + 6) % 12}", f"k{i}") for i in range(5)]
        batch = store.get_many("p11", [f"k{i}" for i in range(5)])
        spans = [(s.name, s.parent_id, round(s.cost, 12),
                  sorted(s.attrs.items()))
                 for s in fabric.tracer.spans]
        stats = fabric.network.stats.summary()
        payloads = ([r.payload for r in reads] +
                    [batch[k].payload for k in sorted(batch)])
        return spans, stats, payloads

    def test_off_mode_matches_itself_and_draws_match_on_mode(self):
        first_spans, first_stats, first_payloads = \
            self._legacy_trace(concurrent=False)
        second_spans, second_stats, second_payloads = \
            self._legacy_trace(concurrent=False)
        assert first_spans == second_spans
        assert first_stats == second_stats
        # Turning the mode ON must not perturb the RNG stream: identical
        # messages/bytes/timeouts, identical payloads — only span shape
        # and cost attribution may differ.
        conc_spans, conc_stats, conc_payloads = \
            self._legacy_trace(concurrent=True)
        assert conc_stats == first_stats
        assert conc_payloads == first_payloads

    def test_no_fanout_spans_in_off_mode(self):
        spans, _, _ = self._legacy_trace(concurrent=False)
        names = {name for name, *_ in spans}
        assert "storage2.get.fanout" not in names
        assert "storage2.get_many.fanout" not in names
        conc_names = {name for name, *_ in
                      self._legacy_trace(concurrent=True)[0]}
        assert "storage2.get.fanout" in conc_names
        assert "storage2.get_many.fanout" in conc_names
