"""Tests for the discrete-event simulator and the message fabric."""

import pytest

from repro.exceptions import OverlayError, SimulationError
from repro.overlay.network import Message, SimNetwork, SimNode
from repro.overlay.simulator import FixedLatency, Simulator, UniformLatency


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_equal_times_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == list("abcde")

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        sim.run()
        assert fired == ["kept"]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "nested"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_determinism(self):
        def trace(seed):
            sim = Simulator(seed)
            values = []
            for _ in range(5):
                sim.schedule(sim.rng.random(), lambda: values.append(sim.now))
            sim.run()
            return values
        assert trace(42) == trace(42)
        assert trace(42) != trace(43)

    def test_split_rng_independent(self):
        sim = Simulator(7)
        a = sim.split_rng("a")
        b = sim.split_rng("b")
        assert a.random() != b.random()


class _Echo(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_ping(self, message):
        self.received.append(message.payload["n"])


class TestSimNetwork:
    def _net(self, loss=0.0):
        sim = Simulator(1)
        net = SimNetwork(sim, latency=FixedLatency(0.05), loss_rate=loss)
        a, b = _Echo("a"), _Echo("b")
        net.register(a)
        net.register(b)
        return sim, net, a, b

    def test_delivery(self):
        sim, net, a, b = self._net()
        net.send(Message(kind="ping", src="a", dst="b", payload={"n": 1}))
        sim.run()
        assert b.received == [1]
        assert net.stats.messages == 1

    def test_offline_node_drops(self):
        sim, net, a, b = self._net()
        b.go_offline()
        net.send(Message(kind="ping", src="a", dst="b", payload={"n": 1}))
        sim.run()
        assert b.received == []
        assert net.stats.drops == 1

    def test_unknown_destination_drops(self):
        sim, net, a, b = self._net()
        net.send(Message(kind="ping", src="a", dst="ghost", payload={"n": 1}))
        sim.run()
        assert net.stats.drops == 1

    def test_unknown_handler_raises(self):
        sim, net, a, b = self._net()
        net.send(Message(kind="mystery", src="a", dst="b"))
        with pytest.raises(OverlayError):
            sim.run()

    def test_loss_rate(self):
        sim, net, a, b = self._net(loss=0.5)
        for i in range(200):
            net.send(Message(kind="ping", src="a", dst="b",
                             payload={"n": i}))
        sim.run()
        assert 40 < len(b.received) < 160
        assert net.stats.drops == 200 - len(b.received)

    def test_invalid_loss_rate(self):
        with pytest.raises(SimulationError):
            SimNetwork(Simulator(), loss_rate=1.0)

    def test_duplicate_registration_rejected(self):
        sim, net, a, b = self._net()
        with pytest.raises(OverlayError):
            net.register(_Echo("a"))

    def test_rpc_accounting(self):
        sim, net, a, b = self._net()
        ok, rtt = net.rpc("a", "b")
        assert ok and rtt == pytest.approx(0.10)
        assert net.stats.messages == 2
        b.go_offline()
        ok, rtt = net.rpc("a", "b")
        assert not ok
        assert net.stats.timeouts == 1
        assert rtt > 0.10  # timeouts cost more than a round trip

    def test_stats_reset(self):
        sim, net, a, b = self._net()
        net.rpc("a", "b")
        net.stats.reset()
        assert net.stats.messages == 0 and not net.stats.by_kind

    def test_by_kind_counters(self):
        sim, net, a, b = self._net()
        net.rpc("a", "b", kind="lookup")
        net.rpc("a", "b", kind="lookup")
        net.send(Message(kind="ping", src="a", dst="b", payload={"n": 0}))
        sim.run()
        assert net.stats.by_kind["lookup"] == 2
        assert net.stats.by_kind["ping"] == 1

    def test_latency_models(self):
        import random
        rng = random.Random(0)
        uniform = UniformLatency(0.01, 0.02)
        for _ in range(100):
            sample = uniform.sample(rng, "a", "b")
            assert 0.01 <= sample <= 0.02
        assert FixedLatency(0.3).sample(rng, "a", "b") == 0.3
