"""Tests for the unstructured, semi-structured, hybrid and federated overlays."""

import networkx as nx
import pytest

from repro.exceptions import LookupError_, OverlayError
from repro.overlay.federation import FederatedNetwork
from repro.overlay.gossip import GossipOverlay
from repro.overlay.hybrid import HybridOverlay
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import FixedLatency, Simulator
from repro.overlay.superpeer import SuperPeerOverlay


def social(n=60, seed=0):
    graph = nx.barabasi_albert_graph(n, 3, seed=seed)
    return nx.relabel_nodes(graph, {i: f"u{i}" for i in graph.nodes})


class TestGossip:
    def build(self, n=60, fanout=3, seed=0):
        net = SimNetwork(Simulator(seed), latency=FixedLatency(0.01))
        overlay = GossipOverlay(net, social(n, seed), fanout=fanout)
        return net, overlay

    def test_flood_finds_held_key(self):
        net, overlay = self.build()
        overlay.place_key("content", "u30")
        result = overlay.flood_search("u0", "content", ttl=6)
        assert result.found and "u30" in result.holders_reached

    def test_flood_misses_absent_key(self):
        net, overlay = self.build()
        result = overlay.flood_search("u0", "nothing", ttl=4)
        assert not result.found

    def test_flood_ttl_bounds_reach(self):
        net, overlay = self.build()
        overlay.place_key("far", "u59")
        cheap = overlay.flood_search("u0", "far", ttl=1)
        expensive = overlay.flood_search("u1", "far", ttl=6)
        assert cheap.messages < expensive.messages

    def test_duplicate_suppression(self):
        net, overlay = self.build()
        result = overlay.flood_search("u0", "ghost", ttl=10)
        # Without suppression a dense graph floods exponentially; with it,
        # messages are bounded by ~edges * 2.
        edges = overlay.graph.number_of_edges()
        assert result.messages <= 2 * edges + len(overlay.nodes)

    def test_gossip_reaches_most_nodes(self):
        net, overlay = self.build(n=100)
        overlay.gossip_disseminate("u0", "rumor")
        assert overlay.coverage("rumor") > 0.85

    def test_gossip_timestamps_monotone_from_origin(self):
        net, overlay = self.build()
        arrivals = overlay.gossip_disseminate("u0", "r1")
        # the origin's own copy arrives after one (self-)latency hop
        assert arrivals["u0"] == pytest.approx(0.01)
        assert all(t >= arrivals["u0"] for t in arrivals.values())

    def test_unknown_start_rejected(self):
        net, overlay = self.build()
        with pytest.raises(OverlayError):
            overlay.flood_search("ghost", "k")
        with pytest.raises(OverlayError):
            overlay.gossip_disseminate("ghost", "r")

    def test_offline_nodes_do_not_receive(self):
        net, overlay = self.build()
        overlay.nodes["u5"].online = False
        overlay.gossip_disseminate("u0", "r2")
        assert "r2" not in overlay.nodes["u5"].received

    def test_gossip_skips_offline_peers_without_paying_messages(self):
        """Regression: rumors used to be sent (and charged) toward
        offline peers, then dropped at delivery time."""
        net, overlay = self.build()
        for name in ("u5", "u9", "u13"):
            overlay.nodes[name].online = False
        overlay.gossip_disseminate("u0", "r3")
        assert net.stats.drops == 0

    def test_flood_skips_offline_peers_without_paying_messages(self):
        net, overlay = self.build()
        overlay.place_key("content", "u30")
        for name in ("u5", "u9", "u13"):
            overlay.nodes[name].online = False
        result = overlay.flood_search("u0", "content", ttl=6)
        assert result.found
        assert net.stats.drops == 0
        assert "u5" not in result.holders_reached

    def test_offline_start_and_origin_rejected(self):
        net, overlay = self.build()
        overlay.nodes["u0"].online = False
        with pytest.raises(OverlayError):
            overlay.flood_search("u0", "k")
        with pytest.raises(OverlayError):
            overlay.gossip_disseminate("u0", "r")


class TestSuperPeer:
    def build(self, peers=40, supers=4, seed=0):
        net = SimNetwork(Simulator(seed))
        overlay = SuperPeerOverlay(net)
        for i in range(supers):
            overlay.add_super_peer(f"sp{i}")
        for i in range(peers):
            overlay.add_peer(f"n{i}")
        return net, overlay

    def test_lookup_bounded_hops(self):
        net, overlay = self.build()
        overlay.publish("n3", "doc", b"x")
        for reader in ("n0", "n17", "n39"):
            value, result = overlay.fetch(reader, "doc")
            assert value == b"x"
            assert result.hops <= 3

    def test_peers_before_supers_rejected(self):
        net = SimNetwork(Simulator(0))
        overlay = SuperPeerOverlay(net)
        with pytest.raises(OverlayError):
            overlay.add_peer("lonely")

    def test_unindexed_key(self):
        net, overlay = self.build()
        with pytest.raises(LookupError_):
            overlay.lookup("n0", "ghost")

    def test_super_peer_failure_breaks_members(self):
        net, overlay = self.build()
        overlay.publish("n3", "doc", b"x")
        sp = overlay.peers["n3"].super_peer
        overlay.super_peers[sp].online = False
        with pytest.raises(LookupError_):
            overlay.lookup("n3", "doc")

    def test_holder_failure_raises(self):
        net, overlay = self.build()
        overlay.publish("n3", "doc", b"x")
        overlay.peers["n3"].online = False
        with pytest.raises(LookupError_):
            overlay.fetch("n0", "doc")

    def test_uptime_aware_placement(self):
        net, overlay = self.build()
        fractions = {f"n{i}": i / 40.0 for i in range(40)}
        overlay.report_uptimes(fractions)
        best = overlay.best_replica_hosts(3)
        assert best == ["n39", "n38", "n37"]

    def test_best_hosts_respects_exclusions(self):
        net, overlay = self.build()
        overlay.report_uptimes({f"n{i}": i / 40.0 for i in range(40)})
        best = overlay.best_replica_hosts(2, exclude=["n39"])
        assert "n39" not in best


class TestHybrid:
    def build(self, n=60, seed=0):
        from repro.fabric import Fabric
        fab = Fabric.create(seed=seed)
        net = fab.network
        overlay = HybridOverlay(fab, social(n, seed), cache_capacity=16)
        return net, overlay

    def test_first_fetch_may_use_dht_then_cache(self):
        net, overlay = self.build()
        overlay.publish("u0", "post", b"payload")
        # pick a reader far from u0 socially so neighbour probes miss
        reader = "u59"
        first = overlay.fetch(reader, "post")
        assert first.value == b"payload"
        second = overlay.fetch(reader, "post")
        assert second.source == "cache" and second.rpcs == 0

    def test_popular_content_gets_cheaper(self):
        """The Cuckoo claim: popular items resolve via the unstructured
        phase once caches warm up."""
        net, overlay = self.build()
        overlay.publish("u0", "hot", b"x")
        total_dht_before = overlay.dht_fetches
        readers = [f"u{i}" for i in range(1, 40)]
        for reader in readers:
            overlay.fetch(reader, "hot")
        # re-read: now everything is cached somewhere nearby
        for reader in readers:
            overlay.fetch(reader, "hot")
        assert overlay.cache_hit_rate() > 0.5

    def test_cache_eviction(self):
        net, overlay = self.build()
        for i in range(40):
            overlay.publish("u0", f"item{i}", b"v")
        assert len(overlay.caches["u0"]) <= 16

    def test_unknown_reader_rejected(self):
        net, overlay = self.build()
        with pytest.raises(OverlayError):
            overlay.fetch("ghost", "k")


class TestFederation:
    def build(self, pods=4, users=30, seed=0):
        net = SimNetwork(Simulator(seed))
        federation = FederatedNetwork(net, [f"pod{i}" for i in range(pods)])
        for i in range(users):
            federation.register_user(f"fu{i}")
        return net, federation

    def test_post_reaches_recipients(self):
        net, fed = self.build()
        fed.post("fu0", "c1", b"hello", [f"fu{i}" for i in range(1, 10)])
        for reader in ("fu1", "fu5", "fu9"):
            assert fed.fetch(reader, "c1") == b"hello"

    def test_non_recipient_pod_lacks_content(self):
        net, fed = self.build(pods=8, users=40)
        delivery = fed.post("fu0", "c1", b"x", ["fu1"])
        hosting = set(delivery.servers_stored)
        for name, server in fed.servers.items():
            if name not in hosting:
                assert "c1" not in server.content

    def test_no_server_has_global_view(self):
        net, fed = self.build(pods=6, users=60)
        import random
        rng = random.Random(0)
        total_edges = 0
        for i in range(40):
            author = f"fu{rng.randrange(60)}"
            recipients = [f"fu{rng.randrange(60)}" for _ in range(3)]
            recipients = [r for r in recipients if r != author]
            fed.post(author, f"c{i}", b"x", recipients)
            total_edges += len(set(recipients))
        content_frac, edge_frac = fed.max_view_fraction(40, total_edges)
        assert content_frac < 1.0

    def test_hash_assignment_balanced(self):
        net, fed = self.build(pods=4, users=200)
        sizes = [len(s.users) for s in fed.servers.values()]
        assert min(sizes) > 20  # roughly balanced

    def test_unregistered_user_rejected(self):
        net, fed = self.build()
        with pytest.raises(OverlayError):
            fed.post("ghost", "c", b"x", [])

    def test_fetch_unfederated_content(self):
        net, fed = self.build(pods=8, users=40)
        delivery = fed.post("fu0", "c1", b"x", [])
        outside = [f"fu{i}" for i in range(40)
                   if fed.home[f"fu{i}"] not in delivery.servers_stored]
        if outside:
            with pytest.raises(LookupError_):
                fed.fetch(outside[0], "c1")

    def test_server_view_contents(self):
        net, fed = self.build()
        fed.post("fu0", "c1", b"x", ["fu1"])
        home = fed.home["fu0"]
        view = fed.server_view(home)
        assert "c1" in view["content_ids"]
        assert ("fu0", "fu1") in view["edges"]
