"""Property: measured availability tracks the analytic independence bound.

``analytic_availability`` computes ``1 - prod(1 - uptime_i)`` from the
churn model's *realized* uptime fractions; ``measure_availability``
samples the same schedules at probe times.  Under independent
(ExponentialOnOff) churn the two must agree within sampling error across
seeds and placement policies — if they drift apart, either the probe
sampling or the uptime accounting is broken, and every E6 conclusion
built on the comparison goes with it.
"""

import random

import pytest

from repro.overlay.churn import ExponentialOnOff
from repro.overlay.replication import (Placement, analytic_availability,
                                       measure_availability, place_by_uptime,
                                       place_random)

PEERS = [f"p{i}" for i in range(20)]
HORIZON = 7 * 24 * 3600.0
#: probes are auto-correlated on the session timescale, so the effective
#: sample is well under the probe count — hence the loose-ish tolerance
TOLERANCE = 0.1


def _probe_times(count: int = 400):
    step = HORIZON / (count + 1)
    return [step * (i + 1) for i in range(count)]


def _placement(policy: str, model: ExponentialOnOff, seed: int) -> Placement:
    rng = random.Random(seed)
    owner = PEERS[seed % len(PEERS)]
    if policy == "random":
        return place_random(owner, PEERS, 3, rng)
    return place_by_uptime(owner, PEERS, 3,
                           uptime=model.uptime_fraction)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("policy", ["random", "uptime"])
def test_measured_tracks_analytic(seed, policy):
    model = ExponentialOnOff(seed=seed, horizon=HORIZON)
    placement = _placement(policy, model, seed)
    analytic = analytic_availability(placement, model)
    measured = measure_availability(placement, model, _probe_times())
    assert measured == pytest.approx(analytic, abs=TOLERANCE), (
        f"seed={seed} policy={policy}: measured {measured:.3f} vs "
        f"analytic {analytic:.3f}")


@pytest.mark.parametrize("seed", range(4))
def test_uptime_placement_dominates_random(seed):
    """Supernova's claim: uptime-aware placement beats random placement."""
    model = ExponentialOnOff(seed=seed, horizon=HORIZON)
    random_pl = _placement("random", model, seed)
    uptime_pl = _placement("uptime", model, seed)
    assert analytic_availability(uptime_pl, model) >= \
        analytic_availability(random_pl, model)


def test_analytic_is_an_upper_envelope_of_single_holder():
    """Adding replicas can only raise the analytic availability."""
    model = ExponentialOnOff(seed=9, horizon=HORIZON)
    owner = PEERS[0]
    last = 0.0
    for count in range(4):
        placement = Placement(owner=owner, replicas=PEERS[1:1 + count])
        value = analytic_availability(placement, model)
        assert value >= last
        last = value
