"""Property tests for the failure detector (satellite of the E15 work).

Three properties the benchmark tables lean on, checked directly:

* a fault-free run never confirms anybody dead (zero false positives);
* under injected loss bursts, every phi-confirmation of a genuinely
  crashed peer happens inside the adaptive bound plus the protocol's
  scheduling slack (suspicion starts at most one probe rotation after
  the crash, confirms sweep once per period);
* the whole history is deterministic: same seed, byte-identical log.
"""

import pytest

from repro.fabric import Fabric
from repro.faults import FaultPlan, LossBurst
from repro.membership import MembershipConfig, SwimMembership
from repro.overlay.network import SimNode
from repro.overlay.simulator import FixedLatency

N = 8


def run_cluster(seed=2015, loss_burst=False, crash_at=None, until=600.0,
                n=N):
    plan = None
    if loss_burst:
        plan = FaultPlan(seed=seed, horizon=until).add(
            LossBurst(rate=0.3, mean_burst=15.0, mean_gap=45.0))
    fab = Fabric.create(seed=seed, latency=FixedLatency(0.02), faults=plan)
    membership = SwimMembership(fab, MembershipConfig())
    names = [f"m{i}" for i in range(n)]
    for name in names:
        fab.network.register(SimNode(name))
        membership.register(name)
    membership.start()
    if crash_at is not None:
        crashed, at = crash_at
        fab.sim.run(until=at)
        fab.network.node(crashed).go_offline()
    fab.sim.run(until=until)
    return fab, membership


class TestZeroFaultRuns:
    def test_no_false_positives_without_faults(self):
        _, membership = run_cluster()
        false, total = membership.false_positive_stats()
        assert (false, total) == (0, 0)
        assert membership.confirm_log == []
        assert not membership._dead

    def test_no_false_positives_under_loss_bursts_alone(self):
        """Loss delays evidence but the adaptive bound stretches with it."""
        _, membership = run_cluster(loss_burst=True)
        false, _ = membership.false_positive_stats()
        assert false == 0
        assert not membership._dead


class TestConfirmLatencyBound:
    def test_confirms_fall_inside_the_phi_bound_window(self):
        """Silence at confirm time sits in [bound, bound + slack).

        phi crosses the threshold exactly at ``bound`` seconds of
        silence; the overshoot is bounded by the scheduling slack — up
        to ``n - 1`` periods for the probe rotation to hit the dead peer
        plus one period of confirm-sweep granularity.
        """
        fab, membership = run_cluster(loss_burst=True,
                                      crash_at=("m4", 120.0))
        assert membership.confirmed_dead("m4")
        phi_confirms = [e for e in membership.confirm_log
                        if e.peer == "m4"]
        assert phi_confirms, "the crash must be phi-confirmed"
        slack = (N + 1) * membership.config.protocol_period
        for event in phi_confirms:
            assert event.silence >= event.bound
            assert event.silence < event.bound + slack
        false, _ = membership.false_positive_stats()
        assert false == 0

    def test_detection_happens_in_bounded_wall_time(self):
        _, membership = run_cluster(loss_burst=True,
                                    crash_at=("m4", 120.0), until=600.0)
        first = min(e.at for e in membership.confirm_log
                    if e.peer == "m4")
        worst_bound = max(
            membership.view_of(m).confirm_bound("m4")
            for m in membership.views if m != "m4")
        slack = (N + 1) * membership.config.protocol_period
        assert first - 120.0 <= worst_bound + slack


class TestDeterminism:
    def _history(self):
        fab, membership = run_cluster(loss_burst=True,
                                      crash_at=("m4", 120.0))
        return (repr(membership.confirm_log),
                sorted(membership._dead),
                fab.network.stats.messages,
                fab.network.stats.timeouts)

    def test_two_runs_are_byte_identical(self):
        assert self._history() == self._history()
