"""Overload-protection properties: determinism and byte-identity.

Two seeded guarantees gate this subsystem:

* **two-run determinism** — shed decisions, deadline expiries, budget
  exhaustions and queue peaks are pure functions of the seed: the same
  hotspot-under-loss workload run twice produces identical counters
  (shedding draws no RNG; deadlines and budgets are virtual-time
  arithmetic);
* **zero new draws** — with ``overload=None`` no service state exists
  and no code path changes, and even a service model that never sheds
  and never times out consumes the *identical* RNG stream as no service
  model at all (the queue adds latency, never a draw).

Plus the end-to-end failure surface: expired deadlines raise
:class:`DeadlineExceededError` from lookups and quorum reads, saturated
holders raise :class:`OverloadedError`, and
``DosnConfig(overload=...)`` threads the stack through the fabric.
"""

import pytest

from repro.dosn.api import DosnConfig, DosnNetwork
from repro.exceptions import DeadlineExceededError, OverloadedError
from repro.fabric import Fabric
from repro.faults import (AdaptiveTimeoutConfig, FaultPlan, LossBurst,
                          OverloadConfig, RetryBudgetConfig, RetryPolicy,
                          ServiceConfig)
from repro.overlay.chord import ChordRing
from repro.storage2 import ReplicatedStore, ReplicationConfig

N = 12
HOT = "hotkey"


def _burst_plan():
    return FaultPlan(seed=9).add(
        LossBurst(rate=0.25, mean_burst=5.0, mean_gap=10.0,
                  start=0.0, end=500.0))


def _hotspot(overload, install_late=True, reads=18):
    """A hot-key quorum workload under burst loss; returns its fabric."""
    fab = Fabric.create(seed=42, faults=_burst_plan(),
                        retry=RetryPolicy(max_attempts=3, jitter=0.0))
    ring = ChordRing(fab, successor_list_size=4, replication=3)
    for i in range(N):
        ring.add_node(f"p{i}")
    ring.build()
    store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
    store.put("p0", HOT, b"payload")
    if overload is not None and install_late:
        fab.overload = overload
        fab.network.install_overload(overload)
        if overload.retry_budget is not None:
            from repro.faults import RetryBudget
            fab.channel.retry_budget = RetryBudget(overload.retry_budget)
    fab.network.stats.reset()
    for j in range(reads):
        fab.sim.run(until=5.0 + j * 0.2)
        try:
            store.get(f"p{(j % (N - 1)) + 1}", HOT)
        except (OverloadedError, DeadlineExceededError, Exception):
            pass
    return fab, store


class _RecordingRng:
    """Wraps an RNG, logging every draw so two streams can be compared."""

    def __init__(self, inner):
        self._inner = inner
        self.draws = []

    def random(self):
        value = self._inner.random()
        self.draws.append(round(value, 12))
        return value

    def uniform(self, low, high):
        value = self._inner.uniform(low, high)
        self.draws.append(round(value, 12))
        return value

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _record_draws(fab):
    net_rng = _RecordingRng(fab.network._rng)
    fab.network._rng = net_rng
    chan_rng = _RecordingRng(fab.channel._rng)
    fab.channel._rng = chan_rng
    return net_rng, chan_rng


#: holders serve ~3.3 req/s against a 5 reads/s hotspot — saturated
PROTECTED = OverloadConfig(
    service=ServiceConfig(service_time=0.3, queue_limit=2,
                          shed_policy="reject", timeout=1.0),
    op_budget=1.5,
    retry_budget=RetryBudgetConfig(capacity=4.0, refill_per_success=0.5),
    adaptive_timeout=AdaptiveTimeoutConfig())


class TestDeterminism:
    def test_two_runs_are_byte_identical(self):
        first, _ = _hotspot(PROTECTED)
        second, _ = _hotspot(PROTECTED)
        assert repr(first.network.stats.summary()) == \
            repr(second.network.stats.summary())
        assert first.network.queue_peak == second.network.queue_peak
        assert first.channel.retry_budget.tokens == \
            second.channel.retry_budget.tokens
        assert first.channel.retry_budget.exhausted == \
            second.channel.retry_budget.exhausted

    def test_the_workload_actually_exercises_the_stack(self):
        fab, _ = _hotspot(PROTECTED)
        summary = fab.network.stats.summary()
        assert summary["shed"] > 0  # the hotspot saturated the holders
        assert max(fab.network.queue_peak.values()) >= 1


class TestByteIdentity:
    def test_overload_none_runs_no_service_state(self):
        fab, _ = _hotspot(None)
        summary = fab.network.stats.summary()
        assert fab.network.service is None
        assert fab.network.queue_peak == {}
        assert summary["shed"] == 0
        assert summary["deadline_expired"] == 0
        assert summary["budget_exhausted"] == 0

    def test_harmless_service_model_moves_no_rng_draw(self):
        """The queue prices latency; it must never consume randomness.

        A service model that can neither shed (unbounded queue) nor
        time anything out (huge fixed timeout, tiny service time) prices
        every admission the no-service run never made — and the two runs
        must still draw the identical random stream, because admission
        is deterministic.
        """
        harmless = OverloadConfig(
            service=ServiceConfig(service_time=1e-6, queue_limit=None,
                                  timeout=1e6),
            op_budget=None, retry_budget=None, adaptive_timeout=None)

        bare, bare_store = _hotspot(None)
        bare_net, bare_chan = _record_draws(bare)
        priced, priced_store = _hotspot(harmless)
        priced_net, priced_chan = _record_draws(priced)
        # replay the same read tail on both fabrics, recording draws
        for j in range(12):
            for fab, store in ((bare, bare_store),
                               (priced, priced_store)):
                fab.sim.run(until=fab.sim.now + 0.2)
                try:
                    store.get(f"p{(j % (N - 1)) + 1}", HOT)
                except Exception:
                    pass
        assert bare_net.draws == priced_net.draws
        assert bare_chan.draws == priced_chan.draws

    def test_full_workload_draw_stream_is_unmoved(self):
        """End to end: the harmless service model leaves the whole
        hotspot workload's stats fingerprint unchanged except latency."""
        harmless = OverloadConfig(
            service=ServiceConfig(service_time=1e-6, queue_limit=None,
                                  timeout=1e6),
            op_budget=None, retry_budget=None, adaptive_timeout=None)
        bare = _hotspot(None)[0].network.stats.summary()
        priced = _hotspot(harmless)[0].network.stats.summary()
        for key in ("messages", "retries", "fault_drops", "shed",
                    "deadline_expired", "budget_exhausted", "hedges"):
            assert bare[key] == priced[key], key


class TestFailureSurface:
    def test_starved_deadline_raises_from_quorum_read(self):
        # install the starved budget only after bootstrap, so setup's
        # own lookups are not the ones that trip it
        config = OverloadConfig(service=ServiceConfig(),
                                op_budget=0.01, retry_budget=None,
                                adaptive_timeout=None)
        fab = Fabric.create(seed=7,
                            retry=RetryPolicy(max_attempts=2, jitter=0.0))
        ring = ChordRing(fab, successor_list_size=4, replication=3)
        for i in range(8):
            ring.add_node(f"p{i}")
        ring.build()
        store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
        store.put("p0", HOT, b"payload")
        fab.overload = config
        fab.network.install_overload(config)
        with pytest.raises(DeadlineExceededError):
            store.get("p1", HOT)
        assert fab.network.stats.deadline_expired >= 1

    def test_starved_deadline_raises_from_chord_lookup(self):
        config = OverloadConfig(service=ServiceConfig(),
                                op_budget=1e-6, retry_budget=None,
                                adaptive_timeout=None)
        fab = Fabric.create(seed=7)
        ring = ChordRing(fab, successor_list_size=4, replication=2)
        for i in range(8):
            ring.add_node(f"p{i}")
        ring.build()
        fab.overload = config
        fab.network.install_overload(config)
        with pytest.raises(DeadlineExceededError):
            ring.lookup("p0", "somekey")
        assert fab.network.stats.deadline_expired >= 1

    def test_saturated_holders_raise_overloaded(self):
        config = OverloadConfig(
            service=ServiceConfig(service_time=1.0, queue_limit=1,
                                  shed_policy="reject", timeout=30.0),
            op_budget=None, retry_budget=None, adaptive_timeout=None)
        fab = Fabric.create(seed=7)
        ring = ChordRing(fab, successor_list_size=4, replication=3)
        for i in range(8):
            ring.add_node(f"p{i}")
        ring.build()
        store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
        store.put("p0", HOT, b"payload")
        fab.overload = config
        fab.network.install_overload(config)
        assert store.get("p1", HOT).payload == b"payload"  # fills queues
        with pytest.raises(OverloadedError):
            store.get("p2", HOT)  # frozen clock: every probe sheds
        assert fab.network.stats.shed >= 3


class TestDosnWiring:
    def test_config_threads_overload_through_the_fabric(self):
        overload = OverloadConfig(
            service=ServiceConfig(service_time=1e-4, queue_limit=None),
            op_budget=5.0,
            retry_budget=RetryBudgetConfig(capacity=10.0),
            adaptive_timeout=None)
        config = DosnConfig(architecture="dht", seed=3, resilient=True,
                            replication=ReplicationConfig(n=3, r=2, w=2),
                            overload=overload)
        net = DosnNetwork(config=config)
        net.add_users([f"u{i}" for i in range(8)])
        net.befriend("u0", "u1")
        assert net.fabric.overload is overload
        assert net.fabric.network.service is overload.service
        assert net.fabric.channel.retry_budget is not None
        cid = net.post("u0", "hello under load control")
        assert net.read("u1", "u0", cid) is not None

    def test_default_config_has_no_overload(self):
        net = DosnNetwork(config=DosnConfig(architecture="dht", seed=1))
        assert net.fabric.overload is None
        assert net.fabric.network.service is None
