"""Tests for churn models and replica placement/availability."""

import random

import networkx as nx
import pytest

from repro.exceptions import OverlayError, SimulationError
from repro.overlay import replication as rep
from repro.overlay.churn import (AlwaysOn, DiurnalChurn, ExponentialOnOff,
                                 apply_churn_to_network)
from repro.overlay.network import SimNetwork, SimNode
from repro.overlay.simulator import Simulator

PEERS = [f"peer{i}" for i in range(40)]


class TestChurnModels:
    def test_always_on(self):
        model = AlwaysOn()
        assert model.online_at("x", 12345.0)
        assert model.uptime_fraction("x") == 1.0

    def test_exponential_deterministic(self):
        m1 = ExponentialOnOff(seed=5)
        m2 = ExponentialOnOff(seed=5)
        for t in (0.0, 3600.0, 100000.0):
            assert m1.online_at("peer1", t) == m2.online_at("peer1", t)

    def test_exponential_uptime_matches_schedule(self):
        model = ExponentialOnOff(seed=6)
        for peer in PEERS[:5]:
            fraction = model.uptime_fraction(peer)
            assert 0.0 <= fraction <= 1.0
            # empirical check: sample 200 instants
            hits = sum(model.online_at(peer, t)
                       for t in range(0, int(model.horizon),
                                      int(model.horizon) // 200))
            assert abs(hits / 200 - fraction) < 0.15

    def test_exponential_sessions_alternate(self):
        model = ExponentialOnOff(seed=7)
        sessions = model.sessions("peerX")
        for (s1, e1), (s2, e2) in zip(sessions, sessions[1:]):
            assert e1 <= s2  # no overlap

    def test_exponential_out_of_horizon(self):
        model = ExponentialOnOff(seed=1)
        with pytest.raises(SimulationError):
            model.online_at("p", model.horizon + 1)

    def test_exponential_heterogeneity(self):
        model = ExponentialOnOff(seed=8, spread=8.0)
        fractions = [model.uptime_fraction(p) for p in PEERS]
        assert max(fractions) - min(fractions) > 0.2

    def test_diurnal_probability_range(self):
        model = DiurnalChurn(seed=9)
        for hour in range(24):
            p = model.online_probability("peer1", hour * 3600.0)
            assert 0.01 <= p <= 0.99

    def test_diurnal_day_night_swing(self):
        model = DiurnalChurn(seed=10, phase_correlation=1.0)
        probabilities = [model.online_probability("p", h * 3600.0)
                         for h in range(24)]
        assert max(probabilities) - min(probabilities) > 0.4

    def test_diurnal_deterministic(self):
        m = DiurnalChurn(seed=11)
        assert m.online_at("p", 7200.0) == m.online_at("p", 7200.0)

    def test_apply_churn_to_network(self):
        net = SimNetwork(Simulator(0))
        for name in PEERS[:10]:
            net.register(SimNode(name))
        model = ExponentialOnOff(seed=12)
        online = apply_churn_to_network(net, model, 50000.0)
        assert online == sum(1 for n in net.nodes.values() if n.online)


class TestPlacement:
    def test_random_placement(self, rng):
        placement = rep.place_random("peer0", PEERS, 5, rng)
        assert len(placement.replicas) == 5
        assert "peer0" not in placement.replicas
        assert len(set(placement.replicas)) == 5

    def test_random_placement_overflow(self, rng):
        with pytest.raises(OverlayError):
            rep.place_random("peer0", PEERS[:3], 5, rng)

    def test_friend_placement_prefers_friends(self, rng):
        graph = nx.Graph()
        graph.add_edges_from([("peer0", f"peer{i}") for i in (1, 2, 3, 4)])
        placement = rep.place_friends("peer0", graph, 3, rng)
        assert set(placement.replicas) <= {"peer1", "peer2", "peer3",
                                           "peer4"}

    def test_friend_placement_falls_back_to_foaf(self, rng):
        graph = nx.Graph()
        graph.add_edge("peer0", "peer1")
        graph.add_edge("peer1", "peer2")
        graph.add_edge("peer1", "peer3")
        placement = rep.place_friends("peer0", graph, 3, rng)
        assert "peer1" in placement.replicas
        assert set(placement.replicas) <= {"peer1", "peer2", "peer3"}

    def test_friend_placement_insufficient(self, rng):
        graph = nx.Graph()
        graph.add_edge("peer0", "peer1")
        with pytest.raises(OverlayError):
            rep.place_friends("peer0", graph, 5, rng)

    def test_uptime_placement_picks_best(self):
        uptimes = {p: i / len(PEERS) for i, p in enumerate(PEERS)}
        placement = rep.place_by_uptime("peer0", PEERS, 3,
                                        lambda p: uptimes[p])
        assert placement.replicas == ["peer39", "peer38", "peer37"]


class TestAvailability:
    TIMES = [float(t) for t in range(3600, 500000, 9600)]

    def test_more_replicas_more_availability(self, rng):
        model = ExponentialOnOff(seed=13)
        availabilities = []
        for count in (0, 2, 5):
            placement = rep.Placement(owner="peer0",
                                      replicas=PEERS[1:1 + count])
            availabilities.append(
                rep.measure_availability(placement, model, self.TIMES))
        assert availabilities[0] <= availabilities[1] <= availabilities[2]

    def test_uptime_placement_beats_random(self, rng):
        model = ExponentialOnOff(seed=14, spread=8.0)
        random_place = rep.place_random("peer0", PEERS, 3, rng)
        best_place = rep.place_by_uptime("peer0", PEERS, 3,
                                         model.uptime_fraction)
        assert rep.measure_availability(best_place, model, self.TIMES) >= \
            rep.measure_availability(random_place, model, self.TIMES)

    def test_analytic_close_to_measured_for_independent_churn(self, rng):
        model = ExponentialOnOff(seed=15)
        placement = rep.place_random("peer0", PEERS, 3, rng)
        measured = rep.measure_availability(placement, model, self.TIMES)
        analytic = rep.analytic_availability(placement, model)
        assert abs(measured - analytic) < 0.12

    def test_correlated_churn_hurts(self):
        """Fully phase-correlated diurnal churn: replicas sleep together,
        so availability drops below the independence prediction."""
        correlated = DiurnalChurn(seed=16, phase_correlation=1.0,
                                  base=0.4, amplitude=0.35)
        placement = rep.Placement(owner="peer0", replicas=PEERS[1:4])
        measured = rep.measure_availability(placement, correlated,
                                            self.TIMES)
        analytic = rep.analytic_availability(placement, correlated)
        assert measured < analytic + 0.02

    def test_empty_probes_rejected(self):
        placement = rep.Placement(owner="a", replicas=[])
        with pytest.raises(OverlayError):
            rep.measure_availability(placement, AlwaysOn(), [])


class TestReplicaExposure:
    def test_plaintext_replicas_see_owners(self, rng):
        exposure = rep.ReplicaExposure()
        p1 = rep.Placement(owner="alice", replicas=["bob", "carol"])
        p2 = rep.Placement(owner="dave", replicas=["bob"])
        exposure.record(p1, encrypted=False)
        exposure.record(p2, encrypted=False)
        assert exposure.max_readable_view(4) == 0.5  # bob reads 2/4 users
        assert exposure.stored_objects["bob"] == 2

    def test_encryption_zeroes_readable_view(self, rng):
        exposure = rep.ReplicaExposure()
        exposure.record(rep.Placement(owner="alice",
                                      replicas=["bob"]), encrypted=True)
        assert exposure.max_readable_view(10) == 0.0
        assert exposure.stored_objects["bob"] == 1

    def test_mean_view(self):
        exposure = rep.ReplicaExposure()
        exposure.record(rep.Placement(owner="a", replicas=["x", "y"]),
                        encrypted=False)
        exposure.record(rep.Placement(owner="b", replicas=["x"]),
                        encrypted=False)
        assert exposure.mean_readable_view(4) == pytest.approx(
            (2 / 4 + 1 / 4) / 2)

    def test_empty_exposure(self):
        exposure = rep.ReplicaExposure()
        assert exposure.max_readable_view(10) == 0.0
        assert exposure.mean_readable_view(10) == 0.0
