"""Tests for SimNetwork failure paths, the fault-injection subsystem, and
the resilient RPC layer (ReliableChannel / CircuitBreaker)."""

import pytest

from repro.exceptions import SimulationError
from repro.faults import (CircuitBreaker, Corruption, Crash, FaultPlan,
                          LossBurst, Partition, ReliableChannel, RetryPolicy,
                          SlowLink)
from repro.overlay.chord import ChordRing
from repro.overlay.churn import ExponentialOnOff, apply_churn_to_network
from repro.overlay.network import Message, SimNetwork, SimNode
from repro.overlay.replication import Placement, fetch_from_holders
from repro.overlay.simulator import FixedLatency, Simulator


class _Echo(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_ping(self, message):
        self.received.append(message)


class _ScriptedRng:
    """random() returns scripted values; everything else is fixed."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)

    def uniform(self, a, b):
        return a


def _net(loss=0.0, faults=None, peers=("a", "b")):
    sim = Simulator(1)
    net = SimNetwork(sim, latency=FixedLatency(0.05), loss_rate=loss,
                     faults=faults)
    nodes = [_Echo(p) for p in peers]
    for node in nodes:
        net.register(node)
    return (sim, net) + tuple(nodes)


class TestFailurePaths:
    def test_send_to_offline_peer_drops(self):
        sim, net, a, b = _net()
        b.go_offline()
        net.send(Message(kind="ping", src="a", dst="b"))
        sim.run()
        assert b.received == []
        assert net.stats.drops == 1
        assert net.stats.fault_drops == 0  # churn, not an injected fault

    def test_send_to_unknown_peer_drops(self):
        sim, net, a, b = _net()
        net.send(Message(kind="ping", src="a", dst="ghost"))
        sim.run()
        assert net.stats.drops == 1

    def test_loss_process_drops(self):
        sim, net, a, b = _net(loss=0.5)
        for _ in range(100):
            net.send(Message(kind="ping", src="a", dst="b"))
        sim.run()
        assert net.stats.drops == 100 - len(b.received)
        assert 20 < net.stats.drops < 80
        assert net.stats.fault_drops == 0

    def test_rpc_timeout_against_offline_peer(self):
        sim, net, a, b = _net()
        b.go_offline()
        ok, rtt = net.rpc("a", "b")
        assert not ok
        assert net.stats.timeouts == 1
        assert net.stats.messages == 1  # the request was still sent
        assert rtt == pytest.approx(0.20)  # 4x the one-way latency

    def test_rpc_request_vs_response_loss_accounting(self):
        sim, net, a, b = _net(loss=0.5)
        # request direction lost: one message charged
        net._rng = _ScriptedRng([0.4])
        ok, _ = net.rpc("a", "b")
        assert not ok and net.stats.messages == 1
        assert net.stats.timeouts == 1
        # request delivered, response lost: both messages charged
        net.stats.reset()
        net._rng = _ScriptedRng([0.9, 0.4])
        ok, _ = net.rpc("a", "b")
        assert not ok and net.stats.messages == 2
        assert net.stats.timeouts == 1
        # both directions survive
        net.stats.reset()
        net._rng = _ScriptedRng([0.9, 0.9])
        ok, _ = net.rpc("a", "b")
        assert ok and net.stats.messages == 2
        assert net.stats.timeouts == 0

    def test_stats_reset_zeroes_resilience_counters(self):
        sim, net, a, b = _net()
        net.stats.retries = 3
        net.stats.breaker_trips = 2
        net.stats.breaker_fastfails = 1
        net.stats.hedges = 4
        net.stats.fault_drops = 5
        net.stats.corrupted = 6
        net.rpc("a", "b")
        net.stats.reset()
        assert net.stats.messages == 0
        assert net.stats.retries == 0
        assert net.stats.breaker_trips == 0
        assert net.stats.breaker_fastfails == 0
        assert net.stats.hedges == 0
        assert net.stats.fault_drops == 0
        assert net.stats.corrupted == 0
        assert not net.stats.by_kind


class TestFaultPlan:
    def test_partition_blocks_cross_group_traffic(self):
        plan = FaultPlan(seed=3).add(
            Partition(groups=[{"a"}], start=0.0, end=100.0))
        sim, net, a, b = _net(faults=plan)
        ok, _ = net.rpc("a", "b")
        assert not ok
        assert net.stats.fault_drops == 1
        net.send(Message(kind="ping", src="b", dst="a"))
        sim.run(until=1.0)
        assert a.received == []
        assert net.stats.fault_drops == 2
        # same side of the cut is unaffected, and the window expires
        sim.run(until=200.0)
        ok, _ = net.rpc("a", "b")
        assert ok

    def test_partition_groups_must_be_disjoint(self):
        with pytest.raises(SimulationError):
            Partition(groups=[{"a", "b"}, {"b", "c"}])

    def test_burst_schedule_deterministic_from_seed(self):
        def bursts(seed):
            fault = LossBurst(rate=0.3, mean_burst=10, mean_gap=30)
            fault.bind(seed, 0, 1000.0)
            return fault.bursts()

        assert bursts(5) == bursts(5)
        assert bursts(5) != bursts(6)
        for start, end in bursts(5):
            assert 0 <= start < end <= 1000.0

    def test_burst_loss_only_inside_bursts(self):
        fault = LossBurst(rate=0.3, mean_burst=10, mean_gap=30)
        fault.bind(7, 0, 1000.0)
        (start, end) = fault.bursts()[0]
        mid = (start + end) / 2
        assert fault.loss_rate("a", "b", mid) == 0.3
        assert fault.loss_rate("a", "b", start - 0.001) == 0.0
        assert fault.loss_rate("a", "b", end + 0.001) in (0.0, 0.3)

    def test_slow_link_multiplies_latency(self):
        plan = FaultPlan(seed=1).add(
            SlowLink(factor=3.0, peers={"b"}, start=0.0, end=50.0))
        sim, net, a, b = _net(faults=plan)
        ok, rtt = net.rpc("a", "b")
        assert ok and rtt == pytest.approx(0.30)  # 2 x 0.05 x 3
        sim.run(until=60.0)
        ok, rtt = net.rpc("a", "b")
        assert ok and rtt == pytest.approx(0.10)  # window over

    def test_crash_wipes_state_and_restart_recovers(self):
        plan = FaultPlan(seed=1).add(
            Crash("b", at=10.0, restart_at=20.0, lose_state=True))
        sim, net, a, b = _net(faults=plan)
        b.store = {"k": b"v"}
        sim.run(until=15.0)
        assert not b.online
        assert b.store == {}  # volatile state lost
        sim.run(until=25.0)
        assert b.online

    def test_crash_restart_order_validated(self):
        with pytest.raises(SimulationError):
            Crash("b", at=10.0, restart_at=5.0)

    def test_corruption_flags_messages(self):
        plan = FaultPlan(seed=1).add(Corruption(rate=1.0))
        sim, net, a, b = _net(faults=plan)
        net.send(Message(kind="ping", src="a", dst="b"))
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].corrupted
        assert net.stats.corrupted == 1
        # a corrupted RPC response reads as a failure
        ok, _ = net.rpc("a", "b")
        assert not ok
        assert net.stats.corrupted == 2

    def test_plan_installs_once(self):
        plan = FaultPlan(seed=1)
        sim, net, a, b = _net(faults=plan)
        with pytest.raises(SimulationError):
            net.install_faults(FaultPlan(seed=2))
        with pytest.raises(SimulationError):
            plan.add(Corruption(rate=0.5))

    def test_fault_runs_are_deterministic(self):
        def run():
            plan = (FaultPlan(seed=9, horizon=500.0)
                    .add(LossBurst(rate=0.4, mean_burst=20, mean_gap=20))
                    .add(Partition(groups=[{"a"}], start=100.0, end=300.0)))
            sim, net, a, b = _net(faults=plan)
            trace = []
            for i in range(50):
                sim.run(until=10.0 * i)
                trace.append(net.rpc("a", "b"))
            return trace, net.stats.fault_drops

        assert run() == run()


class TestReliableChannel:
    def test_retry_masks_transient_loss(self):
        sim, net, a, b = _net(loss=0.5)
        channel = ReliableChannel(net, RetryPolicy(max_attempts=3,
                                                   jitter=0.0))
        # attempt 1: request lost; attempt 2: clean round trip
        net._rng = _ScriptedRng([0.4, 0.9, 0.9])
        ok, elapsed = channel.call("a", "b")
        assert ok
        assert net.stats.retries == 1
        assert elapsed > 0.25  # timeout + backoff + the successful RTT

    def test_retries_are_bounded(self):
        sim, net, a, b = _net()
        b.go_offline()
        channel = ReliableChannel(net, RetryPolicy(max_attempts=3))
        ok, _ = channel.call("a", "b")
        assert not ok
        assert net.stats.timeouts == 3
        assert net.stats.retries == 2  # retries = attempts - 1

    def test_breaker_opens_and_fails_fast(self):
        sim, net, a, b = _net()
        b.go_offline()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=30.0)
        channel = ReliableChannel(
            net, RetryPolicy(max_attempts=2), breaker)
        ok, _ = channel.call("a", "b")  # 2 failures -> breaker trips
        assert not ok
        assert net.stats.breaker_trips == 1
        before = net.stats.messages
        ok, _ = channel.call("a", "b")  # open: fail fast, no traffic
        assert not ok
        assert net.stats.messages == before
        assert net.stats.breaker_fastfails == 1

    def test_breaker_half_open_probe_recovers(self):
        sim, net, a, b = _net()
        b.go_offline()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        channel = ReliableChannel(
            net, RetryPolicy(max_attempts=1), breaker)
        channel.call("a", "b")
        assert breaker.is_open("b", net.sim.now)
        b.go_online()
        sim.run(until=15.0)  # cooldown expires -> half-open probe allowed
        ok, _ = channel.call("a", "b")
        assert ok
        assert not breaker.is_open("b", net.sim.now)

    def test_failed_half_open_probe_reopens(self):
        sim, net, a, b = _net()
        b.go_offline()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        channel = ReliableChannel(
            net, RetryPolicy(max_attempts=1), breaker)
        channel.call("a", "b")
        sim.run(until=15.0)
        ok, _ = channel.call("a", "b")  # half-open probe fails
        assert not ok
        assert breaker.is_open("b", net.sim.now + 5.0)

    def test_hedged_call_finds_live_replica(self):
        sim, net, *_ = _net(peers=("a", "b", "c", "d"))
        net.node("b").go_offline()
        net.node("c").go_offline()
        channel = ReliableChannel(net, RetryPolicy(max_attempts=1))
        ok, winner, _ = channel.hedged("a", ["b", "c", "d"])
        assert ok and winner == "d"
        assert net.stats.hedges == 2

    def test_fetch_from_holders(self):
        sim, net, *_ = _net(peers=("owner", "r1", "r2", "reader"))
        net.node("owner").go_offline()
        channel = ReliableChannel(net, RetryPolicy(max_attempts=1))
        placement = Placement(owner="owner", replicas=["r1", "r2"])
        holder, _ = fetch_from_holders(channel, "reader", placement)
        assert holder == "r1"
        net.node("r1").go_offline()
        net.node("r2").go_offline()
        holder, _ = fetch_from_holders(channel, "reader", placement)
        assert holder is None


class TestVerifiedFetchFromHolders:
    """Satellite: the fetch path must stop trusting the first blob."""

    def _setup(self, blobs):
        sim, net, *_ = _net(peers=("owner", "r1", "r2", "reader"))
        channel = ReliableChannel(net, RetryPolicy(max_attempts=1))
        placement = Placement(owner="owner", replicas=["r1", "r2"])
        return net, channel, placement, blobs.get

    def test_invalid_first_response_is_skipped(self):
        net, channel, placement, blob_of = self._setup(
            {"owner": b"garbled", "r1": b"good", "r2": b"good"})
        holder, _ = fetch_from_holders(
            channel, "reader", placement, blob_of=blob_of,
            verify=lambda h, blob: blob == b"good")
        assert holder == "r1"  # the owner answered, but did not verify

    def test_holders_without_the_blob_cost_no_probe(self):
        net, channel, placement, blob_of = self._setup(
            {"r2": b"good"})
        before = net.stats.messages
        holder, _ = fetch_from_holders(
            channel, "reader", placement, blob_of=blob_of,
            verify=lambda h, blob: True)
        assert holder == "r2"
        assert net.stats.messages == before + 2  # one RPC round trip

    def test_all_served_copies_invalid_raises(self):
        from repro.exceptions import ReplicaIntegrityError
        net, channel, placement, blob_of = self._setup(
            {"owner": b"bad", "r1": b"bad", "r2": b"bad"})
        with pytest.raises(ReplicaIntegrityError):
            fetch_from_holders(
                channel, "reader", placement, blob_of=blob_of,
                verify=lambda h, blob: False)

    def test_unreachable_holders_still_return_none(self):
        net, channel, placement, blob_of = self._setup(
            {"owner": b"good", "r1": b"good", "r2": b"good"})
        for peer in ("owner", "r1", "r2"):
            net.node(peer).go_offline()
        holder, _ = fetch_from_holders(
            channel, "reader", placement, blob_of=blob_of,
            verify=lambda h, blob: True)
        assert holder is None  # unreachable != tampered: no raise

    def test_without_blob_of_the_legacy_hedge_is_used(self):
        net, channel, placement, _ = self._setup({})
        net.node("owner").go_offline()
        holder, _ = fetch_from_holders(channel, "reader", placement)
        assert holder == "r1"


class TestByzantineHolderFaults:
    """The holder-level fault family: windows, determinism, plan query."""

    def test_holder_faults_filters_by_holder_and_window(self):
        from repro.faults import StaleServe
        plan = FaultPlan(seed=5).add(
            StaleServe(holders={"p1"}, start=10.0, end=20.0))
        sim = Simulator(seed=5)
        net = SimNetwork(sim, latency=FixedLatency(0.05))
        net.install_faults(plan)
        assert not plan.holder_faults("p1", 5.0)
        assert len(plan.holder_faults("p1", 15.0)) == 1
        assert not plan.holder_faults("p1", 20.0)
        assert not plan.holder_faults("p2", 15.0)

    def test_empty_holder_set_rejected(self):
        from repro.faults import CorruptBlob
        with pytest.raises(SimulationError):
            CorruptBlob(holders=frozenset())

    def test_key_scoped_fault_spares_co_located_keys(self):
        """A liar targeting one object serves its other keys honestly.

        Replica placements overlap, so without scoping a per-key fault
        assignment silently compounds across every key the holder serves.
        """
        from repro.faults import StaleServe
        scoped = StaleServe(holders={"p1"}, keys={"k1"})
        assert scoped.applies_to("k1")
        assert not scoped.applies_to("k2")
        unscoped = StaleServe(holders={"p1"})
        assert unscoped.applies_to("k1") and unscoped.applies_to("k2")

    def test_corrupt_blob_rate_validated(self):
        from repro.faults import CorruptBlob
        with pytest.raises(SimulationError):
            CorruptBlob(holders={"p1"}, rate=1.5)

    def test_corruption_draws_are_seed_deterministic(self):
        from repro.faults import CorruptBlob

        def draws(seed):
            fault = CorruptBlob(holders={"p1"}, rate=0.5)
            fault.bind(seed, 0, 100.0)
            return [fault.garbles("p1", f"k{i}", "reader")
                    for i in range(32)]

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)
        assert any(draws(3)) and not all(draws(3))  # rate=0.5 mixes

    def test_garble_changes_bytes(self):
        from repro.faults import CorruptBlob
        blob = b"x" * 64
        assert CorruptBlob.garble(blob) != blob
        assert CorruptBlob.garble(b"") != b""

    def test_equivocate_is_per_reader_deterministic(self):
        from repro.faults import Equivocate
        fault = Equivocate(holders={"p1"})
        fault.bind(7, 0, 100.0)
        picks = {reader: fault.pick_version("p1", "k", reader, 10)
                 for reader in (f"u{i}" for i in range(12))}
        again = {reader: fault.pick_version("p1", "k", reader, 10)
                 for reader in (f"u{i}" for i in range(12))}
        assert picks == again
        assert len(set(picks.values())) > 1  # different readers fork

    def test_stale_serve_always_picks_the_oldest(self):
        from repro.faults import StaleServe
        fault = StaleServe(holders={"p1"})
        fault.bind(7, 0, 100.0)
        assert all(fault.pick_version("p1", "k", f"u{i}", 5) == 0
                   for i in range(8))


class TestBreakerStateGauge:
    """Satellite: the breaker's per-destination state as a labelled gauge."""

    def test_state_walks_closed_open_half_open(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0)
        assert breaker.state("b", 0.0) == "closed"
        breaker.record_failure("b", 0.0)
        assert breaker.state("b", 0.0) == "closed"  # below threshold
        breaker.record_failure("b", 0.0)
        assert breaker.state("b", 5.0) == "open"
        assert breaker.state("b", 10.0) == "half_open"
        breaker.record_failure("b", 10.0)  # failed half-open probe
        assert breaker.state("b", 15.0) == "open"
        breaker.record_success("b")
        assert breaker.state("b", 15.0) == "closed"

    def test_gauge_tracks_breaker_per_destination(self):
        from repro.faults import BREAKER_STATE_VALUES
        sim, net, a, b = _net()
        b.go_offline()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        channel = ReliableChannel(net, RetryPolicy(max_attempts=1), breaker)
        gauge = net.metrics.gauge("channel.breaker_state", dst="b")
        channel.call("a", "b")  # trips open
        assert gauge.value == BREAKER_STATE_VALUES["open"]
        b.go_online()
        sim.run(until=15.0)
        channel.call("a", "b")  # half-open probe succeeds -> closed
        assert gauge.value == BREAKER_STATE_VALUES["closed"]
        # an untouched destination never even creates a gauge series
        assert net.metrics.gauge("channel.breaker_state", dst="a").value \
            == 0.0

    def test_gauge_reopens_after_failed_probe(self):
        from repro.faults import BREAKER_STATE_VALUES
        sim, net, a, b = _net()
        b.go_offline()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        channel = ReliableChannel(net, RetryPolicy(max_attempts=1), breaker)
        channel.call("a", "b")
        sim.run(until=15.0)
        channel.call("a", "b")  # half-open probe fails -> re-open
        gauge = net.metrics.gauge("channel.breaker_state", dst="b")
        assert gauge.value == BREAKER_STATE_VALUES["open"]
        assert breaker.is_open("b", net.sim.now + 5.0)


class TestMembershipChannel:
    """The adaptive liveness policy replacing fixed breaker thresholds."""

    def _channel(self, n=4):
        from repro.fabric import Fabric
        from repro.membership import MembershipConfig, SwimMembership
        from repro.overlay.simulator import FixedLatency
        fab = Fabric.create(seed=5, latency=FixedLatency(0.05),
                            retry=RetryPolicy(max_attempts=3, jitter=0.0),
                            breaker=CircuitBreaker(failure_threshold=1))
        membership = SwimMembership(fab, MembershipConfig())
        for i in range(n):
            fab.network.register(_Echo(f"p{i}"))
            membership.register(f"p{i}")
        return fab, fab.channel, membership

    def test_confirmed_dead_destination_fails_fast(self):
        fab, channel, membership = self._channel()
        membership.view_of("p0").records["p1"].state = "dead"
        before = fab.network.stats.messages
        ok, elapsed = channel.call("p0", "p1")
        assert not ok and elapsed == 0.0
        assert fab.network.stats.messages == before  # no traffic paid
        assert fab.network.stats.breaker_fastfails == 1
        assert fab.metrics.get_counter_value(
            "channel.membership_fastfails", kind="rpc") == 1

    def test_suspect_destination_gets_a_single_attempt(self):
        fab, channel, membership = self._channel()
        membership.view_of("p0").records["p1"].state = "suspect"
        fab.network.node("p1").go_offline()
        ok, _ = channel.call("p0", "p1")
        assert not ok
        assert fab.network.stats.timeouts == 1  # not max_attempts
        assert fab.network.stats.retries == 0

    def test_healthy_destination_keeps_full_retries(self):
        fab, channel, membership = self._channel()
        fab.network.node("p1").go_offline()
        ok, _ = channel.call("p0", "p1")
        assert not ok
        assert fab.network.stats.timeouts == 3

    def test_success_feeds_the_view_as_evidence(self):
        fab, channel, membership = self._channel()
        record = membership.view_of("p0").records["p1"]
        record.state = "suspect"
        fab.sim.run(until=5.0)
        ok, _ = channel.call("p0", "p1")
        assert ok
        assert record.state == "alive"  # Lifeguard-style local refutation

    def test_breaker_not_consulted_when_view_exists(self):
        fab, channel, membership = self._channel()
        fab.network.node("p1").go_offline()
        channel.call("p0", "p1")  # would trip the threshold-1 breaker
        assert fab.network.stats.breaker_trips == 0
        fab.network.node("p1").go_online()
        ok, _ = channel.call("p0", "p1")  # no open breaker blocking it
        assert ok

    def test_non_member_source_still_uses_the_breaker(self):
        fab, channel, membership = self._channel()
        fab.network.register(_Echo("outsider"))
        fab.network.node("p1").go_offline()
        channel.call("outsider", "p1")
        assert fab.network.stats.breaker_trips == 1

    def test_hedged_probes_healthy_holders_first(self):
        fab, channel, membership = self._channel()
        view = membership.view_of("p0")
        view.records["p1"].state = "dead"
        ok, winner, _ = channel.hedged("p0", ["p1", "p2"])
        assert ok and winner == "p2"
        assert fab.network.stats.hedges == 0  # the dead one was never paid

    def test_hedged_still_probes_the_dead_as_last_resort(self):
        fab, channel, membership = self._channel()
        view = membership.view_of("p0")
        view.records["p1"].state = "dead"  # false confirmation: p1 is up
        fab.network.node("p2").go_offline()
        ok, winner, _ = channel.hedged("p0", ["p1", "p2"])
        assert ok and winner == "p1"


class TestResilientChord:
    def _ring(self, resilient, partitioned):
        from repro.fabric import Fabric
        plan = FaultPlan(seed=11, horizon=1000.0)
        if partitioned:
            plan.add(Partition(
                groups=[{f"p{i}" for i in range(0, 32, 2)}],
                start=0.0, end=1000.0))
        fab = Fabric.create(
            seed=11, latency=FixedLatency(0.02), faults=plan,
            retry=RetryPolicy(max_attempts=3) if resilient else None,
            breaker=CircuitBreaker() if resilient else None)
        sim, net = fab.sim, fab.network
        ring = ChordRing(fab, successor_list_size=8, replication=3)
        for i in range(32):
            ring.add_node(f"p{i}")
        ring.build()
        return sim, net, ring

    def _success_rate(self, ring):
        # place on the true replica set directly (no network traffic) so
        # the comparison below is purely about the read path
        for i in range(12):
            for holder in ring.replica_set(f"key{i}"):
                ring.nodes[holder].store[f"key{i}"] = b"v"
        ok = 0
        for i in range(12):
            try:
                ring.get("p1", f"key{i}")
                ok += 1
            except Exception:
                pass
        return ok / 12

    def test_resilient_get_survives_partition(self):
        _, _, bare_ring = self._ring(resilient=False, partitioned=True)
        _, _, res_ring = self._ring(resilient=True, partitioned=True)
        bare = self._success_rate(bare_ring)
        resilient = self._success_rate(res_ring)
        assert resilient >= max(2 * bare, 0.5)

    def test_resilience_free_in_fair_weather(self):
        _, _, ring = self._ring(resilient=True, partitioned=False)
        assert self._success_rate(ring) == 1.0


class TestChurnSatellites:
    def test_apply_churn_calls_transition_hooks(self):
        class Recorder(SimNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.transitions = []

            def go_online(self):
                super().go_online()
                self.transitions.append("up")

            def go_offline(self):
                super().go_offline()
                self.transitions.append("down")

        sim = Simulator(0)
        net = SimNetwork(sim)
        nodes = [Recorder(f"n{i}") for i in range(20)]
        for node in nodes:
            net.register(node)
        model = ExponentialOnOff(seed=4)
        apply_churn_to_network(net, model, 30000.0)
        flipped = [n for n in nodes if n.transitions]
        assert flipped, "some node should have churned offline"
        for node in nodes:
            assert node.online == model.online_at(node.node_id, 30000.0)
            # hooks fire exactly on state changes, never redundantly
            assert len(node.transitions) <= 1
        # re-applying the same instant is a no-op (hooks not re-fired)
        apply_churn_to_network(net, model, 30000.0)
        for node in nodes:
            assert len(node.transitions) <= 1

    def test_online_at_bisect_matches_linear_scan(self):
        model = ExponentialOnOff(seed=8, mean_online=600, mean_offline=900,
                                 horizon=100000.0)
        for peer in ("x", "y"):
            intervals = model.sessions(peer)
            for t in [0.0, 1.0, 99999.0] + \
                    [s for s, _ in intervals] + \
                    [e - 1e-6 for _, e in intervals] + \
                    [(s + e) / 2 for s, e in intervals]:
                expected = any(s <= t < e for s, e in intervals)
                assert model.online_at(peer, t) == expected, t
