"""Overload protection units: service queues, deadlines, budgets, breaker.

Covers the PR-9 mechanisms at the network/channel layer — the service
queue's pricing and shed policies, deadline fast-failure, the retry
budget, adaptive timeouts, the ``max_delay`` backoff cap, and the
circuit breaker's single half-open probe (the anti-stampede claim).
"""

import pytest

from repro.exceptions import SimulationError
from repro.fabric import Fabric
from repro.faults import (AdaptiveTimeout, AdaptiveTimeoutConfig,
                          CircuitBreaker, Deadline, OverloadConfig,
                          RetryBudget, RetryBudgetConfig, RetryPolicy,
                          ServiceConfig)
from repro.overlay.simulator import FixedLatency


def _fab(service=None, retry=None, breaker=None, **overload_kw):
    overload = None
    if service is not None or overload_kw:
        # protections are opt-in per test: only what a test names is on
        overload_kw.setdefault("op_budget", None)
        overload_kw.setdefault("retry_budget", None)
        overload_kw.setdefault("adaptive_timeout", None)
        overload = OverloadConfig(service=service, **overload_kw)
    fab = Fabric.create(seed=1, latency=FixedLatency(0.05), retry=retry,
                        breaker=breaker,
                        resilient=retry is not None or breaker is not None,
                        overload=overload)
    from repro.overlay.network import SimNode
    for name in ("a", "b", "c"):
        fab.network.register(SimNode(name))
    return fab


class TestConfigValidation:
    def test_service_config_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            ServiceConfig(service_time=0.0)
        with pytest.raises(SimulationError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(SimulationError):
            ServiceConfig(shed_policy="explode")
        with pytest.raises(SimulationError):
            ServiceConfig(timeout=-1.0)

    def test_overload_config_rejects_bad_budget(self):
        with pytest.raises(SimulationError):
            OverloadConfig(op_budget=0.0)

    def test_mint_deadline_honours_disabled_budget(self):
        assert OverloadConfig(op_budget=None).mint_deadline(5.0) is None
        deadline = OverloadConfig(op_budget=2.0).mint_deadline(5.0)
        assert deadline.expires_at == pytest.approx(7.0)

    def test_install_overload_is_once_only(self):
        fab = _fab(service=ServiceConfig())
        with pytest.raises(SimulationError):
            fab.network.install_overload(OverloadConfig())

    def test_max_delay_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_delay=0.0)
        with pytest.raises(SimulationError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)


class TestRetryPolicyMaxDelay:
    def test_backoff_is_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, jitter=0.0,
                             max_delay=5.0)

        class _Rng:
            def random(self):
                return 0.5  # zero jitter either way

        rng = _Rng()
        assert policy.backoff(0, rng) == pytest.approx(1.0)
        assert policy.backoff(1, rng) == pytest.approx(5.0)  # capped from 10
        assert policy.backoff(5, rng) == pytest.approx(5.0)

    def test_default_cap_leaves_default_policy_unchanged(self):
        # three default attempts reach base * mult**1 = 0.5s << 30s cap
        policy = RetryPolicy(jitter=0.0)

        class _Rng:
            def random(self):
                return 0.5

        assert policy.backoff(1, _Rng()) == pytest.approx(0.5)


class TestDeadline:
    def test_remaining_expired_minus(self):
        deadline = Deadline.after(10.0, 2.0)
        assert deadline.remaining(10.0) == pytest.approx(2.0)
        assert not deadline.expired(10.0)
        assert deadline.expired(10.0, spent=2.0)
        assert deadline.expired(12.0)
        child = deadline.minus(1.5)
        assert child.remaining(10.0) == pytest.approx(0.5)


class TestRetryBudget:
    def test_spend_exhaust_and_refill(self):
        budget = RetryBudget(RetryBudgetConfig(capacity=2.0,
                                               refill_per_success=0.5))
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        assert budget.exhausted == 1
        budget.on_success()
        assert budget.tokens == pytest.approx(0.5)
        assert not budget.try_spend()  # 0.5 < the 1-token cost
        budget.on_success()
        assert budget.try_spend()

    def test_refill_never_exceeds_capacity(self):
        budget = RetryBudget(RetryBudgetConfig(capacity=1.0,
                                               refill_per_success=5.0))
        budget.on_success()
        assert budget.tokens == pytest.approx(1.0)


class TestAdaptiveTimeout:
    def test_ewma_and_clamp(self):
        adaptive = AdaptiveTimeout(AdaptiveTimeoutConfig(
            alpha=0.5, multiplier=2.0, floor=0.2, ceiling=1.0))
        assert adaptive.timeout_for("x") is None  # no sample yet
        adaptive.observe("x", 0.3)
        assert adaptive.timeout_for("x") == pytest.approx(0.6)
        adaptive.observe("x", 0.1)  # ewma -> 0.2
        assert adaptive.timeout_for("x") == pytest.approx(0.4)
        adaptive.observe("x", 0.01)
        adaptive.observe("x", 0.01)
        assert adaptive.timeout_for("x") >= 0.2  # floored
        for _ in range(10):
            adaptive.observe("x", 50.0)
        assert adaptive.timeout_for("x") == pytest.approx(1.0)  # ceiling


class TestServiceQueue:
    def test_queue_charges_service_and_wait_time(self):
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=4,
                                         timeout=10.0))
        ok1, rtt1 = fab.network.rpc("a", "b")
        ok2, rtt2 = fab.network.rpc("a", "b")
        assert ok1 and ok2
        assert rtt1 == pytest.approx(0.05 + 1.0 + 0.05)
        # issued at the same frozen instant: waits behind the first job
        assert rtt2 == pytest.approx(0.05 + 2.0 + 0.05)
        assert fab.network.queue_depth("b") >= 1
        assert fab.network.queue_depth("c") == 0

    def test_full_queue_sheds_reject_cheaply(self):
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=2,
                                         shed_policy="reject", timeout=10.0))
        net = fab.network
        assert net.rpc("a", "b")[0] and net.rpc("a", "b")[0]
        before = net.stats.messages
        ok, rtt = net.rpc("a", "b")
        assert not ok
        assert net.stats.shed == 1
        # a rejection rides back: two messages, one wire round trip, no
        # service time billed and no timeout counted
        assert net.stats.messages == before + 2
        assert rtt == pytest.approx(0.10)
        assert net.stats.timeouts == 0

    def test_full_queue_drop_costs_the_timeout(self):
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=2,
                                         shed_policy="drop", timeout=10.0))
        net = fab.network
        assert net.rpc("a", "b")[0] and net.rpc("a", "b")[0]
        before = net.stats.messages
        ok, rtt = net.rpc("a", "b")
        assert not ok
        assert net.stats.shed == 1
        assert net.stats.messages == before + 1  # the request only
        assert rtt == pytest.approx(10.0)  # waited out the attempt timeout
        assert net.stats.timeouts == 1

    def test_backlog_drains_with_virtual_time(self):
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=2,
                                         timeout=10.0))
        net = fab.network
        assert net.rpc("a", "b")[0] and net.rpc("a", "b")[0]
        assert not net.rpc("a", "b")[0]  # full at the frozen instant
        fab.sim.run(until=10.0)
        ok, rtt = net.rpc("a", "b")
        assert ok and rtt == pytest.approx(0.05 + 1.0 + 0.05)

    def test_slow_response_reads_as_timeout(self):
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=8,
                                         timeout=0.5))
        ok, rtt = fab.network.rpc("a", "b")
        assert not ok
        assert rtt == pytest.approx(0.5)  # the client stopped waiting
        assert fab.network.stats.timeouts == 1
        assert fab.network.stats.shed == 0

    def test_shed_decision_draws_no_rng(self):
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=1,
                                         timeout=10.0))
        net = fab.network
        assert net.rpc("a", "b")[0]
        state = net._rng.getstate()
        # both wire latencies are drawn, then the deterministic rejection
        assert not net.rpc("a", "b")[0]
        net._rng.setstate(state)
        assert not net.rpc("a", "b")[0]
        assert net.stats.shed == 2

    def test_summary_reports_overload_counters(self):
        fab = _fab(service=ServiceConfig())
        summary = fab.network.stats.summary()
        assert summary["shed"] == 0
        assert summary["deadline_expired"] == 0
        assert summary["budget_exhausted"] == 0
        fab.network.stats.shed = 3
        fab.network.stats.reset()
        assert fab.network.stats.shed == 0


class TestChannelOverload:
    def test_expired_deadline_fails_before_any_attempt(self):
        fab = _fab(service=ServiceConfig(), retry=RetryPolicy(jitter=0.0))
        before = fab.network.stats.messages
        ok, elapsed = fab.channel.call(
            "a", "b", deadline=Deadline(fab.sim.now))
        assert not ok and elapsed == 0.0
        assert fab.network.stats.messages == before  # no RPC was issued
        assert fab.network.stats.deadline_expired == 1

    def test_deadline_stops_mid_retry_loop(self):
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=1,
                                         timeout=10.0),
                   retry=RetryPolicy(max_attempts=5, base_delay=2.0,
                                     jitter=0.0))
        net = fab.network
        assert net.rpc("a", "b")[0]  # saturate b's one-slot queue
        # every attempt sheds (the clock is frozen, the queue cannot
        # drain) and each backoff burns budget until the deadline trips
        ok, _ = fab.channel.call("a", "b",
                                 deadline=Deadline.after(fab.sim.now, 3.0))
        assert not ok
        assert net.stats.deadline_expired == 1
        assert 0 < net.stats.shed < 5

    def test_retry_budget_caps_attempts(self):
        fab = _fab(service=ServiceConfig(),
                   retry=RetryPolicy(max_attempts=4, jitter=0.0),
                   retry_budget=RetryBudgetConfig(capacity=1.0,
                                                  refill_per_success=1.0))
        fab.network.nodes["b"].go_offline()
        ok, _ = fab.channel.call("a", "b")
        assert not ok
        assert fab.network.stats.retries == 1  # one token, one retry
        assert fab.network.stats.budget_exhausted == 1
        assert fab.channel.retry_budget.tokens == pytest.approx(0.0)
        # successes refill the bucket
        ok, _ = fab.channel.call("a", "c")
        assert ok
        assert fab.channel.retry_budget.tokens == pytest.approx(1.0)

    def test_shed_does_not_feed_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        fab = _fab(service=ServiceConfig(service_time=1.0, queue_limit=1,
                                         timeout=10.0),
                   retry=RetryPolicy(max_attempts=2, jitter=0.0),
                   breaker=breaker)
        net = fab.network
        assert net.rpc("a", "b")[0]  # saturate
        ok, _ = fab.channel.call("a", "b")
        assert not ok and net.stats.shed == 2
        # two overloaded failures against a 1-failure threshold: still
        # closed — the peer is alive and honestly rejecting
        assert breaker.state("b", fab.sim.now) == "closed"
        # a genuine failure still trips it
        net.nodes["c"].go_offline()
        fab.channel.call("a", "c")
        assert breaker.state("c", fab.sim.now) == "open"

    def test_fabric_wires_budget_and_service(self):
        fab = _fab(service=ServiceConfig(), retry=RetryPolicy(),
                   retry_budget=RetryBudgetConfig(capacity=7.0))
        assert fab.network.service is not None
        assert fab.channel.retry_budget.capacity == pytest.approx(7.0)
        assert fab.overload is not None

    def test_no_overload_means_no_service_state(self):
        fab = Fabric.create(seed=1, resilient=True)
        assert fab.overload is None
        assert fab.network.service is None
        assert fab.channel.retry_budget is None


class TestBreakerSingleProbe:
    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        assert breaker.record_failure("d", now=0.0)  # trips open
        assert not breaker.allow("d", now=5.0)  # still cooling down
        # cooled down: the first caller claims the single probe slot...
        assert breaker.allow("d", now=20.0)
        # ...and the stampede behind it keeps failing fast
        assert not breaker.allow("d", now=20.0)
        assert not breaker.allow("d", now=25.0)

    def test_is_open_inspects_without_claiming(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure("d", now=0.0)
        assert not breaker.is_open("d", now=20.0)
        assert not breaker.is_open("d", now=20.0)  # still unclaimed
        assert breaker.allow("d", now=20.0)  # the probe slot was free
        assert breaker.is_open("d", now=20.0)  # now it is not

    def test_successful_probe_closes_and_releases(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure("d", now=0.0)
        assert breaker.allow("d", now=20.0)
        breaker.record_success("d")
        assert breaker.state("d", now=20.0) == "closed"
        assert breaker.allow("d", now=20.0)
        assert breaker.allow("d", now=20.0)  # closed: no probe gate

    def test_failed_probe_reopens_and_releases(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure("d", now=0.0)
        assert breaker.allow("d", now=20.0)
        breaker.record_failure("d", now=20.0)  # the probe failed
        assert breaker.state("d", now=20.0) == "open"
        assert not breaker.allow("d", now=25.0)
        # the next cooldown admits exactly one probe again
        assert breaker.allow("d", now=31.0)
        assert not breaker.allow("d", now=31.0)

    def test_stampede_through_the_channel(self):
        """End to end: concurrent callers after cooldown -> one real probe."""
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        fab = _fab(retry=RetryPolicy(max_attempts=1), breaker=breaker)
        net = fab.network
        net.nodes["b"].go_offline()
        fab.channel.call("a", "b")  # trips the breaker
        net.nodes["b"].go_online()
        fab.sim.run(until=20.0)
        before = net.stats.messages
        # simulate a stampede: claim the probe, then race a second caller
        # in before its outcome lands
        assert breaker.allow("b", fab.sim.now)
        ok, _ = fab.channel.call("a", "b")  # the racing caller
        assert not ok
        assert net.stats.messages == before  # fast-failed, no RPC sent
        assert net.stats.breaker_fastfails >= 1
