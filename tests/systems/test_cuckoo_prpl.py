"""Tests for the Cuckoo and Prpl system models."""

import pytest

from repro.exceptions import LookupError_, OverlayError, StorageError
from repro.systems.cuckoo import CuckooNetwork
from repro.systems.prpl import PrplNetwork


class TestCuckoo:
    def _net(self, followers=6):
        net = CuckooNetwork(seed=1)
        for i in range(24):
            net.register(f"c{i}")
        for i in range(1, followers + 1):
            net.follow(f"c{i}", "c0")
        return net

    def test_followers_get_push(self):
        net = self._net()
        post_id = net.post("c0", b"morning thought")
        for i in range(1, 7):
            content, source = net.read(f"c{i}", post_id)
            assert content == b"morning thought"
            assert source == "push"

    def test_non_followers_pull_from_dht(self):
        net = self._net()
        post_id = net.post("c0", b"public musings")
        content, source = net.read("c20", post_id)
        assert content == b"public musings"
        assert source == "pull"

    def test_offline_follower_catches_up_via_pull(self):
        """Cuckoo's raison d'être: missed pushes are recoverable."""
        net = self._net()
        net.go_offline("c3")
        post_id = net.post("c0", b"you missed this live")
        net.go_online("c3")
        content, source = net.read("c3", post_id)
        assert content == b"you missed this live"
        assert source == "pull"

    def test_popular_publishers_mostly_push(self):
        """The paper's split: popular content discovered unstructured."""
        net = self._net(followers=12)
        for round_number in range(5):
            post_id = net.post("c0", f"post {round_number}".encode())
            for i in range(1, 13):
                net.read(f"c{i}", post_id)
        assert net.push_hit_rate() > 0.9

    def test_unregistered_follow_rejected(self):
        net = self._net()
        with pytest.raises(OverlayError):
            net.follow("ghost", "c0")

    def test_second_read_served_locally(self):
        net = self._net()
        post_id = net.post("c0", b"x")
        net.read("c20", post_id)           # pull populates the inbox
        _, source = net.read("c20", post_id)
        assert source == "push"            # now local


class TestPrpl:
    def _net(self):
        net = PrplNetwork(seed=2)
        for i in range(12):
            net.register(f"u{i}", device_count=2)
        return net

    def test_store_and_fetch_cross_user(self):
        net = self._net()
        net.store("u0", "photo", b"prpl photo")
        content, hops = net.fetch("u5", "u0", "photo")
        assert content == b"prpl photo"
        assert hops >= 2  # ring hops + butler + device

    def test_items_live_on_one_device_only(self):
        net = self._net()
        device = net.store("u0", "doc", b"bytes")
        other = [d for d in net.user_devices["u0"] if d != device][0]
        assert "doc" in net.devices[device].items
        assert "doc" not in net.devices[other].items

    def test_explicit_device_placement(self):
        net = self._net()
        target = net.user_devices["u3"][1]
        assert net.store("u3", "note", b"n", device_id=target) == target

    def test_wrong_device_rejected(self):
        net = self._net()
        with pytest.raises(OverlayError):
            net.store("u3", "note", b"n", device_id="u4/dev0")

    def test_device_offline_item_unreachable(self):
        net = self._net()
        device = net.store("u0", "doc", b"bytes")
        net.device_offline(device)
        with pytest.raises(StorageError):
            net.fetch("u5", "u0", "doc")

    def test_butler_offline_user_unfindable(self):
        """The butler is the user's single point of discovery — Prpl's
        availability assumption (butlers run 'in the cloud')."""
        net = self._net()
        net.store("u0", "doc", b"bytes")
        net.butler_offline("u0")
        with pytest.raises(LookupError_):
            net.fetch("u5", "u0", "doc")

    def test_missing_item(self):
        net = self._net()
        with pytest.raises(StorageError):
            net.fetch("u5", "u0", "never-stored")

    def test_duplicate_registration_rejected(self):
        net = self._net()
        with pytest.raises(OverlayError):
            net.register("u0")
