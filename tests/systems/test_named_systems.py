"""Tests for the named-system compositions (PeerSoN, Safebook, Cachet,
Supernova, Diaspora)."""

import random

import networkx as nx
import pytest

from repro.exceptions import (AccessDeniedError, OverlayError, SearchError,
                              StorageError)
from repro.systems import (CachetNetwork, DiasporaNetwork, PeersonNetwork,
                           SafebookNetwork, SupernovaNetwork)
from repro.workloads import social_graph


class TestPeerson:
    def _net(self, n=24):
        net = PeersonNetwork(seed=1)
        for i in range(n):
            net.register(f"p{i}")
        net.befriend("p0", "p1")
        net.befriend("p0", "p2")
        return net

    def test_friends_read_posts(self):
        net = self._net()
        key = net.post("p0", "status", b"peerson post")
        assert net.read("p1", key) == b"peerson post"
        assert net.read("p0", key) == b"peerson post"

    def test_non_friends_cannot_unwrap(self):
        net = self._net()
        key = net.post("p0", "status", b"private")
        with pytest.raises(AccessDeniedError):
            net.read("p9", key)

    def test_async_messaging_while_offline(self):
        """The PeerSoN scenario: sender and recipient never co-online."""
        net = self._net()
        net.go_offline("p1")
        net.send_async("p0", "p1", b"see you at the conference")
        net.go_offline("p0")
        net.go_online("p1")
        assert net.fetch_mailbox("p1") == [b"see you at the conference"]

    def test_mailbox_multiple_messages(self):
        net = self._net()
        net.send_async("p0", "p2", b"one")
        net.send_async("p1", "p2", b"two")
        assert net.fetch_mailbox("p2") == [b"one", b"two"]

    def test_dht_replication_keeps_posts_available(self):
        net = self._net()
        key = net.post("p0", "status", b"replicated")
        owner = net.ring.owner_of(key)
        if owner != "p1":
            net.ring.nodes[owner].online = False
            assert net.read("p1", key) == b"replicated"


class TestSafebook:
    GRAPH = social_graph(120, kind="ba", seed=2)

    def _net(self):
        net = SafebookNetwork(self.GRAPH, seed=3)
        mirrors = net.publish_profile("user10", b"safebook profile of 10")
        assert mirrors > 0
        return net

    def test_friend_retrieves_profile_anonymously(self):
        net = self._net()
        friend = str(next(iter(self.GRAPH.neighbors("user10"))))
        profile, request, mirror = net.retrieve_profile(friend, "user10")
        assert profile == b"safebook profile of 10"
        # the serving mirror is an innermost-shell friend, not the owner
        assert mirror in net._matryoshka("user10").shells[0]

    def test_owner_offline_profile_still_served(self):
        net = self._net()
        net.online["user10"] = False
        friend = str(next(iter(self.GRAPH.neighbors("user10"))))
        profile, _, _ = net.retrieve_profile(friend, "user10")
        assert profile == b"safebook profile of 10"

    def test_non_friend_cannot_decrypt(self):
        net = self._net()
        distances = nx.single_source_shortest_path_length(self.GRAPH,
                                                          "user10")
        stranger = next(n for n, d in distances.items() if d >= 2)
        with pytest.raises(AccessDeniedError):
            net.retrieve_profile(str(stranger), "user10")

    def test_offline_relay_breaks_the_path(self):
        net = self._net()
        shells = net._matryoshka("user10")
        for node in shells.shells[0]:
            net.online[node] = False
        friend = shells.shells[0][0]
        # any route must pass an (offline) innermost relay
        with pytest.raises((SearchError, StorageError)):
            net.retrieve_profile("user100", "user10")

    def test_availability_grows_with_mirrors(self):
        net = self._net()
        many = net.availability("user10", offline_probability=0.5, seed=4)
        # a user with one mirror fares worse
        lonely_graph = nx.Graph()
        lonely_graph.add_edge("a", "b")
        lonely_graph.add_edge("b", "c")
        lonely_graph.add_edge("c", "d")
        lonely = SafebookNetwork(lonely_graph, seed=5, depth=2)
        lonely.publish_profile("a", b"x")
        few = lonely.availability("a", offline_probability=0.5, seed=4)
        assert many >= few


class TestCachet:
    GRAPH = social_graph(60, kind="ws", seed=6)

    def _net(self):
        net = CachetNetwork(self.GRAPH, seed=7)
        net.grant("user0", "user1", ["friends"])
        net.grant("user0", "user2", ["family"])
        return net

    def test_policy_enforced_reads(self):
        net = self._net()
        net.post("user0", "post1", "cachet post", "friends",
                 commenters=["user1"])
        text, _ = net.read("user1", "user0", "post1")
        assert text == "cachet post"
        with pytest.raises(AccessDeniedError):
            net.read("user2", "user0", "post1")  # family != friends

    def test_owner_always_reads(self):
        net = self._net()
        net.post("user0", "post1", "mine", "friends and colleagues")
        text, _ = net.read("user0", "user0", "post1")
        assert text == "mine"

    def test_caching_kicks_in(self):
        net = self._net()
        net.post("user0", "hot", "popular", "friends")
        first = net.read("user1", "user0", "hot")[1]
        second = net.read("user1", "user0", "hot")[1]
        assert second.source == "cache"

    def test_comments_bound_to_posts(self):
        net = self._net()
        net.post("user0", "post1", "discuss", "friends",
                 commenters=["user1"])
        net.comment("user1", "post1", "great point")
        assert net.verified_comments("post1") == ["great point"]
        with pytest.raises(AccessDeniedError):
            net.comment("user2", "post1", "not invited")

    def test_ungranted_reader_rejected(self):
        net = self._net()
        net.post("user0", "post1", "x", "friends")
        with pytest.raises(AccessDeniedError):
            net.read("user5", "user0", "post1")


class TestSupernova:
    def _net(self):
        net = SupernovaNetwork(seed=8, storekeepers_per_user=3)
        for i in range(30):
            net.register(f"n{i}")
        # uptime observations: n20..n29 are the reliable ones
        net.report_uptimes({f"n{i}": (0.2 if i < 20 else 0.95)
                            for i in range(30)})
        return net

    def test_storekeepers_are_best_uptime_peers(self):
        net = self._net()
        keepers = net.arrange_storekeepers("n0")
        assert len(keepers) == 3
        assert all(int(keeper[1:]) >= 20 for keeper in keepers)

    def test_store_and_retrieve_via_keepers(self):
        net = self._net()
        net.arrange_storekeepers("n0")
        net.store("n0", "album", b"supernova data")
        assert net.retrieve("n0", "n0", "album") == b"supernova data"
        # a friend with the out-of-band key can read too
        key = net.friend_key("n0")
        assert net.retrieve("n5", "n0", "album",
                            owner_key=key) == b"supernova data"

    def test_without_key_only_ciphertext(self):
        net = self._net()
        net.arrange_storekeepers("n0")
        net.store("n0", "album", b"secret")
        with pytest.raises(StorageError):
            net.retrieve("n5", "n0", "album")

    def test_owner_offline_data_survives(self):
        net = self._net()
        net.arrange_storekeepers("n0")
        net.store("n0", "album", b"alive")
        net.overlay.peers["n0"].online = False
        key = net.friend_key("n0")
        assert net.retrieve("n5", "n0", "album", owner_key=key) == b"alive"

    def test_all_keepers_down_data_lost(self):
        net = self._net()
        keepers = net.arrange_storekeepers("n0")
        net.store("n0", "album", b"gone")
        for keeper in keepers:
            net.overlay.peers[keeper].online = False
        with pytest.raises(StorageError):
            net.retrieve("n0", "n0", "album")

    def test_store_without_agreement_rejected(self):
        net = self._net()
        with pytest.raises(OverlayError):
            net.store("n0", "album", b"x")


class TestDiaspora:
    def _net(self):
        net = DiasporaNetwork(seed=9, pods=4)
        for i in range(20):
            net.register(f"d{i}")
        net.create_aspect("d0", "family", ["d1", "d2"])
        net.create_aspect("d0", "work", ["d3"])
        return net

    def test_aspect_members_read(self):
        net = self._net()
        cid = net.post("d0", "family", "family dinner sunday")
        assert net.read("d1", cid) == "family dinner sunday"
        assert net.read("d0", cid) == "family dinner sunday"

    def test_other_aspects_excluded(self):
        net = self._net()
        cid = net.post("d0", "family", "not for work")
        with pytest.raises((AccessDeniedError, Exception)):
            net.read("d3", cid)

    def test_removal_rotates_key(self):
        net = self._net()
        old = net.post("d0", "family", "before removal")
        net.remove_from_aspect("d0", "family", "d2")
        new = net.post("d0", "family", "after removal")
        assert net.read("d1", new) == "after removal"
        # d2 is excluded twice over: the post is not federated to their
        # pod, and even a leaked ciphertext needs the rotated key.
        from repro.exceptions import LookupError_
        with pytest.raises((AccessDeniedError, LookupError_)):
            net.read("d2", new)
        # the paper's caveat: d2 may still hold the old key for old posts
        assert net.read("d2", old) == "before removal"

    def test_late_added_member(self):
        net = self._net()
        net.add_to_aspect("d0", "work", "d4")
        cid = net.post("d0", "work", "meeting moved")
        assert net.read("d4", cid) == "meeting moved"

    def test_no_pod_has_global_view(self):
        net = self._net()
        for i in range(10):
            net.post("d0", "family", f"post {i}")
            net.create_aspect(f"d{i + 1}", "friends", [f"d{(i + 2) % 20}"])
            net.post(f"d{i + 1}", "friends", f"from d{i + 1}")
        # many pods hold ciphertexts, none holds all AND none reads any
        fraction = net.worst_pod_content_fraction()
        assert 0.0 < fraction <= 1.0
        views = net.pod_views()
        assert sum(len(v["content_ids"]) for v in views.values()) >= \
            len(net._catalog)

    def test_unknown_aspect_rejected(self):
        net = self._net()
        with pytest.raises(OverlayError):
            net.post("d0", "ghosts", "boo")

    def test_remove_nonmember_rejected(self):
        net = self._net()
        with pytest.raises(AccessDeniedError):
            net.remove_from_aspect("d0", "family", "d9")
