"""Tests for the open-problem demonstrators (Section VI extensions)."""

import random

import networkx as nx
import pytest

from repro.exceptions import ReproError
from repro.extensions import (AdBroker, AdClient, Advertisement,
                              ResharingSimulation, SybilAttack,
                              TrackingAdServer, attribute_inference_accuracy,
                              deanonymize_by_seeds, degree_anonymize,
                              degree_cut_detection, infer_attributes,
                              inject_sybils, naive_anonymize)
from repro.extensions.anonymization import (is_k_degree_anonymous,
                                            reidentification_rate)
from repro.extensions.inference import plant_homophilous_attribute
from repro.extensions.resharing import trace_leak, watermark
from repro.workloads import attach_trust, social_graph


class TestInference:
    GRAPH = social_graph(300, kind="ba", seed=1)

    def test_homophilous_attribute_is_inferable(self):
        labels = plant_homophilous_attribute(self.GRAPH, ("red", "blue"),
                                             homophily=0.9, seed=2)
        accuracy, coverage = attribute_inference_accuracy(
            self.GRAPH, labels, hide_fraction=0.3, seed=3)
        assert accuracy > 0.75
        assert coverage > 0.9

    def test_random_attribute_is_not(self):
        labels = plant_homophilous_attribute(self.GRAPH, ("red", "blue"),
                                             homophily=0.0, seed=4)
        accuracy, _ = attribute_inference_accuracy(
            self.GRAPH, labels, hide_fraction=0.3, seed=3)
        assert accuracy < 0.65  # near the 0.5 coin-flip baseline

    def test_leak_persists_at_high_hide_rates(self):
        """Hiding your own attribute doesn't help while friends disclose —
        the 'collective phenomenon' the paper quotes."""
        labels = plant_homophilous_attribute(self.GRAPH, ("red", "blue"),
                                             homophily=0.9, seed=5)
        accuracy, coverage = attribute_inference_accuracy(
            self.GRAPH, labels, hide_fraction=0.7, seed=6)
        assert accuracy > 0.65 and coverage > 0.5

    def test_min_votes_controls_coverage(self):
        labels = plant_homophilous_attribute(self.GRAPH, ("a", "b"),
                                             homophily=0.8, seed=7)
        _, cov_loose = attribute_inference_accuracy(
            self.GRAPH, labels, 0.5, seed=8, min_votes=1)
        _, cov_strict = attribute_inference_accuracy(
            self.GRAPH, labels, 0.5, seed=8, min_votes=4)
        assert cov_strict <= cov_loose

    def test_no_evidence_no_prediction(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        predictions = infer_attributes(graph, {}, targets=["a"])
        assert predictions == {}

    def test_invalid_fraction(self):
        with pytest.raises(ReproError):
            attribute_inference_accuracy(self.GRAPH, {"user0": "x"}, 1.5)


class TestAdvertising:
    def _catalog(self, broker_like):
        broker_like.publish(Advertisement("cars", ("cars", "racing"), 2.0))
        broker_like.publish(Advertisement("vpn", ("privacy", "crypto")))
        broker_like.publish(Advertisement("toys", ("cats",)))

    def test_local_selection_matches_server_selection(self, rng):
        """Same targeting quality, radically different knowledge."""
        broker = AdBroker()
        tracker = TrackingAdServer()
        self._catalog(broker)
        self._catalog(tracker)
        interests = ["privacy", "cats"]
        client = AdClient("u1", interests, rng)
        tracker.upload_profile("u1", interests)
        local = {ad.ad_id for ad in client.select_ads(broker.broadcast())}
        remote = {ad.ad_id for ad in tracker.select_ads("u1")}
        assert local == remote == {"vpn", "toys"}
        assert broker.broker_knowledge()["profiles_seen"] == 0
        assert tracker.server_knowledge()["profiles_seen"] == 1

    def test_click_tokens_unlinkable_and_single_use(self, rng):
        broker = AdBroker()
        self._catalog(broker)
        client = AdClient("u1", ["privacy"], rng)
        ad = client.select_ads(broker.broadcast())[0]
        assert client.report_click(broker, ad)
        assert client.report_click(broker, ad)  # fresh token, fine
        # the broker's log carries no user identifiers
        assert all(b"u1" not in token for token, _ in broker.click_log)

    def test_double_spend_rejected(self, rng):
        broker = AdBroker()
        self._catalog(broker)
        from repro.crypto import blind
        token_message = b"m" * 16
        context = blind.blind(broker.token_key, token_message, rng)
        signature = context.unblind(
            broker.issue_click_token(context.blinded))
        assert broker.redeem_click(token_message, signature, "vpn")
        assert not broker.redeem_click(token_message, signature, "vpn")

    def test_forged_token_rejected(self):
        broker = AdBroker()
        assert not broker.redeem_click(b"m" * 16, b"\x00" * 64, "vpn")

    def test_tracking_server_requires_profile(self):
        tracker = TrackingAdServer()
        with pytest.raises(ReproError):
            tracker.select_ads("ghost")


class TestAnonymization:
    GRAPH = social_graph(150, kind="ba", seed=5)

    def test_naive_anonymization_structure_preserved(self):
        anon, mapping = naive_anonymize(self.GRAPH, seed=6)
        assert anon.number_of_edges() == self.GRAPH.number_of_edges()
        assert nx.is_isomorphic(anon, self.GRAPH) or True  # expensive; skip
        assert set(mapping.values()) == set(anon.nodes)

    def test_seed_attack_reidentifies_naive(self):
        anon, truth = naive_anonymize(self.GRAPH, seed=6)
        seeds = {real: truth[real] for real in list(truth)[:8]}
        predicted = deanonymize_by_seeds(self.GRAPH, anon, seeds)
        rate = reidentification_rate(truth, predicted, seeds)
        assert rate > 0.3  # a handful of seeds unmasks a large fraction

    @pytest.mark.parametrize("k", [2, 4])
    def test_degree_anonymity_achieved(self, k):
        anon, _, added = degree_anonymize(self.GRAPH, k=k, seed=7)
        assert is_k_degree_anonymous(anon, k)
        assert added > 0

    def test_degree_anonymity_does_not_stop_seed_attacks(self):
        """The Narayanan–Shmatikov finding, reproduced: k-degree anonymity
        defends against degree-lookup attacks but barely perturbs the
        *structure*, so seed-and-propagate re-identification still works.
        This is exactly why the paper lists de-anonymization as an open
        concern rather than a solved problem."""
        anon_naive, truth_naive = naive_anonymize(self.GRAPH, seed=8)
        anon_k, truth_k, _ = degree_anonymize(self.GRAPH, k=6, seed=8)
        seeds_naive = {r: truth_naive[r] for r in list(truth_naive)[:8]}
        seeds_k = {r: truth_k[r] for r in list(truth_k)[:8]}
        rate_naive = reidentification_rate(
            truth_naive,
            deanonymize_by_seeds(self.GRAPH, anon_naive, seeds_naive),
            seeds_naive)
        rate_k = reidentification_rate(
            truth_k, deanonymize_by_seeds(self.GRAPH, anon_k, seeds_k),
            seeds_k)
        assert rate_naive > 0.3
        assert rate_k > 0.3  # the defence does NOT stop the attack
        assert rate_k <= rate_naive + 0.05  # and never helps it either

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            degree_anonymize(self.GRAPH, k=0)


class TestSybil:
    HONEST = attach_trust(social_graph(200, kind="ba", seed=8), seed=9)

    def test_sybils_attached(self):
        graph, sybils = inject_sybils(self.HONEST, count=15,
                                      attack_edges=3, seed=10)
        assert len(sybils) == 15
        assert all(graph.degree(s) >= 2 for s in sybils)
        attack_edge_count = sum(
            1 for s in sybils for n in graph.neighbors(s)
            if not str(n).startswith("sybil"))
        assert attack_edge_count == 3

    def test_trust_bounded_by_attack_edges(self):
        """Few attack edges -> low derived trust for every sybil."""
        graph, sybils = inject_sybils(self.HONEST, count=15,
                                      attack_edges=2, seed=11)
        attack = SybilAttack(graph, sybils)
        assert attack.best_sybil_trust("user0") < 0.62  # victim_trust cap

    def test_more_attack_edges_more_trust(self):
        few_graph, few = inject_sybils(self.HONEST, 15, 1, seed=12)
        many_graph, many = inject_sybils(self.HONEST, 15, 30, seed=12)
        trust_few = SybilAttack(few_graph, few).best_sybil_trust("user0")
        trust_many = SybilAttack(many_graph,
                                 many).best_sybil_trust("user0")
        assert trust_many >= trust_few

    def test_random_walk_detection(self):
        graph, sybils = inject_sybils(self.HONEST, count=30,
                                      attack_edges=2, seed=13)
        detection = degree_cut_detection(graph, sybils, seed=14)
        # walks land in the sybil region far below its population share
        assert detection["sybil_region_mass"] < \
            detection["sybil_count_fraction"] / 2

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            inject_sybils(self.HONEST, count=0, attack_edges=1)


class TestResharing:
    GRAPH = social_graph(100, kind="ws", seed=12)

    def test_zero_probability_zero_leak(self):
        sim = ResharingSimulation(self.GRAPH, 0.0, seed=13)
        result = sim.run("user0", ["user1"])
        assert not result["unintended"]

    def test_any_probability_leaks(self):
        sim = ResharingSimulation(self.GRAPH, 0.15, seed=13)
        result = sim.run("user0", ["user1", "user2"])
        assert result["unintended"]

    def test_leak_grows_with_probability(self):
        fractions = []
        for p in (0.05, 0.2, 0.6):
            sim = ResharingSimulation(self.GRAPH, p, seed=14)
            fractions.append(sim.run("user0",
                                     ["user1"])["unintended_fraction"])
        assert fractions[0] <= fractions[1] <= fractions[2]

    def test_watermark_traces_origin(self):
        marked = watermark(b"secret", b"k" * 32, "bob")
        assert trace_leak(marked, b"k" * 32, ["alice", "bob"]) == "bob"
        assert trace_leak(marked, b"k" * 32, ["alice"]) is None
        assert trace_leak(b"unmarked", b"k" * 32, ["bob"]) is None

    def test_watermarked_run_traceable(self):
        sim = ResharingSimulation(self.GRAPH, 0.3, seed=15)
        result = sim.run_with_watermarks("user0", ["user1", "user2"],
                                         b"content", b"k" * 32)
        assert result["unintended"]
        assert result["traceable"]

    def test_invalid_probability(self):
        with pytest.raises(ReproError):
            ResharingSimulation(self.GRAPH, 1.5)

    def test_unknown_owner(self):
        sim = ResharingSimulation(self.GRAPH, 0.1)
        with pytest.raises(ReproError):
            sim.run("ghost", ["user1"])
