"""Tests for the synthetic workload generators."""

import random

import networkx as nx
import pytest

from repro.exceptions import ReproError
from repro.workloads import (attach_trust, degree_popularity, generate_posts,
                             generate_reads, popularity_histogram,
                             social_graph, zipf_choice)


class TestGraphs:
    @pytest.mark.parametrize("kind", ["ba", "ws", "er"])
    def test_generators_produce_labelled_graphs(self, kind):
        graph = social_graph(100, kind=kind, seed=3)
        assert all(str(n).startswith("user") for n in graph.nodes)
        assert graph.number_of_edges() > 0

    def test_ba_heavy_tail(self):
        graph = social_graph(500, kind="ba", seed=1)
        degrees = sorted((d for _, d in graph.degree()), reverse=True)
        # hubs exist: top degree far above the median
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_er_connected_component(self):
        graph = social_graph(200, kind="er", seed=2)
        assert nx.is_connected(graph)

    def test_determinism(self):
        g1 = social_graph(60, seed=5)
        g2 = social_graph(60, seed=5)
        assert set(g1.edges) == set(g2.edges)
        g3 = social_graph(60, seed=6)
        assert set(g1.edges) != set(g3.edges)

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            social_graph(50, kind="smallworldz")

    def test_too_small(self):
        with pytest.raises(ReproError):
            social_graph(2)

    def test_attach_trust_bounds(self):
        graph = attach_trust(social_graph(50, seed=1), seed=2, low=0.3,
                             high=0.9)
        for a, b in graph.edges:
            assert 0.3 <= graph[a][b]["trust"] <= 0.9

    def test_attach_trust_invalid_bounds(self):
        with pytest.raises(ReproError):
            attach_trust(social_graph(20, seed=0), low=0.0)

    def test_degree_popularity_normalized(self):
        pop = degree_popularity(social_graph(80, seed=4))
        assert max(pop.values()) == 1.0
        assert all(0 <= v <= 1 for v in pop.values())


class TestTraces:
    GRAPH = social_graph(60, seed=7)

    def test_zipf_choice_skew(self):
        rng = random.Random(1)
        counts = [0] * 20
        for _ in range(4000):
            counts[zipf_choice(rng, 20)] += 1
        assert counts[0] > counts[5] > counts[19]
        assert counts[0] > 4 * counts[19]

    def test_zipf_choice_degenerate(self):
        rng = random.Random(2)
        assert zipf_choice(rng, 1) == 0
        with pytest.raises(ReproError):
            zipf_choice(rng, 0)

    def test_posts_sorted_and_attributed(self):
        posts = generate_posts(self.GRAPH, 200, seed=8)
        assert len(posts) == 200
        times = [p.time for p in posts]
        assert times == sorted(times)
        users = {str(n) for n in self.GRAPH.nodes}
        assert all(p.author in users for p in posts)

    def test_high_degree_users_post_more(self):
        graph = social_graph(200, kind="ba", seed=9)
        posts = generate_posts(graph, 3000, seed=10)
        by_author = {}
        for p in posts:
            by_author[p.author] = by_author.get(p.author, 0) + 1
        hub = max(graph.nodes, key=graph.degree)
        leaf = min(graph.nodes, key=graph.degree)
        assert by_author.get(str(hub), 0) > by_author.get(str(leaf), 0)

    def test_reads_follow_zipf(self):
        posts = generate_posts(self.GRAPH, 50, seed=11)
        reads = generate_reads(posts, self.GRAPH, 3000, seed=12)
        histogram = popularity_histogram(reads, 50)
        assert sum(histogram) == 3000
        top = max(histogram)
        median = sorted(histogram)[25]
        assert top > 4 * max(1, median)

    def test_reads_need_posts(self):
        with pytest.raises(ReproError):
            generate_reads([], self.GRAPH, 10)

    def test_determinism(self):
        p1 = generate_posts(self.GRAPH, 50, seed=13)
        p2 = generate_posts(self.GRAPH, 50, seed=13)
        assert p1 == p2
