"""Model-based and cross-cutting property tests.

Hypothesis stateful machines check the authenticated dictionary and the
symmetric ACL against simple reference models over arbitrary operation
interleavings — the class of bug unit tests structurally miss.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 rule)

from repro.acl.pad import PAD, verify_lookup
from repro.acl.symmetric_acl import SymmetricKeyACL
from repro.exceptions import AccessDeniedError, IntegrityError
from repro.overlay.chord import ChordRing, chord_id, in_interval
from repro.fabric import Fabric

_KEYS = st.text(alphabet="abcdefgh", min_size=1, max_size=4)


class PADModel(RuleBasedStateMachine):
    """The PAD must behave like a dict and stay verifiable throughout."""

    def __init__(self):
        super().__init__()
        self.pad = PAD()
        self.model = {}

    @rule(key=_KEYS, value=st.binary(min_size=1, max_size=6))
    def insert(self, key, value):
        self.pad = self.pad.insert(key, value)
        self.model[key] = value

    @rule(key=_KEYS)
    def delete(self, key):
        if key in self.model:
            self.pad = self.pad.delete(key)
            del self.model[key]
        else:
            with pytest.raises(IntegrityError):
                self.pad.delete(key)

    @rule(key=_KEYS)
    def lookup_matches_model(self, key):
        assert self.pad.get(key) == self.model.get(key)

    @rule(key=_KEYS)
    def proofs_always_verify(self, key):
        proof = self.pad.prove(key)
        assert proof.found_value == self.model.get(key)
        assert verify_lookup(self.pad.root_hash, proof)

    @invariant()
    def size_matches(self):
        assert len(self.pad) == len(self.model)

    @invariant()
    def keys_sorted_and_complete(self):
        assert list(self.pad.keys()) == sorted(self.model)


PADModelTest = PADModel.TestCase
PADModelTest.settings = settings(max_examples=25, stateful_step_count=30,
                                 deadline=None)


class SymmetricACLModel(RuleBasedStateMachine):
    """The ACL must track a reference permission set exactly.

    Model: after any interleaving of joins/revocations/publishes, a user
    can read an item iff they were a member when the item was (re)protected
    last — i.e. current members read everything, revoked users read
    nothing (the scheme re-encrypts on revoke).
    """

    def __init__(self):
        super().__init__()
        self.scheme = SymmetricKeyACL(rng=random.Random(0xACE))
        self.scheme.create_group("g", ["founder"])
        self.members = {"founder"}
        self.everyone = {"founder"}
        self.items = {}
        self._counter = 0

    users = Bundle("users")

    @rule(target=users, name=st.sampled_from(
        ["ann", "ben", "cho", "dia", "eli"]))
    def introduce(self, name):
        return name

    @rule(user=users)
    def join(self, user):
        self.scheme.add_member("g", user)
        self.members.add(user)
        self.everyone.add(user)

    @rule(user=users)
    def revoke(self, user):
        if user in self.members and len(self.members) > 1:
            self.scheme.revoke_member("g", user)
            self.members.discard(user)

    @rule(payload=st.binary(min_size=1, max_size=8))
    def publish(self, payload):
        item_id = f"item{self._counter}"
        self._counter += 1
        self.scheme.publish("g", item_id, payload)
        self.items[item_id] = payload

    @invariant()
    def members_read_everything(self):
        for item_id, payload in self.items.items():
            for user in self.members:
                assert self.scheme.read("g", item_id, user) == payload

    @invariant()
    def non_members_read_nothing(self):
        for item_id in self.items:
            for user in self.everyone - self.members:
                with pytest.raises(AccessDeniedError):
                    self.scheme.read("g", item_id, user)


SymmetricACLModelTest = SymmetricACLModel.TestCase
SymmetricACLModelTest.settings = settings(max_examples=15,
                                          stateful_step_count=20,
                                          deadline=None)


class TestChordProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_interval_trichotomy(self, x, a, b):
        """For a != b, every x != a,b is in exactly one of (a,b] and (b,a]."""
        if a == b:
            return
        left = in_interval(x, a, b, inclusive_right=True)
        right = in_interval(x, b, a, inclusive_right=True)
        if x == a:
            assert right and not left
        elif x == b:
            assert left and not right
        else:
            assert left != right

    @given(st.lists(st.text(alphabet="xyz0123456789", min_size=3,
                            max_size=8), min_size=8, max_size=24,
                    unique=True),
           st.text(alphabet="abc", min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_lookup_agrees_with_ground_truth(self, names, key):
        """Iterative routing always lands on the true successor."""
        fab = Fabric.create(seed=0)
        ring = ChordRing(fab)
        ids = set()
        for name in names:
            if chord_id(name) in ids:
                continue
            ids.add(chord_id(name))
            ring.add_node(name)
        if len(ring.nodes) < 2:
            return
        ring.build()
        start = next(iter(ring.nodes))
        assert ring.lookup(start, key).owner == ring.owner_of(key)

    @given(st.text(min_size=0, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_chord_id_in_range(self, name):
        assert 0 <= chord_id(name) < 2**32


class TestEnvelopeProperties:
    @given(st.binary(max_size=100), st.text(max_size=10),
           st.floats(min_value=0, max_value=1e6, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_seal_open_roundtrip(self, body, recipient, issued_at):
        from repro.crypto.signatures import generate_schnorr_keypair
        from repro.integrity import open_envelope, seal
        rng = random.Random(len(body))
        key = generate_schnorr_keypair("TOY", rng)
        envelope = seal(key, "author", body, issued_at=issued_at,
                        recipient=recipient or None, rng=rng)
        assert open_envelope(envelope, key.public_key,
                             recipient or None) == body


class TestStreamCipherProperties:
    @given(st.binary(max_size=1000), st.binary(min_size=16, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_key_any_payload(self, payload, key):
        from repro.crypto.symmetric import StreamCipher
        rng = random.Random(1)
        cipher = StreamCipher(key)
        assert cipher.decrypt(cipher.encrypt(payload, rng)) == payload

    @given(st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_single_bitflip_always_detected(self, payload):
        from repro.crypto.symmetric import StreamCipher
        from repro.exceptions import DecryptionError
        rng = random.Random(2)
        cipher = StreamCipher(b"k" * 32)
        blob = bytearray(cipher.encrypt(payload, rng))
        position = len(blob) // 2
        blob[position] ^= 0x40
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(blob))
