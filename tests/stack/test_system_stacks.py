"""Every system model runs its content path through its declared stack."""

import networkx as nx
import pytest

from repro.dosn.api import DOSN_SPEC, DosnConfig, DosnNetwork
from repro.exceptions import (AccessDeniedError, OverlayError, ReproError,
                              StorageError)
from repro.stack import registered_systems
from repro.systems.cachet import CACHET_SPEC, CachetNetwork
from repro.systems.cuckoo import CuckooNetwork
from repro.systems.diaspora import DiasporaNetwork
from repro.systems.peerson import PeersonNetwork
from repro.systems.prpl import PrplNetwork
from repro.systems.safebook import SafebookNetwork
from repro.systems.supernova import SupernovaNetwork


def _graph():
    return nx.relabel_nodes(nx.karate_club_graph(), str)


class TestStacksMatchSpecs:
    def test_every_network_stack_is_validated_against_its_spec(self):
        nets = [
            CachetNetwork(_graph(), seed=1),
            CuckooNetwork(seed=1),
            DiasporaNetwork(seed=1),
            PeersonNetwork(seed=1),
            PrplNetwork(seed=1),
            SafebookNetwork(_graph(), seed=1),
            SupernovaNetwork(seed=1),
            DosnNetwork(config=DosnConfig(architecture="local")),
        ]
        specs = registered_systems()
        for net in nets:
            spec = net.stack.spec
            assert spec is not None
            # the stack constructor validated layer sequence == spec;
            # here we check the spec is the registered one
            assert specs[spec.name].layers[:len(specs[spec.name].layers)] \
                == spec.layers[:len(specs[spec.name].layers)]

    def test_dosn_spec_rows(self):
        assert "Historical integrity" in DOSN_SPEC.rows_covered()
        assert "Symmetric key encryption" in DOSN_SPEC.rows_covered()

    def test_cachet_spec_rows(self):
        rows = CACHET_SPEC.rows_covered()
        assert "Attribute based encryption" in rows
        assert "Integrity of data relations" in rows


class TestCachetSatellites:
    def test_read_before_any_post_raises_proper_error(self):
        """Satellite: no AttributeError from a lazily-created _headers."""
        net = CachetNetwork(_graph(), seed=3)
        with pytest.raises((StorageError, OverlayError, AccessDeniedError)):
            net.read("0", "1", "never-posted")

    def test_headers_initialized_in_init(self):
        net = CachetNetwork(_graph(), seed=3)
        assert net._headers == {}

    def test_authority_deterministic_per_owner(self):
        """Satellite: authority keys derive from (master seed, owner) only,
        independent of operation order before the first use."""
        g = _graph()
        net_a = CachetNetwork(g, seed=9)
        net_b = CachetNetwork(g, seed=9)
        # perturb net_b's shared rng before the authority is first built
        net_b.pairwise_key("0", "1")
        _, pk_a, _ = net_a._authority("0")
        _, pk_b, _ = net_b._authority("0")
        assert pk_a == pk_b

    def test_authority_differs_across_owners_and_seeds(self):
        g = _graph()
        net = CachetNetwork(g, seed=9)
        other = CachetNetwork(g, seed=10)
        assert net._authority("0")[1] != net._authority("1")[1]
        assert net._authority("0")[1] != other._authority("0")[1]

    def test_post_read_roundtrip_still_works(self):
        net = CachetNetwork(_graph(), seed=3)
        net.grant("0", "1", ["friend"])
        net.post("0", "p1", "hello", "friend", commenters=["1"])
        text, fetch = net.read("1", "0", "p1")
        assert text == "hello"
        assert fetch.source in ("dht", "cache", "own-cache")


class TestDosnThroughStack:
    def test_post_read_feed_roundtrip(self):
        net = DosnNetwork(config=DosnConfig(architecture="local", seed=5))
        net.add_users(["alice", "bob"])
        net.befriend("alice", "bob")
        cid = net.post("alice", "stack-routed post", tags=("x",))
        post = net.read("bob", "alice", cid).post
        assert post.text == "stack-routed post"
        report = net.feed("bob")
        assert report.clean
        assert [item.post.text for item in report.items] == [
            "stack-routed post"]

    def test_feed_open_errors_still_reported_as_violations(self):
        net = DosnNetwork(config=DosnConfig(architecture="local", seed=5))
        net.add_users(["alice", "bob"])
        net.befriend("alice", "bob")
        net.post("alice", "secret")
        # key loss: bob can fetch but not decrypt
        del net.users["bob"].friend_keys["alice"]
        report = net.feed("bob")
        assert not report.clean
        assert report.violations

    def test_index_layer_enables_search(self):
        net = DosnNetwork(config=DosnConfig(architecture="local", seed=5,
                                            index_posts=True))
        net.add_users(["alice", "bob"])
        net.befriend("alice", "bob")
        cid = net.post("alice", "distributed social networks rock")
        assert net.search("distributed") == [cid]
        # blinded: the index host sees tags, not vocabulary
        assert net.index.blinded
        assert not net.index.vocabulary_leaked()

    def test_search_without_index_layer_raises(self):
        net = DosnNetwork(config=DosnConfig(architecture="local", seed=5))
        with pytest.raises(OverlayError, match="index_posts"):
            net.search("anything")

    def test_stack_has_four_layers_when_indexing(self):
        net = DosnNetwork(config=DosnConfig(architecture="local",
                                            index_posts=True))
        assert [l.kind for l in net.stack.layers] == [
            "integrity", "acl", "placement", "index"]

    def test_legacy_span_tree_preserved(self):
        net = DosnNetwork(config=DosnConfig(architecture="local", seed=5,
                                            tracing=True))
        net.add_users(["alice", "bob"])
        net.befriend("alice", "bob")
        cid = net.post("alice", "hi")
        net.read("bob", "alice", cid)
        names = [s.name for s in net.tracer.spans]
        assert "dosn.post" in names and "dosn.read" in names
        assert "storage.put" in names and "storage.get" in names
        # no stack-specific span names leak into the committed E13 tree
        assert not any(name.startswith("stack") for name in names)


class TestOtherSystemsThroughStack:
    def test_peerson_roundtrip_and_denial(self):
        net = PeersonNetwork(seed=2)
        for name in ("alice", "bob", "eve"):
            net.register(name)
        net.befriend("alice", "bob")
        key = net.post("alice", "i1", b"payload")
        assert net.read("bob", key) == b"payload"
        with pytest.raises(AccessDeniedError):
            net.read("eve", key)

    def test_safebook_roundtrip(self):
        net = SafebookNetwork(_graph(), seed=2)
        mirrors = net.publish_profile("0", b"profile-bytes")
        assert mirrors > 0
        profile, request, mirror = net.retrieve_profile("1", "0")
        assert profile == b"profile-bytes"
        assert mirror in request.path

    def test_supernova_roundtrip(self):
        net = SupernovaNetwork(seed=2)
        for name in ("alice", "bob", "kp1", "kp2", "kp3"):
            net.register(name)
        net.report_uptimes({"kp1": 0.9, "kp2": 0.8, "kp3": 0.7,
                            "alice": 0.5, "bob": 0.5})
        net.arrange_storekeepers("alice")
        net.store("alice", "i1", b"content")
        got = net.retrieve("bob", "alice", "i1",
                           owner_key=net.friend_key("alice"))
        assert got == b"content"

    def test_diaspora_roundtrip_and_rotation(self):
        net = DiasporaNetwork(seed=2)
        for name in ("alice", "bob", "carl"):
            net.register(name)
        net.create_aspect("alice", "family", ["bob", "carl"])
        cid = net.read_cid = net.post("alice", "family", "hello family")
        assert net.read("bob", cid) == "hello family"
        net.remove_from_aspect("alice", "family", "carl")
        cid2 = net.post("alice", "family", "bob only")
        assert net.read("bob", cid2) == "bob only"
        with pytest.raises(AccessDeniedError):
            net.read("carl", cid2)

    def test_cuckoo_push_and_pull(self):
        net = CuckooNetwork(seed=2)
        for name in ("pub", "f1", "f2"):
            net.register(name)
        net.follow("f1", "pub")
        net.follow("f2", "pub")
        pid = net.post("pub", b"tweet")
        content, source = net.read("f1", pid)
        assert content == b"tweet" and source == "push"
        net.register("late")
        content, source = net.read("late", pid)
        assert content == b"tweet" and source == "pull"

    def test_prpl_store_and_fetch(self):
        net = PrplNetwork(seed=2)
        net.register("alice")
        net.register("bob")
        device = net.store("alice", "i1", b"doc")
        assert device in net.user_devices["alice"]
        content, hops = net.fetch("bob", "alice", "i1")
        assert content == b"doc" and hops >= 2
