"""Mechanism/system registries and the generated Table I artifact."""

from pathlib import Path

import pytest

from repro.acl import SCHEME_REGISTRY
from repro.acl.base import AccessControlScheme, SchemeProperties
from repro.exceptions import ReproError
from repro.stack import (LayerSpec, SystemSpec, mechanisms,
                         register_mechanism, register_system,
                         registered_systems, unregister_system)
from repro.stack.registry import unregister_mechanism
from repro.stack.table1 import (PAPER_TABLE1, build_registry, render_matrix,
                                verify_coverage)

REPO = Path(__file__).resolve().parent.parent.parent


class TestMechanismRegistry:
    def test_registration_is_idempotent_by_name(self):
        class Thing:
            pass

        before = len(mechanisms().get(("Data privacy",
                                       "Hybrid encryption"), ()))
        try:
            register_mechanism("Data privacy", "Hybrid encryption", Thing)
            register_mechanism("Data privacy", "Hybrid encryption", Thing)
            after = mechanisms()[("Data privacy", "Hybrid encryption")]
            assert sum(1 for e in after if e.name == "Thing") == 1
            assert len(after) == before + 1
        finally:
            unregister_mechanism("Data privacy", "Hybrid encryption",
                                 "Thing")

    def test_entries_carry_category_row_and_implementation(self):
        entries = mechanisms()[("Data integrity", "Historical integrity")]
        names = {entry.name for entry in entries}
        assert {"Timeline", "EntanglementGraph", "FortClient"} <= names


class TestSystemRegistry:
    def test_identical_reregistration_is_idempotent(self):
        spec = SystemSpec(name="test-idem", layers=(
            LayerSpec("placement", "dict"),))
        try:
            assert register_system(spec) is spec
            assert register_system(SystemSpec(
                name="test-idem",
                layers=(LayerSpec("placement", "dict"),))) == spec
        finally:
            unregister_system("test-idem")

    def test_conflicting_reregistration_rejected(self):
        try:
            register_system(SystemSpec(name="test-conflict", layers=(
                LayerSpec("placement", "dict"),)))
            with pytest.raises(ReproError, match="different"):
                register_system(SystemSpec(name="test-conflict", layers=(
                    LayerSpec("placement", "other"),)))
        finally:
            unregister_system("test-conflict")

    def test_bad_layer_kind_rejected_at_declaration(self):
        with pytest.raises(ReproError, match="unknown layer kind"):
            LayerSpec("transport", "tcp")

    def test_all_eight_systems_registered(self):
        import repro.dosn  # noqa: F401
        import repro.systems  # noqa: F401
        assert {"cachet", "cuckoo", "diaspora", "peerson", "prpl",
                "repro.dosn", "safebook",
                "supernova"} <= set(registered_systems())


class TestTable1Generation:
    def test_every_paper_row_is_covered(self):
        rows = verify_coverage(build_registry())
        assert len(rows) == sum(len(a) for a in PAPER_TABLE1.values())

    def test_toy_scheme_appears_with_no_benchmark_edits(self):
        """The acceptance test: drop a scheme in, it shows up generated."""

        class ToyXorACL(AccessControlScheme):
            scheme_name = "toy-xor"
            PROPERTIES = SchemeProperties(
                scheme_name="toy-xor",
                table1_category="Data privacy",
                table1_row="Symmetric key encryption",
                group_creation="one key", join_cost="one send",
                revocation_cost="rekey", header_growth="O(1)",
                hides_from_provider=True)

            def _provision_user(self, user):  # pragma: no cover
                pass

            def _setup_group(self, group):  # pragma: no cover
                pass

            def _on_member_added(self, group, user):  # pragma: no cover
                pass

            def _on_member_revoked(self, group, user):  # pragma: no cover
                pass

            def _encrypt_item(self, group, plaintext):  # pragma: no cover
                return plaintext

            def _decrypt_item(self, group, record, user):  # pragma: no cover
                return record

        SCHEME_REGISTRY["toy-xor"] = ToyXorACL
        try:
            registry = build_registry()
            row = registry[("Data privacy", "Symmetric key encryption")]
            assert "ToyXorACL" in row
            assert "ToyXorACL" in render_matrix()
        finally:
            del SCHEME_REGISTRY["toy-xor"]
        # gone again once the scheme is removed — nothing was cached
        registry = build_registry()
        assert "ToyXorACL" not in registry[
            ("Data privacy", "Symmetric key encryption")]

    def test_committed_artifact_is_up_to_date(self):
        """docs/table1_matrix.md must match what the code generates."""
        committed = (REPO / "docs" / "table1_matrix.md").read_text()
        assert committed == render_matrix(), (
            "docs/table1_matrix.md is stale; regenerate with "
            "PYTHONPATH=src python scripts/gen_table1.py")

    def test_matrix_marks_system_rows(self):
        matrix = render_matrix()
        assert "## Systems × Table I rows" in matrix
        assert "### cachet" in matrix
        assert "### repro.dosn" in matrix
