"""ProtectionStack pipeline semantics: order, filtering, validation."""

import pytest

from repro.acl import SymmetricKeyACL
from repro.dosn.storage import LocalBackend
from repro.exceptions import AccessDeniedError, ReproError
from repro.fabric import Fabric
from repro.search.index import SearchIndex
from repro.stack import (AclLayer, ContentItem, IndexLayer, IntegrityLayer,
                         LayerSpec, PlacementLayer, ProtectionStack,
                         SystemSpec)


def _trace_layer(cls, kind_log, tag):
    return cls(post=lambda item: kind_log.append(("post", tag)),
               read=lambda item: kind_log.append(("read", tag)))


class TestLayerOrder:
    def test_post_runs_layers_in_declaration_order(self):
        log = []
        stack = ProtectionStack([
            _trace_layer(IntegrityLayer, log, "integrity"),
            _trace_layer(AclLayer, log, "acl"),
            _trace_layer(PlacementLayer, log, "placement"),
        ])
        stack.post(ContentItem(author="a"))
        assert log == [("post", "integrity"), ("post", "acl"),
                       ("post", "placement")]

    def test_read_runs_layers_reversed(self):
        log = []
        stack = ProtectionStack([
            _trace_layer(IntegrityLayer, log, "integrity"),
            _trace_layer(AclLayer, log, "acl"),
            _trace_layer(PlacementLayer, log, "placement"),
        ])
        stack.read(ContentItem(author="a"))
        assert log == [("read", "placement"), ("read", "acl"),
                       ("read", "integrity")]

    def test_only_filter_restricts_kinds(self):
        log = []
        stack = ProtectionStack([
            _trace_layer(IntegrityLayer, log, "integrity"),
            _trace_layer(AclLayer, log, "acl"),
            _trace_layer(PlacementLayer, log, "placement"),
        ])
        stack.read(ContentItem(author="a"), only=("placement",))
        assert log == [("read", "placement")]
        log.clear()
        stack.read(ContentItem(author="a"), only=("acl", "integrity"))
        assert log == [("read", "acl"), ("read", "integrity")]

    def test_missing_hook_is_noop(self):
        stack = ProtectionStack([IndexLayer(post=None, read=None)])
        stack.post(ContentItem(author="a"))
        stack.read(ContentItem(author="a"))


class TestSpecValidation:
    SPEC = SystemSpec(name="toy-spec", layers=(
        LayerSpec("acl", "sym"), LayerSpec("placement", "dict")))

    def test_matching_spec_accepted(self):
        stack = ProtectionStack([
            AclLayer(mechanism="sym"),
            PlacementLayer(mechanism="dict"),
        ], spec=self.SPEC)
        assert stack.name == "toy-spec"
        assert [l.kind for l in stack.layers] == ["acl", "placement"]

    def test_wrong_order_rejected(self):
        with pytest.raises(ReproError, match="does not match"):
            ProtectionStack([
                PlacementLayer(mechanism="dict"),
                AclLayer(mechanism="sym"),
            ], spec=self.SPEC)

    def test_wrong_mechanism_rejected(self):
        with pytest.raises(ReproError, match="does not match"):
            ProtectionStack([
                AclLayer(mechanism="other"),
                PlacementLayer(mechanism="dict"),
            ], spec=self.SPEC)

    def test_layer_spec_kind_must_match_layer_class(self):
        with pytest.raises(ReproError, match="built from"):
            AclLayer(spec=LayerSpec("placement", "dict"))

    def test_unknown_layer_kind_rejected(self):
        class WeirdLayer(AclLayer):
            kind = "weird"

        with pytest.raises(ReproError, match="unknown layer kind"):
            ProtectionStack([WeirdLayer()])

    def test_layer_lookup_and_capabilities(self):
        spec = SystemSpec(name="caps", layers=(
            LayerSpec("acl", "sym", table1_rows=("Symmetric key encryption",)),
            LayerSpec("placement", "dict")))
        stack = ProtectionStack([
            AclLayer(spec=spec.layers[0]),
            PlacementLayer(spec=spec.layers[1]),
        ], spec=spec)
        assert stack.has_layer("acl")
        assert not stack.has_layer("index")
        assert stack.layer("acl").mechanism == "sym"
        with pytest.raises(ReproError):
            stack.layer("integrity")
        assert stack.capabilities() == ("Symmetric key encryption",)
        assert stack.describe()[0] == ("acl", "sym",
                                       "Symmetric key encryption")


class TestAdapters:
    def test_acl_layer_from_scheme_roundtrip(self):
        scheme = SymmetricKeyACL()
        scheme.create_group("friends", ["alice", "bob"])
        layer = AclLayer.from_scheme(scheme, "friends")
        stack = ProtectionStack([layer])
        stack.post(ContentItem(author="alice", cid="c1", payload=b"hi"))
        item = ContentItem(author="alice", reader="bob", cid="c1")
        stack.read(item)
        assert item.payload == b"hi"
        assert layer.mechanism == scheme.scheme_name

    def test_acl_layer_from_scheme_denies_non_members(self):
        scheme = SymmetricKeyACL()
        scheme.create_group("friends", ["alice"])
        stack = ProtectionStack([AclLayer.from_scheme(scheme, "friends")])
        stack.post(ContentItem(author="alice", cid="c1", payload=b"hi"))
        with pytest.raises(AccessDeniedError):
            stack.read(ContentItem(author="alice", reader="eve", cid="c1"))

    def test_acl_layer_read_requires_reader(self):
        scheme = SymmetricKeyACL()
        scheme.create_group("friends", ["alice"])
        stack = ProtectionStack([AclLayer.from_scheme(scheme, "friends")])
        stack.post(ContentItem(author="alice", cid="c1", payload=b"hi"))
        with pytest.raises(AccessDeniedError, match="reader"):
            stack.read(ContentItem(author="alice", cid="c1"))

    def test_placement_layer_from_backend_roundtrip(self):
        backend = LocalBackend()
        stack = ProtectionStack([PlacementLayer.from_backend(backend)])
        stack.post(ContentItem(author="alice", cid="c1", payload=b"blob"))
        item = ContentItem(author="alice", reader="bob", cid="c1")
        stack.read(item)
        assert item.payload == b"blob"

    def test_index_layer_from_index_posts_only(self):
        index = SearchIndex()
        stack = ProtectionStack([IndexLayer.from_index(
            index, lambda item: item.meta["text"])])
        stack.post(ContentItem(author="alice", cid="c1",
                               meta={"text": "hello distributed world"}))
        assert index.search("distributed") == ["c1"]
        assert stack.layers[0].mechanism == "plaintext index"

    def test_index_layer_blinded_mechanism_label(self):
        index = SearchIndex(blinding_secret=b"s")
        layer = IndexLayer.from_index(index, lambda item: "")
        assert layer.mechanism == "blinded index"


class TestInstrumentation:
    def test_span_names_emitted_when_configured(self):
        fabric = Fabric.create(seed=1, tracing=True)
        stack = ProtectionStack([
            PlacementLayer(post=lambda item: None,
                           span_post="storage.put", span_read="storage.get",
                           span_attrs={"backend": "local"}),
        ], tracer=fabric.tracer)
        stack.post(ContentItem(author="a"))
        assert [s.name for s in fabric.tracer.spans] == ["storage.put"]
        assert fabric.tracer.spans[0].attrs["backend"] == "local"

    def test_no_spans_by_default(self):
        fabric = Fabric.create(seed=1, tracing=True)
        stack = ProtectionStack([PlacementLayer(post=lambda item: None)],
                                tracer=fabric.tracer)
        stack.post(ContentItem(author="a"))
        assert fabric.tracer.spans == []

    def test_metrics_counter_per_layer_op(self):
        fabric = Fabric.create(seed=1)
        stack = ProtectionStack([
            AclLayer(post=lambda item: None, read=lambda item: None),
            PlacementLayer(post=lambda item: None, read=lambda item: None),
        ], metrics=fabric.metrics, name="sys")
        stack.post(ContentItem(author="a"))
        stack.read(ContentItem(author="a"))
        stack.read(ContentItem(author="a"), only=("placement",))
        assert fabric.metrics.get_counter_value(
            "stack_layer_ops_total", system="sys", layer="acl",
            op="post") == 1
        assert fabric.metrics.get_counter_value(
            "stack_layer_ops_total", system="sys", layer="placement",
            op="read") == 2
