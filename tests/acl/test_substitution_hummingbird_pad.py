"""Tests for information substitution, Hummingbird, and the PAD."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.hummingbird import (HummingbirdFollower, HummingbirdPublisher,
                                   HummingbirdServer)
from repro.acl.pad import PAD, FrientegrityACL, verify_lookup
from repro.acl.substitution import (NoybDictionary, NoybUser,
                                    VirtualPrivateProfile)
from repro.exceptions import AccessDeniedError, IntegrityError


class TestVirtualPrivateProfile:
    def test_provider_sees_only_fakes(self, rng):
        profile = VirtualPrivateProfile("alice")
        key = profile.add_friend("bob", rng)
        profile.set_field("city", "Istanbul", "Springfield", rng)
        profile.set_field("job", "professor", "plumber", rng)
        assert profile.provider_view() == {"city": "Springfield",
                                           "job": "plumber"}

    def test_friends_reconstruct_real_values(self, rng):
        profile = VirtualPrivateProfile("alice")
        key = profile.add_friend("bob", rng)
        profile.set_field("city", "Istanbul", "Springfield", rng)
        assert profile.friend_view("bob", key) == {"city": "Istanbul"}

    def test_late_friend_gets_existing_fields(self, rng):
        profile = VirtualPrivateProfile("alice")
        profile.set_field("city", "Istanbul", "Springfield", rng)
        key = profile.add_friend("carol", rng)
        assert profile.friend_view("carol", key) == {"city": "Istanbul"}

    def test_stranger_denied(self, rng):
        profile = VirtualPrivateProfile("alice")
        profile.add_friend("bob", rng)
        profile.set_field("city", "Istanbul", "Springfield", rng)
        with pytest.raises(AccessDeniedError):
            profile.friend_view("eve", b"k" * 32)


class TestNoyb:
    def _population(self, n, secret=b"s" * 32):
        dictionary = NoybDictionary()
        users = [NoybUser(f"u{i}", dictionary, secret) for i in range(n)]
        for i, user in enumerate(users):
            user.publish_atom("city", f"city-{i}")
            user.publish_atom("age", str(20 + i))
        return dictionary, users

    def test_displayed_profile_is_plausible_atom(self):
        dictionary, users = self._population(10)
        shown = users[3].displayed_profile()
        assert shown["city"] in dictionary.clusters["city"]
        assert shown["age"] in dictionary.clusters["age"]

    def test_authorized_friend_recovers_real_profile(self):
        _, users = self._population(10)
        real = users[3].real_profile_for(b"s" * 32)
        assert real == {"city": "city-3", "age": "23"}

    def test_wrong_secret_denied(self):
        _, users = self._population(5)
        with pytest.raises(AccessDeniedError):
            users[0].real_profile_for(b"x" * 32)

    def test_swaps_mostly_move_atoms(self):
        """With a big cluster, most users display someone else's atom."""
        _, users = self._population(50)
        displaced = sum(
            1 for i, u in enumerate(users)
            if u.displayed_profile()["city"] != f"city-{i}")
        assert displaced >= 40

    def test_dictionary_lookup_bounds(self):
        dictionary, _ = self._population(3)
        with pytest.raises(AccessDeniedError):
            dictionary.lookup("city", 99)
        with pytest.raises(AccessDeniedError):
            dictionary.lookup("unknown-type", 0)


class TestHummingbird:
    def _setup(self):
        rng = random.Random(7)
        server = HummingbirdServer()
        publisher = HummingbirdPublisher("alice", rng=rng)
        follower = HummingbirdFollower("bob", rng=rng)
        return server, publisher, follower

    def test_subscribed_tweets_delivered(self):
        server, publisher, follower = self._setup()
        follower.subscribe(publisher, "#privacy")
        publisher.tweet(server, "#privacy", "dosn privacy matters")
        publisher.tweet(server, "#cats", "cat pic")
        results = follower.fetch(server)
        assert results == [("alice", "#privacy", "dosn privacy matters")]

    def test_server_sees_only_opaque_tags(self):
        server, publisher, follower = self._setup()
        follower.subscribe(publisher, "#secret-topic")
        publisher.tweet(server, "#secret-topic", "content")
        for author, tag in server.provider_view():
            assert b"secret" not in tag
            assert len(tag) == 16

    def test_publisher_does_not_learn_interest(self):
        """The OPRF transcript (blinded elements) is all the publisher sees;
        two subscriptions to the same hashtag leave different transcripts."""
        rng = random.Random(8)
        publisher = HummingbirdPublisher("alice", rng=rng)
        transcripts = []

        original = publisher.serve_subscription

        def spying(blinded):
            transcripts.append(blinded)
            return original(blinded)

        publisher.serve_subscription = spying
        f1 = HummingbirdFollower("b1", rng=rng)
        f2 = HummingbirdFollower("b2", rng=rng)
        f1.subscribe(publisher, "#same")
        f2.subscribe(publisher, "#same")
        assert transcripts[0] != transcripts[1]

    def test_unsubscribed_tag_not_matched(self):
        server, publisher, follower = self._setup()
        follower.subscribe(publisher, "#a")
        publisher.tweet(server, "#b", "hidden")
        assert follower.fetch(server) == []

    def test_cross_publisher_isolation(self):
        rng = random.Random(9)
        server = HummingbirdServer()
        pub1 = HummingbirdPublisher("p1", rng=rng)
        pub2 = HummingbirdPublisher("p2", rng=rng)
        follower = HummingbirdFollower("f", rng=rng)
        follower.subscribe(pub1, "#x")
        pub2.tweet(server, "#x", "from p2")  # different OPRF secret
        assert follower.fetch(server) == []


class TestPAD:
    def test_empty_pad(self):
        pad = PAD()
        assert len(pad) == 0
        assert pad.get("x") is None
        proof = pad.prove("x")
        assert proof.found_value is None
        assert verify_lookup(pad.root_hash, proof)

    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.binary(min_size=1, max_size=8), min_size=1,
                           max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_membership_proofs_verify(self, mapping):
        pad = PAD()
        for key, value in mapping.items():
            pad = pad.insert(key, value)
        root = pad.root_hash
        for key, value in mapping.items():
            proof = pad.prove(key)
            assert proof.found_value == value
            assert verify_lookup(root, proof)

    @given(st.lists(st.text(min_size=1, max_size=6), min_size=2,
                    max_size=20, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_history_independence(self, keys):
        """Any insertion order of the same set yields the same root."""
        forward = PAD()
        for k in keys:
            forward = forward.insert(k, k.encode())
        backward = PAD()
        for k in reversed(keys):
            backward = backward.insert(k, k.encode())
        assert forward.root_hash == backward.root_hash

    def test_absence_proofs_verify(self):
        pad = PAD()
        for i in range(20):
            pad = pad.insert(f"user{i}", b"v")
        proof = pad.prove("ghost")
        assert proof.found_value is None
        assert verify_lookup(pad.root_hash, proof)

    def test_forged_proof_rejected(self):
        pad = PAD().insert("alice", b"admin").insert("bob", b"reader")
        proof = pad.prove("bob")
        import dataclasses
        forged = dataclasses.replace(proof, found_value=b"admin")
        assert not verify_lookup(pad.root_hash, forged)

    def test_persistence(self):
        v1 = PAD().insert("a", b"1")
        v2 = v1.insert("b", b"2")
        v3 = v2.delete("a")
        assert v1.get("a") == b"1" and v1.get("b") is None
        assert v2.get("a") == b"1" and v2.get("b") == b"2"
        assert v3.get("a") is None and v3.get("b") == b"2"

    def test_update_replaces(self):
        pad = PAD().insert("k", b"old").insert("k", b"new")
        assert pad.get("k") == b"new"
        assert len(pad) == 1

    def test_delete_missing_raises(self):
        with pytest.raises(IntegrityError):
            PAD().delete("ghost")

    def test_keys_sorted(self):
        pad = PAD()
        for k in ("m", "a", "z", "c"):
            pad = pad.insert(k, b"v")
        assert list(pad.keys()) == ["a", "c", "m", "z"]

    def test_proof_depth_logarithmic(self):
        pad = PAD()
        for i in range(256):
            pad = pad.insert(f"user{i:03d}", b"v")
        depths = [len(pad.prove(f"user{i:03d}").path)
                  for i in range(0, 256, 16)]
        # Treap expected depth ~ 2 ln n ≈ 11; allow generous slack.
        assert max(depths) < 30


class TestFrientegrityACL:
    def test_epoch_history(self):
        acl = FrientegrityACL()
        e1 = acl.add_member("alice", "writer")
        e2 = acl.add_member("bob")
        e3 = acl.remove_member("alice")
        assert (e1, e2, e3) == (1, 2, 3)
        assert len(acl.history) == 4

    def test_past_membership_provable_after_removal(self):
        acl = FrientegrityACL()
        e1 = acl.add_member("alice")
        acl.remove_member("alice")
        old_proof = acl.prove_membership("alice", epoch=e1)
        assert old_proof.found_value is not None
        assert verify_lookup(acl.root_at(e1), old_proof)
        now_proof = acl.prove_membership("alice")
        assert now_proof.found_value is None
        assert verify_lookup(acl.current.root_hash, now_proof)

    def test_role_stored(self):
        acl = FrientegrityACL()
        acl.add_member("alice", "writer")
        assert acl.current.get("alice") == b"writer"
