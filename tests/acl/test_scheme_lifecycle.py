"""Uniform lifecycle tests across all AccessControlScheme implementations.

Every Table I scheme must pass the same create/publish/read/join/revoke
contract; scheme-specific cost semantics are asserted separately below.
"""

import random

import pytest

from repro.acl import SCHEME_REGISTRY
from repro.acl.abe_acl import ABEACL
from repro.acl.hybrid_acl import HybridACL
from repro.acl.ibbe_acl import IBBEACL
from repro.acl.publickey_acl import PublicKeyACL
from repro.acl.symmetric_acl import SymmetricKeyACL
from repro.exceptions import AccessDeniedError, PolicyError


def make_scheme(name):
    return SCHEME_REGISTRY[name](rng=random.Random(0xACE))


@pytest.fixture(params=sorted(SCHEME_REGISTRY))
def scheme(request):
    return make_scheme(request.param)


class TestLifecycleContract:
    def test_members_read_nonmembers_do_not(self, scheme):
        scheme.create_group("g", ["alice", "bob"])
        scheme.publish("g", "item", b"secret")
        assert scheme.read("g", "item", "alice") == b"secret"
        assert scheme.read("g", "item", "bob") == b"secret"
        scheme.register_user("eve")
        with pytest.raises(AccessDeniedError):
            scheme.read("g", "item", "eve")

    def test_join_grants_future_content(self, scheme):
        scheme.create_group("g", ["alice"])
        scheme.add_member("g", "carol")
        scheme.publish("g", "post", b"data")
        assert scheme.read("g", "post", "carol") == b"data"

    def test_revoked_member_loses_future_content(self, scheme):
        scheme.create_group("g", ["alice", "bob", "carol"])
        scheme.publish("g", "old", b"old data")
        scheme.revoke_member("g", "bob")
        scheme.publish("g", "new", b"new data")
        with pytest.raises(AccessDeniedError):
            scheme.read("g", "new", "bob")
        assert scheme.read("g", "new", "alice") == b"new data"
        assert scheme.read("g", "new", "carol") == b"new data"

    def test_unknown_group_and_item_rejected(self, scheme):
        with pytest.raises(AccessDeniedError):
            scheme.publish("nope", "i", b"x")
        scheme.create_group("g", ["a"])
        with pytest.raises(AccessDeniedError):
            scheme.read("g", "missing", "a")

    def test_duplicate_group_rejected(self, scheme):
        scheme.create_group("g", ["a"])
        with pytest.raises(AccessDeniedError):
            scheme.create_group("g", ["b"])

    def test_revoke_nonmember_rejected(self, scheme):
        scheme.create_group("g", ["a"])
        with pytest.raises(AccessDeniedError):
            scheme.revoke_member("g", "stranger")

    def test_add_member_idempotent(self, scheme):
        scheme.create_group("g", ["a", "b"])
        scheme.add_member("g", "b")
        scheme.publish("g", "i", b"x")
        assert scheme.read("g", "i", "b") == b"x"

    def test_multiple_groups_isolated(self, scheme):
        scheme.create_group("g1", ["alice", "bob"])
        scheme.create_group("g2", ["alice", "carol"])
        scheme.publish("g1", "i1", b"for g1")
        scheme.publish("g2", "i2", b"for g2")
        assert scheme.read("g1", "i1", "bob") == b"for g1"
        with pytest.raises(AccessDeniedError):
            scheme.read("g2", "i2", "bob")


class TestSymmetricSemantics:
    def test_revocation_reencrypts_everything(self):
        s = make_scheme("symmetric")
        s.create_group("g", ["a", "b", "c"])
        for i in range(5):
            s.publish("g", f"i{i}", f"data{i}".encode())
        s.meter.reset()
        s.revoke_member("g", "b")
        assert s.meter.counts["reencryption"] == 5
        assert s.meter.counts["key_distribution"] == 2  # a and c rekeyed

    def test_revoked_member_loses_history_after_reencryption(self):
        s = make_scheme("symmetric")
        s.create_group("g", ["a", "b"])
        s.publish("g", "old", b"x")
        s.revoke_member("g", "b")
        with pytest.raises(AccessDeniedError):
            s.read("g", "old", "b")

    def test_cached_key_caveat(self):
        """'If someone already decrypted the data and kept a copy, we
        cannot revoke that' — a leaked pre-revocation key still opens
        pre-revocation ciphertexts (which is why re-encryption exists)."""
        from repro.crypto.symmetric import AuthenticatedCipher
        s = make_scheme("symmetric")
        s.create_group("g", ["a", "b"])
        s.publish("g", "i", b"x")
        old_record = s.groups["g"].items["i"]
        leaked = s.leaked_key("g", 0)
        s.revoke_member("g", "b")
        # The *old* ciphertext (as bob may have cached it) still opens:
        assert AuthenticatedCipher(leaked).decrypt(old_record.blob) == b"x"

    def test_constant_header(self):
        s = make_scheme("symmetric")
        s.create_group("g", ["a", "b", "c", "d"])
        s.publish("g", "i", b"x")
        assert s.meter.counts["header_bytes"] == 0


class TestPublicKeySemantics:
    def test_publish_cost_linear_in_members(self):
        s = make_scheme("public-key")
        s.create_group("g", [f"u{i}" for i in range(6)])
        s.meter.reset()
        s.publish("g", "i", b"x")
        assert s.meter.counts["pub_encrypt"] == 6

    def test_join_rewraps_history(self):
        s = make_scheme("public-key")
        s.create_group("g", ["a"])
        for i in range(3):
            s.publish("g", f"i{i}", b"x")
        s.meter.reset()
        s.add_member("g", "newbie")
        assert s.meter.counts["pub_encrypt"] == 3
        assert s.read("g", "i0", "newbie") == b"x"

    def test_lazy_revocation_keeps_history_readable(self):
        s = make_scheme("public-key")  # strict_revocation=False
        s.create_group("g", ["a", "b"])
        s.publish("g", "old", b"x")
        s.revoke_member("g", "b")
        # Paper: the key is only deleted from the list — history remains.
        assert s.read("g", "old", "b") == b"x"

    def test_strict_revocation_reencrypts(self):
        s = PublicKeyACL(rng=random.Random(1), strict_revocation=True)
        s.create_group("g", ["a", "b"])
        s.publish("g", "old", b"x")
        s.revoke_member("g", "b")
        with pytest.raises(AccessDeniedError):
            s.read("g", "old", "b")
        assert s.read("g", "old", "a") == b"x"


class TestABESemantics:
    def test_group_creation_is_one_encryption(self):
        s = make_scheme("cp-abe")
        s.create_group("g", [f"u{i}" for i in range(5)])
        s.meter.reset()
        s.publish("g", "i", b"x")
        assert s.meter.counts["pub_encrypt"] == 1  # regardless of size

    def test_revocation_rekeys_and_reencrypts(self):
        s = make_scheme("cp-abe")
        s.create_group("g", ["a", "b", "c"])
        for i in range(3):
            s.publish("g", f"i{i}", b"x")
        s.meter.reset()
        s.revoke_member("g", "b")
        assert s.meter.counts["reencryption"] == 3
        assert s.meter.counts["key_distribution"] >= 2  # survivors rekeyed
        with pytest.raises(AccessDeniedError):
            s.read("g", "i0", "b")
        assert s.read("g", "i0", "a") == b"x"

    def test_custom_policy_publish(self):
        s = make_scheme("cp-abe")
        s.create_group("g", ["alice", "bob"])
        s.grant_attribute("alice", "doctor")
        s.grant_attribute("bob", "painter")
        s.publish_with_policy("g", "med", b"records", "doctor")
        assert s.read("g", "med", "alice") == b"records"
        with pytest.raises(AccessDeniedError):
            s.read("g", "med", "bob")

    def test_strip_attribute(self):
        s = make_scheme("cp-abe")
        s.create_group("g", ["alice"])
        s.grant_attribute("alice", "temp")
        s.publish_with_policy("g", "i", b"x", "temp")
        assert s.read("g", "i", "alice") == b"x"
        s.strip_attribute("alice", "temp")
        with pytest.raises(AccessDeniedError):
            s.read("g", "i", "alice")


class TestIBBESemantics:
    def test_revocation_is_free(self):
        s = make_scheme("ibbe")
        s.create_group("g", ["a", "b", "c"])
        s.publish("g", "i0", b"x")
        s.meter.reset()
        s.revoke_member("g", "b")
        assert s.meter.total() == 0  # the paper's "no extra cost"

    def test_header_constant_across_group_sizes(self):
        sizes = []
        for n in (2, 8, 32):
            s = IBBEACL(rng=random.Random(n), max_group_size=64)
            s.create_group("g", [f"u{i}" for i in range(n)])
            s.meter.reset()
            s.publish("g", "i", b"x")
            sizes.append(s.meter.counts["header_bytes"])
        assert sizes[0] == sizes[1] == sizes[2]

    def test_no_key_exchange_on_join(self):
        s = make_scheme("ibbe")
        s.create_group("g", ["a"])
        s.register_user("b")
        s.meter.reset()
        s.add_member("g", "b")   # already provisioned: zero cost
        assert s.meter.total() == 0


class TestHybridSemantics:
    @pytest.mark.parametrize("kem", HybridACL.KEM_KINDS)
    def test_all_kems_roundtrip(self, kem):
        s = HybridACL(rng=random.Random(2), kem=kem)
        s.create_group("g", ["a", "b"])
        s.publish("g", "i", b"payload")
        assert s.read("g", "i", "a") == b"payload"
        s.register_user("z")
        with pytest.raises(AccessDeniedError):
            s.read("g", "i", "z")

    def test_exactly_one_symmetric_pass_per_item(self):
        s = HybridACL(rng=random.Random(3), kem="ibbe")
        s.create_group("g", [f"u{i}" for i in range(8)])
        s.meter.reset()
        s.publish("g", "i", b"x" * 10000)
        assert s.meter.counts["sym_encrypt"] == 1
        assert s.meter.counts["pub_encrypt"] == 1  # one wrap, large payload

    def test_unknown_kem_rejected(self):
        with pytest.raises(PolicyError):
            HybridACL(kem="rot13")

    def test_abe_kem_revocation_drops_key(self):
        s = HybridACL(rng=random.Random(4), kem="abe")
        s.create_group("g", ["a", "b"])
        s.publish("g", "i", b"x")
        s.revoke_member("g", "b")
        with pytest.raises(AccessDeniedError):
            s.read("g", "i", "b")
