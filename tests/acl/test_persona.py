"""Tests for Persona-style application access control."""

import random

import pytest

from repro.acl.persona import Application, LegacyPlatform, PersonaUser
from repro.exceptions import AccessDeniedError


@pytest.fixture
def alice():
    user = PersonaUser("alice", rng=random.Random(0x9E125))
    user.store("wall-post", b"weekend plans", "friends")
    user.store("photos", b"album bytes", "friends or family")
    user.store("diary", b"private thoughts", "family and confidant")
    user.store("calendar", b"meetings", "apps-calendar or friends")
    return user


class TestPolicies:
    def test_friend_key_scope(self, alice):
        key = alice.issue_key("bob", ["friends"])
        assert alice.read("wall-post", key) == b"weekend plans"
        assert alice.read("photos", key) == b"album bytes"
        with pytest.raises(AccessDeniedError):
            alice.read("diary", key)

    def test_family_key_scope(self, alice):
        key = alice.issue_key("mom", ["family", "confidant"])
        assert alice.read("diary", key) == b"private thoughts"
        assert alice.read("photos", key) == b"album bytes"
        with pytest.raises(AccessDeniedError):
            alice.read("wall-post", key)

    def test_unknown_datum(self, alice):
        key = alice.issue_key("bob", ["friends"])
        with pytest.raises(AccessDeniedError):
            alice.read("ghost", key)

    def test_grants_recorded(self, alice):
        alice.issue_key("bob", ["friends"])
        assert alice.grants["bob"] == ("friends",)


class TestApplications:
    def test_app_sees_only_granted_scope(self, alice):
        """The Persona property: install != full access."""
        app = Application("calendar-sync")
        granted = app.install(alice, ["apps-calendar"])
        assert granted == ("apps-calendar",)
        visible = app.visible_data(alice)
        assert visible == {"calendar": b"meetings"}

    def test_greedy_app_gets_nothing_extra(self, alice):
        """An app granted an attribute no policy mentions sees nothing."""
        app = Application("flashlight")
        app.install(alice, ["apps-flashlight"])
        assert app.visible_data(alice) == {}

    def test_uninstalled_app_denied(self, alice):
        app = Application("nosy")
        with pytest.raises(AccessDeniedError):
            app.visible_data(alice)

    def test_per_user_isolation(self, alice):
        """An app's key for one user opens nothing of another user's."""
        bob = PersonaUser("bob", rng=random.Random(1))
        bob.store("note", b"bob data", "apps-calendar")
        app = Application("calendar-sync")
        app.install(alice, ["apps-calendar"])
        # not installed for bob: no key, no access
        with pytest.raises(AccessDeniedError):
            app.visible_data(bob)
        # even reusing alice's key object against bob's data fails
        # (different ABE authorities)
        app.keys["bob"] = app.keys["alice"]
        assert app.visible_data(bob) == {}


class TestLegacyBaseline:
    def test_install_grants_everything(self):
        """The anti-pattern the paper's 'API protection' concern describes."""
        platform = LegacyPlatform()
        platform.store("alice", "wall-post", b"weekend plans")
        platform.store("alice", "diary", b"private thoughts")
        platform.install_app("alice", "flashlight")
        view = platform.app_view("flashlight", "alice")
        assert view == {"wall-post": b"weekend plans",
                        "diary": b"private thoughts"}

    def test_uninstalled_denied(self):
        platform = LegacyPlatform()
        platform.store("alice", "x", b"v")
        with pytest.raises(AccessDeniedError):
            platform.app_view("nosy", "alice")

    def test_persona_vs_legacy_exposure(self, alice):
        """Head-to-head: same app request, radically different exposure."""
        legacy = LegacyPlatform()
        for name in alice.data_names():
            legacy.store("alice", name, b"plaintext")
        legacy.install_app("alice", "calendar-sync")
        legacy_view = legacy.app_view("calendar-sync", "alice")

        app = Application("calendar-sync")
        app.install(alice, ["apps-calendar"])
        persona_view = app.visible_data(alice)

        assert len(legacy_view) == 4   # everything
        assert len(persona_view) == 1  # exactly the granted scope
