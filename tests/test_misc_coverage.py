"""Coverage for corners the themed suites don't reach: the exception
hierarchy contract, storage backends driven directly, simulator utilities,
and packaging metadata."""

import pytest

import repro
from repro import exceptions as exc
from repro.dosn.provider import CentralProvider
from repro.dosn.storage import (CentralBackend, DHTBackend,
                                FederationBackend, LocalBackend)
from repro.overlay.chord import ChordRing
from repro.overlay.federation import FederatedNetwork
from repro.fabric import Fabric
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator


class TestExceptionHierarchy:
    """Callers rely on catching ReproError to get everything."""

    LEAVES = [
        exc.CryptoError, exc.InvalidKeyError, exc.DecryptionError,
        exc.SignatureError, exc.IntegrityError, exc.AccessDeniedError,
        exc.PolicyError, exc.SearchError, exc.OverlayError,
        exc.LookupError_, exc.StorageError, exc.SimulationError,
    ]

    @pytest.mark.parametrize("leaf", LEAVES)
    def test_all_derive_from_repro_error(self, leaf):
        assert issubclass(leaf, exc.ReproError)

    def test_crypto_sub_hierarchy(self):
        assert issubclass(exc.InvalidKeyError, exc.CryptoError)
        assert issubclass(exc.DecryptionError, exc.CryptoError)
        assert issubclass(exc.SignatureError, exc.CryptoError)

    def test_overlay_sub_hierarchy(self):
        assert issubclass(exc.LookupError_, exc.OverlayError)
        assert issubclass(exc.StorageError, exc.OverlayError)

    def test_not_shadowing_builtins(self):
        """LookupError_ deliberately avoids shadowing builtins.LookupError."""
        assert exc.LookupError_ is not LookupError
        assert not issubclass(exc.LookupError_, LookupError)


class TestStorageBackendsDirect:
    def test_central_backend(self):
        backend = CentralBackend(CentralProvider("p"))
        backend.put("alice", "c1", b"blob")
        assert backend.get("bob", "c1") == b"blob"
        assert backend.observer_views() == {"p": {"c1"}}

    def test_dht_backend(self):
        fab = Fabric.create(seed=1)
        ring = ChordRing(fab, replication=2)
        for i in range(16):
            ring.add_node(f"n{i}")
        ring.build()
        backend = DHTBackend(ring)
        backend.put("n0", "c1", b"blob")
        assert backend.get("n5", "c1") == b"blob"
        holders = [name for name, ids in backend.observer_views().items()
                   if "c1" in ids]
        assert len(holders) == 2  # replication factor
        assert backend.placements["c1"] == holders or \
            set(backend.placements["c1"]) == set(holders)

    def test_dht_backend_rejects_non_member(self):
        fab = Fabric.create(seed=2)
        ring = ChordRing(fab)
        ring.add_node("n0")
        ring.build()
        backend = DHTBackend(ring)
        with pytest.raises(exc.StorageError):
            backend.put("ghost", "c1", b"x")

    def test_federation_backend(self):
        net = SimNetwork(Simulator(3))
        federation = FederatedNetwork(net, ["pod0", "pod1"])
        federation.register_user("alice", "pod0")
        federation.register_user("bob", "pod1")
        backend = FederationBackend(federation)
        backend.put("alice", "c1", b"blob", recipients=["bob"])
        assert backend.get("bob", "c1") == b"blob"
        views = backend.observer_views()
        assert "c1" in views["pod0"] and "c1" in views["pod1"]

    def test_local_backend_views(self):
        backend = LocalBackend()
        backend.put("alice", "c1", b"x")
        backend.put("bob", "c2", b"y")
        assert backend.observer_views() == {"alice": {"c1"},
                                            "bob": {"c2"}}


class TestSimulatorUtilities:
    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 5.0]

    def test_run_advances_clock_to_until(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestPackaging:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_imports(self):
        import repro.acl
        import repro.crypto
        import repro.dosn
        import repro.extensions
        import repro.integrity
        import repro.overlay
        import repro.search
        import repro.systems
        import repro.workloads
        assert repro.acl.SCHEME_REGISTRY

    def test_all_public_modules_have_docstrings(self):
        import importlib
        import pkgutil
        package = importlib.import_module("repro")
        missing = []
        for module_info in pkgutil.walk_packages(package.__path__,
                                                 prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"
