"""MetricsRegistry: labelled instruments and histogram percentile math."""

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, Histogram, MetricsRegistry)


class TestRegistry:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        reg.inc("net.drops", kind="chord_step", cause="loss")
        reg.inc("net.drops", kind="chord_step", cause="loss")
        reg.inc("net.drops", kind="chord_step", cause="partition")
        assert reg.get_counter_value("net.drops", kind="chord_step",
                                     cause="loss") == 2
        assert reg.get_counter_value("net.drops", kind="chord_step",
                                     cause="partition") == 1
        assert reg.get_counter_value("net.drops", kind="other",
                                     cause="loss") == 0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", a=1, b=2)
        reg.inc("x", b=2, a=1)
        assert reg.get_counter_value("x", a=1, b=2) == 2

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("ring.size")
        g.set(10)
        g.add(-3)
        assert g.value == 7

    def test_iteration_is_deterministic(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a", kind="z")
        reg.inc("a", kind="c")
        names = [(m.name, m.labels) for m in reg]
        assert names == sorted(names)


class TestHistogramPercentiles:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", (), bounds=(1.0, 1.0, 2.0))

    def test_exact_small_case(self):
        h = Histogram("h", (), bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.125)
        # p25 lands in the first bucket [0, 1]: rank 1 of 1 -> upper edge.
        assert h.percentile(25) == pytest.approx(1.0)
        # p100 lands in (2, 4]: both its observations < rank -> edge 4.0.
        assert h.percentile(100) == pytest.approx(4.0)

    def test_interpolation_within_bucket(self):
        h = Histogram("h", (), bounds=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all in the (10, 20] bucket
        # Median rank 5/10 -> halfway through the bucket: 10 + 0.5*10.
        assert h.percentile(50) == pytest.approx(15.0)

    def test_overflow_bucket_reports_tracked_maximum(self):
        h = Histogram("h", (), bounds=(1.0,))
        h.observe(0.5)
        h.observe(123.0)
        h.observe(456.0)
        assert h.percentile(99) == pytest.approx(456.0)
        assert h.maximum == 456.0

    def test_empty_histogram(self):
        h = Histogram("h", ())
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_min_max_tracking(self):
        h = Histogram("h", (), bounds=DEFAULT_BUCKETS)
        for v in (0.2, 0.004, 7.0):
            h.observe(v)
        assert h.minimum == 0.004
        assert h.maximum == 7.0

    def test_registry_observe_shortcut(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.3, kind="chord")
        reg.observe("lat", 0.6, kind="chord")
        hist = reg.histogram("lat", kind="chord")
        assert hist.count == 2
        assert hist.mean == pytest.approx(0.45)
