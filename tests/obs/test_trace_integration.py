"""Spans through the real stack: resilient lookups, exporters, determinism."""

import json

import pytest

from repro.exceptions import LookupError_, StorageError
from repro.faults import (CircuitBreaker, FaultPlan, LossBurst, RetryPolicy)
from repro.fabric import Fabric
from repro.obs.export import (cost_breakdown, flame_summary, metrics_rows,
                              trace_to_jsonl)
from repro.overlay.chord import ChordRing


def _resilient_ring(seed=11, tracing=True, wall_clock=False):
    plan = FaultPlan(seed=seed, horizon=1000.0)
    plan.add(LossBurst(rate=0.4, mean_burst=30.0, mean_gap=30.0,
                       start=0.0, end=1000.0))
    fab = Fabric.create(seed=seed, faults=plan, tracing=tracing,
                        wall_clock=wall_clock,
                        retry=RetryPolicy(max_attempts=4),
                        breaker=CircuitBreaker(failure_threshold=6))
    ring = ChordRing(fab, successor_list_size=8, replication=2)
    for i in range(24):
        ring.add_node(f"p{i}")
    ring.build()
    return fab, ring


def _spans_by_id(tracer):
    return {s.span_id: s for s in tracer.spans}


class TestSpanNestingAcrossResilientLookup:
    def test_lookup_spans_nest_rpc_under_channel_under_lookup(self):
        fab, ring = _resilient_ring()
        fab.sim.run(until=50.0)  # inside the loss burst
        for i in range(8):
            ring.put("p0", f"key{i}", b"v")
        result = ring.lookup("p1", "key3")
        assert result.hops >= 1
        by_id = _spans_by_id(fab.tracer)
        lookups = [s for s in fab.tracer.spans if s.name == "chord.lookup"]
        assert lookups
        lookup = lookups[-1]
        # Every channel.call under this lookup parents net.rpc spans; the
        # retry loop means attempts >= 1 and the rpc spans chain upward.
        calls = [s for s in fab.tracer.spans if s.name == "channel.call"
                 and s.parent_id == lookup.span_id]
        assert calls, "resilient lookup must route through channel.call"
        for call in calls:
            rpcs = [s for s in fab.tracer.spans if s.name == "net.rpc"
                    and s.parent_id == call.span_id]
            assert len(rpcs) == call.attrs["attempts"]
            # parent chain: net.rpc -> channel.call -> chord.lookup
            assert by_id[call.parent_id].name == "chord.lookup"

    def test_retries_show_up_as_extra_rpc_children(self):
        fab, ring = _resilient_ring()
        fab.sim.run(until=50.0)
        for i in range(8):
            ring.put("p0", f"key{i}", b"v")
        fab.tracer.clear()
        for i in range(8):
            ring.lookup(f"p{i}", f"key{i}")
        calls = [s for s in fab.tracer.spans if s.name == "channel.call"]
        # Under a 40% loss burst some call somewhere must have retried.
        assert any(c.attrs["attempts"] > 1 for c in calls)
        retried = [c for c in calls if c.attrs["attempts"] > 1]
        for call in retried:
            rpcs = [s for s in fab.tracer.spans
                    if s.name == "net.rpc" and s.parent_id == call.span_id]
            assert len(rpcs) == call.attrs["attempts"]

    def test_lookup_cost_includes_rpc_and_backoff(self):
        fab, ring = _resilient_ring()
        fab.sim.run(until=50.0)
        ring.put("p0", "key", b"v")
        fab.tracer.clear()
        ring.lookup("p1", "key")
        lookup = [s for s in fab.tracer.spans
                  if s.name == "chord.lookup"][-1]
        children = [s for s in fab.tracer.spans
                    if s.parent_id == lookup.span_id]
        assert lookup.cost == pytest.approx(sum(c.cost for c in children))
        assert lookup.cost > 0.0


class TestDeterminism:
    def _run(self, wall_clock):
        fab, ring = _resilient_ring(seed=7, wall_clock=wall_clock)
        fab.sim.run(until=40.0)
        for i in range(6):
            ring.put(f"p{i}", f"key{i}", b"blob")
        for i in range(6):
            try:
                ring.get(f"p{(i + 3) % 24}", f"key{i}")
            except (LookupError_, StorageError):
                pass  # deterministic failures trace identically too
        return fab

    def test_two_runs_same_seed_byte_identical_jsonl(self):
        first = trace_to_jsonl(self._run(wall_clock=False).tracer)
        second = trace_to_jsonl(self._run(wall_clock=False).tracer)
        assert first == second
        assert first  # non-trivial trace

    def test_wall_clock_fields_segregated(self):
        fab = self._run(wall_clock=True)
        clean = trace_to_jsonl(fab.tracer)
        assert '"wall_ns"' not in clean
        with_wall = trace_to_jsonl(fab.tracer, include_wall=True)
        assert '"wall_ns"' in with_wall
        # The deterministic view is identical to a wall-clock-off run.
        assert clean == trace_to_jsonl(
            self._run(wall_clock=False).tracer)

    def test_jsonl_parses_and_references_valid_parents(self):
        fab = self._run(wall_clock=False)
        ids = set()
        for line in trace_to_jsonl(fab.tracer).splitlines():
            record = json.loads(line)
            ids.add(record["id"])
            if record["parent"] is not None:
                assert record["parent"] in ids or any(
                    s.span_id == record["parent"] for s in fab.tracer.spans)

    def test_flame_summary_and_breakdown_render(self):
        fab = self._run(wall_clock=False)
        text = flame_summary(fab.tracer)
        assert "chord.lookup" in text and "net.rpc" in text
        headers, rows = cost_breakdown(fab.tracer)
        assert headers[0] == "Phase"
        route = dict((r[0], r) for r in rows)["route hops"]
        assert route[1] > 0 and route[2] > 0
        assert route[3] == "-"  # no wall columns without wall_clock

    def test_metrics_rows_cover_failures(self):
        fab = self._run(wall_clock=False)
        fab.metrics.absorb_network(fab.network)
        headers, rows = metrics_rows(fab.metrics)
        names = [r[0] for r in rows]
        assert "net.messages" in names
        assert any(n == "net.rpc_failures" for n in names)
