"""Fabric/DosnConfig surface: wiring, deprecations, failure-cause metrics."""

import pytest

from repro.dosn import DosnConfig, DosnNetwork
from repro.dosn.storage import DHTBackend
from repro.exceptions import OverlayError, ReproDeprecationWarning
from repro.fabric import Fabric
from repro.faults import (Crash, FaultPlan, Partition, ReliableChannel,
                          RetryPolicy)
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.overlay.chord import ChordRing
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator


class TestFabric:
    def test_create_defaults(self):
        fab = Fabric.create(seed=3)
        assert fab.network.sim is fab.sim
        assert fab.tracer is NOOP_TRACER
        assert fab.channel is None

    def test_create_tracing_and_resilience(self):
        fab = Fabric.create(seed=3, tracing=True, resilient=True)
        assert isinstance(fab.tracer, Tracer)
        assert fab.network.tracer is fab.tracer
        assert fab.channel is not None
        assert fab.channel.network is fab.network

    def test_retry_implies_channel(self):
        fab = Fabric.create(seed=0, retry=RetryPolicy(max_attempts=2))
        assert fab.channel is not None

    def test_mismatched_simulator_rejected(self):
        net = SimNetwork(Simulator(1))
        with pytest.raises(Exception):
            Fabric(Simulator(2), net)

    def test_rng_is_lazy_and_does_not_perturb_network_stream(self):
        draws = []
        for touch_rng in (False, True):
            fab = Fabric.create(seed=9)
            if touch_rng:
                fab.rng.random()  # split must not disturb the network rng
            ring = ChordRing(fab)
            for i in range(8):
                ring.add_node(f"p{i}")
            ring.build()
            _, rtt = fab.network.rpc("p0", "p1")
            draws.append(rtt)
        assert draws[0] == draws[1]

    def test_wrong_type_rejected_with_clear_error(self):
        with pytest.raises(TypeError, match="ChordRing"):
            ChordRing(object())


class TestDeprecations:
    def test_bare_network_warns_but_works(self):
        net = SimNetwork(Simulator(5))
        with pytest.warns(ReproDeprecationWarning):
            ring = ChordRing(net)
        assert ring.network is net
        with pytest.warns(ReproDeprecationWarning):
            overlay = KademliaOverlay(net)
        assert overlay.network is net

    def test_explicit_channel_kwarg_warns_but_is_honored(self):
        fab = Fabric.create(seed=5)
        channel = ReliableChannel(fab.network, RetryPolicy(max_attempts=2))
        with pytest.warns(ReproDeprecationWarning):
            ring = ChordRing(fab, channel=channel)
        assert ring.channel is channel
        with pytest.warns(ReproDeprecationWarning):
            backend = DHTBackend(ring, channel=channel)
        assert backend.ring.channel is channel

    def test_dosn_loose_kwargs_removed(self):
        # The one-release deprecation window for the loose constructor
        # kwargs is over: DosnConfig is the only spelling now.
        with pytest.raises(TypeError, match="unexpected"):
            DosnNetwork(architecture="local", seed=1,
                        encrypt_content=False)
        with pytest.raises(TypeError, match="unexpected"):
            DosnNetwork(config=DosnConfig(), level="TOY")

    def test_dosn_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="unexpected"):
            DosnNetwork(architecture="local", replicas=3)

    def test_dosn_config_still_spells_the_old_knobs(self):
        net = DosnNetwork(config=DosnConfig(architecture="local",
                                            encrypt_content=False))
        assert net.config.encrypt_content is False


class TestDosnConfig:
    def test_validates_architecture(self):
        with pytest.raises(OverlayError):
            DosnConfig(architecture="blockchain")

    def test_with_overrides(self):
        base = DosnConfig(architecture="dht", replication=2)
        swept = base.with_overrides(replication=4)
        assert swept.replication == 4
        assert base.replication == 2  # frozen original untouched

    def test_positional_args_override_config(self):
        net = DosnNetwork("local", 42, config=DosnConfig(seed=1))
        assert net.config.architecture == "local"
        assert net.config.seed == 42

    def test_tracing_config_installs_real_tracer(self):
        net = DosnNetwork(config=DosnConfig(architecture="local",
                                            tracing=True))
        net.add_user("alice")
        net.post("alice", "hi")
        assert any(s.name == "dosn.post" for s in net.tracer.spans)

    def test_stable_public_surface(self):
        import repro.dosn.api as api
        assert api.__all__ == ["ARCHITECTURES", "DOSN_SPEC", "DosnConfig",
                               "DosnNetwork"]


class TestRpcFailureCauseMetrics:
    def test_loss_cause_recorded_with_kind_and_direction(self):
        fab = Fabric.create(seed=2, loss_rate=0.999999)
        from repro.overlay.network import SimNode
        for name in ("a", "b"):
            fab.network.register(SimNode(name))
        ok, _ = fab.network.rpc("a", "b", kind="chord_step")
        assert not ok
        assert fab.metrics.get_counter_value(
            "net.rpc_failures", kind="chord_step", cause="loss",
            direction="request") == 1

    def test_offline_cause_recorded(self):
        fab = Fabric.create(seed=2)
        from repro.overlay.network import SimNode
        for name in ("a", "b"):
            fab.network.register(SimNode(name))
        fab.network.node("b").go_offline()
        ok, _ = fab.network.rpc("a", "b", kind="kad_find")
        assert not ok
        assert fab.metrics.get_counter_value(
            "net.rpc_failures", kind="kad_find", cause="offline",
            direction="request") == 1

    def test_partition_cause_recorded(self):
        plan = FaultPlan(seed=2, horizon=100.0)
        plan.add(Partition(groups=[frozenset({"a"})], start=0.0, end=100.0))
        fab = Fabric.create(seed=2, faults=plan)
        from repro.overlay.network import SimNode
        for name in ("a", "b"):
            fab.network.register(SimNode(name))
        ok, _ = fab.network.rpc("a", "b", kind="chord_final")
        assert not ok
        assert fab.metrics.get_counter_value(
            "net.rpc_failures", kind="chord_final", cause="partition",
            direction="request") == 1

    def test_success_records_no_failure(self):
        fab = Fabric.create(seed=2)
        from repro.overlay.network import SimNode
        for name in ("a", "b"):
            fab.network.register(SimNode(name))
        ok, _ = fab.network.rpc("a", "b", kind="chord_step")
        assert ok
        assert fab.metrics.get_counter_value(
            "net.rpc_failures", kind="chord_step", cause="loss",
            direction="request") == 0


class TestCryptoProfiling:
    def test_profile_crypto_records_ops_and_bytes(self):
        from repro.crypto.symmetric import StreamCipher, random_key
        from repro.obs import MetricsRegistry, profile_crypto
        reg = MetricsRegistry()
        cipher = StreamCipher(random_key(32))
        with profile_crypto(reg):
            blob = cipher.encrypt(b"x" * 100)
            cipher.decrypt(blob)
        assert reg.get_counter_value("crypto.ops", op="stream.encrypt") == 1
        assert reg.get_counter_value("crypto.ops", op="stream.decrypt") == 1
        assert reg.get_counter_value("crypto.bytes",
                                     op="stream.encrypt") == 100
        from repro.obs.metrics import WALL_NS_BUCKETS
        wall = reg.histogram("crypto.stream.encrypt.wall_ns",
                             bounds=WALL_NS_BUCKETS)
        assert wall.count == 1  # the profiler timed exactly one encrypt

    def test_profiling_off_by_default(self):
        from repro.crypto.symmetric import StreamCipher, random_key
        from repro.obs import hooks
        assert hooks.ACTIVE is None
        cipher = StreamCipher(random_key(32))
        cipher.decrypt(cipher.encrypt(b"quiet"))  # no profiler, no error
