"""Tracer semantics: nesting, cost accounting, and the no-op path."""

import pytest

from repro.obs.trace import NOOP_TRACER, NoopTracer, Tracer


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSpanNesting:
    def test_parent_child_ids(self):
        clock = _Clock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            assert tracer.current_id == outer.span_id
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.current is None

    def test_explicit_parent_reparents_async_span(self):
        clock = _Clock()
        tracer = Tracer(clock)
        with tracer.span("request") as request:
            captured = tracer.current_id
        # Later, outside the request's lexical scope (async delivery):
        with tracer.span("deliver", parent=captured) as deliver:
            pass
        assert deliver.parent_id == request.span_id

    def test_virtual_timestamps_come_from_the_clock(self):
        clock = _Clock()
        tracer = Tracer(clock)
        with tracer.span("op") as span:
            clock.now = 2.5
        assert span.start == 0.0
        assert span.end == 2.5

    def test_exception_still_finishes_span(self):
        tracer = Tracer(_Clock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current is None
        assert tracer.spans[0].attrs.get("error") is True


class TestCostRollup:
    def test_child_cost_rolls_into_parent(self):
        tracer = Tracer(_Clock())
        with tracer.span("lookup") as lookup:
            with tracer.span("rpc") as rpc:
                rpc.add_cost(0.25)
            with tracer.span("rpc") as rpc2:
                rpc2.add_cost(0.5)
        assert lookup.cost == pytest.approx(0.75)

    def test_rollup_is_transitive(self):
        tracer = Tracer(_Clock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c") as c:
                    c.add_cost(1.0)
        a, b, c = tracer.spans[::-1] if tracer.spans[0].name == "c" \
            else sorted(tracer.spans, key=lambda s: s.span_id)
        assert a.name == "a" and a.cost == pytest.approx(1.0)
        assert b.cost == pytest.approx(1.0)


class TestNoopTracer:
    def test_noop_is_disabled_and_returns_shared_span(self):
        assert NOOP_TRACER.enabled is False
        s1 = NOOP_TRACER.span("x", attr=1)
        s2 = NOOP_TRACER.span("y")
        assert s1 is s2  # shared singleton: zero allocation per call

    def test_noop_span_interface(self):
        with NOOP_TRACER.span("x") as span:
            span.set_attr("k", "v").add_cost(3.0)
        assert NOOP_TRACER.current_id is None
        assert NOOP_TRACER.spans == []
        NOOP_TRACER.clear()  # must not raise

    def test_fresh_noop_tracer_equivalent(self):
        tracer = NoopTracer()
        assert tracer.current is None
        with tracer.span("x"):
            pass
        assert tracer.spans == []
