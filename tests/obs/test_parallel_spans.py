"""Tests for parallel (overlapping-children) span cost roll-up."""

from repro.obs.trace import NOOP_TRACER, Tracer


def _tracer():
    return Tracer(clock=lambda: 0.0)


class TestSerialRollup:
    def test_children_sum_by_default(self):
        tracer = _tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                a.add_cost(0.3)
            with tracer.span("b") as b:
                b.add_cost(0.2)
        assert parent.cost == 0.5

    def test_own_cost_adds_to_child_sum(self):
        tracer = _tracer()
        with tracer.span("parent") as parent:
            parent.add_cost(0.1)
            with tracer.span("a") as a:
                a.add_cost(0.3)
        assert parent.cost == 0.4


class TestParallelRollup:
    def test_children_roll_up_as_max(self):
        tracer = _tracer()
        with tracer.span("fanout", parallel=True) as fanout:
            for cost in (0.3, 0.7, 0.2):
                with tracer.span("branch") as branch:
                    branch.add_cost(cost)
        assert fanout.cost == 0.7

    def test_serial_chains_under_parallel_parent(self):
        """Each chain sums internally; chains overlap with each other."""
        tracer = _tracer()
        with tracer.span("fanout", parallel=True) as fanout:
            for first, second in ((0.1, 0.2), (0.4, 0.1), (0.2, 0.2)):
                with tracer.span("chain") as chain:
                    with tracer.span("hop1") as hop:
                        hop.add_cost(first)
                    with tracer.span("hop2") as hop:
                        hop.add_cost(second)
        assert fanout.cost == 0.5  # the 0.4 + 0.1 chain is the slowest

    def test_parallel_parent_rolls_into_grandparent(self):
        tracer = _tracer()
        with tracer.span("op") as op:
            op.add_cost(0.05)
            with tracer.span("fanout", parallel=True) as fanout:
                for cost in (0.3, 0.6):
                    with tracer.span("branch") as branch:
                        branch.add_cost(cost)
        assert fanout.cost == 0.6
        assert op.cost == 0.65

    def test_own_cost_adds_to_child_max(self):
        tracer = _tracer()
        with tracer.span("fanout", parallel=True) as fanout:
            fanout.add_cost(0.1)  # e.g. the route to reach the holders
            with tracer.span("branch") as branch:
                branch.add_cost(0.4)
        assert fanout.cost == 0.5


class TestSettleCost:
    def test_settle_overrides_the_rollup(self):
        """A quorum settles at the R-th completion: neither sum nor max."""
        tracer = _tracer()
        with tracer.span("fanout", parallel=True) as fanout:
            for cost in (0.3, 0.7, 0.2):
                with tracer.span("probe") as probe:
                    probe.add_cost(cost)
            fanout.settle_cost(0.3)
        assert fanout.cost == 0.3

    def test_settled_cost_propagates_to_parent(self):
        tracer = _tracer()
        with tracer.span("op") as op:
            with tracer.span("fanout", parallel=True) as fanout:
                with tracer.span("probe") as probe:
                    probe.add_cost(0.9)
                fanout.settle_cost(0.25)
        assert op.cost == 0.25

    def test_settle_on_serial_span(self):
        tracer = _tracer()
        with tracer.span("op") as op:
            op.add_cost(1.0)
            op.settle_cost(0.4)
        assert op.cost == 0.4


class TestNoopTracer:
    def test_parallel_and_settle_are_noops(self):
        span = NOOP_TRACER.span("x", parallel=True)
        assert span.parallel is False
        with span as s:
            s.add_cost(1.0).settle_cost(2.0)
        assert span.cost == 0.0
