"""StoredVersion records: sealing, chaining, tamper evidence."""

import random

import pytest

from repro.dosn.identity import create_identity
from repro.exceptions import IntegrityError
from repro.storage2.record import GENESIS, StoredVersion, seal_version


@pytest.fixture(scope="module")
def identity():
    return create_identity("alice", rng=random.Random(42))


def _seal(identity, version=1, previous=GENESIS, payload=b"hello"):
    return seal_version(identity.signer, "cid-1", version, previous,
                        "alice", payload, rng=random.Random(7))


class TestSealVerify:
    def test_roundtrip_verifies(self, identity):
        record = _seal(identity)
        assert record.verify(identity.verify_key)
        decoded = StoredVersion.decode(record.encode())
        assert decoded == record
        assert decoded.verify(identity.verify_key)

    def test_payload_tamper_breaks_signature(self, identity):
        record = _seal(identity)
        forged = StoredVersion(
            key=record.key, version=record.version,
            previous=record.previous, author=record.author,
            payload=b"evil", signature=record.signature)
        assert not forged.verify(identity.verify_key)

    def test_version_tamper_breaks_signature(self, identity):
        record = _seal(identity)
        forged = StoredVersion(
            key=record.key, version=record.version + 1,
            previous=record.previous, author=record.author,
            payload=record.payload, signature=record.signature)
        assert not forged.verify(identity.verify_key)

    def test_wrong_author_key_rejects(self, identity):
        record = _seal(identity)
        other = create_identity("mallory", rng=random.Random(13))
        assert not record.verify(other.verify_key)


class TestChaining:
    def test_record_hash_covers_the_signature(self, identity):
        r1 = seal_version(identity.signer, "cid-1", 1, GENESIS, "alice",
                          b"x", rng=random.Random(1))
        r2 = seal_version(identity.signer, "cid-1", 1, GENESIS, "alice",
                          b"x", rng=random.Random(2))
        assert r1.signed_bytes() == r2.signed_bytes()
        assert r1.record_hash() != r2.record_hash()  # different nonces

    def test_chain_links_through_previous(self, identity):
        r1 = _seal(identity)
        r2 = seal_version(identity.signer, "cid-1", 2, r1.record_hash(),
                          "alice", b"v2", rng=random.Random(8))
        assert r2.previous == r1.record_hash()
        assert r2.verify(identity.verify_key)


class TestDecode:
    @pytest.mark.parametrize("blob", [
        b"", b"not json", b"\xff\xfe\x00", b"{}",
        b'{"author":"a","key":"k","payload":"zz","previous":"00",'
        b'"signature":[1,2],"version":1}',
    ])
    def test_garbage_raises_integrity_error(self, blob):
        with pytest.raises(IntegrityError):
            StoredVersion.decode(blob)

    def test_nonpositive_version_rejected(self, identity):
        record = _seal(identity, version=1)
        bad = record.encode().replace(b'"version":1', b'"version":0')
        with pytest.raises(IntegrityError):
            StoredVersion.decode(bad)
