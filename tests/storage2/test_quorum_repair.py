"""The self-healing store: quorum semantics, Byzantine holders, repair."""

import pytest

from repro.exceptions import (QuorumWriteError, ReplicaIntegrityError,
                              StorageError)
from repro.fabric import Fabric
from repro.faults import CorruptBlob, Equivocate, FaultPlan, StaleServe
from repro.storage2 import (AntiEntropyDaemon, ReplicatedStore,
                            ReplicationConfig)
from repro.overlay.chord import ChordRing

PEERS = [f"p{i}" for i in range(10)]


def make_store(seed=7, plan=None, config=None, peers=PEERS):
    fabric = Fabric.create(seed=seed, faults=plan)
    ring = ChordRing(fabric, replication=3)
    for name in peers:
        ring.add_node(name)
    ring.build()
    store = ReplicatedStore(ring,
                            config or ReplicationConfig(n=3, r=2, w=2))
    return fabric, ring, store


def reader_for(ring, holders):
    """A ring member who is not a replica holder of the key."""
    return next(n for n in PEERS if n not in holders)


class TestQuorumWrites:
    def test_put_stores_on_n_holders_and_advances_versions(self):
        _, ring, store = make_store()
        store.put("p0", "k", b"v1")
        holders = store.placements["k"]
        assert len(holders) == 3
        for holder in holders:
            assert "k" in ring.nodes[holder].store
        record = store.put("p0", "k", b"v2")
        assert record.version == 2
        assert store.latest_version("k") == 2

    def test_write_quorum_failure_raises_and_keeps_chain_state(self):
        _, ring, store = make_store()
        holders = ring.replica_set("k")[:3]
        for holder in holders[1:]:
            ring.nodes[holder].go_offline()
        writer = reader_for(ring, holders)
        with pytest.raises(QuorumWriteError):
            store.put(writer, "k", b"v1")
        assert store.latest_version("k") == 0
        for holder in holders[1:]:
            ring.nodes[holder].go_online()
        record = store.put(writer, "k", b"v1")
        assert record.version == 1  # the retry re-seals the same version


class TestVerifiedReads:
    def test_corrupting_holder_is_rejected_and_counted(self):
        holders = make_store()[1].replica_set("k")[:3]
        plan = FaultPlan(seed=7).add(CorruptBlob(holders={holders[0]}))
        fabric, ring, store = make_store(plan=plan)
        store.put("p0", "k", b"payload")
        result = store.get(reader_for(ring, holders), "k")
        assert result.payload == b"payload"
        assert result.rejected == 1
        assert result.verified == 2
        assert fabric.metrics.get_counter_value(
            "storage.byzantine_rejects") == 1

    @pytest.mark.parametrize("fault_cls", [StaleServe, Equivocate])
    def test_stale_replay_loses_to_newer_verified_version(self, fault_cls):
        holders = make_store()[1].replica_set("k")[:3]
        plan = FaultPlan(seed=7).add(fault_cls(holders={holders[0]}))
        _, ring, store = make_store(plan=plan)
        store.put("p0", "k", b"v1")
        store.put("p0", "k", b"v2")
        for _ in range(3):  # whatever old version is replayed, v2 wins
            result = store.get(reader_for(ring, holders), "k")
            assert result.payload == b"v2"
            assert result.version == 2

    def test_all_holders_byzantine_raises_replica_integrity_error(self):
        holders = make_store()[1].replica_set("k")[:3]
        plan = FaultPlan(seed=7).add(CorruptBlob(holders=set(holders)))
        _, ring, store = make_store(plan=plan)
        store.put("p0", "k", b"payload")
        with pytest.raises(ReplicaIntegrityError):
            store.get(reader_for(ring, holders), "k")

    def test_unreachable_holders_raise_storage_error(self):
        _, ring, store = make_store()
        store.put("p0", "k", b"payload")
        for holder in store.placements["k"]:
            ring.nodes[holder].go_offline()
        with pytest.raises(StorageError):
            store.get(reader_for(ring, store.placements["k"]), "k")

    def test_short_read_quorum_raises_storage_error(self):
        _, ring, store = make_store()
        store.put("p0", "k", b"payload")
        holders = store.placements["k"]
        for holder in holders[1:]:
            ring.nodes[holder].go_offline()
        with pytest.raises(StorageError, match="quorum"):
            store.get(reader_for(ring, holders), "k")

    def test_unknown_key_raises_storage_error(self):
        _, ring, store = make_store()
        with pytest.raises(StorageError):
            store.get("p0", "nope")

    def test_key_scoped_fault_leaves_other_keys_honest(self):
        """A liar scoped to one key serves co-located keys untouched."""
        holders = make_store()[1].replica_set("k")[:3]
        plan = FaultPlan(seed=7).add(
            CorruptBlob(holders={holders[0]}, keys={"other"}))
        fabric, ring, store = make_store(plan=plan)
        record = store.put("p0", "k", b"payload")
        assert store.serve(holders[0], "p9", "k") == record.encode()
        result = store.get(reader_for(ring, holders), "k")
        assert result.rejected == 0 and result.verified == 3

    def test_bare_read_accepts_what_quorum_rejects(self):
        """The E14 baseline: read_any trusts tampered first responses."""
        holders = make_store()[1].replica_set("k")[:3]
        plan = FaultPlan(seed=7).add(CorruptBlob(holders={holders[0]}))
        _, ring, store = make_store(plan=plan)
        record = store.put("p0", "k", b"payload")
        served = store.read_any(reader_for(ring, holders), "k")
        assert served != record.encode()  # garbled, yet returned


class TestReadRepair:
    def test_holder_that_missed_a_write_is_repaired_on_read(self):
        fabric, ring, store = make_store()
        store.put("p0", "k", b"v1")
        holders = store.placements["k"]
        laggard = holders[-1]
        ring.nodes[laggard].go_offline()
        store.put("p0", "k", b"v2")  # w=2 acks still reachable
        ring.nodes[laggard].go_online()
        result = store.get(reader_for(ring, holders), "k")
        assert result.version == 2
        assert result.repaired == 1
        assert fabric.metrics.get_counter_value("storage.read_repairs") == 1
        repaired = store._verify("k", ring.nodes[laggard].store["k"])
        assert repaired.version == 2

    def test_read_repair_can_be_disabled(self):
        config = ReplicationConfig(n=3, r=2, w=2, read_repair=False)
        fabric, ring, store = make_store(config=config)
        store.put("p0", "k", b"v1")
        holders = store.placements["k"]
        laggard = holders[-1]
        ring.nodes[laggard].go_offline()
        store.put("p0", "k", b"v2")
        ring.nodes[laggard].go_online()
        result = store.get(reader_for(ring, holders), "k")
        assert result.version == 2 and result.repaired == 0
        assert store._verify("k", ring.nodes[laggard].store["k"]).version == 1


class TestAntiEntropy:
    def test_sync_round_pulls_missed_writes(self):
        fabric, ring, store = make_store()
        store.put("p0", "k", b"v1")
        holders = store.placements["k"]
        laggard = holders[-1]
        ring.nodes[laggard].go_offline()
        store.put("p0", "k", b"v2")
        ring.nodes[laggard].go_online()
        daemon = AntiEntropyDaemon(store, interval=60.0)
        daemon.run_round()
        assert store._verify("k", ring.nodes[laggard].store["k"]).version == 2
        assert fabric.metrics.get_counter_value("storage.repair_pulls") >= 1

    def test_re_replication_after_state_losing_crash(self):
        fabric, ring, store = make_store()
        store.put("p0", "k", b"v1")
        before = list(store.placements["k"])
        dead = before[0]
        ring.nodes[dead].crash(lose_state=True)
        daemon = AntiEntropyDaemon(store, interval=60.0)
        daemon.run_round()
        after = store.placements["k"]
        assert dead not in after
        assert len(after) == 3
        newcomer = next(h for h in after if h not in before)
        assert store._verify("k", ring.nodes[newcomer].store["k"]).version == 1
        assert fabric.metrics.get_counter_value(
            "storage.re_replications") >= 1

    def test_daemon_ticks_on_the_simulator_clock(self):
        fabric, ring, store = make_store()
        store.put("p0", "k", b"v1")
        daemon = AntiEntropyDaemon(store, interval=100.0)
        daemon.start()
        fabric.sim.run(until=350.0)
        assert daemon.rounds == 3
        assert fabric.metrics.get_counter_value("storage.repair_rounds") == 3

    def test_total_wipeout_is_honest_data_loss(self):
        """With every holder's state gone there is nothing to clone."""
        _, ring, store = make_store()
        store.put("p0", "k", b"v1")
        for holder in store.placements["k"]:
            ring.nodes[holder].crash(lose_state=True)
        AntiEntropyDaemon(store, interval=60.0).run_round()
        for holder in store.placements["k"]:
            node = ring.nodes.get(holder)
            assert node is None or "k" not in node.store


class TestDeterminism:
    def _run(self):
        holders = make_store()[1].replica_set("k")[:3]
        plan = (FaultPlan(seed=3)
                .add(StaleServe(holders={holders[0]}))
                .add(CorruptBlob(holders={holders[1]}, rate=0.5)))
        fabric, ring, store = make_store(plan=plan)
        store.put("p0", "k", b"v1")
        store.put("p0", "k", b"v2")
        daemon = AntiEntropyDaemon(store, interval=50.0)
        daemon.start()
        fabric.sim.run(until=120.0)
        reader = reader_for(ring, holders)
        outcomes = []
        for _ in range(5):
            result = store.get(reader, "k")
            outcomes.append((result.version, result.verified,
                             result.rejected, result.repaired))
        return (outcomes,
                fabric.metrics.get_counter_value("storage.byzantine_rejects"),
                fabric.network.stats.messages)

    def test_same_seed_same_byzantine_behaviour(self):
        assert self._run() == self._run()


class TestDegradedReads:
    """Graceful degradation: below-quorum reads serve verified-but-flagged."""

    CONFIG = ReplicationConfig(n=3, r=2, w=2, degraded_reads=True)

    def test_single_verified_copy_is_served_flagged(self):
        fabric, ring, store = make_store(config=self.CONFIG)
        store.put("p0", "k", b"payload")
        holders = store.placements["k"]
        for holder in holders[1:]:
            ring.nodes[holder].go_offline()
        result = store.get(reader_for(ring, holders), "k")
        assert result.degraded
        assert result.payload == b"payload"
        assert result.verified == 1 and result.repaired == 0
        assert fabric.metrics.get_counter_value(
            "storage.degraded_reads") == 1

    def test_full_quorum_reads_stay_unflagged(self):
        fabric, _, store = make_store(config=self.CONFIG)
        store.put("p0", "k", b"payload")
        result = store.get("p9", "k")
        assert not result.degraded
        assert fabric.metrics.get_counter_value(
            "storage.degraded_reads") == 0

    def test_degraded_never_returns_unverified_bytes(self):
        """The one reachable holder is a corrupter: raise, don't serve."""
        holders = make_store()[1].replica_set("k")[:3]
        plan = FaultPlan(seed=7).add(CorruptBlob(holders={holders[0]}))
        _, ring, store = make_store(plan=plan, config=self.CONFIG)
        store.put("p0", "k", b"payload")
        for holder in store.placements["k"]:
            if holder != holders[0]:
                ring.nodes[holder].go_offline()
        with pytest.raises(ReplicaIntegrityError):
            store.get(reader_for(ring, store.placements["k"]), "k")

    def test_newest_verified_copy_wins_the_degraded_read(self):
        fabric, ring, store = make_store(config=self.CONFIG)
        store.put("p0", "k", b"v1")
        holders = store.placements["k"]
        laggard = holders[-1]
        ring.nodes[laggard].go_offline()
        store.put("p0", "k", b"v2")
        # only holders that saw v2 go away; the laggard returns with v1
        for holder in holders[:-1]:
            ring.nodes[holder].go_offline()
        ring.nodes[laggard].go_online()
        result = store.get(reader_for(ring, holders), "k")
        assert result.degraded
        assert result.version == 1  # stale is possible — and flagged
        assert result.payload == b"v1"

    def test_flag_off_keeps_the_legacy_failure(self):
        _, ring, store = make_store()
        store.put("p0", "k", b"payload")
        holders = store.placements["k"]
        for holder in holders[1:]:
            ring.nodes[holder].go_offline()
        with pytest.raises(StorageError, match="quorum"):
            store.get(reader_for(ring, holders), "k")
