"""The anti-entropy daemon on the non-oracle (membership) liveness path."""

import pytest

from repro.fabric import Fabric
from repro.membership import MembershipConfig, SwimMembership
from repro.overlay.chord import ChordRing
from repro.overlay.simulator import FixedLatency
from repro.storage2 import (AntiEntropyDaemon, ReplicatedStore,
                            ReplicationConfig)

PEERS = [f"p{i}" for i in range(10)]


def make(seed=7, interval=500.0, start_membership=True):
    fabric = Fabric.create(seed=seed, latency=FixedLatency(0.02))
    membership = SwimMembership(fabric, MembershipConfig())
    ring = ChordRing(fabric, replication=3)
    for name in PEERS:
        ring.add_node(name)
        membership.register(name)
    ring.build()
    store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
    daemon = AntiEntropyDaemon(store, interval=interval)
    if start_membership:
        membership.start()
        daemon.start()
    return fabric, ring, store, membership, daemon


class TestLivenessSource:
    def test_daemon_discovers_membership_from_the_fabric(self):
        _, _, _, membership, daemon = make(start_membership=False)
        assert daemon.membership is membership

    def test_explicit_none_keeps_the_oracle(self):
        fabric = Fabric.create(seed=1)
        ring = ChordRing(fabric, replication=3)
        for name in PEERS:
            ring.add_node(name)
        ring.build()
        store = ReplicatedStore(ring, ReplicationConfig(n=3, r=2, w=2))
        assert AntiEntropyDaemon(store, interval=60.0).membership is None

    def test_offline_but_unconfirmed_holder_is_still_trusted(self):
        """No oracle peeking: repair waits for a *confirmed* death."""
        fabric, ring, store, membership, daemon = make(
            start_membership=False)
        store.put("p0", "k", b"v1")
        before = list(store.placements["k"])
        ring.nodes[before[0]].go_offline()
        daemon.run_round()  # the detector has confirmed nothing yet
        assert store.placements["k"] == before
        assert fabric.metrics.get_counter_value(
            "storage.re_replications") == 0


class TestConfirmTriggeredRepair:
    def _crash_and_confirm(self):
        fabric, ring, store, membership, daemon = make()
        store.put("p0", "k", b"v1")
        store.put("p0", "k", b"v2")
        fabric.sim.run(until=60.0)
        victim = store.placements["k"][0]
        ring.nodes[victim].crash(lose_state=True)
        fabric.sim.run(until=600.0)
        return fabric, ring, store, membership, victim

    def test_confirmed_death_repairs_without_waiting_for_the_tick(self):
        fabric, ring, store, membership, victim = self._crash_and_confirm()
        assert membership.confirmed_dead(victim)
        assert fabric.metrics.get_counter_value(
            "storage.confirm_triggered_repairs") >= 1
        assert victim not in store.placements["k"]
        assert len(store.placements["k"]) == 3
        for holder in store.placements["k"]:
            record = store._verify("k", ring.nodes[holder].store["k"])
            assert record.version == 2

    def test_repaired_key_reads_at_full_quorum(self):
        _, ring, store, _, victim = self._crash_and_confirm()
        reader = next(p for p in PEERS if p not in store.placements["k"])
        result = store.get(reader, "k")
        assert result.version == 2 and result.verified >= 2

    def test_sync_still_pulls_for_laggards_in_membership_mode(self):
        fabric, ring, store, membership, daemon = make(interval=100.0)
        store.put("p0", "k", b"v1")
        holders = store.placements["k"]
        laggard = holders[-1]
        ring.nodes[laggard].go_offline()
        store.put("p0", "k", b"v2")
        ring.nodes[laggard].go_online()
        fabric.sim.run(until=150.0)  # one daemon round
        assert store._verify(
            "k", ring.nodes[laggard].store["k"]).version == 2
        assert fabric.metrics.get_counter_value(
            "storage.repair_pulls") >= 1


class TestDeterminism:
    def _run(self):
        fabric, ring, store, membership, _ = make(seed=13, interval=120.0)
        for i in range(6):
            store.put("p0", f"k{i}", b"v")
        fabric.sim.run(until=60.0)
        ring.nodes[store.placements["k0"][0]].crash(lose_state=True)
        fabric.sim.run(until=700.0)
        return (sorted((k, tuple(h)) for k, h in store.placements.items()),
                repr(membership.confirm_log),
                fabric.network.stats.messages,
                fabric.metrics.get_counter_value("storage.re_replications"))

    def test_membership_mode_repair_is_deterministic(self):
        assert self._run() == self._run()
