"""Unit tests for the phi-accrual suspicion estimator."""

import pytest

from repro.membership import LN10, PhiEstimator


def make(window=8, initial=5.0, floor=0.25, now=0.0):
    return PhiEstimator(window, initial, floor, now)


class TestMeanGap:
    def test_initial_interval_until_three_samples(self):
        est = make(initial=5.0)
        assert est.mean_gap == 5.0
        est.evidence(1.0)
        est.evidence(2.0)
        assert est.mean_gap == 5.0  # still the prior
        est.evidence(3.0)
        assert est.mean_gap == pytest.approx(1.0)

    def test_mean_over_sliding_window(self):
        est = make(window=4)
        for t in (1.0, 2.0, 3.0, 4.0):
            est.evidence(t)
        assert est.mean_gap == pytest.approx(1.0)
        est.evidence(14.0)  # a 10s gap slides in, a 1s gap slides out
        assert est.mean_gap == pytest.approx((1 + 1 + 1 + 10) / 4)

    def test_min_interval_floors_the_estimate(self):
        est = make(floor=0.5)
        for t in (0.01, 0.02, 0.03, 0.04):
            est.evidence(t)
        assert est.mean_gap == 0.5

    def test_initial_interval_is_floored_too(self):
        assert make(initial=0.01, floor=0.5).mean_gap == 0.5


class TestEvidence:
    def test_stale_timestamps_are_ignored(self):
        est = make()
        assert est.evidence(2.0)
        assert not est.evidence(1.0)  # older piggybacked news
        assert not est.evidence(2.0)  # duplicate
        assert est.last_evidence == 2.0
        assert est.snapshot() == pytest.approx(2.0)

    def test_restart_resets_clock_without_a_gap(self):
        est = make()
        est.evidence(1.0)
        est.restart(100.0)
        assert est.last_evidence == 100.0
        assert est.snapshot() == pytest.approx(1.0)  # no 99s gap recorded
        assert est.phi(100.0) == 0.0


class TestPhi:
    def test_zero_at_or_before_evidence(self):
        est = make()
        est.evidence(5.0)
        assert est.phi(5.0) == 0.0
        assert est.phi(4.0) == 0.0

    def test_exponential_model_formula(self):
        est = make()
        for t in (1.0, 2.0, 3.0, 4.0):
            est.evidence(t)
        assert est.phi(4.0 + 2.0) == pytest.approx(2.0 / (1.0 * LN10))

    def test_silence_bound_inverts_phi(self):
        est = make()
        for t in (1.0, 2.5, 3.0, 4.0):
            est.evidence(t)
        for threshold in (1.0, 3.0, 8.0):
            bound = est.silence_bound(threshold)
            assert est.phi(est.last_evidence + bound) == \
                pytest.approx(threshold)

    def test_slow_pair_gets_longer_bound(self):
        fast, slow = make(), make()
        for i in range(1, 6):
            fast.evidence(float(i))
            slow.evidence(float(10 * i))
        assert slow.silence_bound(8.0) > fast.silence_bound(8.0)
