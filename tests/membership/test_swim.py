"""Unit tests for the SWIM-style membership protocol."""

import pytest

from repro.exceptions import OverlayError, SimulationError
from repro.fabric import Fabric
from repro.membership import (ALIVE, DEAD, SUSPECT, MembershipConfig,
                              SwimMembership)
from repro.membership.swim import _Update
from repro.overlay.network import SimNode
from repro.overlay.simulator import FixedLatency


def cluster(n=6, seed=7, loss=0.0, faults=None, config=None,
            resilient=False, start=True):
    fab = Fabric.create(seed=seed, latency=FixedLatency(0.02),
                        loss_rate=loss, faults=faults, resilient=resilient)
    membership = SwimMembership(fab, config or MembershipConfig())
    names = [f"n{i}" for i in range(n)]
    for name in names:
        fab.network.register(SimNode(name))
        membership.register(name)
    if start:
        membership.start()
    return fab, membership, names


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(protocol_period=0.0),
        dict(k_indirect=-1),
        dict(suspect_phi=0.0),
        dict(suspect_phi=9.0, confirm_phi=8.0),
        dict(piggyback_limit=0),
        dict(window=1),
        dict(initial_interval=0.0),
        dict(min_interval=0.0),
        dict(gossip_budget_factor=0.0),
        dict(reclaim_every=0),
    ])
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(SimulationError):
            MembershipConfig(**bad)


class TestRoster:
    def test_duplicate_registration_rejected(self):
        _, membership, _ = cluster(start=False)
        with pytest.raises(OverlayError):
            membership.register("n0")

    def test_start_needs_two_members(self):
        fab = Fabric.create(seed=1)
        membership = SwimMembership(fab)
        fab.network.register(SimNode("solo"))
        membership.register("solo")
        with pytest.raises(SimulationError):
            membership.start()

    def test_one_membership_per_fabric(self):
        fab, _, _ = cluster()
        with pytest.raises(SimulationError):
            SwimMembership(fab)

    def test_views_are_cross_registered(self):
        _, membership, names = cluster(n=4, start=False)
        for name in names:
            view = membership.view_of(name)
            assert set(view.records) == set(names) - {name}
        assert membership.view_of("stranger") is None


class TestDetection:
    def test_crash_is_confirmed_dead_with_no_false_positives(self):
        fab, membership, names = cluster(n=6)
        fab.sim.run(until=60.0)
        fab.network.node("n3").go_offline()
        fab.sim.run(until=400.0)
        assert membership.confirmed_dead("n3")
        assert membership.alive_members() == \
            [n for n in names if n != "n3"]
        false, total = membership.false_positive_stats()
        assert false == 0 and total >= 1
        assert all(e.peer == "n3" for e in membership.confirm_log)

    def test_confirm_respects_the_adaptive_bound(self):
        fab, membership, _ = cluster(n=6)
        fab.sim.run(until=60.0)
        fab.network.node("n3").go_offline()
        fab.sim.run(until=400.0)
        for event in membership.confirm_log:
            assert event.silence >= event.bound
            assert event.phi >= membership.config.confirm_phi

    def test_confirmation_gossips_cluster_wide(self):
        fab, membership, names = cluster(n=6)
        fab.sim.run(until=60.0)
        fab.network.node("n3").go_offline()
        fab.sim.run(until=500.0)
        buried_in = [n for n in names if n != "n3"
                     and membership.view_of(n).is_dead("n3")]
        assert len(buried_in) == 5

    def test_fair_weather_run_stays_silent(self):
        fab, membership, _ = cluster(n=8)
        fab.sim.run(until=300.0)
        assert membership.confirm_log == []
        assert membership._dead == set()
        assert fab.metrics.get_counter_value(
            "membership.confirms", source="phi") == 0

    def test_on_confirm_fires_once_per_death(self):
        fab, membership, _ = cluster(n=6)
        deaths = []
        membership.on_confirm(lambda peer, now: deaths.append(peer))
        fab.sim.run(until=60.0)
        fab.network.node("n3").go_offline()
        fab.sim.run(until=500.0)
        assert deaths == ["n3"]

    def test_rejoin_revives_and_clears_admin_death(self):
        fab, membership, _ = cluster(n=6)
        fab.sim.run(until=60.0)
        fab.network.node("n3").go_offline()
        fab.sim.run(until=400.0)
        assert membership.confirmed_dead("n3")
        fab.network.node("n3").go_online()
        fab.sim.run(until=800.0)
        assert not membership.confirmed_dead("n3")
        assert "n3" in membership.alive_members()
        assert fab.metrics.get_counter_value("membership.rejoins") > 0
        # and the returnee's own absence produced no fresh confirmations
        false, _ = membership.false_positive_stats()
        assert false == 0


class TestMergeRules:
    """SWIM's update-override rules, applied straight to one view."""

    def setup_method(self):
        _, self.membership, _ = cluster(n=3, start=False)
        self.view = self.membership.view_of("n0")
        self.record = self.view.records["n1"]

    def _recv(self, state, incarnation, heard_at=1.0):
        self.view.receive(
            _Update("n1", state, incarnation, heard_at, budget=3), now=2.0)

    def test_suspect_beats_alive_at_equal_incarnation(self):
        self._recv(SUSPECT, 0)
        assert self.record.state == SUSPECT

    def test_alive_needs_higher_incarnation_to_refute_suspect(self):
        self._recv(SUSPECT, 0)
        self._recv(ALIVE, 0)
        assert self.record.state == SUSPECT  # same incarnation: no refute
        self._recv(ALIVE, 1)
        assert self.record.state == ALIVE
        assert self.record.incarnation == 1

    def test_dead_is_final_at_any_equal_incarnation(self):
        self._recv(DEAD, 0)
        self._recv(ALIVE, 0)
        self._recv(SUSPECT, 5)
        assert self.record.state == DEAD

    def test_higher_incarnation_alive_revives_the_dead(self):
        self._recv(DEAD, 0)
        assert self.membership.confirmed_dead("n1")
        self._recv(ALIVE, 1)
        assert self.record.state == ALIVE
        assert not self.membership.confirmed_dead("n1")

    def test_alive_news_counts_as_phi_evidence(self):
        before = self.record.estimator.last_evidence
        self._recv(ALIVE, 0, heard_at=before + 7.5)
        assert self.record.estimator.last_evidence == before + 7.5

    def test_owner_refutes_rumors_about_itself(self):
        rumor = _Update("n0", SUSPECT, 0, 1.0, budget=3)
        self.view.receive(rumor, now=2.0)
        assert self.view.self_incarnation == 1
        refute = [u for u in self.view.queue if u.peer == "n0"]
        assert refute and refute[-1].state == ALIVE
        assert refute[-1].incarnation == 1

    def test_unknown_peers_are_ignored(self):
        self.view.receive(_Update("ghost", DEAD, 0, 1.0, budget=3), now=2.0)
        assert "ghost" not in self.view.records

    def test_direct_evidence_revives_without_incarnation_bump(self):
        self._recv(SUSPECT, 0)
        self.view.direct_evidence("n1", 0, now=3.0)
        assert self.record.state == ALIVE
        assert self.record.incarnation == 0


class TestHealthOrdering:
    def test_dead_sort_last_and_suspects_in_between(self):
        _, membership, _ = cluster(n=4, start=False)
        view = membership.view_of("n0")
        view.records["n1"].state = DEAD
        view.records["n2"].state = SUSPECT
        ordered = membership.order_by_health("n0", ["n1", "n2", "n3"])
        assert ordered == ["n3", "n2", "n1"]

    def test_unknown_observer_passthrough(self):
        _, membership, _ = cluster(n=3, start=False)
        assert membership.order_by_health("stranger", ["n2", "n0"]) == \
            ["n2", "n0"]

    def test_health_scores_are_bounded(self):
        fab, membership, names = cluster(n=4)
        fab.sim.run(until=50.0)
        view = membership.view_of("n0")
        now = fab.sim.now
        for peer in names[1:]:
            assert 0.0 <= view.health(peer, now) <= 1.0


class TestReclaim:
    """Graveyard probing ("gossip to the dead") after a partition heals."""

    def _partitioned_cluster(self):
        from repro.faults import FaultPlan, Partition
        plan = FaultPlan(seed=3).add(
            Partition(groups=[frozenset({"n0", "n1", "n2", "n3"})],
                      start=30.0, end=230.0))
        return cluster(n=8, faults=plan)

    def test_healed_partition_is_fully_reclaimed(self):
        fab, membership, names = self._partitioned_cluster()
        fab.sim.run(until=220.0)
        # mutual burial across the cut: nobody probes the "dead" side,
        # so without reclaim the views could never converge again
        assert membership._dead
        fab.sim.run(until=400.0)
        assert membership._dead == set()
        for name in names:
            assert membership.view_of(name).dead_peers() == []
        assert fab.metrics.get_counter_value(
            "membership.reclaim_pings") > 0

    def test_reclaimed_peer_outbids_its_burial(self):
        """Direct-contact revival must raise the peer's incarnation past
        the buried record, or DEAD stays final in every other view."""
        fab, membership, _ = self._partitioned_cluster()
        fab.sim.run(until=220.0)
        buried = {peer: max(membership.view_of(o).records[peer].incarnation
                            for o in membership.views if o != peer)
                  for peer in membership._dead}
        fab.sim.run(until=400.0)
        for peer, incarnation in buried.items():
            assert membership.view_of(peer).self_incarnation > incarnation


class TestDeterminism:
    def _trace(self, seed):
        fab, membership, _ = cluster(n=8, seed=seed, loss=0.1)
        fab.sim.run(until=60.0)
        fab.network.node("n2").go_offline()
        fab.network.node("n5").go_offline()
        fab.sim.run(until=500.0)
        return (repr(membership.confirm_log), sorted(membership._dead),
                fab.network.stats.messages,
                fab.metrics.get_counter_value("membership.pings"))

    def test_same_seed_same_history(self):
        assert self._trace(11) == self._trace(11)

    def test_different_seed_different_history(self):
        assert self._trace(11) != self._trace(12)
