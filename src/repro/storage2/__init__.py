"""Self-healing replicated storage: quorum reads/writes + anti-entropy.

The paper's replicas are "another kind of service provider in a small
scale" — so this package stops trusting them.  Content is stored as
signed, hash-chained :class:`~repro.storage2.record.StoredVersion`
records; writes require a ``W``-of-``N`` ack quorum and reads verify
every response, accept the newest verified version from an ``R``-of-``N``
quorum, and repair stale holders in the read path
(:mod:`repro.storage2.quorum`).  An
:class:`~repro.storage2.repair.AntiEntropyDaemon` driven by the simulator
clock exchanges Merkle summaries between holders, pulls missing/stale
items, and re-places replicas when churn drops live replication below
target.

Opt in through :class:`~repro.dosn.api.DosnConfig`::

    DosnConfig(architecture="dht",
               replication=ReplicationConfig(n=3, r=2, w=2,
                                             repair_interval=600.0))

Experiment E14 (``benchmarks/bench_durability.py``) sweeps churn and
Byzantine holder fraction over bare / quorum / quorum+repair reads.
"""

from repro.storage2.config import ReplicationConfig
from repro.storage2.quorum import ReadResult, ReplicatedStore
from repro.storage2.record import GENESIS, StoredVersion, seal_version
from repro.storage2.repair import AntiEntropyDaemon

__all__ = [
    "AntiEntropyDaemon", "GENESIS", "ReadResult", "ReplicatedStore",
    "ReplicationConfig", "StoredVersion", "seal_version",
]
