"""Quorum/repair parameters for the replicated store."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class ReplicationConfig:
    """``N``/``R``/``W`` quorum sizing plus the repair cadence.

    ``n`` replicas hold every key; a write needs ``w`` acks, a read needs
    ``r`` verified responses.  ``w + r > n`` gives the classic overlap
    guarantee *against crash faults*; Byzantine holders are handled by
    per-response verification (a lying holder can replay a stale signed
    version but cannot forge a new one), and the remaining stale window is
    closed by read-repair plus the anti-entropy daemon when
    ``repair_interval`` is set (virtual seconds; ``None`` disables the
    daemon).

    ``degraded_reads`` opts into graceful degradation: when fewer than
    ``r`` verified responses are reachable but at least one is, the read
    returns the newest *verified* copy flagged ``degraded=True`` instead
    of raising — never unverified bytes, but possibly stale ones (the
    freshness guarantee needs the quorum overlap).  Readers that cannot
    tolerate staleness must check the flag.
    """

    n: int = 3
    r: int = 2
    w: int = 2
    repair_interval: Optional[float] = None
    read_repair: bool = True
    degraded_reads: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise SimulationError("replication target n must be >= 1")
        if not 1 <= self.r <= self.n:
            raise SimulationError("read quorum r must satisfy 1 <= r <= n")
        if not 1 <= self.w <= self.n:
            raise SimulationError("write quorum w must satisfy 1 <= w <= n")
        if self.w + self.r <= self.n:
            raise SimulationError(
                "need w + r > n for read/write quorum overlap")
        if self.repair_interval is not None and self.repair_interval <= 0:
            raise SimulationError("repair interval must be positive")
