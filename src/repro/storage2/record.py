"""Signed, hash-chained version records — what replicas actually store.

Every ``put`` of the replicated store seals a :class:`StoredVersion`: the
payload plus a monotone version number and the hash of the previous
record, all under the author's Schnorr signature (Section IV of the
paper: signatures for owner/content integrity, hash chains for version
order).  The consequence is the whole threat model of
:mod:`repro.storage2`: a Byzantine replica holder can *replay* an old
record (it is genuinely signed) or serve garbage (verification fails),
but it cannot forge a record claiming a version the author never wrote —
so quorum readers only ever have to arbitrate between authentic versions,
and "newest verified wins" is sound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Tuple

from repro.crypto.hashing import digest, digest_many
from repro.exceptions import IntegrityError

#: Chain anchor: ``previous`` of every version-1 record.
GENESIS = digest(b"repro/storage2/genesis")

_DOMAIN = b"repro/storage2/record"


def _int_bytes(value: int) -> bytes:
    return value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")


@dataclass(frozen=True)
class StoredVersion:
    """One sealed version of one key."""

    key: str
    version: int
    previous: bytes
    author: str
    payload: bytes
    signature: Tuple[int, int]

    def signed_bytes(self) -> bytes:
        """The digest the author signs (length-framed, domain-separated)."""
        return digest_many([
            _DOMAIN, self.key.encode(), self.version.to_bytes(8, "big"),
            self.previous, self.author.encode(), self.payload])

    def record_hash(self) -> bytes:
        """The chain link for the *next* version (covers the signature)."""
        e, s = self.signature
        return digest_many([b"repro/storage2/hash", self.signed_bytes(),
                            _int_bytes(e), _int_bytes(s)])

    def verify(self, verify_key) -> bool:
        """Check the author's signature over the sealed fields."""
        return verify_key.verify(self.signed_bytes(), self.signature)

    def encode(self) -> bytes:
        """Canonical wire/store encoding (sorted-key JSON)."""
        return json.dumps({
            "author": self.author,
            "key": self.key,
            "payload": self.payload.hex(),
            "previous": self.previous.hex(),
            "signature": list(self.signature),
            "version": self.version,
        }, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def decode(cls, blob: bytes) -> "StoredVersion":
        """Parse a stored record; malformed bytes raise IntegrityError."""
        try:
            obj = json.loads(blob.decode())
            e, s = obj["signature"]
            record = cls(
                key=obj["key"], version=int(obj["version"]),
                previous=bytes.fromhex(obj["previous"]),
                author=obj["author"],
                payload=bytes.fromhex(obj["payload"]),
                signature=(int(e), int(s)))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise IntegrityError(f"undecodable stored record: {exc}")
        if record.version < 1:
            raise IntegrityError("stored record has a non-positive version")
        return record


def seal_version(signer, key: str, version: int, previous: bytes,
                 author: str, payload: bytes, rng=None) -> StoredVersion:
    """Sign one version with the author's key and return the record."""
    unsigned = StoredVersion(key=key, version=version, previous=previous,
                             author=author, payload=payload,
                             signature=(0, 0))
    signature = signer.sign(unsigned.signed_bytes(), rng=rng)
    return StoredVersion(key=key, version=version, previous=previous,
                         author=author, payload=payload,
                         signature=signature)
