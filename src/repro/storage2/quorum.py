"""The quorum-replicated store: W-of-N writes, verified R-of-N reads.

Where :meth:`ChordRing.get` trusts the first replica that answers, the
:class:`ReplicatedStore` treats every holder as a potential liar
(:mod:`repro.faults.byzantine`): each response is decoded and checked
against the author's signature before it counts toward the read quorum,
the newest verified version wins, and holders caught serving older state
are repaired in the read path.  Every probe, store, and repair push is an
accounted RPC on the simulated fabric, so E14's availability numbers pay
for the quorum traffic they claim.

Detection counters (via ``fabric.metrics`` / :mod:`repro.obs`):

* ``storage.byzantine_rejects`` — responses that failed verification
* ``storage.read_repairs``      — holder copies fixed by the read path
* ``storage.quorum_writes``     — write attempts (acks on the span)
"""

from __future__ import annotations

import contextlib
import random as _random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import (CryptoError, DeadlineExceededError,
                              IntegrityError, LookupError_, OverloadedError,
                              QuorumWriteError, ReplicaIntegrityError,
                              StorageError)
from repro.faults.byzantine import CorruptBlob, Equivocate, StaleServe
from repro.faults.overload import Deadline
from repro.overlay.simulator import SimFuture, gather, quorum_of
from repro.storage2.config import ReplicationConfig
from repro.storage2.record import GENESIS, StoredVersion, seal_version


@dataclass
class ReadResult:
    """Outcome of one verified quorum read.

    ``degraded=True`` marks a :attr:`ReplicationConfig.degraded_reads`
    fallback: the payload is the newest copy that *verified* (signature
    checked — never tampered bytes) but fewer than ``R`` holders
    answered, so the usual freshness guarantee does not apply.

    ``elapsed`` is the read's client-visible latency under the fabric's
    model: the serial sum of every probe with
    :attr:`Simulator.concurrent` unset, the critical path to the R-th
    *verified* response with it set.  Read-repair pushes are background
    traffic and excluded either way.
    """

    payload: bytes
    version: int
    author: str
    holder: str          # who served the winning (newest verified) copy
    verified: int        # responses that passed verification
    rejected: int        # responses that failed verification
    repaired: int        # holder copies fixed by read-repair
    degraded: bool = False
    elapsed: float = 0.0


class ReplicatedStore:
    """Verified quorum reads/writes over a Chord ring's replica sets.

    ``registry``/``signer_of`` wire the store into an existing identity
    world (:class:`DosnNetwork` passes its key registry and a callback to
    its users' signers); standalone uses (benchmarks, tests) omit both
    and the store mints TOY identities on first write, registering their
    public halves itself.
    """

    def __init__(self, ring, config: Optional[ReplicationConfig] = None,
                 registry=None,
                 signer_of: Optional[Callable[[str], object]] = None) -> None:
        # Deferred: repro.dosn.api imports this package, so pulling
        # repro.dosn.identity at module scope would be a cycle.
        from repro.dosn.identity import KeyRegistry
        self.ring = ring
        self.config = config or ReplicationConfig()
        self.fabric = ring.fabric
        self.network = ring.network
        self.sim = self.fabric.sim
        self.metrics = self.network.metrics
        self.registry = registry if registry is not None else KeyRegistry()
        self._signer_of = signer_of
        self._local_identities: Dict[str, object] = {}
        self._rng: Optional[_random.Random] = None
        #: key -> current replica holders (repair may re-place these)
        self.placements: Dict[str, List[str]] = {}
        #: writer-side chain state: latest version number / record hash
        self._versions: Dict[str, int] = {}
        self._prev_hash: Dict[str, bytes] = {}
        #: (holder, key) -> every encoded record the holder ever accepted,
        #: oldest first — the material Byzantine holders replay from
        self._history: Dict[Tuple[str, str], List[bytes]] = {}

    # -- plumbing ---------------------------------------------------------------

    @property
    def rng(self) -> _random.Random:
        """Store-scoped RNG, split lazily so legacy streams never move."""
        if self._rng is None:
            self._rng = self.sim.split_rng("storage2")
        return self._rng

    def _signer(self, author: str):
        from repro.dosn.identity import create_identity
        if self._signer_of is not None:
            return self._signer_of(author)
        identity = self._local_identities.get(author)
        if identity is None:
            identity = create_identity(author, rng=self.rng)
            self._local_identities[author] = identity
            self.registry.register(identity)
        return identity.signer

    def _rpc(self, src: str, dst: str, kind: str,
             deadline: Optional[Deadline] = None) -> Tuple[bool, float]:
        if self.ring.channel is not None:
            return self.ring.channel.call(src, dst, kind=kind,
                                          deadline=deadline)
        return self.network.rpc(src, dst, kind=kind)

    def _rpc_issue(self, src: str, dst: str, kind: str,
                   deadline: Optional[Deadline] = None) -> SimFuture:
        """Issue one store RPC as a future (draws identical to _rpc)."""
        if self.ring.channel is not None:
            return self.ring.channel.call_issue(src, dst, kind=kind,
                                                deadline=deadline)
        return self.network.rpc_issue(src, dst, kind=kind)

    def _mint_deadline(self) -> Optional[Deadline]:
        """A per-operation deadline from the fabric's overload config."""
        overload = getattr(self.fabric, "overload", None)
        if overload is None:
            return None
        return overload.mint_deadline(self.sim.now)

    def _fanout_span(self, name: str, **attrs):
        """A parallel sub-span for a probe fan-out — concurrent mode only.

        Off-mode traces must stay byte-identical to committed tables, so
        the extra span exists only when the simulator accounts critical
        paths (its cost is then settled to the quorum's settle point).
        """
        if self.sim.concurrent:
            return self.network.tracer.span(name, parallel=True, **attrs)
        return contextlib.nullcontext(None)

    def holders_of(self, key: str) -> List[str]:
        """The current replica holders (placement, else the ring's set)."""
        placed = self.placements.get(key)
        if placed is not None:
            return list(placed)
        return self.ring.replica_set(key)[:self.config.n]

    def latest_version(self, key: str) -> int:
        """The writer-side view of the newest version (0 = never written)."""
        return self._versions.get(key, 0)

    def store_at(self, holder: str, key: str, encoded: bytes) -> bool:
        """Accept a record at a holder; returns whether bytes changed.

        Keeps the holder's replay history consistent with its store: a
        key missing from ``node.store`` means a crash wiped the state, so
        the history restarts — a restarted holder cannot replay versions
        it no longer has.
        """
        node = self.ring.nodes.get(holder)
        if node is None:
            return False
        if key not in node.store:
            self._history[(holder, key)] = []
        changed = node.store.get(key) != encoded
        node.store[key] = encoded
        if changed:
            self._history.setdefault((holder, key), []).append(encoded)
        return changed

    def serve(self, holder: str, reader: str, key: str) -> bytes:
        """What ``holder`` answers ``reader`` with — honest or Byzantine.

        Active holder faults (plan order) rewrite the response: stale/
        equivocating holders replay from their accepted-record history,
        corrupting holders garble the bytes.  Deterministic per
        ``(plan seed, holder, key, reader)``.
        """
        node = self.ring.nodes[holder]
        blob = node.store[key]
        if self.network.faults is None:
            return blob
        history = self._history.get((holder, key), [])
        for fault in self.network.faults.holder_faults(holder, self.sim.now):
            if not fault.applies_to(key):
                continue
            if isinstance(fault, (StaleServe, Equivocate)) and history:
                index = fault.pick_version(holder, key, reader, len(history))
                blob = history[index]
            elif isinstance(fault, CorruptBlob) \
                    and fault.garbles(holder, key, reader):
                blob = CorruptBlob.garble(blob)
        return blob

    def _verify(self, key: str, blob: bytes) -> StoredVersion:
        """Decode + authenticate one served response (or raise)."""
        record = StoredVersion.decode(blob)
        if record.key != key:
            raise IntegrityError(
                f"record is for {record.key!r}, not {key!r}")
        verify_key = self.registry.get(record.author).verify_key
        if not record.verify(verify_key):
            raise IntegrityError("record signature does not verify")
        return record

    # -- writes -----------------------------------------------------------------

    def put(self, author: str, key: str, payload: bytes) -> StoredVersion:
        """Seal the next version and store it on the replica set.

        Routes to the owner (accounted lookup), pushes the record to every
        holder, and requires ``W`` acks; fewer raises
        :class:`QuorumWriteError` and leaves the writer's chain state
        unchanged, so a retry re-seals the same version number.
        """
        with self.network.tracer.span("storage2.put", key=key,
                                      author=author) as span:
            holders = self.holders_of(key)
            try:
                coordinator = self.ring.lookup(author, key).owner
            except LookupError_:
                coordinator = author  # routing down: push directly
            version = self._versions.get(key, 0) + 1
            record = seal_version(
                self._signer(author), key, version,
                self._prev_hash.get(key, GENESIS), author, payload,
                rng=self.rng)
            encoded = record.encode()
            acks = 0
            local_acks = 0
            pushes: List[SimFuture] = []
            with self._fanout_span("storage2.put.fanout", key=key,
                                   holders=len(holders)) as fanout:
                for holder in holders:
                    if holder == coordinator:
                        node = self.ring.nodes.get(holder)
                        if node is not None and node.online:
                            self.store_at(holder, key, encoded)
                            acks += 1
                            local_acks += 1
                        continue
                    future = self._rpc_issue(coordinator, holder,
                                             "quorum_store")
                    pushes.append(future)
                    if future.ok:
                        self.store_at(holder, key, encoded)
                        acks += 1
                if fanout is not None:
                    # The writer returns at the W-th ack; pushes past it
                    # (and an already-satisfied local quorum) complete in
                    # the background.
                    need = max(0, self.config.w - local_acks)
                    fanout.settle_cost(quorum_of(need, pushes).elapsed)
            span.set_attr("version", version)
            span.set_attr("acks", acks)
            self.metrics.inc("storage.quorum_writes")
            if acks < self.config.w:
                raise QuorumWriteError(
                    f"write of {key!r} v{version} got {acks} acks, "
                    f"needs W={self.config.w}")
            self._versions[key] = version
            self._prev_hash[key] = record.record_hash()
            self.placements[key] = list(holders)
            return record

    # -- reads ------------------------------------------------------------------

    def get(self, reader: str, key: str) -> ReadResult:
        """Verified quorum read: newest of >= R verified responses wins.

        Every holder is probed (an accounted RPC each; extra probes count
        as hedges like the ring's replica reads); responses failing
        verification are rejected and counted, never returned.  Verified
        holders serving an older version get the winner pushed back
        (read-repair).  Raises :class:`ReplicaIntegrityError` when data
        was served but nothing verified, :class:`StorageError` when the
        quorum is short.

        With an overload config on the fabric the read carries a
        deadline: probes stop being issued once the budget is spent
        (each holder's channel call sees only the remainder), and an
        exhausted budget that costs the quorum raises
        :class:`DeadlineExceededError`.  A quorum missed because holders
        *shed* the probes raises :class:`OverloadedError` — the caller
        learns the replicas are saturated, not gone.
        """
        with self.network.tracer.span("storage2.get", key=key,
                                      reader=reader) as span:
            deadline = self._mint_deadline()
            responses: List[Tuple[str, Optional[StoredVersion]]] = []
            rejected = 0
            probed = 0
            sheds = 0
            spent = 0.0
            deadline_hit = False
            concurrent = self.sim.concurrent
            probes: List[SimFuture] = []
            holders = self.holders_of(key)
            membership = getattr(self.fabric, "membership", None)
            if membership is not None:
                holders = membership.order_by_health(reader, holders)
            adversary = getattr(self.fabric, "adversary", None)
            if adversary is not None and adversary.quarantine is not None:
                # Quarantined holders are probed last: an honest replica
                # set satisfies R before a known liar is ever consulted.
                holders = adversary.quarantine.order_last(holders)
            with self._fanout_span("storage2.get.fanout", key=key) as fanout:
                for holder in holders:
                    node = self.ring.nodes.get(holder)
                    if node is None or key not in node.store:
                        continue  # crashed holders lost key with their state
                    if deadline is not None \
                            and deadline.expired(self.sim.now, spent):
                        self.network.stats.deadline_expired += 1
                        self.metrics.inc("overload.deadline_expired",
                                         kind="quorum_read")
                        deadline_hit = True
                        break  # stop issuing probes nobody will wait for
                    if probed > 0:
                        self.network.stats.hedges += 1
                    probed += 1
                    future = self._rpc_issue(
                        reader, holder, "quorum_read",
                        deadline=None if deadline is None
                        else deadline.minus(spent))
                    probes.append(future)
                    # Deadline accounting matches the latency model: the
                    # serial clock pays probes back to back, the
                    # concurrent clock overlaps them.
                    spent = max(spent, future.latency) if concurrent \
                        else spent + future.latency
                    if future.cause == "overloaded":
                        sheds += 1
                    if not future.ok:
                        continue
                    try:
                        record = self._verify(
                            key, self.serve(holder, reader, key))
                    except (IntegrityError, CryptoError):
                        rejected += 1
                        self.metrics.inc("storage.byzantine_rejects")
                        responses.append((holder, None))
                        # a rejected response cannot count toward R
                        future.ok = False
                        continue
                    responses.append((holder, record))
                # The client returns at the R-th *verified* response; an
                # unmet quorum waits out every probe.
                fanout_result = quorum_of(self.config.r, probes)
                if fanout is not None:
                    fanout.settle_cost(fanout_result.elapsed)
            try:
                return self._settle(reader, key, responses, rejected, span,
                                    elapsed=fanout_result.elapsed)
            except StorageError as exc:
                if deadline_hit:
                    raise DeadlineExceededError(
                        f"quorum read of {key!r} ran out of budget after "
                        f"{probed} probes") from exc
                if sheds:
                    raise OverloadedError(
                        f"quorum for {key!r} not met: {sheds} of {probed} "
                        "probes were shed by overloaded holders") from exc
                raise

    def _settle(self, reader: str, key: str,
                responses: List[Tuple[str, Optional[StoredVersion]]],
                rejected: int, span=None,
                elapsed: float = 0.0) -> ReadResult:
        """Winner selection, degraded fallback and read-repair for one key.

        Shared verbatim between :meth:`get` and :meth:`get_many` so the
        batched path cannot drift from the sequential semantics; only the
        probe plan (how the responses were gathered) differs between the
        two.
        """
        verified = [(h, r) for h, r in responses if r is not None]
        if span is not None:
            span.set_attr("verified", len(verified))
            span.set_attr("rejected", rejected)
        if not verified:
            if rejected:
                raise ReplicaIntegrityError(
                    f"no holder served a valid copy of {key!r} "
                    f"({rejected} responses rejected)")
            raise StorageError(
                f"key {key!r} unavailable: no reachable replica "
                "holds it")
        if len(verified) < self.config.r:
            if self.config.degraded_reads:
                # DegradedRead: the quorum is unreachable but at
                # least one copy verified — serve it flagged rather
                # than failing.  Staleness is possible; tampered
                # bytes are not (only verified responses compete).
                best_holder, best = max(
                    verified,
                    key=lambda pair: (pair[1].version,
                                      pair[1].record_hash()))
                self.metrics.inc("storage.degraded_reads")
                if span is not None:
                    span.set_attr("degraded", True)
                    span.set_attr("version", best.version)
                return ReadResult(
                    payload=best.payload, version=best.version,
                    author=best.author, holder=best_holder,
                    verified=len(verified), rejected=rejected,
                    repaired=0, degraded=True, elapsed=elapsed)
            raise StorageError(
                f"read quorum for {key!r} not met: {len(verified)} "
                f"verified responses, needs R={self.config.r}")
        best_holder, best = max(
            verified,
            key=lambda pair: (pair[1].version, pair[1].record_hash()))
        repaired = 0
        if self.config.read_repair:
            encoded = best.encode()
            for holder, record in responses:
                if record is not None and record.version >= best.version:
                    continue
                ok, _ = self._rpc(reader, holder, "read_repair")
                if ok and self.store_at(holder, key, encoded):
                    repaired += 1
                    self.metrics.inc("storage.read_repairs")
        if span is not None:
            span.set_attr("version", best.version)
            span.set_attr("repaired", repaired)
        return ReadResult(
            payload=best.payload, version=best.version,
            author=best.author, holder=best_holder,
            verified=len(verified), rejected=rejected,
            repaired=repaired, elapsed=elapsed)

    def get_many(self, reader: str, keys) -> Dict[str, object]:
        """Batched verified reads: one probe RPC per holder, not per key.

        The verification, winner-selection, degraded-fallback and
        read-repair semantics per key are exactly :meth:`get`'s (both run
        through :meth:`_settle`); what the batch changes is the wire
        plan — every live holder is probed **once** with a
        ``quorum_read_batch`` RPC covering all the keys it holds, instead
        of once per key.  Returns ``key -> ReadResult | ReproError``:
        failures come back as exception values, so one short quorum
        cannot fail the whole batch.
        """
        results: Dict[str, object] = {}
        ordered: List[str] = []
        for key in keys:
            if key not in results:
                results[key] = None  # placeholder; settled below
                ordered.append(key)
        membership = getattr(self.fabric, "membership", None)
        adversary = getattr(self.fabric, "adversary", None)
        want: Dict[str, List[str]] = {}   # holder -> keys it should serve
        for key in ordered:
            holders = self.holders_of(key)
            if membership is not None:
                holders = membership.order_by_health(reader, holders)
            if adversary is not None and adversary.quarantine is not None:
                holders = adversary.quarantine.order_last(holders)
            for holder in holders:
                node = self.ring.nodes.get(holder)
                if node is None or key not in node.store:
                    continue  # crashed holders lost the key with their state
                want.setdefault(holder, []).append(key)
        with self.network.tracer.span("storage2.get_many", reader=reader,
                                      keys=len(ordered),
                                      holders=len(want)) as span:
            responses: Dict[str, List[Tuple[str, Optional[StoredVersion]]]]
            responses = {key: [] for key in ordered}
            rejected: Dict[str, int] = {key: 0 for key in ordered}
            #: key -> probe futures of the holders covering it; satisfied
            #: means the probe landed AND that key's record verified
            key_probes: Dict[str, List[SimFuture]] = {k: [] for k in ordered}
            key_verified: Dict[str, set] = {k: set() for k in ordered}
            reachable = 0
            deadline = self._mint_deadline()
            spent = 0.0
            deadline_hit = False
            concurrent = self.sim.concurrent
            batch_probes: List[SimFuture] = []
            with self._fanout_span("storage2.get_many.fanout",
                                   holders=len(want)) as fanout:
                for holder, holder_keys in want.items():
                    if deadline is not None \
                            and deadline.expired(self.sim.now, spent):
                        self.network.stats.deadline_expired += 1
                        self.metrics.inc("overload.deadline_expired",
                                         kind="quorum_read_batch")
                        deadline_hit = True
                        break  # unprobed holders' keys settle short
                    future = self._rpc_issue(
                        reader, holder, "quorum_read_batch",
                        deadline=None if deadline is None
                        else deadline.minus(spent))
                    spent = max(spent, future.latency) if concurrent \
                        else spent + future.latency
                    batch_probes.append(future)
                    for key in holder_keys:
                        key_probes[key].append(future)
                    if not future.ok:
                        continue
                    reachable += 1
                    for key in holder_keys:
                        try:
                            record = self._verify(
                                key, self.serve(holder, reader, key))
                        except (IntegrityError, CryptoError):
                            rejected[key] += 1
                            self.metrics.inc("storage.byzantine_rejects")
                            responses[key].append((holder, None))
                            continue
                        responses[key].append((holder, record))
                        key_verified[key].add(future.seq)
                if fanout is not None:
                    # The batch's wire cost: every holder answers once;
                    # the slowest probe bounds the batch.
                    fanout.settle_cost(gather(batch_probes).elapsed)
            span.set_attr("reachable", reachable)
            settled = 0
            for key in ordered:
                # Per-key latency: the R-th holder whose response for
                # *this key* verified (one probe can satisfy many keys).
                verified_seqs = key_verified[key]
                per_key = quorum_of(
                    self.config.r, key_probes[key],
                    predicate=lambda f, s=verified_seqs: f.seq in s)
                try:
                    results[key] = self._settle(reader, key,
                                                responses[key],
                                                rejected[key],
                                                elapsed=per_key.elapsed)
                    settled += 1
                except (StorageError, ReplicaIntegrityError) as exc:
                    if isinstance(exc, StorageError):
                        if deadline_hit:
                            exc = DeadlineExceededError(
                                f"batch read of {key!r} ran out of budget")
                        elif any(f.cause == "overloaded"
                                 for f in key_probes[key]):
                            exc = OverloadedError(
                                f"quorum for {key!r} not met: probes were "
                                "shed by overloaded holders")
                    results[key] = exc
            span.set_attr("served", settled)
        return results

    def read_any(self, reader: str, key: str) -> bytes:
        """The *bare* read path: trust the first holder that answers.

        Returns whatever bytes the holder serves — stale, forked, or
        garbled included.  This is the pre-quorum behaviour kept as E14's
        baseline; nothing in the repo should use it for correctness.
        """
        probed = 0
        for holder in self.holders_of(key):
            node = self.ring.nodes.get(holder)
            if node is None or key not in node.store:
                continue
            if probed > 0:
                self.network.stats.hedges += 1
            probed += 1
            ok, _ = self._rpc(reader, holder, "replica_fetch")
            if ok:
                return self.serve(holder, reader, key)
        raise StorageError(
            f"key {key!r} unavailable: no reachable replica holds it")
