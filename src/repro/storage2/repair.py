"""Anti-entropy: periodic Merkle-summary sync and churn re-placement.

Read-repair only fixes holders a read happens to touch; the daemon closes
the rest of the gap.  On every tick of the simulator clock it

1. groups keys by replica set and has the live holders compare Merkle
   roots over their stored records (one accounted RPC per pair, reusing
   :mod:`repro.crypto.merkle`); mismatching pairs reconcile per key, the
   newest *verified* record winning (``storage.repair_pulls``);
2. re-places replicas whose holders churned away: when fewer than ``n``
   live holders still hold a verified copy, the next online ring
   successors receive the newest record and the placement is updated
   (``storage.re_replications``) — LibreSocial's availability-maintenance
   loop, driven here by virtual time so two runs repair identically.

Data loss is still possible — if every holder of a key is offline at
repair time there is nothing to copy from — which is exactly the
durability edge E14 measures.

**Liveness source.**  By default the daemon polls the churn oracle
(``network.is_online``) — knowledge no deployed repair loop has.  With a
membership service attached to the fabric it switches to the non-oracle
path: holders are presumed alive unless *confirmed dead* by the failure
detector, sync/re-replication copies are **pulled** by the believed-alive
target from the source (so a wrongly-believed-alive source fails the RPC
honestly instead of teleporting data), and cluster-first death
confirmations trigger an immediate targeted re-replication of the dead
holder's keys instead of waiting for the next tick
(``storage.confirm_triggered_repairs``).  The one piece of local
knowledge retained is each node's *own* ``online`` flag — a repair task
simply does not run on a machine that is down.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import digest, digest_many
from repro.crypto.merkle import MerkleTree
from repro.exceptions import CryptoError, IntegrityError, SimulationError
from repro.storage2.quorum import ReplicatedStore
from repro.storage2.record import StoredVersion


class AntiEntropyDaemon:
    """Periodic repair over a :class:`ReplicatedStore`'s placements."""

    def __init__(self, store: ReplicatedStore, interval: float,
                 membership=None) -> None:
        if interval <= 0:
            raise SimulationError("repair interval must be positive")
        self.store = store
        self.interval = interval
        self.rounds = 0
        self._started = False
        #: the failure detector replacing the churn oracle (see module
        #: docstring); auto-discovered from the fabric when attached
        self.membership = membership if membership is not None \
            else getattr(store.fabric, "membership", None)
        if self.membership is not None:
            self.membership.on_confirm(self._on_confirmed_death)

    # -- liveness (oracle vs. detector) -------------------------------------------

    def _believes_alive(self, peer: str) -> bool:
        """Whether repair should count on ``peer`` right now."""
        if self.membership is None:
            return self.store.network.is_online(peer)  # the legacy oracle
        return not self.membership.confirmed_dead(peer)

    def _can_initiate(self, peer: str) -> bool:
        """Whether a repair task can *run at* ``peer`` (self-knowledge)."""
        node = self.store.ring.nodes.get(peer)
        return node is not None and node.online

    def _span(self, name: str, parallel: bool = False, **attrs):
        """A latency-attribution span, opened only in concurrent mode.

        The daemon's root checks (per peer) and reconciliation pulls
        (per key) are independent, so a real deployment overlaps them;
        spans are conditional so the serial mode's traces stay
        byte-identical to committed tables.
        """
        if self.store.sim.concurrent:
            return self.store.network.tracer.span(name, parallel=parallel,
                                                  **attrs)
        return contextlib.nullcontext(None)

    def start(self) -> None:
        """Schedule the recurring repair tick on the simulator clock."""
        if self._started:
            return
        self._started = True
        self.store.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self.run_round()
        self.store.sim.schedule(self.interval, self._tick)

    # -- one repair round --------------------------------------------------------

    def run_round(self) -> None:
        """Sync all replica groups, then re-place under-replicated keys."""
        store = self.store
        self.rounds += 1
        store.metrics.inc("storage.repair_rounds")
        with store.network.tracer.span("storage2.repair",
                                       round=self.rounds):
            groups: Dict[Tuple[str, ...], List[str]] = {}
            for key in sorted(store.placements):
                groups.setdefault(tuple(store.placements[key]),
                                  []).append(key)
            for holders, keys in sorted(groups.items()):
                live = [h for h in holders if self._believes_alive(h)]
                if len(live) < 2:
                    continue  # nobody to compare notes with
                coordinator = live[0]
                if self.membership is not None:
                    # Beliefs pick the group; only a node that is really
                    # up can run the comparison task (self-knowledge).
                    initiators = [h for h in live if self._can_initiate(h)]
                    if not initiators:
                        continue
                    coordinator = initiators[0]
                local_root = self._summary_root(coordinator, keys)
                with self._span("storage2.repair.group", parallel=True,
                                keys=len(keys)):
                    for peer in live[1:]:
                        # One peer's chain (root check, then its pulls)
                        # is serial; the chains across peers overlap.
                        with self._span("storage2.repair.peer", peer=peer):
                            ok, _ = store._rpc(coordinator, peer,
                                               "antientropy_root")
                            if not ok:
                                continue
                            if self._summary_root(peer, keys) == local_root:
                                continue
                            self._sync_pair(coordinator, peer, keys)
            # Re-placement is inherently sequential: each key's pushes
            # update the placement the next decision reads.
            for key in sorted(store.placements):
                self._re_replicate(key)

    def _stored(self, holder: str, key: str) -> Optional[bytes]:
        node = self.store.ring.nodes.get(holder)
        if node is None:
            return None
        return node.store.get(key)

    def _summary_root(self, holder: str, keys: List[str]) -> bytes:
        """Merkle root over the holder's records for a key group."""
        tree = MerkleTree()
        for key in keys:
            blob = self._stored(holder, key)
            tree.append(digest_many(
                [key.encode(), digest(blob) if blob is not None else b""]))
        return tree.root()

    def _best_record(self, holders: List[str], key: str
                     ) -> Optional[Tuple[str, StoredVersion]]:
        """The newest *verified* copy among the given holders."""
        best: Optional[Tuple[str, StoredVersion]] = None
        for holder in holders:
            blob = self._stored(holder, key)
            if blob is None:
                continue
            try:
                record = self.store._verify(key, blob)
            except (IntegrityError, CryptoError):
                continue  # a poisoned at-rest copy never propagates
            if best is None or (record.version, record.record_hash()) \
                    > (best[1].version, best[1].record_hash()):
                best = (holder, record)
        return best

    def _sync_pair(self, a: str, b: str, keys: List[str]) -> None:
        """Reconcile two live holders whose summaries disagree.

        Per-key pulls are independent (each moves one record between the
        same two holders), so they overlap under the concurrent model.
        """
        with self._span("storage2.repair.pulls", parallel=True,
                        keys=len(keys)):
            self._sync_pair_keys(a, b, keys)

    def _sync_pair_keys(self, a: str, b: str, keys: List[str]) -> None:
        store = self.store
        for key in keys:
            blob_a = self._stored(a, key)
            blob_b = self._stored(b, key)
            if blob_a == blob_b:
                continue
            best = self._best_record([a, b], key)
            if best is None:
                continue
            source, record = best
            encoded = record.encode()
            for target in (a, b):
                if target == source \
                        or self._stored(target, key) == encoded:
                    continue
                if self.membership is not None:
                    # Non-oracle path: the target *pulls*, so a source
                    # that is believed alive but actually gone fails the
                    # RPC instead of teleporting data.
                    if not self._can_initiate(target):
                        continue
                    ok, _ = store._rpc(target, source, "antientropy_pull")
                else:
                    ok, _ = store._rpc(source, target, "antientropy_pull")
                if ok and store.store_at(target, key, encoded):
                    store.metrics.inc("storage.repair_pulls")

    def _re_replicate(self, key: str) -> None:
        """Restore ``n`` live verified holders after churn departures."""
        store = self.store
        target = store.config.n
        placed = store.placements[key]
        live = [h for h in placed
                if self._believes_alive(h)
                and self._stored(h, key) is not None]
        if len(live) >= target:
            return
        best = self._best_record(live, key)
        if best is None:
            return  # every live copy is gone or invalid: nothing to clone
        source, record = best
        encoded = record.encode()
        new_placement = list(live)
        for candidate in self._candidates(key):
            if len(new_placement) >= target:
                break
            if candidate in placed or candidate in new_placement:
                continue
            if self.membership is not None:
                # Pull semantics (see module docstring): the candidate
                # fetches from the believed-best source, so a dead source
                # fails honestly.
                if not self._can_initiate(candidate):
                    continue
                ok, _ = store._rpc(candidate, source, "re_replicate")
            else:
                ok, _ = store._rpc(source, candidate, "re_replicate")
            if ok and store.store_at(candidate, key, encoded):
                new_placement.append(candidate)
                store.metrics.inc("storage.re_replications")
        # Offline ex-holders drop out of the placement (their copies
        # linger as exposure, but reads and repair stop counting on them).
        if len(new_placement) > len(live):
            store.placements[key] = new_placement

    def _candidates(self, key: str) -> List[str]:
        """Online peers in ring order starting after the key's owner."""
        from repro.overlay.chord import chord_id
        ring = self.store.ring
        ordered = sorted(ring.nodes.values(), key=lambda n: n.chord_id)
        ids = [node.chord_id for node in ordered]
        start = ring._successor_index(ids, chord_id(key))
        rotated = ordered[start:] + ordered[:start]
        return [node.node_id for node in rotated
                if self._believes_alive(node.node_id)]

    # -- confirm-triggered repair (non-oracle path only) ---------------------------

    def _on_confirmed_death(self, peer: str, now: float) -> None:
        """Membership confirmed ``peer`` dead: repair its keys right away."""
        keys = sorted(k for k, holders in self.store.placements.items()
                      if peer in holders)
        if not keys:
            return
        self.store.metrics.inc("storage.confirm_triggered_repairs")
        self.store.sim.schedule(
            0.0, lambda: self._repair_keys(peer, keys))

    def _repair_keys(self, peer: str, keys: List[str]) -> None:
        store = self.store
        with store.network.tracer.span("storage2.confirm_repair",
                                       peer=peer, keys=len(keys)):
            for key in keys:
                if key in store.placements:
                    self._re_replicate(key)
