"""Anti-entropy: periodic Merkle-summary sync and churn re-placement.

Read-repair only fixes holders a read happens to touch; the daemon closes
the rest of the gap.  On every tick of the simulator clock it

1. groups keys by replica set and has the live holders compare Merkle
   roots over their stored records (one accounted RPC per pair, reusing
   :mod:`repro.crypto.merkle`); mismatching pairs reconcile per key, the
   newest *verified* record winning (``storage.repair_pulls``);
2. re-places replicas whose holders churned away: when fewer than ``n``
   live holders still hold a verified copy, the next online ring
   successors receive the newest record and the placement is updated
   (``storage.re_replications``) — LibreSocial's availability-maintenance
   loop, driven here by virtual time so two runs repair identically.

Data loss is still possible — if every holder of a key is offline at
repair time there is nothing to copy from — which is exactly the
durability edge E14 measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import digest, digest_many
from repro.crypto.merkle import MerkleTree
from repro.exceptions import CryptoError, IntegrityError, SimulationError
from repro.storage2.quorum import ReplicatedStore
from repro.storage2.record import StoredVersion


class AntiEntropyDaemon:
    """Periodic repair over a :class:`ReplicatedStore`'s placements."""

    def __init__(self, store: ReplicatedStore, interval: float) -> None:
        if interval <= 0:
            raise SimulationError("repair interval must be positive")
        self.store = store
        self.interval = interval
        self.rounds = 0
        self._started = False

    def start(self) -> None:
        """Schedule the recurring repair tick on the simulator clock."""
        if self._started:
            return
        self._started = True
        self.store.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self.run_round()
        self.store.sim.schedule(self.interval, self._tick)

    # -- one repair round --------------------------------------------------------

    def run_round(self) -> None:
        """Sync all replica groups, then re-place under-replicated keys."""
        store = self.store
        self.rounds += 1
        store.metrics.inc("storage.repair_rounds")
        with store.network.tracer.span("storage2.repair",
                                       round=self.rounds):
            groups: Dict[Tuple[str, ...], List[str]] = {}
            for key in sorted(store.placements):
                groups.setdefault(tuple(store.placements[key]),
                                  []).append(key)
            for holders, keys in sorted(groups.items()):
                live = [h for h in holders
                        if store.network.is_online(h)]
                if len(live) < 2:
                    continue  # nobody to compare notes with
                coordinator = live[0]
                local_root = self._summary_root(coordinator, keys)
                for peer in live[1:]:
                    ok, _ = store._rpc(coordinator, peer,
                                       "antientropy_root")
                    if not ok:
                        continue
                    if self._summary_root(peer, keys) == local_root:
                        continue
                    self._sync_pair(coordinator, peer, keys)
            for key in sorted(store.placements):
                self._re_replicate(key)

    def _stored(self, holder: str, key: str) -> Optional[bytes]:
        node = self.store.ring.nodes.get(holder)
        if node is None:
            return None
        return node.store.get(key)

    def _summary_root(self, holder: str, keys: List[str]) -> bytes:
        """Merkle root over the holder's records for a key group."""
        tree = MerkleTree()
        for key in keys:
            blob = self._stored(holder, key)
            tree.append(digest_many(
                [key.encode(), digest(blob) if blob is not None else b""]))
        return tree.root()

    def _best_record(self, holders: List[str], key: str
                     ) -> Optional[Tuple[str, StoredVersion]]:
        """The newest *verified* copy among the given holders."""
        best: Optional[Tuple[str, StoredVersion]] = None
        for holder in holders:
            blob = self._stored(holder, key)
            if blob is None:
                continue
            try:
                record = self.store._verify(key, blob)
            except (IntegrityError, CryptoError):
                continue  # a poisoned at-rest copy never propagates
            if best is None or (record.version, record.record_hash()) \
                    > (best[1].version, best[1].record_hash()):
                best = (holder, record)
        return best

    def _sync_pair(self, a: str, b: str, keys: List[str]) -> None:
        """Reconcile two live holders whose summaries disagree."""
        store = self.store
        for key in keys:
            blob_a = self._stored(a, key)
            blob_b = self._stored(b, key)
            if blob_a == blob_b:
                continue
            best = self._best_record([a, b], key)
            if best is None:
                continue
            source, record = best
            encoded = record.encode()
            for target in (a, b):
                if target == source \
                        or self._stored(target, key) == encoded:
                    continue
                ok, _ = store._rpc(source, target, "antientropy_pull")
                if ok and store.store_at(target, key, encoded):
                    store.metrics.inc("storage.repair_pulls")

    def _re_replicate(self, key: str) -> None:
        """Restore ``n`` live verified holders after churn departures."""
        store = self.store
        target = store.config.n
        placed = store.placements[key]
        live = [h for h in placed
                if store.network.is_online(h)
                and self._stored(h, key) is not None]
        if len(live) >= target:
            return
        best = self._best_record(live, key)
        if best is None:
            return  # every live copy is gone or invalid: nothing to clone
        source, record = best
        encoded = record.encode()
        new_placement = list(live)
        for candidate in self._candidates(key):
            if len(new_placement) >= target:
                break
            if candidate in placed or candidate in new_placement:
                continue
            ok, _ = store._rpc(source, candidate, "re_replicate")
            if ok and store.store_at(candidate, key, encoded):
                new_placement.append(candidate)
                store.metrics.inc("storage.re_replications")
        # Offline ex-holders drop out of the placement (their copies
        # linger as exposure, but reads and repair stop counting on them).
        if len(new_placement) > len(live):
            store.placements[key] = new_placement

    def _candidates(self, key: str) -> List[str]:
        """Online peers in ring order starting after the key's owner."""
        from repro.overlay.chord import chord_id
        ring = self.store.ring
        ordered = sorted(ring.nodes.values(), key=lambda n: n.chord_id)
        ids = [node.chord_id for node in ordered]
        start = ring._successor_index(ids, chord_id(key))
        rotated = ordered[start:] + ordered[:start]
        return [node.node_id for node in rotated
                if self.store.network.is_online(node.node_id)]
