"""Fault injection and resilience for the overlay fabric.

Section I of the paper frames decentralization as trading the provider's
reliability for peer unreliability ("users, their friends, or other peers
need to be online for better availability").  This package makes that
trade-off measurable instead of assumed:

* :mod:`repro.faults.plan` — a :class:`FaultPlan` of injectable faults
  (correlated loss bursts, partitions, slow links, crash/restart with
  state loss, message corruption), deterministic from the simulator seed
  and scriptable over virtual time;
* :mod:`repro.faults.resilience` — :class:`ReliableChannel`, the
  timeout/retry/backoff/circuit-breaker/hedging wrapper the DHT lookups
  and storage fetches route through to survive the injected faults;
* :mod:`repro.faults.byzantine` — holder-level Byzantine faults
  (:class:`StaleServe`, :class:`Equivocate`, :class:`CorruptBlob`):
  replica peers that serve stale, forked, or garbled data, the adversary
  the quorum-read store (:mod:`repro.storage2`) is built to defeat;
* :mod:`repro.faults.overload` — the overload-protection stack
  (:class:`ServiceConfig` per-peer service queues with load shedding,
  :class:`Deadline` propagation, :class:`RetryBudget` token buckets,
  :class:`AdaptiveTimeout` EWMA attempt timeouts), threaded through the
  fabric by :class:`OverloadConfig` and exercised by experiment E18.

Experiment E12 (``benchmarks/bench_fault_tolerance.py``) sweeps fault
intensity against resilience policy; E14
(``benchmarks/bench_durability.py``) adds the Byzantine holder sweep.
"""

from repro.faults.byzantine import (CorruptBlob, Equivocate, HolderFault,
                                    StaleServe)
from repro.faults.overload import (AdaptiveTimeout, AdaptiveTimeoutConfig,
                                   Deadline, OverloadConfig, RetryBudget,
                                   RetryBudgetConfig, ServiceConfig)
from repro.faults.plan import (Corruption, Crash, FaultPlan, LossBurst,
                               Partition, SlowLink)
from repro.faults.resilience import (BREAKER_STATE_VALUES, CircuitBreaker,
                                     ReliableChannel, RetryPolicy)

__all__ = [
    "AdaptiveTimeout", "AdaptiveTimeoutConfig", "BREAKER_STATE_VALUES",
    "CircuitBreaker", "CorruptBlob", "Corruption", "Crash", "Deadline",
    "Equivocate", "FaultPlan", "HolderFault", "LossBurst", "OverloadConfig",
    "Partition", "ReliableChannel", "RetryBudget", "RetryBudgetConfig",
    "RetryPolicy", "ServiceConfig", "SlowLink", "StaleServe",
]
