"""Overload protection: service queues, deadlines, retry budgets.

The fair-weather simulator prices only wire latency: a peer absorbs any
number of concurrent RPCs for free, so a hotspot can never *collapse* —
exactly the failure mode real DOSNs die of (replica reads multiply load
on data holders; retry storms keep a recovering peer saturated long
after the original spike has passed).  This module supplies the four
mechanisms that make overload survivable, and the configuration surface
that threads them through the stack:

* :class:`ServiceConfig` — every peer gets a service time and a bounded
  FIFO queue; :meth:`repro.overlay.network.SimNetwork.rpc_issue` charges
  queueing delay on top of wire latency, and a full queue *sheds* the
  request with a typed ``overloaded`` fast-failure (an
  :class:`~repro.exceptions.OverloadedError` at the storage layer).  A
  shed costs one round trip; a timeout costs the full attempt timeout —
  that price gap is what makes load shedding pay.
* :class:`Deadline` — a propagated time budget.  Multi-hop lookups and
  quorum reads subtract elapsed virtual time hop by hop and fail fast
  (:class:`~repro.exceptions.DeadlineExceededError`) instead of issuing
  RPCs whose answers nobody will wait for.
* :class:`RetryBudget` — a token bucket shared per channel.  Retries
  draw tokens; successes refill them; an empty bucket turns a cluster's
  retry storm into single attempts until the system is healthy enough
  to earn the tokens back.
* :class:`AdaptiveTimeout` — per-destination EWMA of observed RTTs with
  a floor and ceiling, replacing the fixed ``4*RTT`` timeout constant,
  so a doomed attempt is abandoned after roughly what a healthy answer
  would have taken.

All of it is strictly opt-in: with :class:`OverloadConfig` unset
(``overload=None`` on :class:`repro.fabric.Fabric` /
:class:`repro.dosn.api.DosnConfig`), no service state exists, no code
path changes, and no RNG draw moves — committed experiment tables
regenerate byte-identically.  Experiment E18
(``benchmarks/bench_overload.py``) drives a hotspot spike that collapses
the unprotected stack metastably and shows this stack restoring goodput
once the spike ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import SimulationError

__all__ = ["AdaptiveTimeout", "AdaptiveTimeoutConfig", "Deadline",
           "OverloadConfig", "RetryBudget", "RetryBudgetConfig",
           "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """One peer's service model: processing rate plus a bounded queue.

    ``service_time`` is the virtual seconds one RPC occupies the peer;
    requests arriving while it is busy queue FIFO behind the backlog.
    ``queue_limit`` bounds the backlog (``None`` = unbounded, the
    collapse-prone baseline E18 measures).  ``shed_policy`` picks what a
    full queue does with the overflow:

    * ``"reject"`` — an immediate typed rejection rides back to the
      caller (cost: one round trip, no service time billed);
    * ``"drop"`` — the request is silently discarded and the caller
      waits out its attempt timeout (what an unprotected peer does).

    ``timeout`` is the fixed per-attempt client timeout that applies
    once a service model exists (a queued response slower than this
    reads as a timeout; the server still pays the wasted service time —
    the ingredient of metastable collapse).  An
    :class:`AdaptiveTimeoutConfig` replaces it with an RTT-tracking
    estimate.
    """

    service_time: float = 0.02
    queue_limit: Optional[int] = 16
    shed_policy: str = "reject"
    timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise SimulationError("service_time must be positive")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise SimulationError("queue_limit must be None or >= 1")
        if self.shed_policy not in ("reject", "drop"):
            raise SimulationError(
                f"shed_policy must be 'reject' or 'drop' "
                f"(got {self.shed_policy!r})")
        if self.timeout <= 0:
            raise SimulationError("timeout must be positive")


@dataclass(frozen=True)
class AdaptiveTimeoutConfig:
    """EWMA attempt-timeout parameters (see :class:`AdaptiveTimeout`)."""

    alpha: float = 0.2
    multiplier: float = 3.0
    floor: float = 0.25
    ceiling: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise SimulationError("alpha must be in (0, 1]")
        if self.multiplier < 1.0:
            raise SimulationError("multiplier must be >= 1")
        if not 0.0 < self.floor <= self.ceiling:
            raise SimulationError("need 0 < floor <= ceiling")


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Token-bucket sizing for a channel's :class:`RetryBudget`."""

    capacity: float = 20.0
    refill_per_success: float = 0.2

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError("retry budget capacity must be positive")
        if self.refill_per_success < 0:
            raise SimulationError("refill_per_success must be >= 0")


@dataclass(frozen=True)
class OverloadConfig:
    """The overload-protection stack, as one opt-in configuration knob.

    Every field is independently optional so experiments can ablate:
    ``service`` installs the per-peer queue model on the network,
    ``op_budget`` (virtual seconds) mints a :class:`Deadline` per
    logical operation (lookup, quorum read) — ``None`` disables deadline
    propagation — ``retry_budget`` caps channel-wide retry
    amplification, and ``adaptive_timeout`` replaces the fixed attempt
    timeout with the EWMA estimator.

    ``OverloadConfig(service=ServiceConfig(queue_limit=None),
    op_budget=None, retry_budget=None, adaptive_timeout=None)`` is the
    *bare* service model: queueing is priced but nothing protects
    against it — the configuration E18 collapses.
    """

    service: Optional[ServiceConfig] = field(default_factory=ServiceConfig)
    op_budget: Optional[float] = 2.0
    retry_budget: Optional[RetryBudgetConfig] = field(
        default_factory=RetryBudgetConfig)
    adaptive_timeout: Optional[AdaptiveTimeoutConfig] = field(
        default_factory=AdaptiveTimeoutConfig)

    def __post_init__(self) -> None:
        if self.op_budget is not None and self.op_budget <= 0:
            raise SimulationError("op_budget must be None or positive")

    def mint_deadline(self, now: float) -> Optional["Deadline"]:
        """A fresh per-operation deadline (``None`` when disabled)."""
        if self.op_budget is None:
            return None
        return Deadline(now + self.op_budget)


class Deadline:
    """An absolute virtual-time budget propagated through an operation.

    The accounted-RPC shortcut keeps the clock frozen during a logical
    operation, so layers carry their *spent* time explicitly: a lookup
    that has accrued ``spent`` seconds of RTT checks
    ``deadline.remaining(now) <= spent`` before paying for the next hop,
    and hands the callee ``deadline.minus(spent)`` so the sub-call sees
    only what is left.  Expired deadlines fail fast — the doomed RPC is
    never issued, which is the whole point.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, now: float, budget: float) -> "Deadline":
        """A deadline ``budget`` virtual seconds from ``now``."""
        return cls(now + budget)

    def remaining(self, now: float) -> float:
        """Budget left at virtual time ``now`` (negative = expired)."""
        return self.expires_at - now

    def expired(self, now: float, spent: float = 0.0) -> bool:
        """Whether ``spent`` seconds of work exhaust the budget."""
        return self.remaining(now) <= spent

    def minus(self, spent: float) -> "Deadline":
        """The deadline as seen after ``spent`` seconds of frozen-clock
        work (hop N+1's view of hop N's budget)."""
        return Deadline(self.expires_at - spent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(expires_at={self.expires_at:.4f})"


class RetryBudget:
    """A token bucket capping cluster-wide retry amplification.

    Shared per :class:`~repro.faults.ReliableChannel` (i.e. per fabric):
    every retry anywhere draws one token, every successful call refills
    ``refill_per_success`` up to ``capacity``.  Under a load spike the
    bucket drains and calls degrade to single attempts — the retry storm
    stops feeding the overload — and recovery refills it organically,
    because refills only come from successes.
    """

    __slots__ = ("capacity", "refill_per_success", "tokens", "exhausted")

    def __init__(self, config: Optional[RetryBudgetConfig] = None) -> None:
        config = config or RetryBudgetConfig()
        self.capacity = config.capacity
        self.refill_per_success = config.refill_per_success
        self.tokens = config.capacity
        #: times a retry was denied for want of a token
        self.exhausted = 0

    def try_spend(self, cost: float = 1.0) -> bool:
        """Draw ``cost`` tokens for a retry; False when the bucket is dry."""
        if self.tokens < cost:
            self.exhausted += 1
            return False
        self.tokens -= cost
        return True

    def on_success(self) -> None:
        """A call succeeded: earn back part of a token."""
        self.tokens = min(self.capacity,
                          self.tokens + self.refill_per_success)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryBudget(tokens={self.tokens:.2f}/"
                f"{self.capacity:.0f}, exhausted={self.exhausted})")


class AdaptiveTimeout:
    """Per-destination EWMA attempt timeouts with a floor and ceiling.

    Each observed successful RTT updates the destination's EWMA; an
    attempt timeout is ``clamp(multiplier * ewma, floor, ceiling)``.
    Destinations never observed fall back to the caller-supplied
    default (the fixed :attr:`ServiceConfig.timeout`, or the legacy
    ``4*RTT`` when no service model exists), so the estimator can only
    sharpen the constant, never invent one from nothing.
    """

    __slots__ = ("config", "_ewma")

    def __init__(self, config: Optional[AdaptiveTimeoutConfig] = None
                 ) -> None:
        self.config = config or AdaptiveTimeoutConfig()
        self._ewma: Dict[str, float] = {}

    def observe(self, dst: str, rtt: float) -> None:
        """Feed one successful round trip to ``dst`` into the estimate."""
        previous = self._ewma.get(dst)
        if previous is None:
            self._ewma[dst] = rtt
        else:
            alpha = self.config.alpha
            self._ewma[dst] = (1.0 - alpha) * previous + alpha * rtt

    def timeout_for(self, dst: str) -> Optional[float]:
        """The attempt timeout for ``dst`` (``None`` before any sample)."""
        ewma = self._ewma.get(dst)
        if ewma is None:
            return None
        cfg = self.config
        return min(cfg.ceiling, max(cfg.floor, cfg.multiplier * ewma))
