"""Byzantine *replica holder* faults: peers that lie about stored data.

The paper's core security observation — "the replica nodes are indeed
another kind of service provider in a small scale and with a local view"
— cuts both ways: a replica holder is not just an observer but a serving
party, and a malicious or broken one can serve garbage.  The PR-1 fault
primitives (:mod:`repro.faults.plan`) attack the *links*; these attack
the *holders*:

================  ============================================================
:class:`StaleServe`   the holder pins to the oldest version it ever stored
                      and serves that forever (a frozen or rolled-back disk)
:class:`Equivocate`   the holder serves *different* historical versions to
                      different readers (the small-provider equivocation
                      attack, per-reader deterministic)
:class:`CorruptBlob`  the holder garbles the served bytes with probability
                      ``rate`` (bit rot, truncation, deliberate tampering)
================  ============================================================

All three are pure functions of ``(plan seed, holder, key, reader)`` —
same seed, same lies — matching the determinism contract of the link
faults.  They cannot forge *valid* records: versions are sealed with the
writer's signature (:mod:`repro.storage2.record`), so a Byzantine holder
is limited to replaying old versions or serving invalid bytes, exactly
the adversary model quorum reads with per-response verification defeat.

The faults are injected into a :class:`~repro.faults.plan.FaultPlan` like
any other primitive; the storage layer consults
:meth:`FaultPlan.holder_faults` at serve time.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence

from repro.exceptions import SimulationError


def _holder_draw(seed: int, index: int, label: str, holder: str, key: str,
                 reader: str) -> float:
    """A deterministic uniform draw in [0, 1) for one (holder, key, reader)."""
    digest = hashlib.sha256(
        f"repro/faults/byz/{seed}/{index}/{label}/{holder}/{key}/{reader}"
        .encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class HolderFault:
    """Base class: a misbehaviour of named replica holders over a window.

    ``keys`` optionally scopes the lie to specific stored objects — a
    targeted attack on one object's replica set.  Replica placements
    overlap (ring successors hold many adjacent keys), so an unscoped
    fault makes the holder lie about *everything* it serves; scoped
    faults keep an injected "1 Byzantine holder per key" experiment
    design from silently compounding across co-located keys.
    """

    holders: FrozenSet[str] = frozenset()
    start: float = 0.0
    end: float = math.inf
    keys: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if not self.holders:
            raise SimulationError(
                "a holder fault needs at least one named holder")
        self.holders = frozenset(self.holders)
        if self.keys is not None:
            self.keys = frozenset(self.keys)
        self._seed = 0
        self._index = 0

    def bind(self, seed: int, index: int, horizon: float) -> None:
        """Capture the plan seed so per-serve draws are deterministic."""
        self._seed = seed
        self._index = index

    def active(self, holder: str, t: float) -> bool:
        """Whether this fault drives ``holder``'s behaviour at time ``t``."""
        return holder in self.holders and self.start <= t < self.end

    def applies_to(self, key: str) -> bool:
        """Whether the lie covers ``key`` (unscoped faults cover all)."""
        return self.keys is None or key in self.keys


@dataclass
class StaleServe(HolderFault):
    """The holder serves the *oldest* version it ever stored for a key.

    Updates land (the holder acks writes, keeping its lie invisible to the
    write quorum) but reads are answered from the first version — the
    rolled-back-disk / frozen-cache failure mode.  The served record is a
    genuinely signed old version, so only version comparison across a
    read quorum exposes it.
    """

    def pick_version(self, holder: str, key: str, reader: str,
                     history_len: int) -> int:
        """Index into the holder's version history to serve (the oldest)."""
        return 0


@dataclass
class Equivocate(HolderFault):
    """The holder shows different readers different historical versions.

    The per-reader choice is a deterministic draw over the holder's full
    version history, so two readers comparing notes (or one read quorum)
    see conflicting-but-individually-valid answers — the equivocation
    attack fork-consistency machinery exists for, here at replica scale.
    """

    def pick_version(self, holder: str, key: str, reader: str,
                     history_len: int) -> int:
        """Reader-dependent index into the holder's version history."""
        if history_len <= 1:
            return 0
        u = _holder_draw(self._seed, self._index, "equivocate", holder, key,
                         reader)
        return int(u * history_len) % history_len


@dataclass
class CorruptBlob(HolderFault):
    """The holder garbles served bytes with probability ``rate``.

    Corruption happens at the *holder* (disk/bug/malice), not on the link
    — :class:`repro.faults.plan.Corruption` already covers the wire.  The
    draw is per ``(holder, key, reader)``, so a given reader repeatably
    gets a bad copy from a given holder while another reader may not.
    """

    rate: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError("corruption rate must be in [0, 1]")

    def garbles(self, holder: str, key: str, reader: str) -> bool:
        """Whether this serve is corrupted (deterministic from the seed)."""
        return _holder_draw(self._seed, self._index, "corrupt", holder, key,
                            reader) < self.rate

    @staticmethod
    def garble(blob: bytes) -> bytes:
        """Deterministically damage a blob (xor a byte, drop the tail)."""
        if not blob:
            return b"\xff"
        cut = max(1, len(blob) - len(blob) // 8)
        damaged = bytearray(blob[:cut])
        damaged[len(damaged) // 2] ^= 0xFF
        return bytes(damaged)


def active_holder_faults(faults: Iterable[object], holder: str,
                         t: float) -> Sequence[HolderFault]:
    """The holder faults driving ``holder`` at ``t``, in plan order."""
    return [f for f in faults
            if isinstance(f, HolderFault) and f.active(holder, t)]
