"""Scriptable, deterministic fault injection for :class:`SimNetwork`.

A :class:`FaultPlan` is a composition of fault primitives, each active over
a window of virtual time.  The network consults the plan on every message
and RPC; crash faults are turned into simulator events when the plan is
installed.  Everything is a pure function of ``(simulator seed, plan
contents, virtual time)``: burst schedules are derived from a seed the
plan receives at bind time, the same way the churn models derive session
schedules — so two runs with the same seed inject byte-identical faults.

Fault primitives:

================  ============================================================
:class:`LossBurst`   correlated loss — on/off bursts of elevated drop rate
                     (a Gilbert-style two-state channel, scheduled not drawn)
:class:`Partition`   peer groups that cannot exchange messages for a window
:class:`SlowLink`    latency multiplier on links touching a peer set
:class:`Crash`       peer failure at an instant, optional restart, with
                     state loss (replication has to recover the data)
:class:`Corruption`  delivered-but-garbled messages, for integrity stress
================  ============================================================
"""

from __future__ import annotations

import hashlib
import math
import random as _random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import SimulationError


def _fault_rng(seed: int, label: str) -> _random.Random:
    digest = hashlib.sha256(f"repro/faults/{seed}/{label}".encode()).digest()
    return _random.Random(int.from_bytes(digest[:8], "big"))


def _as_peerset(peers) -> Optional[FrozenSet[str]]:
    return None if peers is None else frozenset(peers)


@dataclass
class LossBurst:
    """Bursts of elevated loss on top of the network's base loss rate.

    Burst/gap lengths are exponential with the given means; the burst
    schedule is materialized once from the plan seed (like the churn
    session schedules), so whether time ``t`` is inside a burst is a pure
    function of the seed.  ``peers`` restricts the fault to links touching
    that set; ``None`` means the whole fabric (correlated loss — every
    link degrades together, the case i.i.d. loss cannot model).
    """

    rate: float = 0.2
    mean_burst: float = 30.0
    mean_gap: float = 90.0
    start: float = 0.0
    end: float = math.inf
    peers: Optional[FrozenSet[str]] = None
    _starts: List[float] = field(default_factory=list, repr=False)
    _ends: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError("burst loss rate must be in [0, 1]")
        self.peers = _as_peerset(self.peers)

    def bind(self, seed: int, index: int, horizon: float) -> None:
        rng = _fault_rng(seed, f"burst/{index}")
        self._starts, self._ends = [], []
        t = self.start + rng.expovariate(1.0 / self.mean_gap)
        limit = min(self.end, horizon)
        while t < limit:
            burst = rng.expovariate(1.0 / self.mean_burst)
            self._starts.append(t)
            self._ends.append(min(t + burst, limit))
            t += burst + rng.expovariate(1.0 / self.mean_gap)

    def _touches(self, src: str, dst: str) -> bool:
        return self.peers is None or src in self.peers or dst in self.peers

    def loss_rate(self, src: str, dst: str, t: float) -> float:
        if not self._touches(src, dst):
            return 0.0
        i = bisect_right(self._starts, t) - 1
        if i >= 0 and t < self._ends[i]:
            return self.rate
        return 0.0

    def bursts(self) -> List[Tuple[float, float]]:
        """The materialized burst windows (for tests and reports)."""
        return list(zip(self._starts, self._ends))


@dataclass
class Partition:
    """Cross-group links are dead during ``[start, end)``.

    ``groups`` lists disjoint peer sets; peers in different groups cannot
    exchange traffic while the partition holds.  Peers in no listed group
    form an implicit remainder group, so ``groups=[{"a", "b"}]`` isolates
    ``a`` and ``b`` from everyone else.
    """

    groups: Sequence[FrozenSet[str]] = ()
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        self.groups = tuple(frozenset(g) for g in self.groups)
        seen: set = set()
        for group in self.groups:
            if seen & group:
                raise SimulationError("partition groups must be disjoint")
            seen |= group

    def bind(self, seed: int, index: int, horizon: float) -> None:
        pass

    def _group_of(self, peer: str) -> int:
        for i, group in enumerate(self.groups):
            if peer in group:
                return i
        return -1  # the implicit remainder group

    def blocks(self, src: str, dst: str, t: float) -> bool:
        if not self.start <= t < self.end:
            return False
        return self._group_of(src) != self._group_of(dst)


@dataclass
class SlowLink:
    """Latency multiplier on links touching ``peers`` during the window.

    ``peers=None`` degrades every link (a fabric-wide latency spike).
    """

    factor: float = 5.0
    peers: Optional[FrozenSet[str]] = None
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise SimulationError("slow-link factor must be >= 1")
        self.peers = _as_peerset(self.peers)

    def bind(self, seed: int, index: int, horizon: float) -> None:
        pass

    def multiplier(self, src: str, dst: str, t: float) -> float:
        if not self.start <= t < self.end:
            return 1.0
        if self.peers is not None and src not in self.peers \
                and dst not in self.peers:
            return 1.0
        return self.factor


@dataclass
class Crash:
    """Peer failure at ``at``; optional restart with state wiped.

    ``lose_state`` models a disk-less peer: its local store is cleared,
    so after restart the data must be recovered from replicas — the
    recovery path replication exists for.
    """

    peer: str
    at: float
    restart_at: Optional[float] = None
    lose_state: bool = True

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at < self.at:
            raise SimulationError("restart cannot precede the crash")

    def bind(self, seed: int, index: int, horizon: float) -> None:
        pass


@dataclass
class Corruption:
    """Messages delivered but garbled with probability ``rate``.

    Corrupted async messages arrive flagged (``Message.corrupted``) so
    integrity layers can be stressed; a corrupted RPC response is useless
    to the caller and reads as a failure.
    """

    rate: float = 0.05
    peers: Optional[FrozenSet[str]] = None
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError("corruption rate must be in [0, 1]")
        self.peers = _as_peerset(self.peers)

    def bind(self, seed: int, index: int, horizon: float) -> None:
        pass

    def corruption_rate(self, src: str, dst: str, t: float) -> float:
        if not self.start <= t < self.end:
            return 0.0
        if self.peers is not None and src not in self.peers \
                and dst not in self.peers:
            return 0.0
        return self.rate


class FaultPlan:
    """A composition of fault primitives attached to one network.

    Build the plan declaratively, then install it with
    :meth:`SimNetwork.install_faults`::

        plan = (FaultPlan(seed=7)
                .add(LossBurst(rate=0.2))
                .add(Partition(groups=[{"p1", "p2"}], start=100, end=300))
                .add(Crash("p9", at=150.0, restart_at=400.0)))
        network.install_faults(plan)

    Queries (:meth:`blocks`, :meth:`loss_rate`, :meth:`latency_factor`,
    :meth:`corruption_rate`) are pure functions of virtual time once the
    plan is bound; crash faults become simulator events at install time.
    """

    def __init__(self, seed: int = 0,
                 horizon: float = 7 * 24 * 3600.0) -> None:
        self.seed = seed
        self.horizon = horizon
        self.faults: List[object] = []
        self.network = None

    def add(self, fault) -> "FaultPlan":
        """Append a fault primitive; returns ``self`` for chaining."""
        if self.network is not None:
            raise SimulationError("cannot add faults after install")
        self.faults.append(fault)
        return self

    # -- install -----------------------------------------------------------------

    def bind(self, network) -> None:
        """Finalize schedules and register crash events (network calls this)."""
        if self.network is not None:
            raise SimulationError("fault plan already installed")
        self.network = network
        for index, fault in enumerate(self.faults):
            fault.bind(self.seed, index, self.horizon)
            if isinstance(fault, Crash):
                self._schedule_crash(fault)

    def _schedule_crash(self, crash: Crash) -> None:
        sim = self.network.sim

        def down() -> None:
            node = self.network.nodes.get(crash.peer)
            if node is not None:
                node.crash(lose_state=crash.lose_state)

        def up() -> None:
            node = self.network.nodes.get(crash.peer)
            if node is not None:
                node.go_online()

        sim.schedule_at(crash.at, down)
        if crash.restart_at is not None:
            sim.schedule_at(crash.restart_at, up)

    # -- per-message queries -------------------------------------------------------

    def blocks(self, src: str, dst: str, t: float) -> bool:
        """Whether a partition kills the ``src -> dst`` link at ``t``."""
        return any(f.blocks(src, dst, t) for f in self.faults
                   if isinstance(f, Partition))

    def loss_rate(self, src: str, dst: str, t: float) -> float:
        """Combined fault-added loss probability on the link at ``t``."""
        keep = 1.0
        for fault in self.faults:
            if isinstance(fault, LossBurst):
                keep *= 1.0 - fault.loss_rate(src, dst, t)
        return 1.0 - keep

    def latency_factor(self, src: str, dst: str, t: float) -> float:
        """Combined latency multiplier on the link at ``t``."""
        factor = 1.0
        for fault in self.faults:
            if isinstance(fault, SlowLink):
                factor *= fault.multiplier(src, dst, t)
        return factor

    def corruption_rate(self, src: str, dst: str, t: float) -> float:
        """Combined corruption probability on the link at ``t``."""
        keep = 1.0
        for fault in self.faults:
            if isinstance(fault, Corruption):
                keep *= 1.0 - fault.corruption_rate(src, dst, t)
        return 1.0 - keep

    def holder_faults(self, holder: str, t: float):
        """Byzantine holder faults driving ``holder`` at ``t`` (plan order).

        Link faults attack the wire; these attack the serving peer itself
        (:mod:`repro.faults.byzantine`).  The replicated store consults
        this at serve time to decide whether a holder lies.
        """
        from repro.faults.byzantine import active_holder_faults
        return active_holder_faults(self.faults, holder, t)
