"""Resilient messaging over the simulated fabric.

:class:`ReliableChannel` wraps :meth:`SimNetwork.rpc` with the machinery
real P2P stacks use to survive the faults :mod:`repro.faults.plan`
injects:

* **bounded retries** with exponential backoff and jitter
  (:class:`RetryPolicy`) — masks transient loss bursts;
* **per-destination circuit breakers** (:class:`CircuitBreaker`) — after
  repeated failures a destination is considered down and further calls
  fail fast without paying message cost, until a cooldown expires and a
  half-open probe is allowed through;
* **hedged calls** against replica sets (:meth:`ReliableChannel.hedged`)
  — the first reachable holder serves the request, so a crashed or
  partitioned owner does not make the content unavailable;
* **overload awareness** (opt-in, see :mod:`repro.faults.overload`) —
  calls accept a propagated :class:`~repro.faults.overload.Deadline`
  and fail fast once it expires, retries draw from a shared
  :class:`~repro.faults.overload.RetryBudget` token bucket, and a shed
  (``overloaded``) response never feeds the circuit breaker.

Every retry, breaker trip, fast-fail, and hedge is counted in the
network's :class:`NetworkStats`, so experiment E12 can price the
resilience (extra messages) against what it buys (success rate).

Backoff delays are virtual-time bookkeeping: they are added to the
reported elapsed time of a call rather than scheduled as events —
consistent with the accounted-RPC shortcut the DHT lookups already use.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.exceptions import SimulationError
from repro.faults.overload import Deadline, RetryBudget
from repro.overlay.simulator import SimFuture


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter."""

    max_attempts: int = 3
    base_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.5
    #: cap on the exponential term — without one, ``base * mult**attempt``
    #: grows unbounded and a long retry loop can sleep for hours of
    #: virtual time (the default cap is far above what the default three
    #: attempts can reach, so existing behaviour is unchanged)
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError("need at least one attempt")
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError("jitter must be in [0, 1]")
        if self.max_delay <= 0:
            raise SimulationError("max_delay must be positive")
        if self.base_delay > self.max_delay:
            raise SimulationError("base_delay cannot exceed max_delay")

    def backoff(self, attempt: int, rng: _random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based), capped."""
        delay = min(self.base_delay * (self.multiplier ** attempt),
                    self.max_delay)
        return delay * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class CircuitBreaker:
    """Per-destination breaker: closed -> open -> half-open -> closed.

    ``failure_threshold`` consecutive failures open the breaker for
    ``cooldown`` virtual seconds; while open, calls fail fast.  After the
    cooldown exactly **one** half-open probe is admitted per destination;
    concurrent callers fail fast until that probe's outcome is recorded
    (success closes the breaker, failure re-opens it).  Without the
    single-probe claim, every caller whose cooldown had elapsed would
    stampede the recovering peer at once — the thundering herd the
    breaker exists to prevent.
    """

    failure_threshold: int = 4
    cooldown: float = 30.0
    _failures: Dict[str, int] = field(default_factory=dict, repr=False)
    _opened_at: Dict[str, float] = field(default_factory=dict, repr=False)
    #: destinations with a half-open probe currently in flight
    _probing: Set[str] = field(default_factory=set, repr=False)

    def _may_call(self, dst: str, now: float) -> bool:
        """Pure admission check — no probe slot is claimed."""
        opened = self._opened_at.get(dst)
        if opened is None:
            return True
        return now - opened >= self.cooldown and dst not in self._probing

    def allow(self, dst: str, now: float) -> bool:
        """Whether a call to ``dst`` may proceed at virtual time ``now``.

        An allowed call against an open-but-cooled-down destination
        *claims* the single half-open probe slot; the caller must report
        back via :meth:`record_success` / :meth:`record_failure` to
        release it.  Use :meth:`is_open` to inspect without claiming.
        """
        opened = self._opened_at.get(dst)
        if opened is None:
            return True
        if now - opened >= self.cooldown and dst not in self._probing:
            self._probing.add(dst)  # the one half-open probe
            return True
        return False

    def is_open(self, dst: str, now: float) -> bool:
        """Whether the breaker is holding calls to ``dst`` back."""
        return not self._may_call(dst, now)

    def record_success(self, dst: str) -> None:
        """A call to ``dst`` succeeded: close the breaker."""
        self._failures.pop(dst, None)
        self._opened_at.pop(dst, None)
        self._probing.discard(dst)

    def record_failure(self, dst: str, now: float) -> bool:
        """A call to ``dst`` failed; returns True when this trips it open."""
        if dst in self._opened_at:
            self._opened_at[dst] = now  # failed half-open probe re-opens
            self._probing.discard(dst)
            return False
        count = self._failures.get(dst, 0) + 1
        self._failures[dst] = count
        if count >= self.failure_threshold:
            self._opened_at[dst] = now
            self._failures.pop(dst, None)
            return True
        return False

    def quarantine(self, dst: str, now: float) -> None:
        """Force the breaker open for ``dst`` (adversary quarantine).

        Uses the same machinery as a trip, so the destination stays
        recoverable: after the cooldown a single half-open probe is
        admitted and a success closes the breaker again.
        """
        self._opened_at[dst] = now
        self._failures.pop(dst, None)

    def state(self, dst: str, now: float) -> str:
        """``closed`` / ``open`` / ``half_open`` for ``dst`` at ``now``."""
        opened = self._opened_at.get(dst)
        if opened is None:
            return "closed"
        if now - opened >= self.cooldown:
            return "half_open"
        return "open"


#: Gauge encoding of breaker states (``channel.breaker_state{dst=...}``).
BREAKER_STATE_VALUES = {"closed": 0.0, "half_open": 0.5, "open": 1.0}


class ReliableChannel:
    """Timeout/retry/breaker/hedging wrapper over a :class:`SimNetwork`.

    Protocols call :meth:`call` where they would call ``network.rpc``;
    replica reads go through :meth:`hedged`.  The channel's RNG is split
    from the simulator seed, so retry jitter is deterministic.
    """

    def __init__(self, network, policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 hedge_delay: float = 0.05) -> None:
        self.network = network
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        #: stagger between hedge launches under the concurrent latency
        #: model (:attr:`Simulator.concurrent`): candidate ``i`` launches
        #: at virtual offset ``i * hedge_delay``, and launching stops as
        #: soon as an earlier request has already succeeded.
        self.hedge_delay = hedge_delay
        #: the fabric's :class:`repro.membership.SwimMembership`, set by
        #: :meth:`repro.fabric.Fabric.attach_membership`.  When the
        #: *source* of a call has a membership view, that view replaces
        #: the fixed breaker thresholds: confirmed-dead destinations
        #: fail fast, suspicious ones get a single attempt, and the
        #: breaker is neither consulted nor updated for the call.
        self.membership = None
        #: a shared :class:`repro.faults.RetryBudget` capping cluster-wide
        #: retry amplification, set by :class:`repro.fabric.Fabric` when
        #: an overload config asks for one.  ``None`` = unbudgeted
        #: retries (the legacy behaviour).
        self.retry_budget: Optional[RetryBudget] = None
        self._rng = network.sim.split_rng("reliable-channel")

    def _view_of(self, src: str):
        if self.membership is None:
            return None
        return self.membership.view_of(src)

    def _export_breaker_state(self, dst: str) -> None:
        """Publish the breaker's view of ``dst`` as a labelled gauge."""
        state = self.breaker.state(dst, self.network.sim.now)
        self.network.metrics.gauge("channel.breaker_state", dst=dst).set(
            BREAKER_STATE_VALUES[state])

    def call(self, src: str, dst: str, kind: str = "rpc",
             payload_size: int = 64,
             deadline: Optional[Deadline] = None) -> Tuple[bool, float]:
        """One logical request/response with retries and breaker checks.

        Returns ``(ok, elapsed)`` where ``elapsed`` includes every
        attempt's RTT/timeout plus backoff waits.  On a traced fabric the
        logical call is one ``channel.call`` span whose children are the
        per-attempt ``net.rpc`` spans; backoff waits are charged to the
        channel span itself.

        With a membership view for ``src`` the liveness policy is
        adaptive instead of threshold-based: a destination the view has
        confirmed dead fails fast (``membership_fastfail``), one whose
        phi exceeds the suspect level gets a single attempt (retries are
        for peers believed alive), and a successful call feeds back into
        the view as proof of life.

        Overload protection (all opt-in): an expired ``deadline`` fails
        the call before the next attempt is issued; retries beyond the
        first attempt draw from the channel's shared
        :attr:`retry_budget` when one is set (an empty bucket means no
        retry); a shed attempt (the destination rejected for overload)
        does **not** feed the circuit breaker — the peer is alive and
        telling us so, and opening the breaker on honesty would punish
        exactly the peers that shed instead of timing out.
        """
        ok, elapsed, _cause = self._call(src, dst, kind, payload_size,
                                         deadline)
        return (ok, elapsed)

    def _call(self, src: str, dst: str, kind: str, payload_size: int,
              deadline: Optional[Deadline]
              ) -> Tuple[bool, float, Optional[str]]:
        """The :meth:`call` engine; also reports the last failure cause."""
        stats = self.network.stats
        with self.network.tracer.span("channel.call", kind=kind, src=src,
                                      dst=dst) as span:
            elapsed = 0.0
            attempts = 0
            outcome = "exhausted"
            cause: Optional[str] = None
            max_attempts = self.policy.max_attempts
            view = self._view_of(src)
            if view is not None:
                if view.is_dead(dst):
                    stats.breaker_fastfails += 1
                    self.network.metrics.inc("channel.membership_fastfails",
                                             kind=kind)
                    span.set_attr("attempts", 0)
                    span.set_attr("outcome", "membership_fastfail")
                    return (False, 0.0, "membership_fastfail")
                if view.suspicious(dst, self.network.sim.now):
                    max_attempts = 1
            for attempt in range(max_attempts):
                now = self.network.sim.now
                if deadline is not None and deadline.expired(now, elapsed):
                    # nobody is waiting for this answer any more: fail
                    # fast instead of issuing a doomed attempt
                    stats.deadline_expired += 1
                    self.network.metrics.inc("overload.deadline_expired",
                                             kind=kind)
                    outcome = cause = "deadline_expired"
                    break
                if view is None and self.breaker is not None \
                        and not self.breaker.allow(dst, now):
                    stats.breaker_fastfails += 1
                    self._export_breaker_state(dst)
                    outcome = "breaker_fastfail"
                    cause = cause or "breaker_fastfail"
                    break
                attempts += 1
                future = self.network.rpc_issue(src, dst, kind=kind,
                                                payload_size=payload_size)
                ok, rtt = future.value
                cause = future.cause
                elapsed += rtt
                if ok:
                    if view is not None:
                        view.observe_contact(dst, now)
                    elif self.breaker is not None:
                        self.breaker.record_success(dst)
                        self._export_breaker_state(dst)
                    if self.retry_budget is not None:
                        self.retry_budget.on_success()
                    span.set_attr("attempts", attempts)
                    span.set_attr("outcome", "ok")
                    return (True, elapsed, None)
                if view is None and self.breaker is not None \
                        and cause != "overloaded":
                    if self.breaker.record_failure(dst, now):
                        stats.breaker_trips += 1
                    self._export_breaker_state(dst)
                if attempt + 1 < max_attempts:
                    if self.retry_budget is not None \
                            and not self.retry_budget.try_spend():
                        stats.budget_exhausted += 1
                        self.network.metrics.inc("overload.budget_exhausted",
                                                 kind=kind)
                        outcome = "budget_exhausted"
                        break
                    stats.retries += 1
                    backoff = self.policy.backoff(attempt, self._rng)
                    elapsed += backoff
                    span.add_cost(backoff)
            span.set_attr("attempts", attempts)
            span.set_attr("outcome", outcome)
            return (False, elapsed, cause)

    def call_issue(self, src: str, dst: str, kind: str = "rpc",
                   payload_size: int = 64,
                   deadline: Optional[Deadline] = None) -> SimFuture:
        """Issue one logical call as a completion token.

        The call's retries and backoffs remain internally sequential
        (each retry depends on the previous timeout); what the future
        adds is the ability to overlap *independent* calls: issue one per
        destination and combine with
        :func:`repro.overlay.simulator.quorum_of` /
        :func:`~repro.overlay.simulator.gather`.  Draw order is exactly
        a sequential loop's.  The future's ``cause`` carries the last
        attempt's failure cause (``"overloaded"`` for a shed), so quorum
        layers can price sheds differently from timeouts.
        """
        ok, elapsed, cause = self._call(src, dst, kind, payload_size,
                                        deadline)
        return self.network.sim.future(elapsed, value=(ok, elapsed), ok=ok,
                                       cause=cause)

    def hedged(self, src: str, dsts: Sequence[str], kind: str = "rpc",
               payload_size: int = 64, deadline: Optional[Deadline] = None
               ) -> Tuple[bool, Optional[str], float]:
        """Race a request across replica holders; first success wins.

        Each candidate gets one attempt (the hedge replaces the retry);
        returns ``(ok, winner, elapsed)``.

        With a membership view for ``src`` the candidates are reordered
        by health score first — healthy holders are probed before
        suspects, confirmed-dead ones last (still probed: on this
        last-resort path a false confirmation must not lose the read).

        Latency model: with :attr:`Simulator.concurrent` unset the legacy
        sequential semantics apply byte-for-byte — candidates are probed
        one after another and ``elapsed`` sums every attempt.  With it
        set this is *true hedging*: candidate ``i`` launches at offset
        ``i * hedge_delay``, launching stops once an earlier request has
        already succeeded, the earliest success wins and cancels the
        losers, and ``elapsed`` is the winner's completion offset.
        """
        stats = self.network.stats
        with self.network.tracer.span("channel.hedged", kind=kind,
                                      src=src) as span:
            view = self._view_of(src)
            if view is not None:
                dsts = self.membership.order_by_health(src, dsts)
            if self.network.sim.concurrent:
                return self._hedged_concurrent(src, dsts, kind,
                                               payload_size, span, view,
                                               deadline)
            elapsed = 0.0
            for i, dst in enumerate(dsts):
                now = self.network.sim.now
                if deadline is not None and deadline.expired(now, elapsed):
                    stats.deadline_expired += 1
                    self.network.metrics.inc("overload.deadline_expired",
                                             kind=kind)
                    break
                if i > 0:
                    stats.hedges += 1
                if view is None and self.breaker is not None \
                        and not self.breaker.allow(dst, now):
                    stats.breaker_fastfails += 1
                    self._export_breaker_state(dst)
                    continue
                future = self.network.rpc_issue(src, dst, kind=kind,
                                                payload_size=payload_size)
                ok, rtt = future.value
                elapsed += rtt
                if ok:
                    if view is not None:
                        view.observe_contact(dst, now)
                    elif self.breaker is not None:
                        self.breaker.record_success(dst)
                        self._export_breaker_state(dst)
                    span.set_attr("winner", dst)
                    return (True, dst, elapsed)
                if view is None and self.breaker is not None \
                        and future.cause != "overloaded":
                    if self.breaker.record_failure(dst, now):
                        stats.breaker_trips += 1
                    self._export_breaker_state(dst)
            span.set_attr("winner", None)
            return (False, None, elapsed)

    def _hedged_concurrent(self, src: str, dsts: Sequence[str], kind: str,
                           payload_size: int, span, view,
                           deadline: Optional[Deadline] = None
                           ) -> Tuple[bool, Optional[str], float]:
        """True hedging on the concurrent clock (see :meth:`hedged`)."""
        stats = self.network.stats
        launched = []  # (launch offset, dst, future), launch order
        for i, dst in enumerate(dsts):
            launch_at = i * self.hedge_delay
            first_win = min((offset + future.latency
                             for offset, _dst, future in launched
                             if future.ok), default=None)
            if first_win is not None and first_win <= launch_at:
                break  # an earlier request won before this hedge fires
            now = self.network.sim.now
            if deadline is not None and deadline.expired(now, launch_at):
                stats.deadline_expired += 1
                self.network.metrics.inc("overload.deadline_expired",
                                         kind=kind)
                break
            if i > 0:
                stats.hedges += 1
            if view is None and self.breaker is not None \
                    and not self.breaker.allow(dst, now):
                stats.breaker_fastfails += 1
                self._export_breaker_state(dst)
                continue
            future = self.network.rpc_issue(src, dst, kind=kind,
                                            payload_size=payload_size)
            launched.append((launch_at, dst, future))
            if future.ok:
                if view is not None:
                    view.observe_contact(dst, now)
                elif self.breaker is not None:
                    self.breaker.record_success(dst)
                    self._export_breaker_state(dst)
            elif view is None and self.breaker is not None \
                    and future.cause != "overloaded":
                if self.breaker.record_failure(dst, now):
                    stats.breaker_trips += 1
                self._export_breaker_state(dst)
        successes = sorted(
            (offset + future.latency, future.seq, dst, future)
            for offset, dst, future in launched if future.ok)
        if successes:
            elapsed, _seq, winner, winning = successes[0]
            for _offset, _dst, future in launched:
                if future is not winning:
                    future.cancel()
            span.set_attr("winner", winner)
            span.settle_cost(elapsed)
            return (True, winner, elapsed)
        elapsed = max((offset + future.latency
                       for offset, _dst, future in launched), default=0.0)
        span.set_attr("winner", None)
        span.settle_cost(elapsed)
        return (False, None, elapsed)
