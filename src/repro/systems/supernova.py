"""Supernova: super-peer based DOSN with storekeepers (Sharma & Datta).

As the paper describes it: "Semi-structured DOSN makes use of super peers,
which are a subset of all users who are responsible for storing the index
and managing other users ... Such a structure may include lookup services
and tracking of users up-time to find the best places for replication"
(Section II-B).

Composition: :class:`~repro.overlay.superpeer.SuperPeerOverlay` provides
index + uptime tracking; on top we add Supernova's defining concept —
**storekeepers**: peers recommended by super-peers (by tracked uptime) who
hold a user's encrypted data while the user is offline.  Availability then
follows the storekeeper agreement, not the owner's own uptime.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.symmetric import StreamCipher, random_key
from repro.exceptions import LookupError_, OverlayError, StorageError
from repro.overlay.churn import ExponentialOnOff
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator
from repro.overlay.superpeer import SuperPeerOverlay
from repro.stack import (AclLayer, ContentItem, LayerSpec, PlacementLayer,
                         ProtectionStack, SystemSpec, register_system)

SUPERNOVA_SPEC = register_system(SystemSpec(
    name="supernova",
    citation="Sharma & Datta",
    overlay="semi-structured super-peer tier with uptime tracking",
    layers=(
        LayerSpec("acl", "owner symmetric key",
                  table1_rows=("Symmetric key encryption",),
                  detail="one content key per owner, handed to friends "
                         "out of band"),
        LayerSpec("placement", "storekeeper replication",
                  detail="uptime-picked storekeepers hold ciphertext; "
                         "super-peers index the keeper set "
                         "(Section II-B)"),
    )))


class SupernovaNetwork:
    """A Supernova deployment: super-peers + uptime-picked storekeepers."""

    def __init__(self, seed: int = 0, super_peers: int = 4,
                 storekeepers_per_user: int = 3) -> None:
        self.sim = Simulator(seed)
        self.network = SimNetwork(self.sim)
        self.overlay = SuperPeerOverlay(self.network)
        self.rng = _random.Random(seed)
        self.storekeepers_per_user = storekeepers_per_user
        for index in range(super_peers):
            self.overlay.add_super_peer(f"sp{index}")
        self._keys: Dict[str, bytes] = {}
        #: owner -> storekeeper agreement (names)
        self.agreements: Dict[str, List[str]] = {}
        #: storekeeper -> {(owner, item): blob}
        self._kept: Dict[str, Dict[Tuple[str, str], bytes]] = {}
        self.stack = ProtectionStack([
            AclLayer(post=self._owner_encrypt, read=self._owner_decrypt,
                     spec=SUPERNOVA_SPEC.layers[0]),
            PlacementLayer(post=self._keeper_store, read=self._keeper_fetch,
                           spec=SUPERNOVA_SPEC.layers[1]),
        ], spec=SUPERNOVA_SPEC)

    # -- membership -----------------------------------------------------------------

    def register(self, name: str) -> None:
        """Join under a (hash-assigned) super-peer."""
        self.overlay.add_peer(name)
        self._keys[name] = random_key(32, self.rng)
        self._kept[name] = {}

    def report_uptimes(self, fractions: Dict[str, float]) -> None:
        """Feed uptime observations to the super-peer tier."""
        self.overlay.report_uptimes(fractions)

    # -- storekeeper agreements ---------------------------------------------------------

    def arrange_storekeepers(self, owner: str) -> List[str]:
        """Ask the super-peers for the best-uptime hosts and sign them up.

        This is the Supernova 'find the best places for replication'
        service in action.
        """
        keepers = self.overlay.best_replica_hosts(
            self.storekeepers_per_user, exclude=[owner])
        if len(keepers) < self.storekeepers_per_user:
            raise OverlayError("not enough tracked peers to pick keepers")
        self.agreements[owner] = keepers
        return keepers

    # -- stack layer hooks -------------------------------------------------------

    def _owner_encrypt(self, item: ContentItem) -> None:
        item.payload = StreamCipher(
            self._keys[item.author]).encrypt(item.payload, self.rng)

    def _keeper_store(self, item: ContentItem) -> None:
        owner, item_id = item.author, item.meta["item_id"]
        keepers = self.agreements[owner]
        for keeper in keepers:
            self._kept[keeper][(owner, item_id)] = item.payload
            self.network.rpc(owner, keeper, kind="sn_store")
        # publish the index entry so lookups find the keepers
        self.overlay.publish(owner, f"sn/{owner}/{item_id}", b"")
        index_sp = self.overlay._index_super(f"sn/{owner}/{item_id}")
        self.overlay.super_peers[index_sp].index[
            f"sn/{owner}/{item_id}"] = list(keepers)

    def _keeper_fetch(self, item: ContentItem) -> None:
        owner, item_id = item.author, item.meta["item_id"]
        result = self.overlay.lookup(item.reader, f"sn/{owner}/{item_id}")
        for keeper in result.holders:
            peer = self.overlay.peers.get(keeper)
            if peer is None or not peer.online:
                continue
            blob = self._kept.get(keeper, {}).get((owner, item_id))
            if blob is None:
                continue
            self.network.rpc(item.reader, keeper, kind="sn_fetch")
            item.payload = blob
            return
        raise StorageError(
            f"no live storekeeper for {owner!r}/{item_id!r}")

    def _owner_decrypt(self, item: ContentItem) -> None:
        owner_key = item.meta.get("owner_key")
        key = owner_key if owner_key is not None \
            else self._keys.get(item.reader) if item.reader == item.author \
            else None
        if item.reader == item.author:
            key = self._keys[item.author]
        if key is None:
            raise StorageError(
                f"{item.reader!r} fetched ciphertext but holds no key of "
                f"{item.author!r}")
        item.result = StreamCipher(key).decrypt(item.payload)

    # -- the content path ---------------------------------------------------------

    def store(self, owner: str, item_id: str, content: bytes) -> None:
        """Encrypt and hand copies to every storekeeper + the index."""
        if self.agreements.get(owner) is None:
            raise OverlayError(
                f"{owner!r} has no storekeeper agreement; call "
                "arrange_storekeepers first")
        self.stack.post(ContentItem(author=owner, payload=content,
                                    meta={"item_id": item_id}))

    def retrieve(self, reader: str, owner: str, item_id: str,
                 owner_key: Optional[bytes] = None) -> bytes:
        """Lookup via super-peers, download from a live storekeeper.

        ``owner_key`` models the out-of-band friend-key handoff; readers
        without it get ciphertext they cannot open.
        """
        item = ContentItem(author=owner, reader=reader,
                           meta={"item_id": item_id, "owner_key": owner_key})
        self.stack.read(item)
        return item.result

    def friend_key(self, owner: str) -> bytes:
        """The owner's content key (handed to friends out-of-band)."""
        return self._keys[owner]

    # -- the availability story -----------------------------------------------------------

    def availability_with_agreement(self, owner: str,
                                    churn: ExponentialOnOff,
                                    probe_times: Sequence[float]) -> float:
        """P(some storekeeper online) under a churn model."""
        keepers = self.agreements.get(owner, [])
        hits = 0
        for t in probe_times:
            if any(churn.online_at(keeper, t) for keeper in keepers):
                hits += 1
        return hits / len(probe_times) if probe_times else 0.0
