"""Diaspora: the federated DOSN with aspects (the paper's flagship example).

Section I: "There are many distributed online social networks out of which
Diaspora is one of the most popular because of its good privacy preserving
design."  Section II-B: server federation "distribute[s] users' data among
several servers ... none of them will have a complete global view."

Composition: :class:`~repro.overlay.federation.FederatedNetwork` provides
the pod substrate; on top we add Diaspora's signature feature — **aspects**
(per-audience contact groups: "family", "work", ...).  A post targets one
aspect; it is encrypted for that aspect's members (symmetric per-aspect
keys, rotated on removal exactly as Section III-B prescribes) and federated
only to their home pods.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.symmetric import StreamCipher, random_key
from repro.exceptions import AccessDeniedError, DecryptionError, OverlayError
from repro.overlay.federation import FederatedNetwork
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator
from repro.stack import (AclLayer, ContentItem, LayerSpec, PlacementLayer,
                         ProtectionStack, SystemSpec, register_system)

DIASPORA_SPEC = register_system(SystemSpec(
    name="diaspora",
    citation="the paper's flagship federation example",
    overlay="server federation (pods); no pod holds a global view",
    layers=(
        LayerSpec("acl", "per-aspect symmetric keys",
                  table1_rows=("Symmetric key encryption",),
                  detail="one key per contact group, rotated on removal "
                         "(Section III-B)"),
        LayerSpec("placement", "selective pod federation",
                  detail="ciphertext federated only to the aspect "
                         "members' home pods"),
    )))


class DiasporaNetwork:
    """A Diaspora deployment: pods + aspects + per-aspect encryption."""

    def __init__(self, seed: int = 0, pods: int = 4) -> None:
        self.sim = Simulator(seed)
        self.network = SimNetwork(self.sim)
        self.federation = FederatedNetwork(
            self.network, [f"pod{i}" for i in range(pods)])
        self.rng = _random.Random(seed)
        #: (owner, aspect) -> (epoch, key)
        self._aspect_keys: Dict[Tuple[str, str], Tuple[int, bytes]] = {}
        #: (owner, aspect) -> member set
        self.aspects: Dict[Tuple[str, str], Set[str]] = {}
        #: user -> {(owner, aspect, epoch): key} — keys received from owners
        self._keyrings: Dict[str, Dict[Tuple[str, str, int], bytes]] = {}
        #: content id -> (owner, aspect, epoch)
        self._catalog: Dict[str, Tuple[str, str, int]] = {}
        self._sequence = 0
        self.stack = ProtectionStack([
            AclLayer(post=self._aspect_encrypt, read=self._aspect_decrypt,
                     spec=DIASPORA_SPEC.layers[0]),
            PlacementLayer(post=self._federate, read=self._pod_fetch,
                           spec=DIASPORA_SPEC.layers[1]),
        ], spec=DIASPORA_SPEC)

    # -- membership -------------------------------------------------------------------

    def register(self, user: str, pod: Optional[str] = None) -> str:
        """Join a pod (hash-balanced by default)."""
        self._keyrings[user] = {}
        return self.federation.register_user(user, pod)

    def create_aspect(self, owner: str, aspect: str,
                      members: Sequence[str]) -> None:
        """Create a contact group with its own key, shared with members."""
        key = random_key(32, self.rng)
        self._aspect_keys[(owner, aspect)] = (0, key)
        self.aspects[(owner, aspect)] = set(members)
        self._keyrings.setdefault(owner, {})[(owner, aspect, 0)] = key
        for member in members:
            self._keyrings[member][(owner, aspect, 0)] = key

    def add_to_aspect(self, owner: str, aspect: str, user: str) -> None:
        """Share the current aspect key with a new contact."""
        epoch, key = self._aspect_keys[(owner, aspect)]
        self.aspects[(owner, aspect)].add(user)
        self._keyrings[user][(owner, aspect, epoch)] = key

    def remove_from_aspect(self, owner: str, aspect: str,
                           user: str) -> None:
        """Remove a contact: rotate the key (future posts excluded)."""
        members = self.aspects.get((owner, aspect))
        if members is None or user not in members:
            raise AccessDeniedError(
                f"{user!r} is not in {owner!r}'s aspect {aspect!r}")
        members.discard(user)
        epoch, _ = self._aspect_keys[(owner, aspect)]
        new_key = random_key(32, self.rng)
        self._aspect_keys[(owner, aspect)] = (epoch + 1, new_key)
        self._keyrings[owner][(owner, aspect, epoch + 1)] = new_key
        for member in members:
            self._keyrings[member][(owner, aspect, epoch + 1)] = new_key

    # -- stack layer hooks -------------------------------------------------------

    def _aspect_encrypt(self, item: ContentItem) -> None:
        aspect = item.meta["aspect"]
        entry = self._aspect_keys.get((item.author, aspect))
        if entry is None:
            raise OverlayError(f"{item.author!r} has no aspect {aspect!r}")
        epoch, key = entry
        item.recipients = tuple(sorted(self.aspects[(item.author, aspect)]))
        item.meta["epoch"] = epoch
        item.payload = StreamCipher(key).encrypt(item.payload, self.rng)

    def _federate(self, item: ContentItem) -> None:
        item.cid = f"dsp{self._sequence}"
        self._sequence += 1
        self.federation.post(item.author, item.cid, item.payload,
                             list(item.recipients))
        self._catalog[item.cid] = (item.author, item.meta["aspect"],
                                   item.meta["epoch"])

    def _pod_fetch(self, item: ContentItem) -> None:
        item.payload = self.federation.fetch(item.reader, item.cid)

    def _aspect_decrypt(self, item: ContentItem) -> None:
        aspect, epoch = item.meta["aspect"], item.meta["epoch"]
        key = self._keyrings.get(item.reader, {}).get(
            (item.author, aspect, epoch))
        if key is None:
            raise AccessDeniedError(
                f"{item.reader!r} holds no key for {item.author!r}/"
                f"{aspect!r} epoch {epoch}")
        try:
            item.result = StreamCipher(key).decrypt(item.payload).decode()
        except DecryptionError:
            raise AccessDeniedError(
                f"{item.reader!r}'s aspect key does not open {item.cid!r}")

    # -- posting ------------------------------------------------------------------------

    def post(self, owner: str, aspect: str, text: str) -> str:
        """Encrypt for the aspect and federate to its members' pods only."""
        item = ContentItem(author=owner, payload=text.encode(),
                           meta={"aspect": aspect})
        self.stack.post(item)
        return item.cid

    def read(self, reader: str, content_id: str) -> str:
        """Fetch from the reader's pod and decrypt with the aspect key."""
        owner, aspect, epoch = self._catalog[content_id]
        item = ContentItem(author=owner, reader=reader, cid=content_id,
                           meta={"aspect": aspect, "epoch": epoch})
        self.stack.read(item)
        return item.result

    # -- the federation privacy story -------------------------------------------------------

    def pod_views(self) -> Dict[str, Dict[str, object]]:
        """Per-pod observer views (users, ciphertext ids, edges)."""
        return {name: self.federation.server_view(name)
                for name in self.federation.servers}

    def worst_pod_content_fraction(self) -> float:
        """The worst pod's share of stored (ciphertext) objects."""
        total = len(self._catalog)
        if total == 0:
            return 0.0
        return max(len(server.content)
                   for server in self.federation.servers.values()) / total
