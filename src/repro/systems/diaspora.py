"""Diaspora: the federated DOSN with aspects (the paper's flagship example).

Section I: "There are many distributed online social networks out of which
Diaspora is one of the most popular because of its good privacy preserving
design."  Section II-B: server federation "distribute[s] users' data among
several servers ... none of them will have a complete global view."

Composition: :class:`~repro.overlay.federation.FederatedNetwork` provides
the pod substrate; on top we add Diaspora's signature feature — **aspects**
(per-audience contact groups: "family", "work", ...).  A post targets one
aspect; it is encrypted for that aspect's members (symmetric per-aspect
keys, rotated on removal exactly as Section III-B prescribes) and federated
only to their home pods.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.symmetric import StreamCipher, random_key
from repro.exceptions import AccessDeniedError, DecryptionError, OverlayError
from repro.overlay.federation import FederatedNetwork
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator


class DiasporaNetwork:
    """A Diaspora deployment: pods + aspects + per-aspect encryption."""

    def __init__(self, seed: int = 0, pods: int = 4) -> None:
        self.sim = Simulator(seed)
        self.network = SimNetwork(self.sim)
        self.federation = FederatedNetwork(
            self.network, [f"pod{i}" for i in range(pods)])
        self.rng = _random.Random(seed)
        #: (owner, aspect) -> (epoch, key)
        self._aspect_keys: Dict[Tuple[str, str], Tuple[int, bytes]] = {}
        #: (owner, aspect) -> member set
        self.aspects: Dict[Tuple[str, str], Set[str]] = {}
        #: user -> {(owner, aspect, epoch): key} — keys received from owners
        self._keyrings: Dict[str, Dict[Tuple[str, str, int], bytes]] = {}
        #: content id -> (owner, aspect, epoch)
        self._catalog: Dict[str, Tuple[str, str, int]] = {}
        self._sequence = 0

    # -- membership -------------------------------------------------------------------

    def register(self, user: str, pod: Optional[str] = None) -> str:
        """Join a pod (hash-balanced by default)."""
        self._keyrings[user] = {}
        return self.federation.register_user(user, pod)

    def create_aspect(self, owner: str, aspect: str,
                      members: Sequence[str]) -> None:
        """Create a contact group with its own key, shared with members."""
        key = random_key(32, self.rng)
        self._aspect_keys[(owner, aspect)] = (0, key)
        self.aspects[(owner, aspect)] = set(members)
        self._keyrings.setdefault(owner, {})[(owner, aspect, 0)] = key
        for member in members:
            self._keyrings[member][(owner, aspect, 0)] = key

    def add_to_aspect(self, owner: str, aspect: str, user: str) -> None:
        """Share the current aspect key with a new contact."""
        epoch, key = self._aspect_keys[(owner, aspect)]
        self.aspects[(owner, aspect)].add(user)
        self._keyrings[user][(owner, aspect, epoch)] = key

    def remove_from_aspect(self, owner: str, aspect: str,
                           user: str) -> None:
        """Remove a contact: rotate the key (future posts excluded)."""
        members = self.aspects.get((owner, aspect))
        if members is None or user not in members:
            raise AccessDeniedError(
                f"{user!r} is not in {owner!r}'s aspect {aspect!r}")
        members.discard(user)
        epoch, _ = self._aspect_keys[(owner, aspect)]
        new_key = random_key(32, self.rng)
        self._aspect_keys[(owner, aspect)] = (epoch + 1, new_key)
        self._keyrings[owner][(owner, aspect, epoch + 1)] = new_key
        for member in members:
            self._keyrings[member][(owner, aspect, epoch + 1)] = new_key

    # -- posting ------------------------------------------------------------------------

    def post(self, owner: str, aspect: str, text: str) -> str:
        """Encrypt for the aspect and federate to its members' pods only."""
        entry = self._aspect_keys.get((owner, aspect))
        if entry is None:
            raise OverlayError(f"{owner!r} has no aspect {aspect!r}")
        epoch, key = entry
        members = sorted(self.aspects[(owner, aspect)])
        blob = StreamCipher(key).encrypt(text.encode(), self.rng)
        content_id = f"dsp{self._sequence}"
        self._sequence += 1
        self.federation.post(owner, content_id, blob, members)
        self._catalog[content_id] = (owner, aspect, epoch)
        return content_id

    def read(self, reader: str, content_id: str) -> str:
        """Fetch from the reader's pod and decrypt with the aspect key."""
        owner, aspect, epoch = self._catalog[content_id]
        blob = self.federation.fetch(reader, content_id)
        key = self._keyrings.get(reader, {}).get((owner, aspect, epoch))
        if key is None:
            raise AccessDeniedError(
                f"{reader!r} holds no key for {owner!r}/{aspect!r} "
                f"epoch {epoch}")
        try:
            return StreamCipher(key).decrypt(blob).decode()
        except DecryptionError:
            raise AccessDeniedError(
                f"{reader!r}'s aspect key does not open {content_id!r}")

    # -- the federation privacy story -------------------------------------------------------

    def pod_views(self) -> Dict[str, Dict[str, object]]:
        """Per-pod observer views (users, ciphertext ids, edges)."""
        return {name: self.federation.server_view(name)
                for name in self.federation.servers}

    def worst_pod_content_fraction(self) -> float:
        """The worst pod's share of stored (ciphertext) objects."""
        total = len(self._catalog)
        if total == 0:
            return 0.0
        return max(len(server.content)
                   for server in self.federation.servers.values()) / total
