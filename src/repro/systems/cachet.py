"""Cachet: decentralized privacy-preserving social networking with caching.

As the paper describes it (Nilizadeh et al.): Cachet "uses hybrid
structured-unstructured overlay using a DHT-based approach together with
gossip-based caching to achieve high performance" (Section II-B), protects
content with "a hybrid scheme of symmetric key encryption and CP-ABE"
(Section III-F), and binds comments to posts with per-post signing keys
(Section IV-C).

Composition (declared as :data:`CACHET_SPEC`, executed by a
:class:`~repro.stack.pipeline.ProtectionStack`): a per-post comment-key
integrity layer (:mod:`repro.integrity.relations`), a CP-ABE hybrid ACL
layer with one authority per user, and a placement layer over
:class:`~repro.overlay.hybrid.HybridOverlay` (DHT + social caches).
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.crypto.abe import CPABE
from repro.crypto.symmetric import random_key
from repro.exceptions import (AccessDeniedError, DecryptionError,
                              StorageError)
from repro.integrity.relations import (Comment, CommentablePost, create_post,
                                       verify_comment, write_comment)
from repro.fabric import Fabric
from repro.overlay.hybrid import HybridFetchResult, HybridOverlay
from repro.stack import (AclLayer, ContentItem, IntegrityLayer, LayerSpec,
                         PlacementLayer, ProtectionStack, SystemSpec,
                         register_system)

CACHET_SPEC = register_system(SystemSpec(
    name="cachet",
    citation="Nilizadeh et al.",
    overlay="hybrid structured/unstructured: DHT + gossip-based social "
            "caches",
    layers=(
        LayerSpec("integrity", "per-post comment signing keys",
                  table1_rows=("Integrity of data relations",),
                  detail="signing key wrapped pairwise for the commenter "
                         "audience (Section IV-C)"),
        LayerSpec("acl", "CP-ABE hybrid encryption",
                  table1_rows=("Attribute based encryption",
                               "Hybrid encryption"),
                  detail="per-owner authority; symmetric content key "
                         "under an attribute policy (Section III-F)"),
        LayerSpec("placement", "hybrid overlay publish",
                  detail="DHT put + gossip caching along social links"),
    )))


class CachetNetwork:
    """A Cachet deployment over a social graph."""

    def __init__(self, graph: nx.Graph, seed: int = 0,
                 level: str = "TOY", cache_capacity: int = 32) -> None:
        self.graph = graph
        self.seed = seed
        self.rng = _random.Random(seed)
        self.fabric = Fabric.create(seed=seed)
        self.sim = self.fabric.sim
        self.network = self.fabric.network
        self.overlay = HybridOverlay(self.fabric, graph,
                                     cache_capacity=cache_capacity)
        self.level = level
        #: per-user ABE authority (users control their own policies)
        self._abe: Dict[str, CPABE] = {}
        self._abe_keys: Dict[str, Tuple[object, object]] = {}
        #: (owner, principal) -> issued attribute key
        self._issued: Dict[Tuple[str, str], object] = {}
        #: pairwise keys used to wrap comment-signing keys
        self._pairwise: Dict[Tuple[str, str], bytes] = {}
        #: post id -> CommentablePost metadata (replicated with the post)
        self._posts: Dict[str, CommentablePost] = {}
        self._comments: Dict[str, List[Comment]] = {}
        #: post id -> CP-ABE header (small object riding with the blob)
        self._headers: Dict[str, object] = {}
        self.stack = ProtectionStack([
            IntegrityLayer(post=self._bind_comment_keys,
                           spec=CACHET_SPEC.layers[0]),
            AclLayer(post=self._abe_protect, read=self._abe_unprotect,
                     spec=CACHET_SPEC.layers[1]),
            PlacementLayer(post=self._publish, read=self._fetch,
                           spec=CACHET_SPEC.layers[2]),
        ], spec=CACHET_SPEC, tracer=self.fabric.tracer,
            metrics=self.fabric.metrics)

    def _authority(self, owner: str) -> Tuple[CPABE, object, object]:
        if owner not in self._abe:
            scheme = CPABE(self.level)
            # Seeded from (master seed, owner) only: authority creation is
            # order-independent and never perturbs the network RNG stream.
            pk, msk = scheme.setup(
                _random.Random(f"cachet/authority/{self.seed}/{owner}"))
            self._abe[owner] = scheme
            self._abe_keys[owner] = (pk, msk)
        pk, msk = self._abe_keys[owner]
        return self._abe[owner], pk, msk

    # -- key management ----------------------------------------------------------

    def grant(self, owner: str, principal: str,
              attributes: Sequence[str]) -> None:
        """Owner issues an attribute key to a friend."""
        scheme, pk, msk = self._authority(owner)
        self._issued[(owner, principal)] = scheme.keygen(
            pk, msk, list(attributes), self.rng)

    def pairwise_key(self, a: str, b: str) -> bytes:
        """The symmetric key a pair shares (comment-key wrap channel)."""
        pair = (min(a, b), max(a, b))
        key = self._pairwise.get(pair)
        if key is None:
            key = random_key(32, self.rng)
            self._pairwise[pair] = key
        return key

    # -- stack layer hooks -------------------------------------------------------

    def _bind_comment_keys(self, item: ContentItem) -> None:
        commenter_keys = {user: self.pairwise_key(item.author, user)
                          for user in item.recipients}
        meta = create_post(item.cid, item.author, item.payload,
                           commenter_keys, level=self.level, rng=self.rng)
        self._posts[item.cid] = meta
        self._comments.setdefault(item.cid, [])

    def _abe_protect(self, item: ContentItem) -> None:
        scheme, pk, _ = self._authority(item.author)
        header, blob = scheme.encrypt_bytes(pk, item.payload,
                                            item.meta["policy"], self.rng)
        # ship header+payload as one DHT object (headers are small objects)
        self._headers[item.cid] = header
        item.payload = blob

    def _publish(self, item: ContentItem) -> None:
        self.overlay.publish(item.author, item.cid, item.payload)

    def _fetch(self, item: ContentItem) -> None:
        result = self.overlay.fetch(item.reader, item.cid)
        item.meta["fetch"] = result
        item.payload = result.value

    def _abe_unprotect(self, item: ContentItem) -> None:
        header = self._headers.get(item.cid)
        if header is None:
            raise StorageError(
                f"no CP-ABE header for {item.cid!r}: nothing published "
                "under that id")
        scheme, pk, msk = self._authority(item.author)
        if item.reader == item.author:
            # The owner runs the authority: mint a key satisfying the
            # post's own policy (owners can always read their data).
            from repro.crypto.abe import policy_attributes
            attrs = sorted(policy_attributes(header.policy))
            key = scheme.keygen(pk, msk, attrs, self.rng)
        else:
            key = self._issued.get((item.author, item.reader))
            if key is None:
                raise AccessDeniedError(
                    f"{item.author!r} issued no attribute key to "
                    f"{item.reader!r}")
        try:
            text = scheme.decrypt_bytes(header, item.payload, key)
        except DecryptionError as exc:
            raise AccessDeniedError(
                f"{item.reader!r}'s attributes do not satisfy the policy: "
                f"{exc}")
        item.result = text.decode()

    # -- posting (hybrid ABE + DHT/caching) ------------------------------------------

    def post(self, author: str, post_id: str, text: str, policy: str,
             commenters: Sequence[str] = ()) -> str:
        """Publish: hybrid CP-ABE protection + per-post comment keys.

        The ciphertext travels through the hybrid overlay (DHT +
        gossip-cached); the comment verification key rides in the clear
        inside the post, its signing key wrapped for ``commenters``.
        """
        item = ContentItem(author=author, cid=post_id,
                           payload=text.encode(),
                           recipients=tuple(commenters),
                           meta={"policy": policy})
        self.stack.post(item)
        return post_id

    def read(self, reader: str, author: str,
             post_id: str) -> Tuple[str, HybridFetchResult]:
        """Fetch via caches-then-DHT; decrypt with the reader's ABE key."""
        item = ContentItem(author=author, reader=reader, cid=post_id)
        self.stack.read(item)
        return item.result, item.meta["fetch"]

    # -- comments (relation integrity) -------------------------------------------------

    def comment(self, commenter: str, post_id: str, text: str) -> Comment:
        """Write a comment with the post's embedded signing key."""
        meta = self._posts.get(post_id)
        if meta is None:
            raise AccessDeniedError(f"no post {post_id!r}")
        comment = write_comment(meta, commenter,
                                self.pairwise_key(meta.author, commenter),
                                text.encode(), rng=self.rng)
        verify_comment(meta, comment)
        self._comments[post_id].append(comment)
        return comment

    def verified_comments(self, post_id: str) -> List[str]:
        """All comments that still verify against the post."""
        meta = self._posts[post_id]
        verified = []
        for comment in self._comments.get(post_id, []):
            try:
                verify_comment(meta, comment)
                verified.append(comment.body.decode())
            except Exception:
                continue
        return verified

    def cache_hit_rate(self) -> float:
        """The hybrid overlay's headline performance number."""
        return self.overlay.cache_hit_rate()
