"""Cachet: decentralized privacy-preserving social networking with caching.

As the paper describes it (Nilizadeh et al.): Cachet "uses hybrid
structured-unstructured overlay using a DHT-based approach together with
gossip-based caching to achieve high performance" (Section II-B), protects
content with "a hybrid scheme of symmetric key encryption and CP-ABE"
(Section III-F), and binds comments to posts with per-post signing keys
(Section IV-C).

Composition: :class:`~repro.overlay.hybrid.HybridOverlay` (DHT + social
caches) carries ciphertext; a per-user CP-ABE authority protects the
content keys under attribute policies; per-post comment keys are wrapped
for the commenter audience exactly as :mod:`repro.integrity.relations`
implements.
"""

from __future__ import annotations

import json
import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.crypto.abe import CPABE
from repro.crypto.hashing import hkdf
from repro.crypto.symmetric import AuthenticatedCipher, random_key
from repro.exceptions import AccessDeniedError, DecryptionError
from repro.integrity.relations import (Comment, CommentablePost, create_post,
                                       verify_comment, write_comment)
from repro.fabric import Fabric
from repro.overlay.hybrid import HybridFetchResult, HybridOverlay


class CachetNetwork:
    """A Cachet deployment over a social graph."""

    def __init__(self, graph: nx.Graph, seed: int = 0,
                 level: str = "TOY", cache_capacity: int = 32) -> None:
        self.graph = graph
        self.rng = _random.Random(seed)
        self.fabric = Fabric.create(seed=seed)
        self.sim = self.fabric.sim
        self.network = self.fabric.network
        self.overlay = HybridOverlay(self.fabric, graph,
                                     cache_capacity=cache_capacity)
        self.level = level
        #: per-user ABE authority (users control their own policies)
        self._abe: Dict[str, CPABE] = {}
        self._abe_keys: Dict[str, Tuple[object, object]] = {}
        #: (owner, principal) -> issued attribute key
        self._issued: Dict[Tuple[str, str], object] = {}
        #: pairwise keys used to wrap comment-signing keys
        self._pairwise: Dict[Tuple[str, str], bytes] = {}
        #: post id -> CommentablePost metadata (replicated with the post)
        self._posts: Dict[str, CommentablePost] = {}
        self._comments: Dict[str, List[Comment]] = {}

    def _authority(self, owner: str) -> Tuple[CPABE, object, object]:
        if owner not in self._abe:
            scheme = CPABE(self.level)
            pk, msk = scheme.setup(
                _random.Random(f"{owner}/{self.rng.random()}"))
            self._abe[owner] = scheme
            self._abe_keys[owner] = (pk, msk)
        pk, msk = self._abe_keys[owner]
        return self._abe[owner], pk, msk

    # -- key management ----------------------------------------------------------

    def grant(self, owner: str, principal: str,
              attributes: Sequence[str]) -> None:
        """Owner issues an attribute key to a friend."""
        scheme, pk, msk = self._authority(owner)
        self._issued[(owner, principal)] = scheme.keygen(
            pk, msk, list(attributes), self.rng)

    def pairwise_key(self, a: str, b: str) -> bytes:
        """The symmetric key a pair shares (comment-key wrap channel)."""
        pair = (min(a, b), max(a, b))
        key = self._pairwise.get(pair)
        if key is None:
            key = random_key(32, self.rng)
            self._pairwise[pair] = key
        return key

    # -- posting (hybrid ABE + DHT/caching) ------------------------------------------

    def post(self, author: str, post_id: str, text: str, policy: str,
             commenters: Sequence[str] = ()) -> str:
        """Publish: hybrid CP-ABE protection + per-post comment keys.

        The ciphertext travels through the hybrid overlay (DHT +
        gossip-cached); the comment verification key rides in the clear
        inside the post, its signing key wrapped for ``commenters``.
        """
        scheme, pk, _ = self._authority(author)
        commenter_keys = {user: self.pairwise_key(author, user)
                          for user in commenters}
        meta = create_post(post_id, author, text.encode(), commenter_keys,
                           level=self.level, rng=self.rng)
        self._posts[post_id] = meta
        self._comments.setdefault(post_id, [])
        header, blob = scheme.encrypt_bytes(pk, text.encode(), policy,
                                            self.rng)
        # ship header+payload as one DHT object (headers are small objects)
        self._headers = getattr(self, "_headers", {})
        self._headers[post_id] = header
        self.overlay.publish(author, post_id, blob)
        return post_id

    def read(self, reader: str, author: str,
             post_id: str) -> Tuple[str, HybridFetchResult]:
        """Fetch via caches-then-DHT; decrypt with the reader's ABE key."""
        result = self.overlay.fetch(reader, post_id)
        scheme, pk, msk = self._authority(author)
        header = self._headers[post_id]
        if reader == author:
            # The owner runs the authority: mint a key satisfying the
            # post's own policy (owners can always read their data).
            from repro.crypto.abe import policy_attributes
            attrs = sorted(policy_attributes(header.policy))
            key = scheme.keygen(pk, msk, attrs, self.rng)
        else:
            key = self._issued.get((author, reader))
            if key is None:
                raise AccessDeniedError(
                    f"{author!r} issued no attribute key to {reader!r}")
        try:
            text = scheme.decrypt_bytes(header, result.value, key)
        except DecryptionError as exc:
            raise AccessDeniedError(
                f"{reader!r}'s attributes do not satisfy the policy: {exc}")
        return text.decode(), result

    # -- comments (relation integrity) -------------------------------------------------

    def comment(self, commenter: str, post_id: str, text: str) -> Comment:
        """Write a comment with the post's embedded signing key."""
        meta = self._posts.get(post_id)
        if meta is None:
            raise AccessDeniedError(f"no post {post_id!r}")
        comment = write_comment(meta, commenter,
                                self.pairwise_key(meta.author, commenter),
                                text.encode(), rng=self.rng)
        verify_comment(meta, comment)
        self._comments[post_id].append(comment)
        return comment

    def verified_comments(self, post_id: str) -> List[str]:
        """All comments that still verify against the post."""
        meta = self._posts[post_id]
        verified = []
        for comment in self._comments.get(post_id, []):
            try:
                verify_comment(meta, comment)
                verified.append(comment.body.decode())
            except Exception:
                continue
        return verified

    def cache_hit_rate(self) -> float:
        """The hybrid overlay's headline performance number."""
        return self.overlay.cache_hit_rate()
