"""Runnable models of the DOSNs the survey discusses by name.

Each module composes the substrate packages into the architecture of one
surveyed system, reproducing its defining mechanism:

==============  ==============================================================
System          Defining composition
==============  ==============================================================
PeerSoN [16]    DHT lookup + public-key wrapped content + asynchronous DHT
                mailboxes (:mod:`repro.systems.peerson`)
Safebook [17]   matryoshka friend rings for anonymity + innermost-shell
                mirrors for availability (:mod:`repro.systems.safebook`)
Cachet [18]     hybrid DHT/gossip-cache overlay + CP-ABE hybrid encryption
                + per-post comment keys (:mod:`repro.systems.cachet`)
Supernova [20]  super-peer index + uptime-tracked storekeeper agreements
                (:mod:`repro.systems.supernova`)
Diaspora [4]    pod federation + per-aspect symmetric keys with rotation
                (:mod:`repro.systems.diaspora`)
Cuckoo [22]     follower-push (unstructured) + DHT-pull (structured)
                microblogging (:mod:`repro.systems.cuckoo`)
Prpl [15]       per-user butler federating unstructured device storage,
                butlers in a structured ring (:mod:`repro.systems.prpl`)
==============  ==============================================================

flyByNight [10] lives in :mod:`repro.acl.flybynight` (it is a centralized-
OSN retrofit, not a DOSN) and Persona [14] in :mod:`repro.acl.persona`.
"""

from repro.systems.cachet import CachetNetwork
from repro.systems.cuckoo import CuckooNetwork
from repro.systems.diaspora import DiasporaNetwork
from repro.systems.peerson import PeersonNetwork
from repro.systems.prpl import PrplNetwork
from repro.systems.safebook import SafebookNetwork
from repro.systems.supernova import SupernovaNetwork

__all__ = [
    "CachetNetwork", "CuckooNetwork", "DiasporaNetwork", "PeersonNetwork",
    "PrplNetwork", "SafebookNetwork", "SupernovaNetwork",
]
