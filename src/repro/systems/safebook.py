"""Safebook: privacy by leveraging real-life trust (Cutillo et al.).

As the paper describes it: Safebook builds "a concentric circle of friends
around each user, which makes it possible to communicate with the user
without revealing identity or even IP address" (Section V-B), uses a
structured overlay for lookup (Section II-B), and relies on digital
signatures (Section IV).

Composition: each user's **matryoshka** (from
:mod:`repro.search.friend_routing`) provides anonymous request routing; the
innermost shell doubles as the user's **mirrors** — friends who hold a
signed, encrypted replica of the profile and serve it while the owner is
offline.  The result is the Safebook trade: availability and anonymity both
come from real-life friends, so both inherit the friends' uptime.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.crypto.symmetric import StreamCipher, random_key
from repro.dosn.identity import Identity, KeyRegistry, create_identity
from repro.exceptions import AccessDeniedError, SearchError, StorageError
from repro.integrity.envelope import MessageEnvelope, open_envelope, seal
from repro.search.friend_routing import Matryoshka, RoutedRequest
from repro.stack import (AclLayer, ContentItem, IntegrityLayer, LayerSpec,
                         PlacementLayer, ProtectionStack, SystemSpec,
                         register_system)

SAFEBOOK_SPEC = register_system(SystemSpec(
    name="safebook",
    citation="Cutillo et al.",
    overlay="concentric matryoshka shells over real-life trust + "
            "structured lookup",
    layers=(
        LayerSpec("integrity", "signed message envelope",
                  table1_rows=("Integrity of data owner and data content",),
                  detail="profile sealed under the owner's signature "
                         "(Section IV)"),
        LayerSpec("acl", "friend-group stream cipher",
                  table1_rows=("Symmetric key encryption",),
                  detail="one group key per owner, held by friends"),
        LayerSpec("placement", "shell-1 mirror replication",
                  table1_rows=("Privacy of searcher",),
                  detail="innermost-shell friends mirror the profile and "
                         "answer anonymously routed requests "
                         "(Section V-B)"),
    )))


class SafebookNetwork:
    """A Safebook deployment over a social graph."""

    def __init__(self, graph: nx.Graph, seed: int = 0, depth: int = 3,
                 level: str = "TOY") -> None:
        self.graph = graph
        self.depth = depth
        self.level = level
        self.rng = _random.Random(seed)
        self.registry = KeyRegistry()
        self.identities: Dict[str, Identity] = {}
        self.online: Dict[str, bool] = {}
        self._group_keys: Dict[str, bytes] = {}
        #: owner -> mirror -> encrypted signed profile replica
        self._mirrors: Dict[str, Dict[str, bytes]] = {}
        self._shells: Dict[str, Matryoshka] = {}
        for node in graph.nodes:
            name = str(node)
            identity = create_identity(
                name, level, _random.Random(f"{name}/{seed}"))
            self.registry.register(identity)
            self.identities[name] = identity
            self.online[name] = True
            self._group_keys[name] = random_key(32, self.rng)
        self.stack = ProtectionStack([
            IntegrityLayer(post=self._seal_profile,
                           read=self._open_envelope,
                           spec=SAFEBOOK_SPEC.layers[0]),
            AclLayer(post=self._group_encrypt, read=self._group_decrypt,
                     spec=SAFEBOOK_SPEC.layers[1]),
            PlacementLayer(post=self._mirror_out, read=self._mirror_fetch,
                           spec=SAFEBOOK_SPEC.layers[2]),
        ], spec=SAFEBOOK_SPEC)

    def _matryoshka(self, core: str) -> Matryoshka:
        shells = self._shells.get(core)
        if shells is None:
            shells = Matryoshka(self.graph, core, depth=self.depth)
            self._shells[core] = shells
        return shells

    # -- stack layer hooks -------------------------------------------------------

    def _seal_profile(self, item: ContentItem) -> None:
        envelope = seal(self.identities[item.author].signer, item.author,
                        item.payload, issued_at=item.meta.get("now", 0.0),
                        rng=self.rng)
        import json
        item.payload = json.dumps({
            "sender": envelope.sender, "body": envelope.body.hex(),
            "issued_at": envelope.issued_at,
            "sequence": envelope.sequence,
            "signature": list(envelope.signature),
        }).encode()

    def _group_encrypt(self, item: ContentItem) -> None:
        item.payload = StreamCipher(
            self._group_keys[item.author]).encrypt(item.payload, self.rng)

    def _mirror_out(self, item: ContentItem) -> None:
        mirrors = self._matryoshka(item.author).shells[0]
        self._mirrors[item.author] = {mirror: item.payload
                                      for mirror in mirrors}
        item.meta["mirrors"] = len(mirrors)

    def _mirror_fetch(self, item: ContentItem) -> None:
        owner = item.author
        shells = self._matryoshka(owner)
        request = shells.route_request(item.reader, self.rng)
        for relay in request.path:
            if not self.online.get(relay, False):
                raise SearchError(
                    f"relay {relay!r} on the shell path is offline")
        mirror = request.path[-1]  # innermost shell member
        blob = self._mirrors.get(owner, {}).get(mirror)
        if blob is None:
            if self.online.get(owner, False):
                blob = next(iter(self._mirrors.get(owner, {}).values()),
                            None)
            if blob is None:
                raise StorageError(
                    f"no online mirror holds {owner!r}'s profile")
        item.meta["request"] = request
        item.meta["mirror"] = mirror
        item.payload = blob

    def _group_decrypt(self, item: ContentItem) -> None:
        owner = item.author
        if item.reader != owner and item.reader not in set(
                str(n) for n in self.graph.neighbors(owner)):
            raise AccessDeniedError(
                f"{item.reader!r} is not a friend of {owner!r}")
        item.payload = StreamCipher(
            self._group_keys[owner]).decrypt(item.payload)

    def _open_envelope(self, item: ContentItem) -> None:
        import json
        data = json.loads(item.payload.decode())
        envelope = MessageEnvelope(
            sender=data["sender"], recipient=None,
            body=bytes.fromhex(data["body"]),
            issued_at=data["issued_at"], expires_at=None,
            sequence=data["sequence"],
            signature=tuple(data["signature"]))
        item.result = open_envelope(
            envelope, self.registry.get(item.author).verify_key)

    # -- profile publication with mirroring -----------------------------------------

    def publish_profile(self, owner: str, profile: bytes,
                        now: float = 0.0) -> int:
        """Sign + encrypt the profile and replicate to shell-1 mirrors.

        Returns the number of mirrors provisioned.  The envelope signature
        gives owner/content integrity (a mirror cannot alter the profile
        undetected); the group key restricts readability to friends.
        """
        item = ContentItem(author=owner, payload=profile,
                           meta={"now": now})
        self.stack.post(item)
        return item.meta["mirrors"]

    def _decrypt_and_verify(self, owner: str, reader: str,
                            blob: bytes) -> bytes:
        item = ContentItem(author=owner, reader=reader, payload=blob)
        self.stack.read(item, only=("acl", "integrity"))
        return item.result

    # -- anonymous retrieval through the shells ---------------------------------------

    def retrieve_profile(self, requester: str, owner: str
                         ) -> Tuple[bytes, RoutedRequest, str]:
        """Fetch ``owner``'s profile anonymously via their matryoshka.

        The request enters at a random outermost-shell node and is relayed
        inward; the innermost relay (a mirror) serves the replica — so the
        profile is retrievable *and* the owner never learns who asked,
        even while offline.  Raises :class:`StorageError` when neither the
        owner nor any mirror is online.
        """
        item = ContentItem(author=owner, reader=requester)
        self.stack.read(item)
        return item.result, item.meta["request"], item.meta["mirror"]

    def availability(self, owner: str, probes: int = 50,
                     offline_probability: float = 0.5,
                     seed: int = 0) -> float:
        """Fraction of random up/down patterns under which the profile is
        servable by owner-or-mirrors — friend-powered availability."""
        rng = _random.Random(seed)
        mirrors = list(self._mirrors.get(owner, {}))
        hits = 0
        for _ in range(probes):
            owner_up = rng.random() > offline_probability
            any_mirror_up = any(rng.random() > offline_probability
                                for _ in mirrors)
            hits += owner_up or any_mirror_up
        return hits / probes
