"""PeerSoN: P2P social networking over a DHT (Buchegger et al.).

As the paper describes it: PeerSoN "utilize[s] structured control overlay"
(a DHT lookup service), uses **public key encryption** for content
(Section III-C), digital signatures for integrity (Section IV), and keys
"distributed out-of-band like physical meeting" (Section IV-A).

Composition: :class:`~repro.overlay.chord.ChordRing` for lookup/storage +
per-item public-key wrapped content keys + the
:class:`~repro.dosn.identity.KeyRegistry` out-of-band channel + asynchronous
DHT mailboxes so two peers who are never online simultaneously can still
exchange messages (PeerSoN's headline feature).
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Tuple

from repro.crypto import elgamal
from repro.crypto.hashing import hkdf
from repro.crypto.symmetric import AuthenticatedCipher, random_key
from repro.dosn.identity import Identity, KeyRegistry, create_identity
from repro.exceptions import AccessDeniedError, DecryptionError, StorageError
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.stack import (AclLayer, ContentItem, LayerSpec, PlacementLayer,
                         ProtectionStack, SystemSpec, register_system)

PEERSON_SPEC = register_system(SystemSpec(
    name="peerson",
    citation="Buchegger et al.",
    overlay="structured control overlay (Chord DHT lookup + storage)",
    layers=(
        LayerSpec("acl", "public-key wrapped content keys",
                  table1_rows=("Public key encryption",),
                  detail="per-item content key, ElGamal-wrapped for each "
                         "friend; keys exchanged out of band "
                         "(Section III-C / IV-A)"),
        LayerSpec("placement", "Chord DHT put",
                  detail="replicated DHT storage; mailboxes enable "
                         "asynchronous delivery"),
    )))


class PeersonNetwork:
    """A PeerSoN deployment: DHT + public-key encryption + DHT mailboxes."""

    def __init__(self, seed: int = 0, replication: int = 2,
                 level: str = "TOY") -> None:
        self.fabric = Fabric.create(seed=seed)
        self.sim = self.fabric.sim
        self.network = self.fabric.network
        self.ring = ChordRing(self.fabric, replication=replication)
        self.registry = KeyRegistry()
        self.level = level
        self.rng = _random.Random(seed)
        self.identities: Dict[str, Identity] = {}
        self.friends: Dict[str, set] = {}
        self._mailbox_counters: Dict[str, int] = {}
        self._built = False
        self.stack = ProtectionStack([
            AclLayer(post=self._wrap_for_friends, read=self._unwrap,
                     spec=PEERSON_SPEC.layers[0]),
            PlacementLayer(post=self._dht_put, read=self._dht_get,
                           spec=PEERSON_SPEC.layers[1]),
        ], spec=PEERSON_SPEC, tracer=self.fabric.tracer,
            metrics=self.fabric.metrics)

    # -- membership --------------------------------------------------------------

    def register(self, name: str) -> Identity:
        """Join: create identity, publish public keys out-of-band, join DHT."""
        identity = create_identity(name, self.level,
                                   _random.Random(f"{name}/{self.rng.random()}"))
        self.registry.register(identity)
        self.identities[name] = identity
        self.friends[name] = set()
        self.ring.add_node(name)
        self._built = False
        return identity

    def befriend(self, a: str, b: str) -> None:
        """The 'physical meeting': both sides learn authenticated keys."""
        self.friends[a].add(b)
        self.friends[b].add(a)

    def _ensure_built(self) -> None:
        if not self._built:
            self.ring.build()
            self._built = True

    # -- stack layer hooks -------------------------------------------------------

    def _wrap_for_friends(self, item: ContentItem) -> None:
        content_key = random_key(32, self.rng)
        wraps: Dict[str, str] = {}
        for friend in sorted(self.friends[item.author]) + [item.author]:
            public = self.registry.get(friend).encryption_key
            wraps[friend] = elgamal.encrypt_bytes(public, content_key,
                                                  self.rng).hex()
        payload = AuthenticatedCipher(content_key).encrypt(item.payload,
                                                           rng=self.rng)
        import json
        item.payload = json.dumps({"wraps": wraps,
                                   "payload": payload.hex()}).encode()

    def _dht_put(self, item: ContentItem) -> None:
        item.cid = f"peerson/{item.author}/{item.meta['item_id']}"
        self.ring.put(item.author, item.cid, item.payload)

    def _dht_get(self, item: ContentItem) -> None:
        item.payload, _ = self.ring.get(item.reader, item.cid)

    def _unwrap(self, item: ContentItem) -> None:
        import json
        record = json.loads(item.payload.decode())
        wrap = record["wraps"].get(item.reader)
        if wrap is None:
            raise AccessDeniedError(
                f"{item.reader!r} has no wrapped key on {item.cid!r}")
        private = self.identities[item.reader].encryption_key
        try:
            content_key = elgamal.decrypt_bytes(private, bytes.fromhex(wrap))
            item.result = AuthenticatedCipher(content_key).decrypt(
                bytes.fromhex(record["payload"]))
        except DecryptionError:
            raise AccessDeniedError(
                f"{item.reader!r} cannot unwrap {item.cid!r}")

    # -- content: public-key wrapped, DHT stored -----------------------------------

    def post(self, author: str, item_id: str, content: bytes) -> str:
        """Encrypt for the author's friends and store under a DHT key."""
        self._ensure_built()
        item = ContentItem(author=author, payload=content,
                           meta={"item_id": item_id})
        self.stack.post(item)
        return item.cid

    def read(self, reader: str, dht_key: str) -> bytes:
        """Fetch from the DHT and unwrap with the reader's private key."""
        self._ensure_built()
        item = ContentItem(author="", reader=reader, cid=dht_key)
        self.stack.read(item)
        return item.result

    # -- asynchronous messaging through the DHT -------------------------------------

    def send_async(self, sender: str, recipient: str,
                   message: bytes) -> str:
        """Drop an encrypted message into the recipient's DHT mailbox.

        Works while the recipient is offline — the PeerSoN scenario of two
        phones never awake at the same time.
        """
        self._ensure_built()
        public = self.registry.get(recipient).encryption_key
        blob = elgamal.encrypt_bytes(public, message, self.rng)
        index = self._mailbox_counters.get(recipient, 0)
        self._mailbox_counters[recipient] = index + 1
        dht_key = f"peerson/mailbox/{recipient}/{index}"
        self.ring.put(sender, dht_key, blob)
        return dht_key

    def fetch_mailbox(self, owner: str) -> List[bytes]:
        """Drain every pending mailbox entry (decrypting locally)."""
        self._ensure_built()
        private = self.identities[owner].encryption_key
        messages: List[bytes] = []
        for index in range(self._mailbox_counters.get(owner, 0)):
            dht_key = f"peerson/mailbox/{owner}/{index}"
            try:
                blob, _ = self.ring.get(owner, dht_key)
            except StorageError:
                continue
            messages.append(elgamal.decrypt_bytes(private, blob))
        return messages

    def go_offline(self, name: str) -> None:
        """Take a peer down (its DHT node too)."""
        self.ring.nodes[name].online = False

    def go_online(self, name: str) -> None:
        """Bring a peer back."""
        self.ring.nodes[name].online = True
