"""Cuckoo: decentralized socio-aware microblogging (Xu et al.).

As the paper describes it: "The hybrid control overlay of Cuckoo uses
structured lookup for finding rare items, whereas, the unstructured lookup
helps with the fast discovery of popular items" (Section II-B).

Composition: a follower graph drives **push dissemination** (gossip along
social edges — the unstructured side, which is why popular posts arrive
"for free"), while every post is also stored in a Chord DHT so that rare
content and missed posts remain retrievable by **structured pull**.
:meth:`CuckooNetwork.read` implements exactly the Cuckoo decision: check
the local push inbox first, fall back to the DHT.
"""

from __future__ import annotations

import random as _random
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import OverlayError, StorageError
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.stack import (ContentItem, LayerSpec, PlacementLayer,
                         ProtectionStack, SystemSpec, register_system)

CUCKOO_SPEC = register_system(SystemSpec(
    name="cuckoo",
    citation="Xu et al.",
    overlay="hybrid: unstructured follower push + structured DHT pull",
    layers=(
        LayerSpec("placement", "follower push + Chord DHT store",
                  detail="breadth-first socio-aware push; the DHT copy "
                         "is the catch-up pull path (Section II-B)"),
    ),
    notes="microblogging: content is public, so the pipeline is "
          "placement-only — no ACL or integrity layer"))


class CuckooNetwork:
    """A Cuckoo deployment: follower-push + DHT-pull microblogging."""

    def __init__(self, seed: int = 0, replication: int = 2,
                 push_fanout: int = 8) -> None:
        self.fabric = Fabric.create(seed=seed)
        self.sim = self.fabric.sim
        self.network = self.fabric.network
        self.ring = ChordRing(self.fabric, replication=replication)
        self.rng = _random.Random(seed)
        self.push_fanout = push_fanout
        self.followers: Dict[str, Set[str]] = {}
        self.following: Dict[str, Set[str]] = {}
        #: user -> post id -> content, delivered by push
        self.inboxes: Dict[str, Dict[str, bytes]] = {}
        self._sequence = 0
        self._built = False
        self.push_deliveries = 0
        self.pull_fetches = 0
        self.stack = ProtectionStack([
            PlacementLayer(post=self._store_and_push,
                           read=self._inbox_or_pull,
                           spec=CUCKOO_SPEC.layers[0]),
        ], spec=CUCKOO_SPEC, tracer=self.fabric.tracer,
            metrics=self.fabric.metrics)

    # -- membership -----------------------------------------------------------------

    def register(self, name: str) -> None:
        """Join the microblogging overlay."""
        self.ring.add_node(name)
        self.followers[name] = set()
        self.following[name] = set()
        self.inboxes[name] = {}
        self._built = False

    def follow(self, follower: str, publisher: str) -> None:
        """Subscribe: future posts are pushed along the social overlay."""
        if follower not in self.followers or publisher not in self.followers:
            raise OverlayError("both users must be registered")
        self.followers[publisher].add(follower)
        self.following[follower].add(publisher)

    def _ensure_built(self) -> None:
        if not self._built:
            self.ring.build()
            self._built = True

    # -- stack layer hooks -------------------------------------------------------

    def _store_and_push(self, item: ContentItem) -> None:
        author, text = item.author, item.payload
        item.cid = f"cuckoo/{author}/{self._sequence}"
        self._sequence += 1
        self.ring.put(author, item.cid, text)
        # breadth-first push through the follower graph
        visited: Set[str] = {author}
        queue = deque([(author, follower)
                       for follower in sorted(self.followers[author])])
        while queue:
            relay, target = queue.popleft()
            if target in visited:
                continue
            visited.add(target)
            if not self.network.is_online(target):
                continue  # missed push; DHT pull will catch them up
            self.network.rpc(relay, target, kind="cuckoo_push")
            self.inboxes[target][item.cid] = text
            self.push_deliveries += 1
            # socio-aware relay: co-followers of the same publisher
            co_followers = [f for f in sorted(self.followers[author])
                            if f not in visited]
            for next_target in co_followers[:self.push_fanout]:
                queue.append((target, next_target))

    def _inbox_or_pull(self, item: ContentItem) -> None:
        pushed = self.inboxes.get(item.reader, {}).get(item.cid)
        if pushed is not None:
            item.result = (pushed, "push")
            return
        value, _ = self.ring.get(item.reader, item.cid)
        self.inboxes[item.reader][item.cid] = value
        self.pull_fetches += 1
        item.result = (value, "pull")

    # -- publish: push to followers + structured store --------------------------------

    def post(self, author: str, text: bytes) -> str:
        """Publish: DHT store (pull path) + social push to online followers.

        Push propagates breadth-first through the follower set (followers
        relay to co-followers, Cuckoo's socio-aware trick) with a fanout
        bound; offline followers simply miss the push — the DHT copy is
        their catch-up path.
        """
        self._ensure_built()
        item = ContentItem(author=author, payload=text)
        self.stack.post(item)
        return item.cid

    # -- read: unstructured first, structured fallback ----------------------------------

    def read(self, reader: str, post_id: str) -> Tuple[bytes, str]:
        """The Cuckoo split: inbox (push) hit or DHT (pull) fallback."""
        self._ensure_built()
        item = ContentItem(author="", reader=reader, cid=post_id)
        self.stack.read(item)
        return item.result

    def push_hit_rate(self) -> float:
        """Fraction of reads served by the unstructured push path."""
        total = self.push_deliveries + self.pull_fetches
        return self.push_deliveries / total if total else 0.0

    def go_offline(self, name: str) -> None:
        """Take a peer down (misses pushes from now on)."""
        self.ring.nodes[name].online = False

    def go_online(self, name: str) -> None:
        """Bring a peer back (catch-up happens via pull)."""
        self.ring.nodes[name].online = True
