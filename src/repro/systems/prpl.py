"""Prpl: a personal-cloud "butler" federating each user's devices.

As the paper describes it: in Prpl's hybrid organization, "users are
allowed to store their data in a distributed and unstructured way, and
then there is a process per user that federates the distributed storage of
each user and act as a super peer.  These super peers form a structured
overlay of storage" (Section II-B).

Composition: each user owns several **devices** (unstructured personal
storage — items live on whichever device created them) plus one **butler**
(Prpl's per-user federating process) that indexes the user's items across
devices.  The butlers join a Chord ring, so finding *any* user's item is
structured (O(log n) to the butler) followed by the butler's device-local
redirect — the two-tier lookup Prpl's design promises.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import LookupError_, OverlayError, StorageError
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing, LookupResult
from repro.overlay.network import SimNode
from repro.stack import (ContentItem, LayerSpec, PlacementLayer,
                         ProtectionStack, SystemSpec, register_system)

PRPL_SPEC = register_system(SystemSpec(
    name="prpl",
    citation="personal-cloud butler design",
    overlay="two-tier: unstructured per-user devices under a structured "
            "butler Chord ring",
    layers=(
        LayerSpec("placement", "device store + butler index",
                  detail="items live on whichever device created them; "
                         "the butler federates and indexes them "
                         "(Section II-B)"),
    ),
    notes="placement-only pipeline: Prpl's contribution is the storage "
          "organization, not content cryptography"))


class Device(SimNode):
    """One of a user's devices: dumb unstructured item storage."""

    def __init__(self, device_id: str, owner: str) -> None:
        super().__init__(device_id)
        self.owner = owner
        self.items: Dict[str, bytes] = {}


class PrplNetwork:
    """A Prpl deployment: devices + butlers + a butler Chord ring."""

    def __init__(self, seed: int = 0) -> None:
        self.fabric = Fabric.create(seed=seed)
        self.sim = self.fabric.sim
        self.network = self.fabric.network
        self.ring = ChordRing(self.fabric, replication=2)
        self.rng = _random.Random(seed)
        self.devices: Dict[str, Device] = {}
        #: user -> their device ids
        self.user_devices: Dict[str, List[str]] = {}
        #: user -> item -> device id holding it (the butler's index)
        self.butler_index: Dict[str, Dict[str, str]] = {}
        self._built = False
        self.stack = ProtectionStack([
            PlacementLayer(post=self._device_store, read=self._butler_fetch,
                           spec=PRPL_SPEC.layers[0]),
        ], spec=PRPL_SPEC, tracer=self.fabric.tracer,
            metrics=self.fabric.metrics)

    # -- enrollment ------------------------------------------------------------------

    def register(self, user: str, device_count: int = 2) -> List[str]:
        """Create a user: a butler (ring member) plus their devices."""
        if user in self.user_devices:
            raise OverlayError(f"{user!r} already registered")
        self.ring.add_node(f"butler:{user}")
        self._built = False
        device_ids = []
        for index in range(device_count):
            device_id = f"{user}/dev{index}"
            device = Device(device_id, user)
            self.devices[device_id] = device
            self.network.register(device)
            device_ids.append(device_id)
        self.user_devices[user] = device_ids
        self.butler_index[user] = {}
        return device_ids

    def _ensure_built(self) -> None:
        if not self._built:
            self.ring.build()
            self._built = True

    # -- stack layer hooks -------------------------------------------------------

    def _device_store(self, item: ContentItem) -> None:
        user, item_id = item.author, item.meta["item_id"]
        device_ids = self.user_devices.get(user)
        if not device_ids:
            raise OverlayError(f"{user!r} is not registered")
        device_id = item.meta.get("device_id")
        if device_id is None:
            device_id = self.rng.choice(device_ids)
        if device_id not in device_ids:
            raise OverlayError(f"{device_id!r} is not {user}'s device")
        self.devices[device_id].items[item_id] = item.payload
        self.butler_index[user][item_id] = device_id
        self.network.rpc(device_id, f"butler:{user}", kind="prpl_index")
        item.meta["device_id"] = device_id

    def _butler_fetch(self, item: ContentItem) -> None:
        owner, item_id = item.author, item.meta["item_id"]
        start = f"butler:{item.reader}"
        if start not in self.ring.nodes:
            raise OverlayError(f"{item.reader!r} is not registered")
        # structured phase: route to the owner's butler by name
        result = self.ring.lookup(start, f"butler:{owner}")
        hops = result.hops
        butler = f"butler:{owner}"
        if not self.network.is_online(butler):
            raise LookupError_(f"{owner!r}'s butler is offline")
        ok, _ = self.network.rpc(result.owner, butler, kind="prpl_butler")
        hops += 1
        device_id = self.butler_index.get(owner, {}).get(item_id)
        if device_id is None:
            raise StorageError(f"{owner!r} has no item {item_id!r}")
        device = self.devices[device_id]
        ok, _ = self.network.rpc(butler, device_id, kind="prpl_device")
        hops += 1
        if not ok or item_id not in device.items:
            raise StorageError(
                f"device {device_id!r} holding {item_id!r} is offline")
        item.result = (device.items[item_id], hops)

    # -- storing: unstructured, but indexed by the butler ------------------------------

    def store(self, user: str, item_id: str, content: bytes,
              device_id: Optional[str] = None) -> str:
        """Store on one of the user's devices; the butler learns where.

        Devices are picked arbitrarily (the 'distributed and unstructured'
        half); only the butler's index makes the item findable.
        """
        item = ContentItem(author=user, payload=content,
                           meta={"item_id": item_id, "device_id": device_id})
        self.stack.post(item)
        return item.meta["device_id"]

    # -- lookup: structured to the butler, one hop to the device -----------------------

    def fetch(self, requester: str, owner: str,
              item_id: str) -> Tuple[bytes, int]:
        """Find ``owner``'s item from anywhere: ring -> butler -> device.

        Returns ``(content, total hops)``.  The butler being a ring node
        means any user's butler is reachable in O(log n); the final hop is
        the butler's device redirect.
        """
        self._ensure_built()
        item = ContentItem(author=owner, reader=requester,
                           meta={"item_id": item_id})
        self.stack.read(item)
        return item.result

    # -- failure knobs ------------------------------------------------------------------

    def device_offline(self, device_id: str) -> None:
        """A phone runs out of battery (items on it become unreachable)."""
        self.devices[device_id].online = False

    def butler_offline(self, user: str) -> None:
        """The federating process dies (nothing of the user is findable)."""
        self.ring.nodes[f"butler:{user}"].online = False
