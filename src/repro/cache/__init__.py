"""Hot-path read caching for the DOSN (per-reader, chain-verified).

The package behind ``DosnConfig(cache=CacheConfig(...))``:

* :class:`CacheConfig` — the frozen knob surface (off by default);
* :class:`VerifiedContentCache` — per-reader LRU of verified posts,
  keyed by cid and invalidated via the author's hash-chain head;
* :class:`SocialPrefetcher` — warms caches along social edges with
  friends' timeline heads, through the batched
  :meth:`~repro.dosn.storage.StorageBackend.get_many` read path;
* :class:`LRUMap` — the deterministic eviction primitive.

Nothing is ever served from cache without re-checking the author's
signed chain head — see :mod:`repro.cache.content` for the rule, and
``docs/performance.md`` for the tier diagram and wire-cost analysis.
"""

from repro.cache.config import CacheConfig
from repro.cache.content import CacheEntry, VerifiedContentCache
from repro.cache.lru import LRUMap
from repro.cache.prefetch import SocialPrefetcher

__all__ = ["CacheConfig", "CacheEntry", "LRUMap", "SocialPrefetcher",
           "VerifiedContentCache"]
