"""Social prefetch: warm a reader's cache with friends' timeline heads.

The social graph *is* the access predictor in an OSN — what a reader
fetches next is overwhelmingly the newest posts of their friends
(the observation socially-aware DHT placement builds on).  The
prefetcher exploits it on the read side: on ``befriend`` (and on
demand) it batch-fetches the newest posts of a reader's friends through
:meth:`StorageBackend.get_many`, opens them through the normal
decrypt + verify pipeline, and seeds the
:class:`~repro.cache.content.VerifiedContentCache` — so the reader's
next ``feed`` is served warm.

Prefetching is best-effort: unavailable or unverifiable posts are simply
skipped (the feed path will report them properly), and nothing enters
the cache without passing the full verification pipeline first.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.content import VerifiedContentCache
from repro.exceptions import ReproError
from repro.obs.trace import NOOP_TRACER

__all__ = ["SocialPrefetcher"]


class SocialPrefetcher:
    """Warms per-reader caches along social edges.

    The four callbacks decouple the prefetcher from
    :class:`~repro.dosn.api.DosnNetwork` (which wires them to its users,
    storage backend and protection stack):

    * ``view_of(reader, author)`` — sync and return the reader's
      chain-verified view of the author (or ``None``);
    * ``fetch_many(reader, cids)`` — the batched storage read; returns
      ``cid -> blob-like | exception``;
    * ``open_post(reader, author, blob, cid)`` — decrypt + verify one
      fetched blob (raises on violation).
    """

    def __init__(self, cache: VerifiedContentCache, depth: int,
                 view_of: Callable[[str, str], object],
                 fetch_many: Callable[[str, List[str]], Dict[str, object]],
                 open_post: Callable[[str, str, bytes, str], object],
                 metrics=None, tracer=None) -> None:
        self.cache = cache
        self.depth = depth
        self._view_of = view_of
        self._fetch_many = fetch_many
        self._open_post = open_post
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.prefetched = 0

    def warm(self, reader: str, friends: Iterable[str]) -> int:
        """Prefetch ``friends``' newest posts into ``reader``'s cache.

        Returns how many posts were verified and cached.  Already-cached
        cids are skipped before any fetch is issued, so repeated warming
        is idempotent and (warm) free.
        """
        if self.depth <= 0:
            return 0
        wanted: List[Tuple[str, str]] = []   # (author, cid), fetch order
        views: Dict[str, object] = {}
        for author in sorted(set(friends)):
            if author == reader:
                continue
            view = self._view_of(reader, author)
            if view is None:
                continue
            views[author] = view
            seen = set()
            cids: List[str] = []
            for entry in view.entries:
                cid = entry.payload.decode()
                if cid not in seen:
                    seen.add(cid)
                    cids.append(cid)
            for cid in cids[-self.depth:]:
                if not self.cache.contains(reader, cid):
                    wanted.append((author, cid))
        if not wanted:
            return 0
        with self.tracer.span("cache.prefetch", reader=reader,
                              wanted=len(wanted)) as span:
            blobs = self._fetch_many(reader, [cid for _, cid in wanted])
            warmed = 0
            for author, cid in wanted:
                got = blobs.get(cid)
                if got is None or isinstance(got, Exception):
                    continue
                blob = getattr(got, "blob", got)
                if getattr(got, "degraded", False):
                    continue  # possibly-stale copies never enter the cache
                try:
                    post = self._open_post(reader, author, blob, cid)
                except ReproError:
                    continue
                self.cache.insert(reader, author, cid, post,
                                  views[author],
                                  version=getattr(got, "version", None))
                warmed += 1
            span.set_attr("warmed", warmed)
        self.prefetched += warmed
        if self.metrics is not None and warmed:
            self.metrics.inc("cache.prefetched", warmed)
        return warmed
