"""The per-reader verified-content cache, invalidated by chain heads.

Socially-aware caching is what makes P2P OSN feeds viable at scale
(Nasir et al.; LibreSocial): a reader's feed re-fetches mostly-unchanged
friend timelines, so the decrypt + verify + fetch work is redundant for
every post the reader already verified.  This cache keeps those verified
posts per reader — but **never** serves a byte without re-checking it
against the author's hash-chain head first:

* a cache entry records the author's verified chain position (head hash
  and entry count) at insert time;
* a hit is only served after comparing that position against the
  reader's *current* chain-verified view of the author
  (:class:`~repro.integrity.hashchain.TimelineView`);
* if the chain advanced, the new entries are scanned — an author
  re-listing the cached cid means the stored object was overwritten
  (re-sealed / re-encrypted), so the stale copy is **evicted** and the
  read falls through to the verified fetch path;
* if the chain advanced without touching the cid, the entry is re-pinned
  to the new head and served.

The chain view itself is chain-and-signature verified on acceptance
(:meth:`TimelineView.accept`), so a hit's freshness evidence carries the
author's signature — a Byzantine holder cannot forge it, which is what
lets E16 claim *zero unverified bytes served from cache*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.lru import LRUMap

__all__ = ["CacheEntry", "VerifiedContentCache"]


@dataclass
class CacheEntry:
    """One cached verified post plus its freshness evidence."""

    author: str
    #: the verified post object (a :class:`repro.dosn.user.VerifiedPost`)
    post: object
    #: author's chain head hash when this entry was (re)validated
    head: bytes
    #: how many chain entries the reader had verified at that point
    chain_len: int
    #: storage version that produced the post (quorum backends), if known
    version: Optional[int] = None


class VerifiedContentCache:
    """Per-reader LRU of verified posts, keyed by cid.

    The cache holds no cryptographic authority of its own: validation is
    delegated to the chain view the caller passes into :meth:`lookup` /
    :meth:`insert`, which must be the reader's *verified* replica of the
    author's timeline (or the author's own timeline for self-reads).
    Counters are mirrored into the fabric metrics registry when one is
    attached: ``cache.hits`` / ``cache.misses`` / ``cache.invalidations``
    / ``cache.evictions`` / ``cache.insertions``.
    """

    def __init__(self, capacity_per_reader: int, metrics=None) -> None:
        self.capacity = capacity_per_reader
        self.metrics = metrics
        self._readers: Dict[str, LRUMap] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.insertions = 0

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"cache.{name}")

    def _lru(self, reader: str) -> LRUMap:
        lru = self._readers.get(reader)
        if lru is None:
            lru = LRUMap(self.capacity)
            self._readers[reader] = lru
        return lru

    @property
    def evictions(self) -> int:
        """Entries pushed out by capacity pressure, across all readers."""
        return sum(lru.evictions for lru in self._readers.values())

    def contains(self, reader: str, cid: str) -> bool:
        """Whether an entry exists (no validation, no counters)."""
        lru = self._readers.get(reader)
        return lru is not None and cid in lru

    def size(self, reader: str) -> int:
        """How many entries a reader currently holds."""
        lru = self._readers.get(reader)
        return len(lru) if lru is not None else 0

    # -- the hot path ---------------------------------------------------------

    def lookup(self, reader: str, author: str, cid: str,
               view) -> Optional[CacheEntry]:
        """A validated hit for ``cid``, or ``None`` (miss / invalidated).

        ``view`` is the reader's current chain-verified view of the
        author (anything exposing ``head_hash`` and ``entries``).  Every
        hit is re-checked against it — an entry is served only when the
        author's chain either has not moved or provably did not re-list
        the cid.
        """
        lru = self._readers.get(reader)
        entry = lru.get(cid) if lru is not None else None
        if entry is None or entry.author != author:
            self.misses += 1
            self._count("misses")
            return None
        if view is None:
            # No verified view of the author: freshness cannot be
            # re-checked, so the cache refuses to serve.
            self.misses += 1
            self._count("misses")
            return None
        if view.head_hash != entry.head:
            marker = cid.encode()
            republished = any(e.payload == marker
                              for e in view.entries[entry.chain_len:])
            if republished:
                # The author overwrote this cid since we cached it:
                # the copy is provably stale — evict and miss.
                lru.remove(cid)
                self.invalidations += 1
                self._count("invalidations")
                self.misses += 1
                self._count("misses")
                return None
            # Chain advanced without touching the cid: re-pin the
            # freshness evidence so the next check is O(1) again.
            entry.head = view.head_hash
            entry.chain_len = len(view.entries)
        self.hits += 1
        self._count("hits")
        return entry

    def insert(self, reader: str, author: str, cid: str, post,
               view, version: Optional[int] = None) -> CacheEntry:
        """Cache a verified post, pinned to the author's current head."""
        entry = CacheEntry(author=author, post=post,
                           head=view.head_hash,
                           chain_len=len(view.entries), version=version)
        before = self._lru(reader).evictions
        self._lru(reader).put(cid, entry)
        if self._lru(reader).evictions > before:
            self._count("evictions")
        self.insertions += 1
        self._count("insertions")
        return entry

    def invalidate(self, reader: str, cid: str) -> bool:
        """Explicitly drop one reader's entry; returns whether it existed."""
        lru = self._readers.get(reader)
        if lru is None or lru.remove(cid) is None:
            return False
        self.invalidations += 1
        self._count("invalidations")
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(len(lru) for lru in self._readers.values())
        return (f"VerifiedContentCache(readers={len(self._readers)}, "
                f"entries={total}, hits={self.hits}, misses={self.misses})")
