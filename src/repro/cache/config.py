"""Configuration for the hot-path read cache (:mod:`repro.cache`).

One frozen dataclass gates everything the cache subsystem does, mirroring
how :class:`repro.storage2.ReplicationConfig` gates the quorum store:
``DosnConfig(cache=CacheConfig(...))`` switches the read side of a
:class:`~repro.dosn.api.DosnNetwork` onto the cached + batched paths;
``cache=None`` (the default) keeps every legacy code path — and every
committed experiment table — byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from repro.exceptions import SimulationError

__all__ = ["CacheConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for the per-reader verified-content cache and batched reads.

    ``capacity_per_reader=0`` disables the LRU tier while keeping batched
    feed fan-out on — the configuration E16 uses to price batching and
    caching separately.
    """

    #: max verified posts cached per reader (LRU eviction beyond this;
    #: 0 disables the cache tier entirely)
    capacity_per_reader: int = 256
    #: warm both sides' caches with the new friend's recent posts on
    #: ``befriend`` (and via :meth:`DosnNetwork.prefetch` on demand)
    prefetch: bool = True
    #: how many of a friend's newest posts a prefetch pulls
    prefetch_depth: int = 2
    #: route ``feed`` fetches through :meth:`StorageBackend.get_many`
    #: (per-holder coalesced lookups) instead of one fetch per cid
    batch_reads: bool = True

    def __post_init__(self) -> None:
        if self.capacity_per_reader < 0:
            raise SimulationError("capacity_per_reader must be >= 0")
        if self.prefetch_depth < 0:
            raise SimulationError("prefetch_depth must be >= 0")

    @property
    def caching(self) -> bool:
        """Whether the verified-content LRU tier is active."""
        return self.capacity_per_reader > 0

    def with_overrides(self, **changes) -> "CacheConfig":
        """A copy with some fields replaced (sweep helper)."""
        return _dc_replace(self, **changes)
