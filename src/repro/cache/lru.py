"""A minimal ordered LRU map (the cache tier's eviction mechanism).

Deliberately dependency-free and deterministic: recency is the only
eviction signal, so two runs at the same seed touch and evict in exactly
the same order — the property every experiment table in this repo leans
on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, Tuple, TypeVar

from repro.exceptions import SimulationError

__all__ = ["LRUMap"]

K = TypeVar("K")
V = TypeVar("V")


class LRUMap(Generic[K, V]):
    """An ordered map evicting the least-recently-used entry at capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("LRUMap capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        #: entries pushed out by capacity pressure (not explicit removes)
        self.evictions = 0

    def get(self, key: K) -> Optional[V]:
        """The value for ``key`` (refreshing its recency), else ``None``."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def peek(self, key: K) -> Optional[V]:
        """The value for ``key`` without touching recency."""
        return self._data.get(key)

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert/refresh an entry; returns the evicted ``(key, value)``.

        ``None`` when nothing was pushed out.
        """
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            evicted = self._data.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    def remove(self, key: K) -> Optional[V]:
        """Drop an entry (explicit invalidation; not counted as eviction)."""
        return self._data.pop(key, None)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        """Keys, least-recently-used first."""
        return iter(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUMap({len(self._data)}/{self.capacity})"
