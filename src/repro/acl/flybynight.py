"""flyByNight: encrypted content on an untrusted provider via proxy crypto.

Section II-A of the paper: flyByNight (Lucas & Borisov) keeps the existing
centralized OSN but stores *only ciphertexts* there; the provider doubles
as a re-encryption proxy so the author uploads one ciphertext and the
server re-targets it per friend — never touching plaintext or user keys.

This module composes :mod:`repro.crypto.proxy_reencryption` with the
central-provider model:

* :class:`FlyByNightServer` — the untrusted provider: ciphertext store +
  re-encryption proxy + an explicit ``provider_view`` for the exposure
  experiments;
* :class:`FlyByNightUser`  — key management on the client side, exactly as
  the original deployed inside the user's browser.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import proxy_reencryption as pre
from repro.crypto.groups import group_for_level
from repro.exceptions import AccessDeniedError, CryptoError

_DEFAULT_RNG = _random.Random(0xF1B)


@dataclass
class _StoredMessage:
    author: str
    header: pre.PRECiphertext  # encrypted under the author's own key
    payload: bytes


class FlyByNightServer:
    """The honest-but-curious OSN provider acting as re-encryption proxy."""

    def __init__(self) -> None:
        #: message id -> stored ciphertext
        self._messages: Dict[str, _StoredMessage] = {}
        #: (author, friend) -> re-encryption key deposited by the users
        self._rekeys: Dict[Tuple[str, str], pre.ReEncryptionKey] = {}

    def deposit_rekey(self, author: str, friend: str,
                      token: pre.ReEncryptionKey) -> None:
        """Store the (author -> friend) re-targeting token."""
        self._rekeys[(author, friend)] = token

    def upload(self, author: str, message_id: str,
               header: pre.PRECiphertext, payload: bytes) -> None:
        """Accept one ciphertext upload (a single upload serves all friends)."""
        self._messages[message_id] = _StoredMessage(
            author=author, header=header, payload=payload)

    def fetch_for(self, reader: str, message_id: str
                  ) -> Tuple[pre.PRECiphertext, bytes]:
        """Re-encrypt the stored header toward ``reader`` and serve it.

        The server performs real cryptographic work here but learns
        nothing: it holds only ciphertexts and exponent quotients.
        """
        message = self._messages.get(message_id)
        if message is None:
            raise AccessDeniedError(f"no message {message_id!r}")
        if reader == message.author:
            return message.header, message.payload
        token = self._rekeys.get((message.author, reader))
        if token is None:
            raise AccessDeniedError(
                f"no re-encryption key from {message.author!r} to "
                f"{reader!r}; the author has not friended them")
        return pre.reencrypt(token, message.header), message.payload

    def provider_view(self) -> Dict[str, object]:
        """Everything the provider observes: authors, sizes, friend edges."""
        return {
            "message_authors": {mid: m.author
                                for mid, m in self._messages.items()},
            "payload_sizes": {mid: len(m.payload)
                              for mid, m in self._messages.items()},
            "edges": sorted(self._rekeys),
        }


class FlyByNightUser:
    """Client-side key management (the browser-extension role)."""

    def __init__(self, name: str, level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self.rng = rng or _DEFAULT_RNG
        self.group = group_for_level(level)
        self.keypair = pre.generate_keypair(level, self.rng)
        self._sequence = 0

    def friend(self, other: "FlyByNightUser",
               server: FlyByNightServer) -> None:
        """Run the pairwise re-key exchange and deposit tokens (both ways)."""
        server.deposit_rekey(self.name, other.name,
                             pre.rekey(self.keypair, other.keypair))
        server.deposit_rekey(other.name, self.name,
                             pre.rekey(other.keypair, self.keypair))

    def post(self, server: FlyByNightServer, text: str) -> str:
        """Encrypt once under the author's own key; upload; return the id."""
        header, payload = pre.encrypt_bytes(
            self.keypair.public, self.group, text.encode(), self.rng)
        message_id = f"{self.name}/{self._sequence}"
        self._sequence += 1
        server.upload(self.name, message_id, header, payload)
        return message_id

    def read(self, server: FlyByNightServer, message_id: str) -> str:
        """Fetch (server re-encrypts toward us) and decrypt locally."""
        header, payload = server.fetch_for(self.name, message_id)
        return pre.decrypt_bytes(self.keypair, header, payload).decode()
