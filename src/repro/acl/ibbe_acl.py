"""Identity-based broadcast access control (Section III-E of the paper).

"Considering the OSNs, the username or e-mail addresses of the members can
be used as their public key for sending encrypted messages.  From this point
of view, IBBE is more flexible than ABE, since it addresses individual
recipients instead of the whole group.  Removing a recipient from the list
would then have no extra cost."

Every published item is IBBE-encrypted to the *current* member list; headers
are constant-size (two group elements) regardless of audience — the property
experiment E3 contrasts with the linear headers of :class:`PublicKeyACL`.
Revocation is exactly a list edit: zero cryptographic work, as the paper
claims (history remains under the old audience, same caveat as everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.acl.base import AccessControlScheme, GroupState, SchemeProperties
from repro.crypto.ibbe import IBBE, IBBEHeader, IBBEUserKey
from repro.exceptions import AccessDeniedError, DecryptionError


@dataclass
class _IBBERecord:
    """One item: constant-size IBBE header + AEAD payload."""

    header: IBBEHeader
    blob: bytes


class IBBEACL(AccessControlScheme):
    """Delerablée-IBBE based access control with free revocation."""

    scheme_name = "ibbe"
    table1_row = "Identity based broadcast encryption"

    PROPERTIES = SchemeProperties(
        scheme_name="ibbe",
        table1_category="Data privacy",
        table1_row="Identity based broadcast encryption",
        group_creation="none (identities are the keys)",
        join_cost="none for future items (identity joins the list)",
        revocation_cost="none (drop the identity from the list)",
        header_growth="O(1) — constant-size header",
        hides_from_provider=True,
    )

    def __init__(self, *args, level: str = "TOY", max_group_size: int = 64,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ibbe = IBBE(level)
        self.pk, self._msk = self.ibbe.setup(max_group_size, self.rng)
        self._user_keys: Dict[str, IBBEUserKey] = {}

    # -- hooks ----------------------------------------------------------------

    def _provision_user(self, user: str) -> None:
        # The PKG extracts once per identity; users never exchange keys.
        self._user_keys[user] = self._msk.extract(user)
        self.meter.count("key_distribution")

    def _setup_group(self, group: GroupState) -> None:
        pass  # the identity list *is* the group

    def _on_member_added(self, group: GroupState, user: str) -> None:
        pass  # future encryptions simply include the identity

    def _on_member_revoked(self, group: GroupState, user: str) -> None:
        pass  # "no extra cost": future encryptions exclude the identity

    def _encrypt_item(self, group: GroupState, plaintext: bytes) -> _IBBERecord:
        recipients = sorted(group.members)
        self.meter.count("pub_encrypt")
        header, blob = self.ibbe.encrypt_bytes(self.pk, recipients, plaintext,
                                               self.rng)
        # Constant-size header: C1 + C2, independent of |recipients|.
        self.meter.count("header_bytes", len(header.c1.to_bytes())
                         + len(header.c2.to_bytes()))
        return _IBBERecord(header=header, blob=blob)

    def _decrypt_item(self, group: GroupState, record: _IBBERecord,
                      user: str) -> bytes:
        key = self._user_keys.get(user)
        if key is None:
            raise AccessDeniedError(f"{user!r} has no extracted IBBE key")
        self.meter.count("pub_decrypt")
        try:
            return self.ibbe.decrypt_bytes(self.pk, record.header,
                                           record.blob, key)
        except DecryptionError:
            raise AccessDeniedError(
                f"{user!r} is not in this item's broadcast set")
