"""Persona: user-defined privacy, including against *applications*.

Section II-A of the paper: "Persona took the power of OSN providers in the
case of determining the accessibility of users data for applications.
Indeed, it gave users this autonomy to decide who can see their private
data, even for the applications, with fine-grained policies."  And from
the conclusion's concerns list ("Protection of data from API"): "after the
user employs an application, he implicitly gives the application all the
accesses to the personal content it wants" — the anti-pattern Persona
fixes.

Model (faithful to Persona's design):

* every user runs their own CP-ABE authority and tags each datum with an
  attribute policy (``"friends"``, ``"family and not-apps"`` — any
  expression over their attribute vocabulary);
* *applications* are principals like any other: installing an app means
  issuing it an ABE key for an explicit attribute set, nothing more;
* an app's :meth:`Application.visible_data` is therefore decided by the
  user's policies, not by the platform — contrast with
  :class:`LegacyPlatform`, which reproduces the all-access anti-pattern
  so tests and E-benches can measure the difference.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.abe import ABECiphertext, ABESecretKey, CPABE, PolicyNode
from repro.exceptions import AccessDeniedError, DecryptionError

_DEFAULT_RNG = _random.Random(0x9E125)


@dataclass
class _Datum:
    """One protected item: policy string + hybrid ABE ciphertext."""

    name: str
    policy: str
    header: ABECiphertext
    blob: bytes


class PersonaUser:
    """A user running their own attribute authority over their data."""

    def __init__(self, name: str, level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self.rng = rng or _DEFAULT_RNG
        self.abe = CPABE(level)
        self.pk, self._msk = self.abe.setup(self.rng)
        self._data: Dict[str, _Datum] = {}
        #: principal (friend or app) -> attributes granted
        self.grants: Dict[str, Tuple[str, ...]] = {}

    # -- data -----------------------------------------------------------------

    def store(self, name: str, content: bytes, policy: str) -> None:
        """Protect a datum under an attribute policy."""
        header, blob = self.abe.encrypt_bytes(self.pk, content, policy,
                                              self.rng)
        self._data[name] = _Datum(name=name, policy=policy, header=header,
                                  blob=blob)

    def data_names(self) -> List[str]:
        """All datum names (names are not secret; contents are)."""
        return sorted(self._data)

    # -- principals (friends and applications alike) ----------------------------

    def issue_key(self, principal: str,
                  attributes: Sequence[str]) -> ABESecretKey:
        """Grant a principal exactly ``attributes`` — the Persona move.

        Whether ``principal`` is a friend or an application makes no
        difference: its view of the user's data is whatever the issued
        attributes satisfy, forever decided by the user.
        """
        self.grants[principal] = tuple(sorted(attributes))
        return self.abe.keygen(self.pk, self._msk, list(attributes),
                               self.rng)

    def read(self, name: str, key: ABESecretKey) -> bytes:
        """Decrypt a datum with a principal's key; policy decides."""
        datum = self._data.get(name)
        if datum is None:
            raise AccessDeniedError(f"{self.name!r} has no datum {name!r}")
        try:
            return self.abe.decrypt_bytes(datum.header, datum.blob, key)
        except DecryptionError:
            raise AccessDeniedError(
                f"key attributes {sorted(key.attributes)} do not satisfy "
                f"policy {datum.policy!r} of {name!r}")


@dataclass
class Application:
    """A third-party app holding one Persona-issued key per user."""

    app_id: str
    keys: Dict[str, ABESecretKey] = field(default_factory=dict)

    def install(self, user: PersonaUser,
                requested_attributes: Sequence[str]) -> Tuple[str, ...]:
        """Install: the *user* decides which attributes the app gets.

        Returns the attributes actually granted (the user's policy could
        prune the request; here the grant is explicit and visible).
        """
        key = user.issue_key(f"app:{self.app_id}", requested_attributes)
        self.keys[user.name] = key
        return tuple(sorted(requested_attributes))

    def visible_data(self, user: PersonaUser) -> Dict[str, bytes]:
        """Everything this app can actually decrypt of the user's data."""
        key = self.keys.get(user.name)
        if key is None:
            raise AccessDeniedError(
                f"{self.app_id!r} is not installed for {user.name!r}")
        visible: Dict[str, bytes] = {}
        for name in user.data_names():
            try:
                visible[name] = user.read(name, key)
            except AccessDeniedError:
                continue
        return visible


class LegacyPlatform:
    """The anti-pattern: installing an app grants everything.

    "After the user employs an application, he implicitly gives the
    application all the accesses to the personal content it wants."
    Plaintext store + install-equals-full-access, kept as the measured
    baseline for the API-protection concern.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Dict[str, bytes]] = {}
        self._installed: Dict[str, set] = {}

    def store(self, user: str, name: str, content: bytes) -> None:
        """Upload plaintext to the platform."""
        self._data.setdefault(user, {})[name] = content

    def install_app(self, user: str, app_id: str) -> None:
        """One bit of consent, unlimited scope."""
        self._installed.setdefault(app_id, set()).add(user)

    def app_view(self, app_id: str, user: str) -> Dict[str, bytes]:
        """What the app sees: everything, always."""
        if user not in self._installed.get(app_id, set()):
            raise AccessDeniedError(f"{app_id!r} not installed by {user!r}")
        return dict(self._data.get(user, {}))
