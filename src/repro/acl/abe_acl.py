"""Attribute-based access control (Section III-D of the paper).

The Persona / Cachet pattern: the data owner runs a CP-ABE attribute
authority, friends receive keys for attribute sets ("relative", "doctor",
...), and every item is encrypted under a policy string — "it is enough to
do a single encryption operation to construct a new group".

Group membership here is *implicit*: a group is the set of users whose
attributes satisfy the policy.  For the uniform E3 lifecycle we model a
named group as the dedicated attribute ``group:<name>#<epoch>``; revocation
then follows the paper exactly: "Usual revocation methods for ABE use
frequent re-keying.  To remove the accessibility of a revoked user, the
previous data which were accessible by him must be encrypted and stored
again" — the epoch is bumped, survivors get new keys, and the back
catalogue is re-encrypted under the new policy.  Experiment E3 measures
this as the expensive tail that offsets ABE's one-encryption group creation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.acl.base import AccessControlScheme, GroupState, SchemeProperties
from repro.crypto.abe import (ABECiphertext, ABESecretKey, CPABE, PolicyNode,
                              parse_policy)
from repro.exceptions import AccessDeniedError, DecryptionError, PolicyError


@dataclass
class _ABERecord:
    """One item: the ABE header and AEAD payload."""

    header: ABECiphertext
    blob: bytes


class ABEACL(AccessControlScheme):
    """CP-ABE based access control with epoch re-keying revocation."""

    scheme_name = "cp-abe"
    table1_row = "Attribute based encryption"

    PROPERTIES = SchemeProperties(
        scheme_name="cp-abe",
        table1_category="Data privacy",
        table1_row="Attribute based encryption",
        group_creation="a single encryption under a policy",
        join_cost="issue one attribute key",
        revocation_cost="re-key survivors + re-encrypt affected data",
        header_growth="O(policy leaves), independent of member count",
        hides_from_provider=True,
    )

    def __init__(self, *args, level: str = "TOY", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.abe = CPABE(level)
        self.pk, self._msk = self.abe.setup(self.rng)
        #: user -> accumulated attribute strings
        self._attributes: Dict[str, set] = {}
        #: user -> issued key (re-issued when attributes change)
        self._keys: Dict[str, ABESecretKey] = {}
        #: group -> revocation epoch
        self._epochs: Dict[str, int] = {}

    # -- attribute management (the Persona-style public API) -----------------

    def grant_attribute(self, user: str, attribute: str) -> None:
        """Give ``user`` an attribute and re-issue their key."""
        self.register_user(user)
        self._attributes[user].add(attribute)
        self._reissue(user)

    def strip_attribute(self, user: str, attribute: str) -> None:
        """Remove an attribute from a user's key.

        Note this alone does NOT revoke access to already-published items —
        the old key may have been cached.  True revocation is the epoch
        bump in :meth:`_on_member_revoked`.
        """
        self._attributes.get(user, set()).discard(attribute)
        self._reissue(user)

    def publish_with_policy(self, group_name: str, item_id: str,
                            plaintext: bytes,
                            policy: Union[str, PolicyNode]) -> None:
        """Persona-style publish under an arbitrary policy expression."""
        group = self._group(group_name)
        self.meter.count("pub_encrypt")
        header, blob = self.abe.encrypt_bytes(self.pk, plaintext, policy,
                                              self.rng)
        group.items[item_id] = _ABERecord(header=header, blob=blob)

    def _reissue(self, user: str) -> None:
        attrs = sorted(self._attributes[user])
        if attrs:
            self._keys[user] = self.abe.keygen(self.pk, self._msk, attrs,
                                               self.rng)
        else:
            self._keys.pop(user, None)
        self.meter.count("key_distribution")

    # -- group-attribute helpers ----------------------------------------------

    def _group_attribute(self, group_name: str) -> str:
        return f"group:{group_name}#{self._epochs[group_name]}"

    # -- hooks ------------------------------------------------------------------

    def _provision_user(self, user: str) -> None:
        self._attributes[user] = set()

    def _setup_group(self, group: GroupState) -> None:
        self._epochs[group.name] = 0
        attribute = self._group_attribute(group.name)
        for member in group.members:
            self._attributes[member].add(attribute)
            self._reissue(member)

    def _on_member_added(self, group: GroupState, user: str) -> None:
        self._attributes[user].add(self._group_attribute(group.name))
        self._reissue(user)

    def _on_member_revoked(self, group: GroupState, user: str) -> None:
        old_attribute = self._group_attribute(group.name)
        self._attributes[user].discard(old_attribute)
        self._reissue(user)
        # Epoch bump: fresh attribute for survivors...
        self._epochs[group.name] += 1
        new_attribute = self._group_attribute(group.name)
        for member in group.members:
            self._attributes[member].discard(old_attribute)
            self._attributes[member].add(new_attribute)
            self._reissue(member)
        # ...and the paper's mandated re-encryption of prior data.
        owner_key = self.abe.keygen(self.pk, self._msk, [old_attribute],
                                    self.rng)
        for item_id, record in list(group.items.items()):
            try:
                plaintext = self.abe.decrypt_bytes(record.header, record.blob,
                                                   owner_key)
            except DecryptionError:
                continue  # item was published under a custom policy
            header, blob = self.abe.encrypt_bytes(self.pk, plaintext,
                                                  new_attribute, self.rng)
            group.items[item_id] = _ABERecord(header=header, blob=blob)
            self.meter.count("reencryption")
            self.meter.count("pub_encrypt")

    def _encrypt_item(self, group: GroupState, plaintext: bytes) -> _ABERecord:
        self.meter.count("pub_encrypt")
        header, blob = self.abe.encrypt_bytes(
            self.pk, plaintext, self._group_attribute(group.name), self.rng)
        self.meter.count("header_bytes",
                         32 * (2 + 2 * len(header.leaves)))
        return _ABERecord(header=header, blob=blob)

    def _decrypt_item(self, group: GroupState, record: _ABERecord,
                      user: str) -> bytes:
        key = self._keys.get(user)
        if key is None:
            raise AccessDeniedError(f"{user!r} holds no attribute key")
        self.meter.count("pub_decrypt")
        try:
            return self.abe.decrypt_bytes(record.header, record.blob, key)
        except DecryptionError as exc:
            raise AccessDeniedError(
                f"{user!r}'s attributes do not satisfy the policy: {exc}")
