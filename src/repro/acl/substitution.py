"""Information substitution (Section III-A of the paper).

"Substitution means replacing real information with fake information.  This
solution is mostly used for hiding data from the service provider."  Two
surveyed designs are implemented:

* :class:`VirtualPrivateProfile` — the VPSN (Conti et al.) pattern: the
  provider stores *pseudo* field values while the real values travel only to
  trusted friends (here: encrypted under pairwise keys, processed "locally
  on the friends' systems").

* :class:`NoybDictionary` / :class:`NoybUser` — the NOYB (Guha et al.) atom
  swap: profile data is split into typed *atoms*; users who trust each
  other swap atoms of the same type inside a public dictionary.  The swap
  target index is derived by encrypting the user's own index with the
  group's secret, so only authorized users can trace a profile back to its
  real atoms — the provider sees a plausible but wrong profile.

These are the only Table I data-privacy rows that work *without* denying the
provider a readable profile (the provider sees something — it's just fake),
which is why experiment E8 scores them separately.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.acl.base import SchemeProperties
from repro.crypto.hashing import hmac_sha256
from repro.crypto.symmetric import AuthenticatedCipher, random_key
from repro.exceptions import AccessDeniedError

_DEFAULT_RNG = _random.Random(0x5B5)


PROPERTIES = SchemeProperties(
    scheme_name="substitution",
    table1_category="Data privacy",
    table1_row="Information substitution",
    group_creation="share the substitution secret with the group",
    join_cost="one secret distribution",
    revocation_cost="re-randomize swaps (new secret)",
    header_growth="none (provider sees a full fake profile)",
    hides_from_provider=True,
)


@dataclass
class VirtualPrivateProfile:
    """A profile whose provider-visible fields are decoys.

    The owner sets each field with a ``fake`` value (what the provider and
    strangers see) and a ``real`` value, encrypted per trusted friend.  The
    browser-extension deployment of VPSN corresponds to friends calling
    :meth:`friend_view` locally with their pairwise key.
    """

    owner: str
    _fake: Dict[str, str] = field(default_factory=dict)
    _real_encrypted: Dict[str, Dict[str, bytes]] = field(default_factory=dict)
    _friend_keys: Dict[str, bytes] = field(default_factory=dict)

    def add_friend(self, friend: str,
                   rng: Optional[_random.Random] = None) -> bytes:
        """Establish a pairwise key with a trusted friend (returned to them)."""
        key = random_key(32, rng or _DEFAULT_RNG)
        self._friend_keys[friend] = key
        # Re-protect already-set fields for the new friend.
        for name in self._real_encrypted:
            real = self._decrypt_own(name)
            self._real_encrypted[name][friend] = AuthenticatedCipher(
                key).encrypt(real.encode(), rng=rng or _DEFAULT_RNG)
        return key

    def set_field(self, name: str, real: str, fake: str,
                  rng: Optional[_random.Random] = None) -> None:
        """Publish ``fake`` to the provider; send ``real`` to friends only."""
        rng = rng or _DEFAULT_RNG
        self._fake[name] = fake
        self._real_encrypted[name] = {
            friend: AuthenticatedCipher(key).encrypt(real.encode(), rng=rng)
            for friend, key in self._friend_keys.items()
        }
        # The owner keeps their own copy under a reserved "friend" slot.
        own_key = self._friend_keys.setdefault(
            self.owner, random_key(32, rng))
        self._real_encrypted[name][self.owner] = AuthenticatedCipher(
            own_key).encrypt(real.encode(), rng=rng)

    def _decrypt_own(self, name: str) -> str:
        blob = self._real_encrypted[name][self.owner]
        key = self._friend_keys[self.owner]
        return AuthenticatedCipher(key).decrypt(blob).decode()

    def provider_view(self) -> Dict[str, str]:
        """What the (centralized) provider observes: only decoys."""
        return dict(self._fake)

    def friend_view(self, friend: str, friend_key: bytes) -> Dict[str, str]:
        """What a trusted friend reconstructs locally: the real fields."""
        result = {}
        for name, per_friend in self._real_encrypted.items():
            blob = per_friend.get(friend)
            if blob is None:
                raise AccessDeniedError(
                    f"{friend!r} was not granted field {name!r}")
            result[name] = AuthenticatedCipher(friend_key).decrypt(
                blob).decode()
        return result


# ---------------------------------------------------------------------------
# NOYB-style atom swapping
# ---------------------------------------------------------------------------

@dataclass
class NoybDictionary:
    """The public dictionary of atoms, one list ("cluster") per atom type.

    The dictionary itself is public — what protects users is that nobody
    without the group secret can tell *which* dictionary entry is a given
    user's real atom.
    """

    clusters: Dict[str, List[str]] = field(default_factory=dict)

    def add_atom(self, atom_type: str, value: str) -> int:
        """Insert an atom; returns its public index within the cluster."""
        cluster = self.clusters.setdefault(atom_type, [])
        cluster.append(value)
        return len(cluster) - 1

    def lookup(self, atom_type: str, index: int) -> str:
        """Public lookup by (type, index) — anyone can do this."""
        try:
            return self.clusters[atom_type][index]
        except (KeyError, IndexError):
            raise AccessDeniedError(
                f"no atom ({atom_type!r}, {index}) in the dictionary")

    def cluster_size(self, atom_type: str) -> int:
        """How many atoms of a type exist (the anonymity-set size)."""
        return len(self.clusters.get(atom_type, ()))


def _swap_index(secret: bytes, atom_type: str, own_index: int,
                cluster_size: int) -> int:
    """The encrypted-index hop: PRF(secret, type || index) mod cluster.

    "For swapping an atom, its index will be encrypted, and the content of
    the resulting index will be used for swapping."  Authorized users
    recompute this to trace the swap; the provider cannot.
    """
    tag = hmac_sha256(secret, f"{atom_type}:{own_index}".encode())
    return int.from_bytes(tag[:8], "big") % cluster_size


@dataclass
class NoybUser:
    """A user participating in NOYB atom swapping.

    ``publish_profile`` stores the user's real atoms in the dictionary but
    *displays* the atom found at the encrypted-index hop — someone else's
    atom of the same type.  Friends holding ``secret`` invert the hop.
    """

    name: str
    dictionary: NoybDictionary
    secret: bytes
    _own_indices: Dict[str, int] = field(default_factory=dict)

    def publish_atom(self, atom_type: str, value: str) -> None:
        """Contribute the real atom to the public dictionary."""
        self._own_indices[atom_type] = self.dictionary.add_atom(atom_type,
                                                                value)

    def displayed_profile(self) -> Dict[str, str]:
        """The provider-visible profile: swapped (fake-but-plausible) atoms."""
        result = {}
        for atom_type, own_index in self._own_indices.items():
            size = self.dictionary.cluster_size(atom_type)
            hop = _swap_index(self.secret, atom_type, own_index, size)
            result[atom_type] = self.dictionary.lookup(atom_type, hop)
        return result

    def real_profile_for(self, friend_secret: bytes) -> Dict[str, str]:
        """What a friend holding the group secret reconstructs.

        The friend sees the displayed (swapped) profile, recomputes the hop
        with the shared secret, checks it matches, and reads the *owner's*
        true atoms directly by inverting the published mapping.
        """
        if friend_secret != self.secret:
            raise AccessDeniedError("wrong substitution secret")
        return {atom_type: self.dictionary.lookup(atom_type, index)
                for atom_type, index in self._own_indices.items()}


# Claim our Table I row so the generated matrix reads it from here, not
# from a hand-maintained list in the benchmark.
from repro.stack.registry import register_properties as _register_properties

_register_properties(PROPERTIES, VirtualPrivateProfile, NoybUser)
