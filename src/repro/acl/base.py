"""Common machinery for access-control schemes (Section III of the paper).

The paper's central comparison (Table I, "Data privacy") is between six ways
of enforcing *access control management* — "to determine which part of data
being shared with whom".  Every scheme in this package implements the same
:class:`AccessControlScheme` contract so experiment E3 can drive the full
group lifecycle (create / publish / read / join / revoke) uniformly and
:class:`CostMeter` can account for what each scheme pays where.

The contract deliberately mirrors the paper's prose:

* ``create_group``  — "For each new group, a distinct key should be defined"
  (symmetric), "a single encryption operation" (ABE), etc.
* ``add_member``    — "Adding a user to the existing group means sharing the
  group key with that user."
* ``revoke_member`` — "For the revocation, we need to create a new key and
  re-encrypt the whole data" (symmetric) vs. "removing a recipient from the
  list would then have no extra cost" (IBBE).
"""

from __future__ import annotations

import abc
import random as _random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.exceptions import AccessDeniedError


@dataclass
class CostMeter:
    """Operation accounting shared by all ACL schemes.

    Counters use scheme-neutral names so benchmark output is comparable:
    ``sym_encrypt``, ``pub_encrypt`` (any asymmetric op, incl. pairings),
    ``key_distribution`` (one credential delivered to one user),
    ``reencryption`` (one stored item re-protected), and ``header_bytes``
    (access-control metadata attached to ciphertexts).
    """

    counts: Counter = field(default_factory=Counter)

    def count(self, operation: str, n: int = 1) -> None:
        """Record ``n`` occurrences of ``operation``."""
        self.counts[operation] += n

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy for reporting."""
        return dict(self.counts)

    def reset(self) -> None:
        """Zero all counters (benchmarks call this between phases)."""
        self.counts.clear()

    def total(self, *operations: str) -> int:
        """Sum of the listed counters (all counters when none given)."""
        if not operations:
            return sum(self.counts.values())
        return sum(self.counts[op] for op in operations)


@dataclass
class GroupState:
    """Bookkeeping for one access group inside a scheme."""

    name: str
    members: set = field(default_factory=set)
    #: item id -> scheme-specific ciphertext record
    items: Dict[str, object] = field(default_factory=dict)


class AccessControlScheme(abc.ABC):
    """Abstract group-based access control over byte-string content.

    Concrete schemes provide the crypto; this base class provides group
    bookkeeping, membership checks and the shared :class:`CostMeter`.
    Users are referred to by opaque string ids; each scheme is responsible
    for provisioning per-user key material in :meth:`register_user`.
    """

    #: human-readable scheme label used by the Table I generator
    scheme_name: str = "abstract"
    #: Table I solution row this scheme instantiates
    table1_row: str = ""

    def __init__(self, rng: Optional[_random.Random] = None) -> None:
        self.rng = rng or _random.Random(0xAC1)
        self.meter = CostMeter()
        self.groups: Dict[str, GroupState] = {}
        self.users: set = set()

    # -- user / group lifecycle -------------------------------------------

    def register_user(self, user: str) -> None:
        """Provision key material for a new user (idempotent)."""
        if user in self.users:
            return
        self.users.add(user)
        self._provision_user(user)

    def create_group(self, name: str, members: List[str]) -> GroupState:
        """Create a group with an initial member list."""
        if name in self.groups:
            raise AccessDeniedError(f"group {name!r} already exists")
        for member in members:
            self.register_user(member)
        group = GroupState(name=name, members=set(members))
        self.groups[name] = group
        self._setup_group(group)
        return group

    def add_member(self, group_name: str, user: str) -> None:
        """Grant ``user`` access to the group (and, per scheme, its history)."""
        group = self._group(group_name)
        self.register_user(user)
        if user in group.members:
            return
        group.members.add(user)
        self._on_member_added(group, user)

    def revoke_member(self, group_name: str, user: str) -> None:
        """Remove ``user``; the scheme decides what re-protection costs."""
        group = self._group(group_name)
        if user not in group.members:
            raise AccessDeniedError(f"{user!r} is not in group {group_name!r}")
        group.members.discard(user)
        self._on_member_revoked(group, user)

    # -- content ------------------------------------------------------------

    def publish(self, group_name: str, item_id: str, plaintext: bytes) -> None:
        """Encrypt ``plaintext`` so current group members can read it."""
        group = self._group(group_name)
        group.items[item_id] = self._encrypt_item(group, plaintext)

    def read(self, group_name: str, item_id: str, user: str) -> bytes:
        """Decrypt an item as ``user``; raises on missing privileges.

        The membership check is *not* done by list lookup — the ciphertext
        itself must be undecryptable by non-members.  Schemes may raise
        :class:`~repro.exceptions.DecryptionError`, which is translated to
        :class:`~repro.exceptions.AccessDeniedError` here.
        """
        group = self._group(group_name)
        if item_id not in group.items:
            raise AccessDeniedError(f"no item {item_id!r} in {group_name!r}")
        return self._decrypt_item(group, group.items[item_id], user)

    def _group(self, name: str) -> GroupState:
        try:
            return self.groups[name]
        except KeyError:
            raise AccessDeniedError(f"unknown group {name!r}")

    # -- scheme-specific hooks ----------------------------------------------

    @abc.abstractmethod
    def _provision_user(self, user: str) -> None:
        """Create per-user key material."""

    @abc.abstractmethod
    def _setup_group(self, group: GroupState) -> None:
        """Create per-group key material for the initial member set."""

    @abc.abstractmethod
    def _on_member_added(self, group: GroupState, user: str) -> None:
        """Grant a new member access (including back-catalogue if supported)."""

    @abc.abstractmethod
    def _on_member_revoked(self, group: GroupState, user: str) -> None:
        """Re-protect the group after a revocation."""

    @abc.abstractmethod
    def _encrypt_item(self, group: GroupState, plaintext: bytes) -> object:
        """Produce the scheme-specific ciphertext record."""

    @abc.abstractmethod
    def _decrypt_item(self, group: GroupState, record: object,
                      user: str) -> bytes:
        """Recover plaintext with ``user``'s credentials or raise."""


@dataclass(frozen=True)
class SchemeProperties:
    """Qualitative properties used to regenerate Table I (experiment E1)."""

    scheme_name: str
    table1_category: str
    table1_row: str
    group_creation: str       # e.g. "one key", "one encryption"
    join_cost: str            # what adding a member costs
    revocation_cost: str      # what removing a member costs
    header_growth: str        # how metadata scales with group size
    hides_from_provider: bool
