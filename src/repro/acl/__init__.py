"""Data privacy & access control management (Section III / Table I).

Six solutions from the paper's Table I, one module each, all conforming to
:class:`repro.acl.base.AccessControlScheme` where the group lifecycle
applies:

===============================  ==========================================
Table I row                      Implementation
===============================  ==========================================
Information substitution         :mod:`repro.acl.substitution`
Symmetric key encryption         :class:`repro.acl.symmetric_acl.SymmetricKeyACL`
Public key encryption            :class:`repro.acl.publickey_acl.PublicKeyACL`
Attribute based encryption       :class:`repro.acl.abe_acl.ABEACL`
Identity based broadcast enc.    :class:`repro.acl.ibbe_acl.IBBEACL`
Hybrid encryption                :class:`repro.acl.hybrid_acl.HybridACL`
===============================  ==========================================

Plus the two named systems the paper singles out:
:mod:`repro.acl.hummingbird` (PRF/OPRF hashtag keys) and
:mod:`repro.acl.pad` (Frientegrity's ACL-as-PAD).
"""

from repro.acl.abe_acl import ABEACL
from repro.acl.base import AccessControlScheme, CostMeter, SchemeProperties
from repro.acl.hybrid_acl import HybridACL
from repro.acl.ibbe_acl import IBBEACL
from repro.acl.publickey_acl import PublicKeyACL
from repro.acl.symmetric_acl import SymmetricKeyACL

#: All lifecycle-capable schemes, keyed by their registry name
#: (used by experiment E3 and the Table I generator).
SCHEME_REGISTRY = {
    SymmetricKeyACL.scheme_name: SymmetricKeyACL,
    PublicKeyACL.scheme_name: PublicKeyACL,
    ABEACL.scheme_name: ABEACL,
    IBBEACL.scheme_name: IBBEACL,
    HybridACL.scheme_name: HybridACL,
}

__all__ = [
    "ABEACL",
    "AccessControlScheme",
    "CostMeter",
    "HybridACL",
    "IBBEACL",
    "PublicKeyACL",
    "SCHEME_REGISTRY",
    "SchemeProperties",
    "SymmetricKeyACL",
]
