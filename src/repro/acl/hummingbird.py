"""Hummingbird: privacy-preserving microblogging (Sections III-F and V-A).

De Cristofaro et al.'s Twitter-like design, as the paper describes it:

* "the symmetric key is derived by applying a combination of a PRF and a
  hash function on a particular part of message (hashtag)";
* "for the key dissemination an oblivious pseudo random function protocol
  must be followed between user and his friends";
* the (centralized, untrusted) server matches tweets to subscriptions by
  comparing *tags* it cannot invert — it never learns hashtags, tweet
  contents, or which interests a follower has.

Roles:

* :class:`HummingbirdServer`    — stores ciphertexts indexed by blinded tags;
  sees only pseudorandom identifiers (its view is exported for the E8
  exposure experiment).
* :class:`HummingbirdPublisher` — holds the OPRF secret; encrypts each tweet
  under ``K = F_s(hashtag)``; runs the OPRF *sender* side.
* :class:`HummingbirdFollower`  — runs the OPRF *receiver* side once per
  hashtag of interest; afterwards can match and decrypt all tweets with
  that hashtag, while the publisher never learned which hashtag it was.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import prf
from repro.crypto.hashing import hkdf
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import AccessDeniedError, DecryptionError

_DEFAULT_RNG = _random.Random(0x4B12D)


def _tag_from_key(tag_key: bytes) -> bytes:
    """The server-visible matching tag: a hash of the per-hashtag key."""
    return hkdf(tag_key, 16, info=b"repro/hummingbird/tag")


def _enc_key(tag_key: bytes) -> bytes:
    """The AEAD key derived from the same per-hashtag secret."""
    return hkdf(tag_key, 32, info=b"repro/hummingbird/enc")


@dataclass
class StoredTweet:
    """What the server stores: a blinded tag and an opaque ciphertext."""

    publisher: str
    tag: bytes
    ciphertext: bytes


@dataclass
class HummingbirdServer:
    """The honest-but-curious centralized matching server."""

    tweets: List[StoredTweet] = field(default_factory=list)

    def post(self, tweet: StoredTweet) -> None:
        """Accept a tweet (called by publishers)."""
        self.tweets.append(tweet)

    def match(self, tags: List[bytes]) -> List[StoredTweet]:
        """Deliver every stored tweet whose tag is subscribed to.

        The server compares opaque byte strings; it learns *that* a tweet
        matched a subscription but neither the hashtag nor the content.
        """
        wanted = set(tags)
        return [t for t in self.tweets if t.tag in wanted]

    def provider_view(self) -> List[Tuple[str, bytes]]:
        """Everything the server can observe: publishers and random-looking tags."""
        return [(t.publisher, t.tag) for t in self.tweets]


class HummingbirdPublisher:
    """A publisher with an OPRF secret over hashtags."""

    def __init__(self, name: str, level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self.rng = rng or _DEFAULT_RNG
        self._oprf_key = prf.generate_oprf_key(level, self.rng)
        self._level = level

    def _tag_key(self, hashtag: str) -> bytes:
        return prf.evaluate_locally(self._oprf_key, hashtag.encode())

    def tweet(self, server: HummingbirdServer, hashtag: str,
              message: str) -> None:
        """Encrypt under ``F_s(hashtag)`` and post to the server."""
        tag_key = self._tag_key(hashtag)
        ciphertext = AuthenticatedCipher(_enc_key(tag_key)).encrypt(
            message.encode(), rng=self.rng)
        server.post(StoredTweet(publisher=self.name,
                                tag=_tag_from_key(tag_key),
                                ciphertext=ciphertext))

    def serve_subscription(self, blinded: int) -> int:
        """OPRF sender step: evaluate on a blinded hashtag.

        The publisher authorizes a follower for *one* hashtag without
        learning which — this is the blind key dissemination of III-F.
        """
        return prf.evaluate_blinded(self._oprf_key, blinded)


class HummingbirdFollower:
    """A follower who subscribes to hashtags obliviously."""

    def __init__(self, name: str, level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self.rng = rng or _DEFAULT_RNG
        self._level = level
        #: (publisher, hashtag) -> per-hashtag key obtained via OPRF
        self._tag_keys: Dict[Tuple[str, str], bytes] = {}

    def subscribe(self, publisher: HummingbirdPublisher,
                  hashtag: str) -> None:
        """Run the two-move OPRF with the publisher for one hashtag."""
        request = prf.blind_request(hashtag.encode(), self._level, self.rng)
        evaluated = publisher.serve_subscription(request.blinded)
        self._tag_keys[(publisher.name, hashtag)] = request.finalize(evaluated)

    def subscription_tags(self) -> List[bytes]:
        """The opaque tags handed to the server for matching."""
        return [_tag_from_key(k) for k in self._tag_keys.values()]

    def fetch(self, server: HummingbirdServer) -> List[Tuple[str, str, str]]:
        """Pull and decrypt matching tweets: (publisher, hashtag, message)."""
        by_tag = {_tag_from_key(key): (pub_tag, key)
                  for pub_tag, key in self._tag_keys.items()}
        results = []
        for tweet in server.match(list(by_tag)):
            (publisher, hashtag), key = by_tag[tweet.tag]
            try:
                message = AuthenticatedCipher(_enc_key(key)).decrypt(
                    tweet.ciphertext)
            except DecryptionError:
                raise AccessDeniedError(
                    "tag matched but decryption failed (key mismatch)")
            results.append((publisher, hashtag, message.decode()))
        return results


# Hummingbird's PRF-keyed hashtag encryption is the paper's named example
# of hybrid protection in microblogging; claim the Table I row here.
from repro.stack.registry import register_mechanism as _register_mechanism

_register_mechanism("Data privacy", "Hybrid encryption",
                    HummingbirdPublisher)
