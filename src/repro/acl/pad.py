"""Persistent Authenticated Dictionary (PAD) and Frientegrity-style ACLs.

Section III-F of the paper: "The hybrid structure of the access control
lists (ACLs) in Frientegrity is organized in a persistent authenticated
dictionary (PAD).  Thus, ACLs are PADs, making it possible to access in
logarithmic time."

Implementation: a *functional treap* whose priorities are derived from the
key hash, which makes the shape history-independent — any insertion order of
the same key set yields the same tree and therefore the same root hash
(essential so two replicas agree on the authenticator).  Every update
returns a new PAD sharing structure with the old one: that is the
*persistent* part, giving cheap historical snapshots of the ACL (the
"which epoch was this user a member in?" queries Frientegrity needs).

Membership lookups return :class:`LookupProof` objects that a verifier can
check against a signed root hash in O(log n) — measured by experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.crypto.hashing import digest, digest_many
from repro.exceptions import IntegrityError

_EMPTY_HASH = digest(b"repro/pad/empty")


def _value_hash(value: bytes) -> bytes:
    return digest(b"repro/pad/value" + value)


def _priority(key: str) -> int:
    return int.from_bytes(digest(b"repro/pad/prio" + key.encode())[:8], "big")


@dataclass(frozen=True)
class _Node:
    key: str
    value: bytes
    left: Optional["_Node"]
    right: Optional["_Node"]
    hash: bytes


def _hash_node(key: str, value: bytes, left: Optional[_Node],
               right: Optional[_Node]) -> bytes:
    return digest_many([
        key.encode(), _value_hash(value),
        left.hash if left else _EMPTY_HASH,
        right.hash if right else _EMPTY_HASH,
    ])


def _make(key: str, value: bytes, left: Optional[_Node],
          right: Optional[_Node]) -> _Node:
    return _Node(key=key, value=value, left=left, right=right,
                 hash=_hash_node(key, value, left, right))


def _insert(node: Optional[_Node], key: str, value: bytes) -> _Node:
    if node is None:
        return _make(key, value, None, None)
    if key == node.key:
        return _make(key, value, node.left, node.right)
    if key < node.key:
        left = _insert(node.left, key, value)
        new = _make(node.key, node.value, left, node.right)
        if _priority(left.key) > _priority(new.key):
            # Rotate right to restore the heap property.
            return _make(left.key, left.value, left.left,
                         _make(new.key, new.value, left.right, new.right))
        return new
    right = _insert(node.right, key, value)
    new = _make(node.key, node.value, node.left, right)
    if _priority(right.key) > _priority(new.key):
        # Rotate left.
        return _make(right.key, right.value,
                     _make(new.key, new.value, new.left, right.left),
                     right.right)
    return new


def _merge(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    if left is None:
        return right
    if right is None:
        return left
    if _priority(left.key) > _priority(right.key):
        return _make(left.key, left.value, left.left,
                     _merge(left.right, right))
    return _make(right.key, right.value, _merge(left, right.left),
                 right.right)


def _delete(node: Optional[_Node], key: str) -> Optional[_Node]:
    if node is None:
        raise IntegrityError(f"key {key!r} not present")
    if key == node.key:
        return _merge(node.left, node.right)
    if key < node.key:
        return _make(node.key, node.value, _delete(node.left, key),
                     node.right)
    return _make(node.key, node.value, node.left, _delete(node.right, key))


@dataclass(frozen=True)
class ProofStep:
    """One ancestor on the lookup path.

    ``direction`` says which child the path continued into ('L'/'R'); the
    other child's hash plus this node's own data recompute the parent hash.
    """

    key: str
    value_hash: bytes
    other_child_hash: bytes
    direction: str


@dataclass(frozen=True)
class LookupProof:
    """Authenticated (non-)membership proof for one key.

    For a present key, ``found_value`` is its value and ``leaf_*`` describe
    the node itself; for an absent key the proof shows the search path ends
    at an empty slot.
    """

    key: str
    found_value: Optional[bytes]
    leaf_left_hash: bytes
    leaf_right_hash: bytes
    path: Tuple[ProofStep, ...]  # leaf-adjacent first, root last

    def root_hash(self) -> bytes:
        """Recompute the root authenticator this proof commits to."""
        if self.found_value is not None:
            acc = digest_many([
                self.key.encode(), _value_hash(self.found_value),
                self.leaf_left_hash, self.leaf_right_hash,
            ])
        else:
            acc = _EMPTY_HASH
        for step in self.path:
            if step.direction == "L":
                acc = digest_many([step.key.encode(), step.value_hash,
                                   acc, step.other_child_hash])
            else:
                acc = digest_many([step.key.encode(), step.value_hash,
                                   step.other_child_hash, acc])
        return acc


class PAD:
    """An immutable authenticated dictionary; updates return new PADs."""

    def __init__(self, _root: Optional[_Node] = None) -> None:
        self._root = _root

    # -- authenticated state -----------------------------------------------

    @property
    def root_hash(self) -> bytes:
        """The authenticator a writer signs and a verifier pins."""
        return self._root.hash if self._root else _EMPTY_HASH

    def __len__(self) -> int:
        def count(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)
        return count(self._root)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> Iterator[str]:
        """In-order key iteration."""
        def walk(node: Optional[_Node]) -> Iterator[str]:
            if node is None:
                return
            yield from walk(node.left)
            yield node.key
            yield from walk(node.right)
        return walk(self._root)

    # -- operations -----------------------------------------------------------

    def insert(self, key: str, value: bytes) -> "PAD":
        """A new PAD with ``key`` bound to ``value`` (O(log n) new nodes)."""
        return PAD(_insert(self._root, key, value))

    def delete(self, key: str) -> "PAD":
        """A new PAD without ``key``; raises if absent."""
        return PAD(_delete(self._root, key))

    def get(self, key: str) -> Optional[bytes]:
        """Unauthenticated point lookup."""
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return None

    def prove(self, key: str) -> LookupProof:
        """A (non-)membership proof checkable against :attr:`root_hash`."""
        steps: List[ProofStep] = []
        node = self._root
        while node is not None and node.key != key:
            if key < node.key:
                other = node.right.hash if node.right else _EMPTY_HASH
                steps.append(ProofStep(node.key, _value_hash(node.value),
                                       other, "L"))
                node = node.left
            else:
                other = node.left.hash if node.left else _EMPTY_HASH
                steps.append(ProofStep(node.key, _value_hash(node.value),
                                       other, "R"))
                node = node.right
        steps.reverse()
        if node is None:
            return LookupProof(key=key, found_value=None,
                               leaf_left_hash=_EMPTY_HASH,
                               leaf_right_hash=_EMPTY_HASH,
                               path=tuple(steps))
        return LookupProof(
            key=key, found_value=node.value,
            leaf_left_hash=node.left.hash if node.left else _EMPTY_HASH,
            leaf_right_hash=node.right.hash if node.right else _EMPTY_HASH,
            path=tuple(steps))


def verify_lookup(root_hash: bytes, proof: LookupProof) -> bool:
    """Check a lookup proof against a pinned root authenticator."""
    return proof.root_hash() == root_hash


class FrientegrityACL:
    """An ACL-as-PAD with versioned (persistent) history.

    Members map to role byte-strings.  Every mutation appends the new root
    to :attr:`history`, so clients can verify a member's status *at any past
    epoch* — the property Frientegrity's history trees cross-reference.
    """

    def __init__(self) -> None:
        self._versions: List[PAD] = [PAD()]

    @property
    def current(self) -> PAD:
        """The latest ACL snapshot."""
        return self._versions[-1]

    @property
    def history(self) -> List[bytes]:
        """Root hashes of every epoch, oldest first."""
        return [pad.root_hash for pad in self._versions]

    @property
    def epoch(self) -> int:
        """The current epoch number (== number of mutations)."""
        return len(self._versions) - 1

    def add_member(self, user: str, role: str = "reader") -> int:
        """Add/update a member; returns the new epoch."""
        self._versions.append(self.current.insert(user, role.encode()))
        return self.epoch

    def remove_member(self, user: str) -> int:
        """Remove a member; returns the new epoch."""
        self._versions.append(self.current.delete(user))
        return self.epoch

    def prove_membership(self, user: str,
                         epoch: Optional[int] = None) -> LookupProof:
        """Membership proof at an epoch (default: current)."""
        pad = self._versions[epoch if epoch is not None else -1]
        return pad.prove(user)

    def root_at(self, epoch: int) -> bytes:
        """The authenticator for a given epoch."""
        return self._versions[epoch].root_hash


# Frientegrity's ACL-as-PAD combines symmetric content keys with an
# authenticated dictionary — the paper files it under hybrid encryption.
from repro.stack.registry import register_mechanism as _register_mechanism

_register_mechanism("Data privacy", "Hybrid encryption", FrientegrityACL)
