"""Symmetric-key access control (Section III-B of the paper).

"In terms of access control management in the symmetric key encryption
systems, we should encrypt our data by the use of a symmetric key and then
share it with the users who we want to be able to decrypt our data.  For
each new group, a distinct key should be defined.  Adding a user to the
existing group means sharing the group key with that user.  For the
revocation, we need to create a new key and re-encrypt the whole data."

That last sentence is the scheme's defining cost and what experiment E3
measures: revocation here is O(items) re-encryptions + O(members) key
redistributions, the worst of all six schemes — but publish/read are the
cheapest.  The paper's caveat is also modelled: "if someone already
decrypted the data and kept a copy, we cannot revoke that" — see
``read_with_cached_key`` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.acl.base import AccessControlScheme, GroupState, SchemeProperties
from repro.crypto.symmetric import AuthenticatedCipher, random_key
from repro.exceptions import AccessDeniedError, DecryptionError


@dataclass
class _SymRecord:
    """One stored item: ciphertext plus the key epoch that protects it."""

    epoch: int
    blob: bytes


class SymmetricKeyACL(AccessControlScheme):
    """Per-group shared symmetric keys with rekey-and-re-encrypt revocation."""

    scheme_name = "symmetric"
    table1_row = "Symmetric key encryption"

    PROPERTIES = SchemeProperties(
        scheme_name="symmetric",
        table1_category="Data privacy",
        table1_row="Symmetric key encryption",
        group_creation="one fresh key + one distribution per member",
        join_cost="one key distribution",
        revocation_cost="rekey + re-encrypt every stored item",
        header_growth="O(1)",
        hides_from_provider=True,
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: (group, epoch) -> group key held by the owner
        self._group_keys: Dict[tuple, bytes] = {}
        #: group -> current key epoch
        self._epochs: Dict[str, int] = {}
        #: user -> {(group, epoch): key} — each member's private keyring
        self._keyrings: Dict[str, Dict[tuple, bytes]] = {}

    # -- hooks ----------------------------------------------------------------

    def _provision_user(self, user: str) -> None:
        self._keyrings[user] = {}

    def _setup_group(self, group: GroupState) -> None:
        self._epochs[group.name] = 0
        key = random_key(32, self.rng)
        self._group_keys[(group.name, 0)] = key
        for member in group.members:
            self._distribute(group.name, 0, member, key)

    def _distribute(self, group_name: str, epoch: int, user: str,
                    key: bytes) -> None:
        """Hand the (group, epoch) key to one member."""
        self._keyrings[user][(group_name, epoch)] = key
        self.meter.count("key_distribution")

    def _on_member_added(self, group: GroupState, user: str) -> None:
        epoch = self._epochs[group.name]
        self._distribute(group.name, epoch, user,
                         self._group_keys[(group.name, epoch)])

    def _on_member_revoked(self, group: GroupState, user: str) -> None:
        # New epoch, new key, redistribute, and re-encrypt the back catalogue.
        epoch = self._epochs[group.name] + 1
        self._epochs[group.name] = epoch
        new_key = random_key(32, self.rng)
        self._group_keys[(group.name, epoch)] = new_key
        for member in group.members:
            self._distribute(group.name, epoch, member, new_key)
        new_cipher = AuthenticatedCipher(new_key)
        for item_id, record in list(group.items.items()):
            old_key = self._group_keys[(group.name, record.epoch)]
            plaintext = AuthenticatedCipher(old_key).decrypt(record.blob)
            group.items[item_id] = _SymRecord(
                epoch=epoch, blob=new_cipher.encrypt(plaintext, rng=self.rng))
            self.meter.count("reencryption")
            self.meter.count("sym_encrypt")

    def _encrypt_item(self, group: GroupState, plaintext: bytes) -> _SymRecord:
        epoch = self._epochs[group.name]
        key = self._group_keys[(group.name, epoch)]
        self.meter.count("sym_encrypt")
        blob = AuthenticatedCipher(key).encrypt(plaintext, rng=self.rng)
        self.meter.count("header_bytes", 0)  # no per-member header
        return _SymRecord(epoch=epoch, blob=blob)

    def _decrypt_item(self, group: GroupState, record: _SymRecord,
                      user: str) -> bytes:
        keyring = self._keyrings.get(user, {})
        key = keyring.get((group.name, record.epoch))
        if key is None:
            raise AccessDeniedError(
                f"{user!r} holds no key for {group.name!r} "
                f"epoch {record.epoch}")
        self.meter.count("sym_decrypt")
        try:
            return AuthenticatedCipher(key).decrypt(record.blob)
        except DecryptionError:
            raise AccessDeniedError(f"{user!r} cannot decrypt this item")

    # -- the paper's revocation caveat ---------------------------------------

    def leaked_key(self, group_name: str, epoch: int) -> bytes:
        """The group key of a past epoch, as a revoked member would retain it.

        Models "if someone already decrypted the data and kept a copy, we
        cannot revoke that": items from epochs before the revocation remain
        readable to anyone who cached this key (only the *re-encrypted*
        copies become unreadable).
        """
        return self._group_keys[(group_name, epoch)]
