"""Public-key access control (Section III-C of the paper).

"In order to manage users' data accessibility, data should be encrypted
under the public keys of all group's members and then sent to them.  When a
user leaves the group, his public key will be deleted from the list of group
members."  This is the flyByNight / PeerSoN pattern.

Concretely (as those systems do) each item gets a fresh content key that is
ElGamal-wrapped once per member — so publish costs O(members) asymmetric
operations and the header grows linearly with the group, which is exactly
the curve experiment E3 contrasts with IBBE's constant-size headers.
Revocation is cheap for *future* items (drop the key from the list) but, as
with the symmetric scheme, the paper's caveat applies to the back catalogue;
``strict_revocation=True`` additionally re-wraps history for the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.acl.base import AccessControlScheme, GroupState, SchemeProperties
from repro.crypto import elgamal
from repro.crypto.symmetric import AuthenticatedCipher, random_key
from repro.exceptions import AccessDeniedError, DecryptionError


@dataclass
class _PKRecord:
    """One item: per-member wrapped content keys + the AEAD payload."""

    wrapped_keys: Dict[str, bytes]
    payload: bytes


class PublicKeyACL(AccessControlScheme):
    """Per-member public-key wrapping of per-item content keys."""

    scheme_name = "public-key"
    table1_row = "Public key encryption"

    PROPERTIES = SchemeProperties(
        scheme_name="public-key",
        table1_category="Data privacy",
        table1_row="Public key encryption",
        group_creation="collect member public keys (no crypto)",
        join_cost="re-wrap history for the newcomer (O(items))",
        revocation_cost="drop key from list (strict mode: re-wrap history)",
        header_growth="O(members) wrapped keys per item",
        hides_from_provider=True,
    )

    def __init__(self, *args, strict_revocation: bool = False,
                 level: str = "TOY", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._level = level
        self._strict = strict_revocation
        self._private_keys: Dict[str, elgamal.ElGamalPrivateKey] = {}
        self._public_keys: Dict[str, elgamal.ElGamalPublicKey] = {}
        #: content keys retained by the owner for join-time re-wrapping
        self._content_keys: Dict[tuple, bytes] = {}

    # -- hooks ----------------------------------------------------------------

    def _provision_user(self, user: str) -> None:
        priv = elgamal.generate_keypair(self._level, rng=self.rng)
        self._private_keys[user] = priv
        self._public_keys[user] = priv.public_key
        self.meter.count("keygen")

    def _setup_group(self, group: GroupState) -> None:
        pass  # the member list *is* the group state

    def _on_member_added(self, group: GroupState, user: str) -> None:
        # Newcomers get access to history: wrap each item's content key.
        for item_id, record in group.items.items():
            content_key = self._content_keys[(group.name, item_id)]
            record.wrapped_keys[user] = elgamal.encrypt_bytes(
                self._public_keys[user], content_key, rng=self.rng)
            self.meter.count("pub_encrypt")

    def _on_member_revoked(self, group: GroupState, user: str) -> None:
        if not self._strict:
            # "His public key will be deleted from the list" — future items
            # simply exclude the revoked member; history keeps its wraps
            # (the revoked user could have cached plaintexts anyway).
            return
        for item_id, record in list(group.items.items()):
            record.wrapped_keys.pop(user, None)
            content_key = random_key(32, self.rng)
            old_key = self._content_keys[(group.name, item_id)]
            plaintext = AuthenticatedCipher(old_key).decrypt(record.payload)
            self._content_keys[(group.name, item_id)] = content_key
            wrapped = {}
            for member in group.members:
                wrapped[member] = elgamal.encrypt_bytes(
                    self._public_keys[member], content_key, rng=self.rng)
                self.meter.count("pub_encrypt")
            group.items[item_id] = _PKRecord(
                wrapped_keys=wrapped,
                payload=AuthenticatedCipher(content_key).encrypt(
                    plaintext, rng=self.rng))
            self.meter.count("reencryption")

    def _encrypt_item(self, group: GroupState, plaintext: bytes) -> _PKRecord:
        content_key = random_key(32, self.rng)
        wrapped = {}
        for member in group.members:
            wrapped[member] = elgamal.encrypt_bytes(
                self._public_keys[member], content_key, rng=self.rng)
            self.meter.count("pub_encrypt")
        self.meter.count("sym_encrypt")
        self.meter.count("header_bytes",
                         sum(len(w) for w in wrapped.values()))
        return _PKRecord(
            wrapped_keys=wrapped,
            payload=AuthenticatedCipher(content_key).encrypt(
                plaintext, rng=self.rng))

    def _decrypt_item(self, group: GroupState, record: _PKRecord,
                      user: str) -> bytes:
        wrap = record.wrapped_keys.get(user)
        if wrap is None:
            raise AccessDeniedError(
                f"no wrapped key for {user!r} on this item")
        priv = self._private_keys.get(user)
        if priv is None:
            raise AccessDeniedError(f"{user!r} has no keypair")
        self.meter.count("pub_decrypt")
        try:
            content_key = elgamal.decrypt_bytes(priv, wrap)
            self.meter.count("sym_decrypt")
            return AuthenticatedCipher(content_key).decrypt(record.payload)
        except DecryptionError:
            raise AccessDeniedError(f"{user!r} cannot decrypt this item")

    # -- owner-side bookkeeping ----------------------------------------------

    def publish(self, group_name: str, item_id: str, plaintext: bytes) -> None:
        """Publish, remembering the content key for later join re-wraps."""
        group = self._group(group_name)
        content_key = random_key(32, self.rng)
        self._content_keys[(group_name, item_id)] = content_key
        wrapped = {}
        for member in group.members:
            wrapped[member] = elgamal.encrypt_bytes(
                self._public_keys[member], content_key, rng=self.rng)
            self.meter.count("pub_encrypt")
        self.meter.count("sym_encrypt")
        self.meter.count("header_bytes",
                         sum(len(w) for w in wrapped.values()))
        group.items[item_id] = _PKRecord(
            wrapped_keys=wrapped,
            payload=AuthenticatedCipher(content_key).encrypt(
                plaintext, rng=self.rng))
