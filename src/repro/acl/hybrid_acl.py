"""Hybrid encryption access control (Section III-F of the paper).

"A hybrid encryption is one which combines the convenience of a public-key
encryption with the high speed of a symmetric-key encryption.  In such
systems, access control management is performed in two phases: symmetric
encryption of data by the use of a symmetric key [and] applying public key
encryption under the public keys of all group's members to encrypt that
symmetric key."

:class:`HybridACL` makes the two phases explicit and pluggable: the DEM is
always fast symmetric AEAD; the KEM ("how the symmetric key reaches the
audience") is one of the surveyed wrappers:

* ``"public-key"``  — per-member ElGamal wraps (flyByNight/PeerSoN shape),
* ``"abe"``         — one CP-ABE wrap under the group policy (Cachet shape),
* ``"ibbe"``        — one constant-size IBBE wrap (Raji et al. shape).

Experiment E2 uses this class to show that for large payloads all hybrid
variants converge to symmetric throughput while paying different *header*
costs — the paper's core quantitative intuition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.acl.base import AccessControlScheme, GroupState, SchemeProperties
from repro.crypto import elgamal
from repro.crypto.abe import CPABE
from repro.crypto.hashing import hkdf
from repro.crypto.ibbe import IBBE
from repro.crypto.symmetric import AuthenticatedCipher, random_key
from repro.exceptions import AccessDeniedError, DecryptionError, PolicyError


@dataclass
class _HybridRecord:
    """One item: opaque KEM header + symmetric payload."""

    kem_kind: str
    kem_header: object
    payload: bytes


class HybridACL(AccessControlScheme):
    """Two-phase hybrid encryption with a pluggable key-wrapping scheme."""

    scheme_name = "hybrid"
    table1_row = "Hybrid encryption"

    PROPERTIES = SchemeProperties(
        scheme_name="hybrid",
        table1_category="Data privacy",
        table1_row="Hybrid encryption",
        group_creation="inherited from the key-wrapping scheme",
        join_cost="inherited from the key-wrapping scheme",
        revocation_cost="inherited from the key-wrapping scheme",
        header_growth="KEM-dependent; payload always symmetric",
        hides_from_provider=True,
    )

    KEM_KINDS = ("public-key", "abe", "ibbe")

    def __init__(self, *args, kem: str = "abe", level: str = "TOY",
                 max_group_size: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if kem not in self.KEM_KINDS:
            raise PolicyError(f"unknown KEM {kem!r}; pick from {self.KEM_KINDS}")
        self.kem_kind = kem
        self._level = level
        if kem == "public-key":
            self._eg_private: Dict[str, elgamal.ElGamalPrivateKey] = {}
        elif kem == "abe":
            self._abe = CPABE(level)
            self._abe_pk, self._abe_msk = self._abe.setup(self.rng)
            self._abe_keys: Dict[str, object] = {}
        else:
            self._ibbe = IBBE(level)
            self._ibbe_pk, self._ibbe_msk = self._ibbe.setup(max_group_size,
                                                             self.rng)
            self._ibbe_keys: Dict[str, object] = {}

    # -- hooks ----------------------------------------------------------------

    def _provision_user(self, user: str) -> None:
        if self.kem_kind == "public-key":
            self._eg_private[user] = elgamal.generate_keypair(
                self._level, rng=self.rng)
        elif self.kem_kind == "ibbe":
            self._ibbe_keys[user] = self._ibbe_msk.extract(user)
        self.meter.count("key_distribution")

    def _setup_group(self, group: GroupState) -> None:
        if self.kem_kind == "abe":
            for member in group.members:
                self._issue_abe_key(group.name, member)

    def _issue_abe_key(self, group_name: str, user: str) -> None:
        self._abe_keys[(group_name, user)] = self._abe.keygen(
            self._abe_pk, self._abe_msk, [f"group:{group_name}"], self.rng)
        self.meter.count("key_distribution")

    def _on_member_added(self, group: GroupState, user: str) -> None:
        if self.kem_kind == "abe":
            self._issue_abe_key(group.name, user)

    def _on_member_revoked(self, group: GroupState, user: str) -> None:
        if self.kem_kind == "abe":
            self._abe_keys.pop((group.name, user), None)

    # -- the two phases ---------------------------------------------------------

    def _wrap_key(self, group: GroupState, content_key: bytes) -> object:
        """Phase 2: protect the symmetric key for the audience."""
        if self.kem_kind == "public-key":
            wraps = {}
            for member in sorted(group.members):
                wraps[member] = elgamal.encrypt_bytes(
                    self._eg_private[member].public_key, content_key,
                    rng=self.rng)
                self.meter.count("pub_encrypt")
            return wraps
        if self.kem_kind == "abe":
            self.meter.count("pub_encrypt")
            header, blob = self._abe.encrypt_bytes(
                self._abe_pk, content_key, f"group:{group.name}", self.rng)
            return (header, blob)
        self.meter.count("pub_encrypt")
        return self._ibbe.encrypt_bytes(self._ibbe_pk, sorted(group.members),
                                        content_key, self.rng)

    def _unwrap_key(self, group: GroupState, kem_header: object,
                    user: str) -> bytes:
        """Phase 2 inverse: recover the symmetric key with user credentials."""
        try:
            if self.kem_kind == "public-key":
                wrap = kem_header.get(user)
                if wrap is None:
                    raise AccessDeniedError(f"no wrap for {user!r}")
                self.meter.count("pub_decrypt")
                return elgamal.decrypt_bytes(self._eg_private[user], wrap)
            if self.kem_kind == "abe":
                key = self._abe_keys.get((group.name, user))
                if key is None:
                    raise AccessDeniedError(f"{user!r} holds no group key")
                self.meter.count("pub_decrypt")
                header, blob = kem_header
                return self._abe.decrypt_bytes(header, blob, key)
            key = self._ibbe_keys.get(user)
            if key is None:
                raise AccessDeniedError(f"{user!r} has no IBBE key")
            self.meter.count("pub_decrypt")
            header, blob = kem_header
            return self._ibbe.decrypt_bytes(self._ibbe_pk, header, blob, key)
        except DecryptionError as exc:
            raise AccessDeniedError(f"{user!r} cannot unwrap the key: {exc}")

    def _encrypt_item(self, group: GroupState,
                      plaintext: bytes) -> _HybridRecord:
        content_key = random_key(32, self.rng)
        kem_header = self._wrap_key(group, content_key)
        self.meter.count("sym_encrypt")
        return _HybridRecord(
            kem_kind=self.kem_kind, kem_header=kem_header,
            payload=AuthenticatedCipher(content_key).encrypt(plaintext,
                                                             rng=self.rng))

    def _decrypt_item(self, group: GroupState, record: _HybridRecord,
                      user: str) -> bytes:
        content_key = self._unwrap_key(group, record.kem_header, user)
        self.meter.count("sym_decrypt")
        try:
            return AuthenticatedCipher(content_key).decrypt(record.payload)
        except DecryptionError:
            raise AccessDeniedError(f"{user!r} cannot decrypt the payload")
