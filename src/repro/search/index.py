"""Keyword search index with optional content blinding.

The substrate for Section V: somebody has to map keywords to content.  The
index host (a provider, super-peer or DHT node) is honest-but-curious, so
*what the index physically contains* determines content privacy:

* ``plaintext`` mode — posting lists keyed by raw keywords: full
  functionality, zero content privacy (the host learns every term and every
  searcher's interests);
* ``blinded`` mode — keys are HMAC tags of keywords under a secret shared
  by the social circle: the host matches opaque tags (exact-match search
  still works inside the circle) and learns nothing about the terms.

Experiment E7 uses :meth:`SearchIndex.host_view` to quantify the leak.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.hashing import hmac_sha256
from repro.exceptions import SearchError

_TOKEN_RE = re.compile(r"[a-z0-9#]+")


def tokenize(text: str) -> List[str]:
    """Lowercase word/hashtag tokens of a document."""
    return _TOKEN_RE.findall(text.lower())


def blind_term(secret: bytes, term: str) -> str:
    """The opaque tag a blinded index stores instead of the term."""
    return hmac_sha256(secret, term.encode())[:16].hex()


@dataclass
class SearchIndex:
    """An inverted index mapping (possibly blinded) terms to content ids."""

    blinding_secret: Optional[bytes] = None
    postings: Dict[str, List[str]] = field(default_factory=dict)
    documents: int = 0

    @property
    def blinded(self) -> bool:
        """Whether the host sees tags rather than terms."""
        return self.blinding_secret is not None

    def _key(self, term: str) -> str:
        if self.blinding_secret is not None:
            return blind_term(self.blinding_secret, term)
        return term

    def add_document(self, cid: str, text: str) -> int:
        """Index a document; returns the number of distinct terms added."""
        terms = set(tokenize(text))
        for term in terms:
            postings = self.postings.setdefault(self._key(term), [])
            if cid not in postings:
                postings.append(cid)
        self.documents += 1
        return len(terms)

    def search(self, query: str) -> List[str]:
        """Content ids matching *all* query terms (conjunctive search)."""
        terms = tokenize(query)
        if not terms:
            raise SearchError("empty query")
        result: Optional[Set[str]] = None
        for term in terms:
            postings = set(self.postings.get(self._key(term), ()))
            result = postings if result is None else result & postings
        return sorted(result or ())

    def host_view(self) -> Dict[str, int]:
        """What the index host observes: term/tag -> posting-list length.

        In plaintext mode the keys are the users' actual vocabulary; in
        blinded mode they are uniform 16-hex tags.
        """
        return {key: len(postings) for key, postings in self.postings.items()}

    def vocabulary_leaked(self) -> bool:
        """Does the host's view contain human-readable terms?"""
        return not self.blinded and bool(self.postings)
