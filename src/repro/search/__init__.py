"""Secure social search (Section V / Table I).

One module per security concern from the paper's classification:

==============================  ==========================================
Table I row                     Implementation
==============================  ==========================================
Content privacy                 :mod:`repro.search.blind_subscribe` (blind
                                signatures), blinded :mod:`repro.search.index`
Privacy of searcher             :mod:`repro.search.proxy` (aliases + the
                                collusion attack),
                                :mod:`repro.search.friend_routing`
                                (Safebook matryoshka),
                                :mod:`repro.search.zkp_access`
                                (pseudonyms + ZKP)
Privacy of searched data owner  :mod:`repro.search.handlers` (resource
                                handlers, owner approval)
Trusted search result           :mod:`repro.search.trust` (trust-chain
                                ranking with popularity)
==============================  ==========================================
"""

from repro.search.blind_subscribe import BlindPublisher, BlindSubscriber
from repro.search.friend_routing import Matryoshka, RoutedRequest
from repro.search.handlers import (DataOwner, HandlerDirectory,
                                   friends_only_policy)
from repro.search.index import SearchIndex, blind_term, tokenize
from repro.search.proxy import AliasProxy, collude
from repro.search.trust import RankedResult, best_trust_chain, rank_results
from repro.search.zkp_access import (AccessGuard, PseudonymousSearcher,
                                     ResourceOwner)

__all__ = [
    "AccessGuard", "AliasProxy", "BlindPublisher", "BlindSubscriber",
    "DataOwner", "HandlerDirectory", "Matryoshka", "PseudonymousSearcher",
    "RankedResult", "ResourceOwner", "RoutedRequest", "SearchIndex",
    "best_trust_chain", "blind_term", "collude", "friends_only_policy",
    "rank_results", "tokenize",
]

# Claim the Table I "Secure Social Search" rows at the definition site;
# the generated matrix (repro.stack.table1) reads these registrations.
from repro.stack.registry import register_mechanism as _register_mechanism

_register_mechanism("Secure Social Search", "Content privacy",
                    BlindPublisher, SearchIndex)
_register_mechanism("Secure Social Search", "Privacy of searcher",
                    AliasProxy, Matryoshka, PseudonymousSearcher)
_register_mechanism("Secure Social Search", "Privacy of searched data owner",
                    DataOwner)
_register_mechanism("Secure Social Search", "Trusted search result",
                    rank_results)
