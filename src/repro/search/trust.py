"""Trusted search results: trust-chain ranking (Section V-D).

"If Alice trusts Bob and Bob trusts Sara, then Alice can trust Sara too.
The amount of trust assigned to Sara by Alice, based on the search chain
from Alice to Sara, is a function of trust levels of every intermediate
friend of that chain ... In this way, the target users can be ranked and
then chosen" — the Huang et al. trust-and-popularity model.

Derived trust along a chain is the *product* of edge trusts (each hop
attenuates); the trust between two users is the maximum over chains up to a
depth bound, computed Dijkstra-style on ``-log(trust)`` so it is exact, not
heuristic.  Ranking combines derived trust with target popularity, the two
signals the cited model uses.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import SearchError


def best_trust_chain(graph: nx.Graph, source: str, target: str,
                     max_depth: int = 4,
                     weight: str = "trust") -> Tuple[float, List[str]]:
    """The maximum-product trust chain from ``source`` to ``target``.

    Returns ``(trust, chain)``; ``(0.0, [])`` when no chain of length
    <= ``max_depth`` exists.  Edge attribute ``weight`` must be in (0, 1].
    Dijkstra on additive ``-log`` costs with a hop bound: states are
    (node, hops) so the depth limit cannot cut off a cheaper longer path
    incorrectly.
    """
    if source not in graph or target not in graph:
        raise SearchError("source/target missing from the trust graph")
    if source == target:
        return (1.0, [source])
    start = (0.0, source, 0, [source])
    heap: List[Tuple[float, str, int, List[str]]] = [start]
    best: Dict[Tuple[str, int], float] = {(source, 0): 0.0}
    while heap:
        cost, node, hops, path = heapq.heappop(heap)
        if node == target:
            return (math.exp(-cost), path)
        if hops == max_depth:
            continue
        for neighbor in graph.neighbors(node):
            trust = graph[node][neighbor].get(weight, 1.0)
            if not 0.0 < trust <= 1.0:
                raise SearchError(
                    f"trust on edge ({node},{neighbor}) must be in (0,1], "
                    f"got {trust}")
            new_cost = cost - math.log(trust)
            key = (neighbor, hops + 1)
            if new_cost < best.get(key, math.inf):
                best[key] = new_cost
                heapq.heappush(heap, (new_cost, neighbor, hops + 1,
                                      path + [neighbor]))
    return (0.0, [])


@dataclass(frozen=True)
class RankedResult:
    """One scored search result."""

    user: str
    trust: float
    popularity: float
    score: float
    chain: Tuple[str, ...]


def rank_results(graph: nx.Graph, searcher: str,
                 candidates: Sequence[str],
                 popularity: Optional[Dict[str, float]] = None,
                 max_depth: int = 4, trust_weight: float = 0.7
                 ) -> List[RankedResult]:
    """Rank candidate users by derived trust blended with popularity.

    ``score = trust_weight * trust + (1 - trust_weight) * popularity``;
    popularity defaults to normalized degree (a natural in-network proxy).
    Candidates with no trust chain rank purely on popularity, scaled by
    the non-trust weight — "strangers the network vouches for by volume".
    """
    if not 0.0 <= trust_weight <= 1.0:
        raise SearchError("trust_weight must be in [0, 1]")
    if popularity is None:
        max_degree = max((graph.degree(n) for n in graph), default=1) or 1
        popularity = {str(n): graph.degree(n) / max_degree for n in graph}
    results = []
    for candidate in candidates:
        trust, chain = best_trust_chain(graph, searcher, candidate,
                                        max_depth)
        pop = popularity.get(candidate, 0.0)
        score = trust_weight * trust + (1.0 - trust_weight) * pop
        results.append(RankedResult(user=candidate, trust=trust,
                                    popularity=pop, score=score,
                                    chain=tuple(chain)))
    results.sort(key=lambda r: (-r.score, r.user))
    return results
