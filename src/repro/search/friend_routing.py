"""Searcher privacy via trusted-friend rings (Safebook's matryoshka).

Section V-B of the paper: "Trusted friends network is another approach ...
each user connects directly to trusted friends to forward messages.  It
will cause a concentric circle of friends around each user, which makes it
possible to communicate with the user without revealing identity or even IP
address."

:class:`Matryoshka` builds the concentric shells around a core user from
the social graph (shell k = peers at BFS distance k, each with a *parent*
one shell inward whom they trust).  A request enters at a random outermost-
shell node and is relayed inward hop by hop; each relay learns only its
neighbours on the path.  :meth:`observer_knowledge` reports who learned
what, giving experiment E7 its anonymity-set numbers.
"""

from __future__ import annotations

import random as _random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.exceptions import SearchError

_DEFAULT_RNG = _random.Random(0x3A7E)


@dataclass
class RoutedRequest:
    """A completed inward routing: the full relay path (requester first)."""

    requester: str
    core: str
    path: List[str]   # entry node ... innermost relay, excluding core

    @property
    def hops(self) -> int:
        """Relays traversed, including delivery to the core."""
        return len(self.path) + 1


class Matryoshka:
    """The concentric trusted-friend shells around one core user."""

    def __init__(self, graph: nx.Graph, core: str, depth: int = 3) -> None:
        if core not in graph:
            raise SearchError(f"{core!r} is not in the social graph")
        if depth < 1:
            raise SearchError("need at least one shell")
        self.graph = graph
        self.core = core
        self.depth = depth
        #: shell index (1-based) -> member nodes
        self.shells: List[List[str]] = []
        #: node -> its parent one shell inward
        self.parent: Dict[str, str] = {}
        self._build()

    def _build(self) -> None:
        distance = {self.core: 0}
        parent: Dict[str, str] = {}
        queue = deque([self.core])
        while queue:
            node = queue.popleft()
            if distance[node] >= self.depth:
                continue
            for neighbor in self.graph.neighbors(node):
                if neighbor not in distance:
                    distance[neighbor] = distance[node] + 1
                    parent[neighbor] = node
                    queue.append(neighbor)
        self.parent = parent
        self.shells = [
            sorted(n for n, d in distance.items() if d == k)
            for k in range(1, self.depth + 1)
        ]
        if not self.shells[-1]:
            raise SearchError(
                f"{self.core!r} has no peers at distance {self.depth}; "
                "reduce the shell depth")

    @property
    def entry_points(self) -> List[str]:
        """The outermost shell — where requests enter."""
        return self.shells[-1]

    def route_request(self, requester: str,
                      rng: Optional[_random.Random] = None) -> RoutedRequest:
        """Route a request inward from a random entry point.

        The requester contacts one outer-shell node; each relay forwards to
        its trusted parent until the core is reached.
        """
        rng = rng or _DEFAULT_RNG
        entry = rng.choice(self.entry_points)
        path = [entry]
        node = entry
        while self.parent.get(node) != self.core:
            node = self.parent.get(node)
            if node is None:
                raise SearchError("broken shell structure")
            path.append(node)
        return RoutedRequest(requester=requester, core=self.core, path=path)

    # -- privacy accounting ---------------------------------------------------

    def observer_knowledge(self, request: RoutedRequest
                           ) -> Dict[str, Dict[str, Optional[str]]]:
        """Per-observer view of one routed request.

        Each relay knows only its predecessor and successor on the path;
        the *core* sees the innermost relay, never the requester; only the
        entry node sees the requester — and it does not know the core is
        the final destination (it just forwards to its trusted parent).
        """
        knowledge: Dict[str, Dict[str, Optional[str]]] = {}
        chain = [request.requester] + request.path + [request.core]
        for index in range(1, len(chain) - 1):
            node = chain[index]
            knowledge[node] = {
                "previous_hop": chain[index - 1],
                "next_hop": chain[index + 1],
                "knows_requester": chain[index - 1]
                if index == 1 else None,
                "knows_core": request.core
                if index == len(chain) - 2 else None,
            }
        knowledge[request.core] = {
            "previous_hop": chain[-2], "next_hop": None,
            "knows_requester": None, "knows_core": request.core,
        }
        return knowledge

    def requester_anonymity_set(self, population: int) -> int:
        """From the core's view, who could the requester be?

        The core sees only an inner-shell relay, so the requester could be
        anyone outside its first shell: population − 1 (core) − |shell 1|.
        """
        return max(1, population - 1 - len(self.shells[0]))
