"""Pseudonymous search with zero-knowledge access proofs (Section V-B).

"A user can use a pseudonym while searching in the network, and when (s)he
wants to reach a content belonging to another person, (s)he uses ZKP to
prove having privileges to access" — the Backes–Maffei–Pecina security API.

Mechanics: the content owner issues an *access credential* for a resource —
a secret exponent ``x`` whose public image ``y = g^x`` is attached to the
resource.  A searcher operating under a throwaway pseudonym proves
knowledge of ``x`` with a Fiat–Shamir NIZK bound to (resource id,
pseudonym, nonce).  The guard learns: the pseudonym, and that it is
authorized.  It does NOT learn which real user is asking, and proofs from
different sessions are unlinkable (fresh pseudonym + fresh proof
randomness).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.groups import SchnorrGroup, group_for_level
from repro.crypto.zkp import DlogProof, prove_dlog_nizk, verify_dlog_nizk
from repro.exceptions import AccessDeniedError, SearchError

_DEFAULT_RNG = _random.Random(0x2CE55)


@dataclass(frozen=True)
class AccessCredential:
    """The secret a privileged user holds for one resource."""

    resource_id: str
    x: int


@dataclass
class GuardedResource:
    """A resource plus the public image of its access credential."""

    resource_id: str
    content: bytes
    y: int  # g^x — anyone can see this; only credential holders know x


class ResourceOwner:
    """Issues credentials and hosts guarded resources."""

    def __init__(self, name: str, level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self.group: SchnorrGroup = group_for_level(level)
        self.rng = rng or _DEFAULT_RNG
        self.resources: Dict[str, GuardedResource] = {}
        self._secrets: Dict[str, int] = {}

    def publish(self, resource_id: str, content: bytes) -> GuardedResource:
        """Create a guarded resource with a fresh credential secret."""
        x = self.group.random_scalar(self.rng)
        self._secrets[resource_id] = x
        resource = GuardedResource(resource_id=resource_id, content=content,
                                   y=self.group.exp(x))
        self.resources[resource_id] = resource
        return resource

    def issue_credential(self, resource_id: str) -> AccessCredential:
        """Hand the secret to an authorized user (out-of-band)."""
        try:
            return AccessCredential(resource_id=resource_id,
                                    x=self._secrets[resource_id])
        except KeyError:
            raise SearchError(f"no resource {resource_id!r}")


@dataclass
class AccessRequest:
    """What travels to the guard: pseudonym, resource, nonce, proof."""

    pseudonym: str
    resource_id: str
    nonce: int
    proof: DlogProof


class AccessGuard:
    """Verifies ZKP access requests without learning identities.

    Nonce replay is rejected (a captured proof cannot be reused) and every
    granted request is logged — the log is what E7 inspects to show the
    guard's view contains only unlinkable pseudonyms.
    """

    def __init__(self, owner: ResourceOwner) -> None:
        self.owner = owner
        self.group = owner.group
        self._seen_nonces: Set[Tuple[str, int]] = set()
        self.grant_log: List[Tuple[str, str]] = []  # (pseudonym, resource)

    def request_context(self, resource_id: str, pseudonym: str,
                        nonce: int) -> bytes:
        """The context bytes binding a proof to one request."""
        return f"{resource_id}|{pseudonym}|{nonce}".encode()

    def handle(self, request: AccessRequest) -> bytes:
        """Verify and serve; raises :class:`AccessDeniedError` otherwise."""
        resource = self.owner.resources.get(request.resource_id)
        if resource is None:
            raise SearchError(f"no resource {request.resource_id!r}")
        replay_key = (request.pseudonym, request.nonce)
        if replay_key in self._seen_nonces:
            raise AccessDeniedError("replayed access proof")
        context = self.request_context(request.resource_id,
                                       request.pseudonym, request.nonce)
        if not verify_dlog_nizk(self.group, resource.y, request.proof,
                                context):
            raise AccessDeniedError(
                f"pseudonym {request.pseudonym!r} failed the access proof "
                f"for {request.resource_id!r}")
        self._seen_nonces.add(replay_key)
        self.grant_log.append((request.pseudonym, request.resource_id))
        return resource.content


class PseudonymousSearcher:
    """A user who accesses resources under fresh unlinkable pseudonyms."""

    def __init__(self, real_name: str, level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.real_name = real_name  # never leaves this object
        self.group = group_for_level(level)
        self.rng = rng or _DEFAULT_RNG
        self.credentials: Dict[str, AccessCredential] = {}

    def receive_credential(self, credential: AccessCredential) -> None:
        """Store a credential obtained out-of-band from the owner."""
        self.credentials[credential.resource_id] = credential

    def fresh_pseudonym(self) -> str:
        """A throwaway session identity."""
        return f"pseud-{self.rng.getrandbits(48):012x}"

    def access(self, guard: AccessGuard, resource_id: str) -> bytes:
        """Build a bound NIZK and fetch the resource pseudonymously."""
        credential = self.credentials.get(resource_id)
        if credential is None:
            raise AccessDeniedError(
                f"{self.real_name!r} holds no credential for "
                f"{resource_id!r}")
        pseudonym = self.fresh_pseudonym()
        nonce = self.rng.getrandbits(64)
        context = guard.request_context(resource_id, pseudonym, nonce)
        proof = prove_dlog_nizk(self.group, credential.x, context, self.rng)
        return guard.handle(AccessRequest(
            pseudonym=pseudonym, resource_id=resource_id, nonce=nonce,
            proof=proof))
