"""Content privacy via blind signatures (Section V-A).

"Blind Signatures can help to provide the privacy of content ... a
signature of a message's keyword is used as a key to encrypt the message.
By considering this idea, anyone who gets the signature on that keyword can
also decrypt the message ... Each subscriber will get the signature on the
main keyword (hashtag) of each tweet, by the use of the blind signature,
while his interest will not be revealed to the publisher."

Protocol roles (this is the blind-RSA variant; the OPRF variant lives in
:mod:`repro.acl.hummingbird` — the survey describes both):

* :class:`BlindPublisher` — holds an RSA signing key; the key that encrypts
  a tweet tagged ``#k`` is derived from ``Sig(#k)``; grants subscriptions
  by signing *blinded* keywords.
* :class:`BlindSubscriber` — blinds the keyword, obtains the signature,
  unblinds, and can thereafter decrypt everything tagged with it.
* The :class:`~repro.acl.hummingbird.HummingbirdServer`-style matching is
  kept trivial here (tag = hash of the signature) to keep the module
  focused on the blind-signature mechanics.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import blind, rsa
from repro.crypto.hashing import hkdf
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import AccessDeniedError, DecryptionError

_DEFAULT_RNG = _random.Random(0xB5CB)


def _keys_from_signature(signature: bytes) -> Tuple[bytes, bytes]:
    """(matching tag, AEAD key) derived from the keyword signature."""
    tag = hkdf(signature, 16, info=b"repro/blindsub/tag")
    key = hkdf(signature, 32, info=b"repro/blindsub/key")
    return tag, key


@dataclass
class TaggedCiphertext:
    """A published message: opaque tag + ciphertext."""

    publisher: str
    tag: bytes
    ciphertext: bytes


class BlindPublisher:
    """A publisher whose keyword signatures double as decryption keys."""

    def __init__(self, name: str, key_bits: int = 512,
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self.rng = rng or _DEFAULT_RNG
        self._key = rsa.generate_keypair(key_bits, rng=self.rng)
        self.outbox: List[TaggedCiphertext] = []
        #: blinded values this publisher signed (all it ever learns)
        self.subscription_log: List[int] = []

    @property
    def public_key(self) -> rsa.RSAPublicKey:
        """Published so subscribers can blind/verify."""
        return self._key.public_key

    def publish(self, keyword: str, message: str) -> TaggedCiphertext:
        """Encrypt under the key derived from ``Sig(keyword)``."""
        signature = blind.sign_directly(self._key, keyword.encode())
        tag, key = _keys_from_signature(signature)
        item = TaggedCiphertext(
            publisher=self.name, tag=tag,
            ciphertext=AuthenticatedCipher(key).encrypt(message.encode(),
                                                        rng=self.rng))
        self.outbox.append(item)
        return item

    def grant_subscription(self, blinded: int) -> int:
        """Sign a blinded keyword — the publisher cannot tell which."""
        self.subscription_log.append(blinded)
        return blind.sign_blinded(self._key, blinded)


class BlindSubscriber:
    """A subscriber with interests hidden from the publisher."""

    def __init__(self, name: str,
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self.rng = rng or _DEFAULT_RNG
        #: (publisher, keyword) -> (tag, AEAD key)
        self._subscriptions: Dict[Tuple[str, str], Tuple[bytes, bytes]] = {}

    def subscribe(self, publisher: BlindPublisher, keyword: str) -> None:
        """Run the blind-signature protocol for one keyword."""
        ctx = blind.blind(publisher.public_key, keyword.encode(), self.rng)
        signature = ctx.unblind(publisher.grant_subscription(ctx.blinded))
        self._subscriptions[(publisher.name, keyword)] = \
            _keys_from_signature(signature)

    def matching_tags(self) -> List[bytes]:
        """The opaque tags the subscriber would hand a matching server."""
        return [tag for tag, _ in self._subscriptions.values()]

    def try_decrypt(self, item: TaggedCiphertext
                    ) -> Optional[Tuple[str, str]]:
        """(keyword, message) when subscribed to this item's tag, else None."""
        for (publisher, keyword), (tag, key) in self._subscriptions.items():
            if publisher == item.publisher and tag == item.tag:
                try:
                    message = AuthenticatedCipher(key).decrypt(
                        item.ciphertext)
                except DecryptionError:
                    raise AccessDeniedError(
                        "tag matched but key failed — corrupted item")
                return keyword, message.decode()
        return None

    def fetch_all(self, publisher: BlindPublisher
                  ) -> List[Tuple[str, str]]:
        """Everything decryptable from a publisher's outbox."""
        results = []
        for item in publisher.outbox:
            hit = self.try_decrypt(item)
            if hit is not None:
                results.append(hit)
        return results
