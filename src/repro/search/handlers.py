"""Privacy of the searched data owner: resource handlers (Section V-C).

"One solution is to define resource handler for data.  In this way, every
data item has a handler as a reference to that data.  For example 'Alice's
birthday' instead of '26 October 1990'.  When one is interested in knowing
the content of that handler, he must prove himself to the data owner and
then get access to the real content."

The public :class:`HandlerDirectory` is searchable — but contains only
handler labels.  Dereferencing goes through the owner's approval policy;
owners also control *which* of their handlers are searchable at all ("to
determine to which extent their data would be available for the system's
searches").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import AccessDeniedError, SearchError

#: An approval policy: (requester, handler label) -> allowed?
ApprovalPolicy = Callable[[str, str], bool]


@dataclass
class Handler:
    """A public reference to private data."""

    owner: str
    label: str            # e.g. "alice/birthday" — this is all that's public
    searchable: bool = True


class DataOwner:
    """A user exposing handlers instead of data."""

    def __init__(self, name: str,
                 policy: Optional[ApprovalPolicy] = None) -> None:
        self.name = name
        self._data: Dict[str, bytes] = {}
        self._handlers: Dict[str, Handler] = {}
        self._policy: ApprovalPolicy = policy or (lambda req, label: False)
        self.request_log: List[Tuple[str, str, bool]] = []

    def set_policy(self, policy: ApprovalPolicy) -> None:
        """Replace the approval policy (e.g. friends-only)."""
        self._policy = policy

    def register(self, label: str, content: bytes,
                 searchable: bool = True) -> Handler:
        """Create a handler for a private datum."""
        handler = Handler(owner=self.name, label=label,
                          searchable=searchable)
        self._handlers[label] = handler
        self._data[label] = content
        return handler

    def handlers(self) -> List[Handler]:
        """All handlers (for publishing into a directory)."""
        return list(self._handlers.values())

    def dereference(self, requester: str, label: str) -> bytes:
        """Prove-yourself-then-read: the owner-side approval check."""
        if label not in self._handlers:
            raise SearchError(f"{self.name!r} has no handler {label!r}")
        allowed = self._policy(requester, label)
        self.request_log.append((requester, label, allowed))
        if not allowed:
            raise AccessDeniedError(
                f"{self.name!r} declined {requester!r}'s request for "
                f"{label!r}")
        return self._data[label]


class HandlerDirectory:
    """The searchable public directory: labels only, never content."""

    def __init__(self) -> None:
        self._entries: Dict[str, Handler] = {}

    def publish(self, owner: DataOwner) -> int:
        """Index an owner's *searchable* handlers; returns how many."""
        count = 0
        for handler in owner.handlers():
            if handler.searchable:
                self._entries[f"{handler.owner}/{handler.label}"] = handler
                count += 1
        return count

    def search(self, term: str) -> List[Handler]:
        """Substring search over handler labels."""
        term = term.lower()
        return [h for key, h in sorted(self._entries.items())
                if term in key.lower()]

    def directory_view(self) -> List[str]:
        """Everything an observer of the directory learns: label strings."""
        return sorted(self._entries)


def friends_only_policy(friends: set) -> ApprovalPolicy:
    """The canonical policy: approve requests from friends."""
    def policy(requester: str, label: str) -> bool:
        return requester in friends
    return policy
