"""Searcher privacy via alias proxies (Section V-B).

"A solution to support privacy of searcher is to use proxy.  In this
method, the real identity of users will be replaced by aliases via the
proxy server.  Since the proxy server knows all the aliases of their users,
it can forward messages correctly.  Servers cannot see the real names of
other servers' users.  However, the security of this approach can be under
the risk by collusion of proxy servers."

:class:`AliasProxy` assigns deterministic-random pseudonyms and forwards
queries; :func:`collude` reproduces the collusion risk: pooling alias
tables re-links pseudonyms to identities, measured as the fraction of
cross-proxy query pairs deanonymized — experiment E7's proxy row.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SearchError

_DEFAULT_RNG = _random.Random(0x9407)


@dataclass
class ProxiedQuery:
    """What leaves a proxy: alias + query; the real name stays inside."""

    alias: str
    query: str
    via_proxy: str


class AliasProxy:
    """One proxy server: alias table + query forwarding."""

    def __init__(self, name: str,
                 rng: Optional[_random.Random] = None) -> None:
        self.name = name
        self._rng = rng or _DEFAULT_RNG
        self._alias_of: Dict[str, str] = {}
        self._user_of: Dict[str, str] = {}
        self.forwarded: List[ProxiedQuery] = []

    def register(self, user: str) -> str:
        """Assign (or return) the user's stable alias."""
        alias = self._alias_of.get(user)
        if alias is None:
            while True:
                alias = f"anon-{self._rng.getrandbits(32):08x}"
                if alias not in self._user_of:
                    break
            self._alias_of[user] = alias
            self._user_of[alias] = user
        return alias

    def forward_query(self, user: str, query: str) -> ProxiedQuery:
        """Replace the identity with the alias and forward."""
        if user not in self._alias_of:
            raise SearchError(f"{user!r} is not registered with {self.name}")
        proxied = ProxiedQuery(alias=self._alias_of[user], query=query,
                               via_proxy=self.name)
        self.forwarded.append(proxied)
        return proxied

    def deliver_reply(self, alias: str, payload: str) -> Tuple[str, str]:
        """Route a reply back to the real user (only this proxy can)."""
        user = self._user_of.get(alias)
        if user is None:
            raise SearchError(f"unknown alias {alias!r} at {self.name}")
        return user, payload

    # -- what different observers see ------------------------------------------

    def external_view(self) -> List[Tuple[str, str]]:
        """What recipients/other servers observe: (alias, query) pairs."""
        return [(q.alias, q.query) for q in self.forwarded]

    def alias_table(self) -> Dict[str, str]:
        """The proxy's secret: alias -> real user (the collusion currency)."""
        return dict(self._user_of)


@dataclass
class CollusionResult:
    """Outcome of proxies pooling their alias tables."""

    deanonymized: Dict[str, str]   # alias -> real user, across all proxies
    queries_linked: int            # proxied queries now attributable
    fraction_linked: float


def collude(proxies: Sequence[AliasProxy]) -> CollusionResult:
    """Pool alias tables: every query through any colluder is re-linked.

    This is the paper's stated weakness made executable; the anonymity the
    scheme provided against *one* curious server evaporates entirely.
    """
    pooled: Dict[str, str] = {}
    for proxy in proxies:
        pooled.update(proxy.alias_table())
    total = sum(len(p.forwarded) for p in proxies)
    linked = sum(1 for p in proxies for q in p.forwarded
                 if q.alias in pooled)
    return CollusionResult(
        deanonymized=pooled, queries_linked=linked,
        fraction_linked=linked / total if total else 0.0)


def anonymity_set_size(proxy: AliasProxy) -> int:
    """How many users an outside observer must consider per alias.

    With a non-colluding proxy every alias could be any of its registered
    users — the anonymity set is the proxy's whole population.
    """
    return len(proxy.alias_table())
