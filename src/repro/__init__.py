"""repro — reproduction of *Security and Privacy of Distributed Online
Social Networks* (Taheri Boshrooyeh, Küpçü, Özkasap; ICDCS 2015).

The paper is a survey; this library is the system it describes but never
builds: every surveyed security mechanism implemented and measurable on a
simulated peer-to-peer substrate.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.crypto`    — from-scratch cryptographic substrate
* :mod:`repro.acl`       — data privacy / access control (Section III)
* :mod:`repro.integrity` — data integrity mechanisms (Section IV)
* :mod:`repro.search`    — secure social search (Section V)
* :mod:`repro.overlay`   — DOSN architecture substrates (Section II)
* :mod:`repro.dosn`      — the composed social network + exposure metrics
* :mod:`repro.workloads` — synthetic graphs and activity traces

Quick start::

    from repro.dosn import DosnNetwork
    net = DosnNetwork(architecture="dht", seed=7)
    net.add_users(["alice", "bob"])
    net.befriend("alice", "bob")
    cid = net.post("alice", "hello distributed world!")
    print(net.feed("bob").items[0].post.text)

**Security notice**: the crypto here exists to reproduce a paper's
comparisons at laptop scale.  Never use it to protect real data.
"""

__version__ = "1.0.0"

from repro import exceptions  # noqa: F401
from repro.fabric import Fabric  # noqa: F401

__all__ = ["Fabric", "exceptions", "__version__"]
