"""Exception hierarchy for the ``repro`` library.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish crypto failures (bad keys, failed integrity checks) from
simulation or access-control failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class InvalidKeyError(CryptoError):
    """A key is malformed, of the wrong type, or outside its valid range."""


class DecryptionError(CryptoError):
    """Decryption failed: wrong key, corrupted ciphertext, or bad padding."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


class IntegrityError(ReproError):
    """A data-integrity invariant was violated (Section IV of the paper).

    Raised when hash chains do not link, history-tree proofs fail, message
    envelopes are tampered with, or fork consistency detects equivocation.
    """


class ReplicaIntegrityError(IntegrityError):
    """Replica holders were reachable but none served a valid copy.

    Distinct from :class:`StorageError` (nobody reachable / id unknown):
    here the data *was* served, and every served copy failed verification
    — the Byzantine-holder case, which callers may want to alarm on
    rather than retry.
    """


class AccessDeniedError(ReproError):
    """An access-control policy denied an operation (Section III)."""


class PolicyError(ReproError):
    """An access policy is malformed (e.g. an invalid ABE access tree)."""


class SearchError(ReproError):
    """A secure-social-search protocol failed (Section V)."""


class OverlayError(ReproError):
    """An overlay-network operation failed (Section II)."""


class LookupError_(OverlayError):
    """A key lookup in the overlay could not be resolved."""


class DeadlineExceededError(OverlayError):
    """An operation's propagated deadline expired before it finished.

    Deliberately *not* a :class:`LookupError_`: a routing failure means
    "try the replicas directly", but an expired deadline means "stop —
    nobody is waiting for the answer", so the hedged-fallback paths that
    catch :class:`LookupError_` must not swallow this and issue doomed
    probes.
    """


class StorageError(OverlayError):
    """Stored content could not be retrieved (offline replicas, missing id)."""


class QuorumWriteError(StorageError):
    """A replicated write gathered fewer acks than the write quorum W."""


class OverloadedError(StorageError):
    """A peer shed the request because its service queue was full.

    The typed fast-failure of the overload stack: unlike a timeout the
    caller learns *immediately* (one round trip) that the destination is
    saturated, so backing off is cheap.  A :class:`StorageError` subclass
    so existing ``except (LookupError_, StorageError)`` workload loops
    keep counting it as an unavailable read.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ReproDeprecationWarning(DeprecationWarning):
    """Warning category for deprecated ``repro`` APIs.

    Kept distinct from the builtin :class:`DeprecationWarning` so CI can run
    with ``-W error::repro.exceptions.ReproDeprecationWarning`` and fail on
    in-repo use of deprecated constructor paths without tripping over
    third-party deprecations.
    """
