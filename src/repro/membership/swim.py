"""SWIM-style gossip membership with phi-accrual failure detection.

Das et al.'s SWIM, run deterministically on the simulator clock: every
protocol period each live member direct-pings one randomized round-robin
target; on failure it asks ``k`` proxies to ping the target for it
(ping-req); when the indirect chains also fail the target is marked
**suspect** and the suspicion disseminates epidemically, piggybacked on
subsequent probe traffic with per-update retransmission budgets and SWIM
incarnation numbers (a suspected member refutes by bumping its own
incarnation).  Unlike stock SWIM's fixed suspicion timeout, the
suspect -> **dead** confirmation is driven by a per-peer phi-accrual
estimator (:mod:`repro.membership.phi`) fed by every piece of liveness
evidence — direct acks, relayed indirect acks, and piggybacked alive
heartbeats carrying their observation timestamps (the Cassandra
gossip + accrual combination) — so the confirm timeout adapts to the
observed contact rate and loss of each pair.

Everything each member "knows" lives in its :class:`MemberView`; the
protocol only moves information via accounted RPCs on the simulated
network, so detection latency, false positives, and message cost (E15)
are paid for honestly.  The one deliberate exception is
:meth:`SwimMembership.confirmed_dead`, the *administrative* union of
per-member confirmations used by the repair daemon — justified because
confirmations gossip cluster-wide within a few periods, and flagged in
``docs/membership.md``.
"""

from __future__ import annotations

import contextlib
import math
import random as _random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import OverlayError, SimulationError
from repro.membership.config import MembershipConfig
from repro.membership.phi import PhiEstimator

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


@dataclass
class _Update:
    """One piggybacked membership rumor."""

    peer: str
    state: str          # ALIVE / SUSPECT / DEAD
    incarnation: int
    heard_at: float     # when the originator last had evidence of peer
    budget: int         # remaining piggyback transmissions


@dataclass
class ConfirmEvent:
    """One observer confirming one peer dead (E15's ground-truth log).

    ``actually_online`` peeks at the node's real state purely for
    experiment scoring (false-positive rate); the protocol never reads
    it.
    """

    observer: str
    peer: str
    at: float
    silence: float       # seconds since the observer's last evidence
    bound: float         # the adaptive confirm bound at that moment
    phi: float
    actually_online: bool


class MemberRecord:
    """One peer as seen by one member."""

    __slots__ = ("state", "incarnation", "estimator", "suspected_at")

    def __init__(self, estimator: PhiEstimator) -> None:
        self.state = ALIVE
        self.incarnation = 0
        self.estimator = estimator
        self.suspected_at: Optional[float] = None


class MemberView:
    """Everything one member believes about the cluster."""

    def __init__(self, owner: str, membership: "SwimMembership",
                 now: float) -> None:
        self.owner = owner
        self.membership = membership
        self.config = membership.config
        self.self_incarnation = 0
        self.records: Dict[str, MemberRecord] = {}
        self.queue: List[_Update] = []
        #: last tick at which the owner was up (stale-clock detection)
        self.last_active = now

    # -- read API (what routing and the channel consume) ----------------------

    def status(self, peer: str) -> str:
        """ALIVE / SUSPECT / DEAD (unknown peers read as alive)."""
        record = self.records.get(peer)
        return record.state if record is not None else ALIVE

    def is_dead(self, peer: str) -> bool:
        return self.status(peer) == DEAD

    def is_suspect(self, peer: str) -> bool:
        return self.status(peer) == SUSPECT

    def phi(self, peer: str, now: float) -> float:
        """Current suspicion level for ``peer``."""
        record = self.records.get(peer)
        if record is None:
            return 0.0
        return record.estimator.phi(now)

    def suspicious(self, peer: str, now: float) -> bool:
        """Whether the channel should deprioritize ``peer``."""
        record = self.records.get(peer)
        if record is None:
            return False
        return record.state != ALIVE \
            or record.estimator.phi(now) >= self.config.suspect_phi

    def health(self, peer: str, now: float) -> float:
        """A [0, 1] routing score: 1 fresh evidence, 0 confirmed dead."""
        record = self.records.get(peer)
        if record is None:
            return 1.0
        if record.state == DEAD:
            return 0.0
        score = max(0.0, 1.0 - record.estimator.phi(now)
                    / self.config.confirm_phi)
        if record.state == SUSPECT:
            score *= 0.5
        return score

    def dead_peers(self) -> List[str]:
        """Peers this view has confirmed dead (registration order)."""
        return [peer for peer, record in self.records.items()
                if record.state == DEAD]

    def confirm_bound(self, peer: str) -> float:
        """Silence (seconds) at which ``peer`` would be confirmed dead."""
        record = self.records.get(peer)
        if record is None:
            raise OverlayError(f"{self.owner!r} has no record of {peer!r}")
        return record.estimator.silence_bound(self.config.confirm_phi)

    # -- state transitions -----------------------------------------------------

    def add_peer(self, peer: str, now: float) -> None:
        if peer == self.owner or peer in self.records:
            return
        config = self.config
        self.records[peer] = MemberRecord(PhiEstimator(
            config.window, config.initial_interval, config.min_interval,
            now))

    def direct_evidence(self, peer: str, incarnation: int,
                        now: float) -> None:
        """First-hand proof of life: an ack from (or relayed for) ``peer``.

        Direct contact trumps gossip: it revives suspects without an
        incarnation bump (Lifeguard-style local refutation) and rejoins
        peers this view had buried.  A rejoin also pushes the peer's own
        incarnation past the buried record (via :meth:`SwimMembership.
        _revived`) so the revival can win in every *other* view, where
        DEAD is final until a strictly higher incarnation.
        """
        record = self.records.get(peer)
        if record is None:
            return
        buried_as = record.incarnation if record.state == DEAD else None
        record.estimator.evidence(now)
        if incarnation > record.incarnation:
            record.incarnation = incarnation
        if record.state == DEAD:
            record.state = ALIVE
            record.suspected_at = None
            self.membership._revived(self.owner, peer, buried_as, now)
        elif record.state == SUSPECT:
            record.state = ALIVE
            record.suspected_at = None

    def observe_contact(self, peer: str, now: float) -> None:
        """Application-level proof of life (a successful channel call).

        Lifeguard-style: any acked RPC is as good as a probe ack, so the
        hot path keeps phi low for the peers it actually talks to.
        """
        record = self.records.get(peer)
        if record is not None:
            self.direct_evidence(peer, record.incarnation, now)

    def resume(self, now: float) -> None:
        """The owner was away: restart every silence clock.

        Silence accumulated while *we* were offline says nothing about
        the peers, so phi must not charge them for it.
        """
        for record in self.records.values():
            record.estimator.restart(now)

    # -- piggyback dissemination ----------------------------------------------

    def enqueue(self, peer: str, state: str, incarnation: int,
                heard_at: float) -> None:
        cap = max(32, 4 * self.config.piggyback_limit)
        self.queue.append(_Update(peer, state, incarnation, heard_at,
                                  self.membership.gossip_budget()))
        if len(self.queue) > cap:
            del self.queue[:len(self.queue) - cap]

    def take_piggyback(self) -> List[_Update]:
        """Up to ``piggyback_limit`` updates to send with one contact."""
        batch = self.queue[:self.config.piggyback_limit]
        del self.queue[:len(batch)]
        keep = []
        for update in batch:
            update.budget -= 1
            if update.budget > 0:
                keep.append(update)
        self.queue.extend(keep)  # rotate: fresh rumors go first next time
        return batch

    def receive(self, update: _Update, now: float) -> None:
        """Apply one piggybacked rumor (SWIM merge rules); re-gossip news."""
        membership = self.membership
        metrics = membership.metrics
        if update.peer == self.owner:
            # Someone is spreading doubt about us: refute by overriding
            # the rumored incarnation with a fresher self.
            if update.state in (SUSPECT, DEAD) \
                    and update.incarnation >= self.self_incarnation:
                self.self_incarnation = update.incarnation + 1
                self.enqueue(self.owner, ALIVE, self.self_incarnation, now)
                metrics.inc("membership.refutations")
            return
        record = self.records.get(update.peer)
        if record is None:
            return
        news = False
        if update.state == ALIVE:
            if update.incarnation > record.incarnation:
                if record.state == DEAD:
                    self.membership._revived(self.owner, update.peer)
                record.state = ALIVE
                record.suspected_at = None
                record.incarnation = update.incarnation
                news = True
            if record.state != DEAD \
                    and record.estimator.evidence(update.heard_at):
                news = True
        elif update.state == SUSPECT:
            if record.state == DEAD:
                return
            if update.incarnation > record.incarnation or (
                    update.incarnation == record.incarnation
                    and record.state == ALIVE):
                if record.state != SUSPECT:
                    record.suspected_at = now
                    metrics.inc("membership.suspicions", source="gossip")
                record.state = SUSPECT
                record.incarnation = update.incarnation
                news = True
        else:  # DEAD is final until a higher incarnation revives the peer
            if record.state != DEAD:
                record.state = DEAD
                record.incarnation = max(record.incarnation,
                                         update.incarnation)
                record.suspected_at = None
                membership._confirmed(self.owner, update.peer, now,
                                      record, via_gossip=True)
                news = True
        if news:
            self.enqueue(update.peer, update.state, update.incarnation,
                         update.heard_at)


class SwimMembership:
    """The cluster-wide protocol driver (one instance per fabric).

    Construction attaches the service to the fabric
    (``fabric.membership``), which is how the channel, the overlays, and
    the repair daemon discover it.  Nothing runs until :meth:`start`;
    the RNG is split from the simulator only here, so fabrics without
    membership keep their random streams byte-identical.
    """

    def __init__(self, fabric, config: Optional[MembershipConfig] = None,
                 members: Sequence[str] = ()) -> None:
        self.fabric = fabric
        self.config = config or MembershipConfig()
        self.network = fabric.network
        self.sim = fabric.sim
        self.metrics = fabric.metrics
        self.tracer = fabric.tracer
        self._rng: _random.Random = self.sim.split_rng("membership")
        self.views: Dict[str, MemberView] = {}
        self._members: List[str] = []
        self._rotation: Dict[str, List[str]] = {}
        self._rotation_index: Dict[str, int] = {}
        #: administrative union of confirmations (see module docstring)
        self._dead: Set[str] = set()
        #: peers administratively quarantined by the adversary defense
        #: (provably-lying routers); they sort last in health-aware
        #: ordering but are *not* counted dead — lying is orthogonal to
        #: liveness, and a false ban must stay reachable as last resort
        self.quarantined: Set[str] = set()
        self.confirm_log: List[ConfirmEvent] = []
        self._confirm_callbacks: List[Callable[[str, float], None]] = []
        self._started = False
        self._ticks = 0
        fabric.attach_membership(self)

    # -- membership roster -----------------------------------------------------

    def register(self, name: str) -> MemberView:
        """Enroll a member; it probes and is probed from the next tick."""
        if name in self.views:
            raise OverlayError(f"member {name!r} already registered")
        now = self.sim.now
        view = MemberView(name, self, now)
        for other in self._members:
            view.add_peer(other, now)
            self.views[other].add_peer(name, now)
        self.views[name] = view
        self._members.append(name)
        return view

    def view_of(self, name: str) -> Optional[MemberView]:
        """The member's view, or None for non-members (legacy callers)."""
        return self.views.get(name)

    def gossip_budget(self) -> int:
        """Retransmissions granted to each new rumor."""
        n = max(2, len(self._members))
        return max(1, math.ceil(
            self.config.gossip_budget_factor * math.log2(n + 1)))

    # -- administrative / consumer API ----------------------------------------

    def confirmed_dead(self, peer: str) -> bool:
        """Whether *any* view currently holds ``peer`` confirmed dead."""
        return peer in self._dead

    def alive_members(self) -> List[str]:
        """Members not administratively confirmed dead."""
        return [m for m in self._members if m not in self._dead]

    def quarantine(self, peer: str) -> None:
        """Administratively mark ``peer`` as a proven routing liar.

        Fed by :class:`repro.adversary.Quarantine`: the peer keeps its
        liveness state (it *is* alive — that is the problem) but sorts
        last in :meth:`order_by_health`, so reads and cache probes
        prefer any honest holder over it.
        """
        if peer not in self.quarantined:
            self.quarantined.add(peer)
            self.metrics.inc("membership.quarantines")

    def on_confirm(self, callback: Callable[[str, float], None]) -> None:
        """Subscribe to cluster-first death confirmations.

        ``callback(peer, now)`` fires once per death (not once per
        observer); the repair daemon uses it to re-replicate promptly.
        """
        self._confirm_callbacks.append(callback)

    def false_positive_stats(self) -> Tuple[int, int]:
        """(false confirms, total confirms) from the ground-truth log."""
        false = sum(1 for event in self.confirm_log
                    if event.actually_online)
        return false, len(self.confirm_log)

    # -- the protocol loop -----------------------------------------------------

    def start(self) -> None:
        """Schedule the recurring probe tick (idempotent)."""
        if self._started:
            return
        if len(self._members) < 2:
            raise SimulationError(
                "membership needs at least two registered members")
        self._started = True
        self.sim.schedule(self.config.protocol_period, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        period = self.config.protocol_period
        self._ticks += 1
        reclaim_turn = self._ticks % self.config.reclaim_every == 0
        with self.tracer.span("membership.tick"):
            for name in self._members:
                if not self.network.is_online(name):
                    continue
                view = self.views[name]
                if now - view.last_active > 1.5 * period:
                    view.resume(now)  # we were away; peers owe us nothing
                view.last_active = now
                self._probe_round(name, now)
                if reclaim_turn:
                    self._reclaim_probe(name, now)
            for name in self._members:
                if self.network.is_online(name):
                    self._sweep_confirms(self.views[name], now)
        self.sim.schedule(period, self._tick)

    def _next_target(self, member: str) -> Optional[str]:
        """Randomized round-robin target selection (SWIM section 4.3)."""
        order = self._rotation.get(member)
        index = self._rotation_index.get(member, 0)
        if order is None or index >= len(order):
            order = [m for m in self._members if m != member]
            self._rng.shuffle(order)
            self._rotation[member] = order
            index = 0
        view = self.views[member]
        while index < len(order):
            target = order[index]
            index += 1
            if target in self.views[member].records \
                    and not view.is_dead(target):
                self._rotation_index[member] = index
                return target
        self._rotation_index[member] = index
        return None

    def _probe_round(self, member: str, now: float) -> None:
        target = self._next_target(member)
        if target is None:
            return
        self.metrics.inc("membership.pings")
        ok, _ = self.network.rpc(member, target, kind="swim_ping")
        if ok:
            self._contact(member, target, now)
            return
        if self._indirect_probe(member, target, now):
            return
        self._suspect(member, target, now)

    def _reclaim_probe(self, member: str, now: float) -> None:
        """Ping one confirmed-dead peer ("gossip to the dead").

        Confirmed peers drop out of the probe rotation, so after a
        partition heals — both halves having buried each other — nobody
        would ever initiate contact across the old cut.  A low-rate
        probe of the graveyard rediscovers such peers; a successful
        contact revives the record and makes the peer outbid its burial
        incarnation (see :meth:`_revived`), which revives it everywhere.
        """
        view = self.views[member]
        dead = view.dead_peers()
        if not dead:
            return
        target = dead[self._rng.randrange(len(dead))]
        self.metrics.inc("membership.reclaim_pings")
        ok, _ = self.network.rpc(member, target, kind="swim_ping")
        if ok:
            self._contact(member, target, now)

    def _indirect_probe(self, member: str, target: str,
                        now: float) -> bool:
        """ping-req via k proxies; True when any chain reached the target.

        Each chain is two accounted RPCs (member->proxy carrying the
        request + response, proxy->target carrying the ping + ack): four
        messages, exactly SWIM's ping-req/ping/ack/ack cost.
        """
        view = self.views[member]
        candidates = [m for m in self._members
                      if m not in (member, target)
                      and not view.is_dead(m)]
        k = min(self.config.k_indirect, len(candidates))
        if k == 0:
            return False
        proxies = self._rng.sample(candidates, k)
        reached = False
        # The k chains run concurrently in real SWIM: under the
        # concurrent latency model each chain is a serial sub-span (its
        # two RPCs are dependent) and the chains roll up as max.  Spans
        # are only opened in that mode so off-mode traces stay
        # byte-identical; the RPCs themselves are issued identically
        # either way.
        concurrent = self.network.sim.concurrent
        fanout = (self.network.tracer.span("swim.indirect", parallel=True,
                                           target=target)
                  if concurrent else contextlib.nullcontext(None))
        with fanout:
            for proxy in proxies:
                chain = (self.network.tracer.span("swim.pingreq.chain",
                                                  proxy=proxy)
                         if concurrent else contextlib.nullcontext(None))
                with chain:
                    self.metrics.inc("membership.indirect_chains")
                    ok, _ = self.network.rpc(member, proxy,
                                             kind="swim_pingreq")
                    if not ok:
                        continue
                    self._contact(member, proxy, now)
                    if not self.network.is_online(proxy):
                        continue  # the proxy answered, then left
                    ok, _ = self.network.rpc(proxy, target,
                                             kind="swim_ping")
                    if not ok:
                        continue
                    reached = True
                    # The proxy heard the target; its relayed ack is
                    # first-hand evidence for the proxy and relayed
                    # evidence for the member.
                    target_inc = self.views[target].self_incarnation
                    proxy_view = self.views[proxy]
                    proxy_view.direct_evidence(target, target_inc, now)
                    proxy_view.enqueue(target, ALIVE, target_inc, now)
                    view.direct_evidence(target, target_inc, now)
                    view.enqueue(target, ALIVE, target_inc, now)
        return reached

    def _contact(self, a: str, b: str, now: float) -> None:
        """A successful direct exchange: evidence + piggyback both ways."""
        view_a, view_b = self.views[a], self.views[b]
        view_a.direct_evidence(b, view_b.self_incarnation, now)
        view_b.direct_evidence(a, view_a.self_incarnation, now)
        # Fresh heartbeats for the epidemic evidence stream.
        view_a.enqueue(b, ALIVE, view_b.self_incarnation, now)
        view_b.enqueue(a, ALIVE, view_a.self_incarnation, now)
        for update in view_a.take_piggyback():
            view_b.receive(update, now)
        for update in view_b.take_piggyback():
            view_a.receive(update, now)

    def _suspect(self, member: str, target: str, now: float) -> None:
        view = self.views[member]
        record = view.records[target]
        if record.state == DEAD:
            return
        if record.state == ALIVE:
            record.state = SUSPECT
            record.suspected_at = now
            self.metrics.inc("membership.suspicions", source="probe")
        view.enqueue(target, SUSPECT, record.incarnation,
                     record.estimator.last_evidence)

    def _sweep_confirms(self, view: MemberView, now: float) -> None:
        for peer, record in view.records.items():
            if record.state != SUSPECT:
                continue
            if record.estimator.phi(now) >= self.config.confirm_phi:
                record.state = DEAD
                record.suspected_at = None
                self._confirmed(view.owner, peer, now, record,
                                via_gossip=False)
                view.enqueue(peer, DEAD, record.incarnation,
                             record.estimator.last_evidence)

    # -- bookkeeping shared by local and gossiped transitions -------------------

    def _confirmed(self, observer: str, peer: str, now: float,
                   record: MemberRecord, via_gossip: bool) -> None:
        self.metrics.inc("membership.confirms",
                         source="gossip" if via_gossip else "phi")
        if not via_gossip:
            estimator = record.estimator
            self.confirm_log.append(ConfirmEvent(
                observer=observer, peer=peer, at=now,
                silence=now - estimator.last_evidence,
                bound=estimator.silence_bound(self.config.confirm_phi),
                phi=estimator.phi(now),
                actually_online=self.network.is_online(peer)))
        if peer not in self._dead:
            self._dead.add(peer)
            for callback in self._confirm_callbacks:
                callback(peer, now)

    def _revived(self, observer: str, peer: str,
                 buried_as: Optional[int] = None,
                 now: Optional[float] = None) -> None:
        self.metrics.inc("membership.rejoins")
        self._dead.discard(peer)
        if buried_as is None:
            return
        # Direct contact proved the burial wrong, but DEAD is final in
        # every *other* view until a strictly higher incarnation shows
        # up — so the revived peer must outbid the record it was buried
        # under before its ALIVE gossip can win anywhere else.
        peer_view = self.views.get(peer)
        if peer_view is not None and peer_view.self_incarnation <= buried_as:
            peer_view.self_incarnation = buried_as + 1
            peer_view.enqueue(peer, ALIVE, peer_view.self_incarnation,
                              now if now is not None else self.sim.now)
            self.metrics.inc("membership.refutations")

    # -- health-aware candidate ordering (routing helpers) ----------------------

    def order_by_health(self, observer: str, peers: Sequence[str]
                        ) -> List[str]:
        """Stable sort of ``peers`` by the observer's health scores.

        Confirmed-dead peers sort last (not dropped: a false confirm
        must still be reachable as the probe of last resort).  Observers
        without a view get the input back unchanged.
        """
        view = self.views.get(observer)
        if view is None:
            return list(peers)
        now = self.sim.now
        if self.quarantined:
            return sorted(peers, key=lambda p: (p in self.quarantined,
                                                -view.health(p, now)))
        return sorted(peers, key=lambda p: -view.health(p, now))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SwimMembership(members={len(self._members)}, "
                f"dead={len(self._dead)}, started={self._started})")
