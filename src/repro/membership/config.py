"""Tunables for the SWIM/phi-accrual membership service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class MembershipConfig:
    """Protocol and estimator parameters for :class:`SwimMembership`.

    The defaults are sized for the simulated fabric's latency scale
    (tens of milliseconds per link): one probe round per virtual second,
    three indirect proxies, and phi thresholds that tolerate ~20% packet
    loss without false confirmations (E15 measures exactly this).

    ``suspect_phi``/``confirm_phi`` are phi-accrual suspicion levels: a
    phi of ``p`` means the estimator puts the odds that the peer is
    still alive and merely silent at ``10^-p`` given its observed
    evidence-gap distribution.  The confirm timeout is therefore *per
    peer and adaptive*: ``confirm_phi * mean_gap * ln(10)`` virtual
    seconds of silence, where ``mean_gap`` is learned online — a noisy
    link stretches the bound automatically instead of tripping a fixed
    threshold.
    """

    #: virtual seconds between probe rounds (every member probes one
    #: target per round, SWIM-style)
    protocol_period: float = 1.0
    #: indirect ping-req proxies consulted when a direct probe fails
    k_indirect: int = 3
    #: phi at which a destination is *deprioritized* (routing/channel)
    suspect_phi: float = 3.0
    #: phi at which a suspected peer is confirmed dead
    confirm_phi: float = 8.0
    #: membership updates piggybacked per direction per contact
    piggyback_limit: int = 8
    #: sliding-window size of the per-peer evidence-gap estimator
    window: int = 16
    #: prior mean evidence gap (seconds) before the window fills
    initial_interval: float = 5.0
    #: floor for the estimated mean gap (keeps phi finite on chatty pairs)
    min_interval: float = 0.25
    #: lambda for the per-update retransmission budget
    #: (``ceil(lambda * log2(n + 1))`` piggyback transmissions per update)
    gossip_budget_factor: float = 3.0
    #: every this many protocol periods a member also probes one peer it
    #: has confirmed dead ("gossip to the dead").  Without it two halves
    #: of a healed partition — each having buried the other — would
    #: never exchange another message, so neither could ever refute.
    reclaim_every: int = 4

    def __post_init__(self) -> None:
        if self.protocol_period <= 0:
            raise SimulationError("protocol_period must be positive")
        if self.k_indirect < 0:
            raise SimulationError("k_indirect must be >= 0")
        if not 0 < self.suspect_phi < self.confirm_phi:
            raise SimulationError(
                "need 0 < suspect_phi < confirm_phi")
        if self.piggyback_limit < 1:
            raise SimulationError("piggyback_limit must be >= 1")
        if self.window < 2:
            raise SimulationError("estimator window must be >= 2")
        if self.initial_interval <= 0 or self.min_interval <= 0:
            raise SimulationError("estimator intervals must be positive")
        if self.gossip_budget_factor <= 0:
            raise SimulationError("gossip_budget_factor must be positive")
        if self.reclaim_every < 1:
            raise SimulationError("reclaim_every must be >= 1")
