"""Phi-accrual suspicion: adaptive per-peer timeouts from evidence gaps.

Hayashibara et al.'s accrual failure detector, in the exponential-model
form Cassandra ships: instead of a boolean "is the peer dead after T
seconds?", the detector outputs a *suspicion level*

    phi(now) = -log10 P(gap > now - last_evidence)
             = (now - last_evidence) / (mu * ln 10)

where ``mu`` is the mean gap between pieces of liveness evidence for
that peer, estimated over a sliding window.  Consumers pick the phi
threshold matching their tolerance: routing deprioritizes at a low phi,
death is confirmed at a high one.  Because ``mu`` is learned per peer,
a lossy or slow link stretches every timeout automatically — the
adaptivity E15 measures against fixed breaker thresholds.

The model is invertible, which the property tests exploit: silence of
``threshold * mu * ln(10)`` seconds is exactly where phi crosses
``threshold`` (:meth:`PhiEstimator.silence_bound`).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

LN10 = math.log(10.0)


class PhiEstimator:
    """Evidence-gap tracker for one (observer, peer) pair."""

    __slots__ = ("window", "initial_interval", "min_interval",
                 "last_evidence", "_gaps")

    def __init__(self, window: int, initial_interval: float,
                 min_interval: float, now: float) -> None:
        self.window = window
        self.initial_interval = initial_interval
        self.min_interval = min_interval
        self.last_evidence = now
        self._gaps: Deque[float] = deque(maxlen=window)

    def evidence(self, at: float) -> bool:
        """Record liveness evidence observed at virtual time ``at``.

        Returns whether the evidence advanced the clock (older or
        duplicate timestamps — stale piggybacked news — are ignored).
        """
        if at <= self.last_evidence:
            return False
        self._gaps.append(at - self.last_evidence)
        self.last_evidence = at
        return True

    def restart(self, now: float) -> None:
        """Reset the silence clock without recording a gap.

        Used when the *observer* was away: its own absence produced the
        silence, which must not count as evidence against the peer.
        """
        self.last_evidence = now

    @property
    def mean_gap(self) -> float:
        """Current estimate of the mean evidence gap (floored)."""
        if len(self._gaps) < 3:
            return max(self.initial_interval, self.min_interval)
        return max(sum(self._gaps) / len(self._gaps), self.min_interval)

    def phi(self, now: float) -> float:
        """Suspicion level at ``now`` (0 when evidence just arrived)."""
        elapsed = now - self.last_evidence
        if elapsed <= 0:
            return 0.0
        return elapsed / (self.mean_gap * LN10)

    def silence_bound(self, threshold: float) -> float:
        """Seconds of silence at which phi reaches ``threshold``."""
        return threshold * self.mean_gap * LN10

    def snapshot(self) -> Optional[float]:
        """The most recent gap (None before any evidence), for tests."""
        return self._gaps[-1] if self._gaps else None
