"""Gossip membership & adaptive failure detection (the non-oracle path).

Every availability number in this repo used to lean on an omniscient
churn oracle (``online_at(peer, t)``); no deployed DOSN has one.  This
package replaces it with what PeerSoN/Safebook-class systems actually
run: a SWIM-style probe + gossip membership protocol
(:mod:`repro.membership.swim`) whose suspect->dead confirmation is
driven by a per-peer phi-accrual estimator
(:mod:`repro.membership.phi`), all deterministic on the simulator clock.

Opt in per fabric::

    from repro.membership import MembershipConfig, SwimMembership

    fab = Fabric.create(seed=7, resilient=True)
    swim = SwimMembership(fab, MembershipConfig())   # attaches to fab
    for name in peers:
        swim.register(name)
    swim.start()

or through the facade::

    DosnConfig(architecture="dht", resilient=True,
               membership=MembershipConfig())

Once attached, the :class:`~repro.faults.ReliableChannel` fast-fails
confirmed-dead destinations and strips retries from suspects, the
Chord/Kademlia/Hybrid overlays and ``fetch_from_holders`` order
candidates by health score, and the anti-entropy daemon re-replicates
on *confirmed* deaths instead of polling the oracle.  Experiment E15
(``benchmarks/bench_membership.py``) prices detection latency and false
positives against packet loss, and the availability delta of
health-aware routing under partitions + churn.
"""

from repro.membership.config import MembershipConfig
from repro.membership.phi import LN10, PhiEstimator
from repro.membership.swim import (ALIVE, DEAD, SUSPECT, ConfirmEvent,
                                   MemberView, SwimMembership)

__all__ = [
    "ALIVE", "DEAD", "SUSPECT", "ConfirmEvent", "LN10", "MemberView",
    "MembershipConfig", "PhiEstimator", "SwimMembership",
]
