"""Privacy-preserving advertising (Section VI open problem).

"Another problem is to provide privacy preserving advertising for a service
provider storing encrypted data of users in order to get income ...
Although there has been some work on privacy preserving advertising systems
[Privad, Adnostic], the development of business models ... needs to be
investigated further."

Implemented here is the Adnostic/Privad architecture the paper cites:

* the broker pushes the *whole ad catalog* (or a broad-interest slice) to
  every client;
* the client matches ads against its interest profile **locally** — the
  profile never leaves the device;
* clicks/charges are reported through an unlinkable token (blind-signed by
  the broker), so billing works without the broker learning who saw what.

A :class:`TrackingAdServer` baseline (profile uploaded in the clear) makes
the privacy difference measurable: experiment E9 compares targeting
quality and broker knowledge across the two.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto import blind, rsa
from repro.exceptions import ReproError, SignatureError

_DEFAULT_RNG = _random.Random(0xAD5)


@dataclass(frozen=True)
class Advertisement:
    """One ad: an id, targeting keywords, and a revenue weight."""

    ad_id: str
    keywords: Tuple[str, ...]
    bid: float = 1.0


@dataclass
class AdBroker:
    """The privacy-preserving broker: broadcasts ads, redeems blind tokens."""

    catalog: List[Advertisement] = field(default_factory=list)
    _key: rsa.RSAPrivateKey = field(
        default_factory=lambda: rsa.generate_keypair(
            512, rng=_random.Random(0xB111)))
    redeemed: Set[bytes] = field(default_factory=set)
    #: what the broker observes: only (token, ad) pairs — no user ids
    click_log: List[Tuple[bytes, str]] = field(default_factory=list)

    @property
    def token_key(self) -> rsa.RSAPublicKey:
        """Public key clients use to blind/verify click tokens."""
        return self._key.public_key

    def publish(self, ad: Advertisement) -> None:
        """Add an ad to the broadcast catalog."""
        self.catalog.append(ad)

    def broadcast(self) -> List[Advertisement]:
        """The catalog every client receives (identical for everyone)."""
        return list(self.catalog)

    def issue_click_token(self, blinded: int) -> int:
        """Blind-sign a client's click token (unlinkable at redemption)."""
        return blind.sign_blinded(self._key, blinded)

    def redeem_click(self, token_message: bytes, token_signature: bytes,
                     ad_id: str) -> bool:
        """Accept a click report: valid signature, not double-spent."""
        if not blind.verify(self.token_key, token_message, token_signature):
            return False
        if token_signature in self.redeemed:
            return False  # double spend
        self.redeemed.add(token_signature)
        self.click_log.append((token_message, ad_id))
        return True

    def broker_knowledge(self) -> Dict[str, object]:
        """Everything this broker ever learns about users."""
        return {
            "profiles_seen": 0,
            "click_reports": len(self.click_log),
            "linkable_to_users": False,
        }


class AdClient:
    """A user device running local ad selection (Adnostic style)."""

    def __init__(self, user: str, interests: Sequence[str],
                 rng: Optional[_random.Random] = None) -> None:
        self.user = user
        self.interests = set(interests)
        self.rng = rng or _DEFAULT_RNG

    def select_ads(self, catalog: Sequence[Advertisement],
                   count: int = 3) -> List[Advertisement]:
        """Local matching: score by interest overlap x bid; profile stays
        on-device."""
        scored = sorted(
            catalog,
            key=lambda ad: (-len(self.interests & set(ad.keywords))
                            * ad.bid, ad.ad_id))
        return [ad for ad in scored[:count]
                if self.interests & set(ad.keywords)]

    def report_click(self, broker: AdBroker, ad: Advertisement) -> bool:
        """Report a click through a fresh blind token."""
        token_message = bytes(self.rng.getrandbits(8) for _ in range(16))
        context = blind.blind(broker.token_key, token_message, self.rng)
        try:
            signature = context.unblind(
                broker.issue_click_token(context.blinded))
        except SignatureError:
            return False
        return broker.redeem_click(token_message, signature, ad.ad_id)


class TrackingAdServer:
    """The baseline: upload-your-profile targeted advertising."""

    def __init__(self) -> None:
        self.catalog: List[Advertisement] = []
        #: the privacy cost, in one dict: every user's full profile
        self.profiles: Dict[str, Set[str]] = {}
        self.click_log: List[Tuple[str, str]] = []

    def publish(self, ad: Advertisement) -> None:
        """Add an ad to the inventory."""
        self.catalog.append(ad)

    def upload_profile(self, user: str, interests: Sequence[str]) -> None:
        """What makes this 'tracking': the server stores the raw profile."""
        self.profiles[user] = set(interests)

    def select_ads(self, user: str, count: int = 3) -> List[Advertisement]:
        """Server-side targeting with the stored profile."""
        interests = self.profiles.get(user)
        if interests is None:
            raise ReproError(f"no profile uploaded for {user!r}")
        scored = sorted(
            self.catalog,
            key=lambda ad: (-len(interests & set(ad.keywords)) * ad.bid,
                            ad.ad_id))
        return [ad for ad in scored[:count]
                if interests & set(ad.keywords)]

    def report_click(self, user: str, ad: Advertisement) -> None:
        """Clicks are linked to the user forever."""
        self.click_log.append((user, ad.ad_id))

    def server_knowledge(self) -> Dict[str, object]:
        """Everything this server learns (contrast with the broker)."""
        return {
            "profiles_seen": len(self.profiles),
            "click_reports": len(self.click_log),
            "linkable_to_users": True,
        }
